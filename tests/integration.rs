//! Cross-crate integration tests: swath simulation → binning → stream
//! engine → merge results, compression round trips, and the qualitative
//! claims of the paper's evaluation at reduced scale.

use pmkm_baselines::serial_kmeans;
use pmkm_bench::experiments::{mean_rows, run_split, run_sweep, SweepConfig};
use pmkm_compress::{compress_cell, faithfulness, reconstruct};
use pmkm_core::{
    metrics, partial_merge, KMeansConfig, PartialMergeConfig, PartitionSpec, PointSource,
};
use pmkm_data::binner::bin_stripes;
use pmkm_data::{CellConfig, GridBucket, GridCell, SwathConfig, SwathSimulator};
use pmkm_stream::prelude::*;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("pmkm_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn swath_to_engine_end_to_end() {
    // Simulate acquisition, bin into buckets, cluster every bucket through
    // the stream engine, and check conservation invariants per cell.
    let dir = tmpdir("swath_engine");
    let mut sim = SwathSimulator::new(SwathConfig {
        orbits: 3,
        lat_range: (-4.0, 4.0),
        along_track_step_deg: 0.05,
        cross_track_samples: 8,
        attrs_dim: 4,
        components_per_cell: 3,
        seed: 31,
        ..SwathConfig::default()
    })
    .unwrap();
    let stripes = sim.write_stripes(&dir.join("stripes")).unwrap();
    let summary = bin_stripes(&stripes, &dir.join("buckets")).unwrap();
    assert!(summary.buckets.len() > 5);

    // Cluster the five fullest buckets.
    let mut sizes: Vec<(usize, &std::path::PathBuf)> = summary
        .buckets
        .iter()
        .map(|(_, p)| (GridBucket::read_from(p).unwrap().points.len(), p))
        .collect();
    sizes.sort_by_key(|(n, _)| std::cmp::Reverse(*n));
    let paths: Vec<std::path::PathBuf> = sizes.iter().take(5).map(|(_, p)| (*p).clone()).collect();
    let expected: Vec<usize> = sizes.iter().take(5).map(|(n, _)| *n).collect();

    let logical =
        LogicalPlan::new(paths, KMeansConfig { restarts: 2, ..KMeansConfig::paper(8, 5) });
    let plan = optimize_fixed_split(logical, &Resources::fixed(1 << 20, 2), 64);
    let report = execute(&plan).unwrap();
    assert_eq!(report.cells.len(), 5);
    let mut got: Vec<usize> = report
        .cells
        .iter()
        .map(|c| c.output.cluster_weights.iter().sum::<f64>() as usize)
        .collect();
    got.sort_unstable_by(|a, b| b.cmp(a));
    let mut want = expected.clone();
    want.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(got, want, "every binned point must be accounted for");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_and_core_pipeline_agree_structurally() {
    // Same cell through the stream engine (sequential chunking) and the
    // in-memory pipeline (shuffled round-robin chunking): chunk layouts and
    // seeds differ by design, but both must conserve weight, emit k
    // centroids, and land in the same quality regime.
    let dir = tmpdir("parity");
    let n = 6_000usize;
    let cell = pmkm_data::generator::generate_cell(&CellConfig::paper(n, 3)).unwrap();
    let gc = GridCell::new(50, 60).unwrap();
    let path = dir.join(gc.bucket_file_name());
    GridBucket { cell: gc, points: cell.clone() }.write_to(&path).unwrap();

    // Best-of-2 at k=20 is high-variance: a single unlucky seeding on either
    // path can push the MSE ratio outside the shared-regime band. Four
    // restarts keep both paths near good optima regardless of RNG stream.
    let kcfg = KMeansConfig { restarts: 4, ..KMeansConfig::paper(20, 9) };
    let plan = optimize_fixed_split(
        LogicalPlan::new(vec![path], kcfg),
        &Resources::fixed(16 << 20, 2),
        n / 5,
    );
    let engine = execute(&plan).unwrap();
    let pm_cfg = PartialMergeConfig {
        kmeans: kcfg,
        partitions: PartitionSpec::Count(5),
        ..PartialMergeConfig::paper(20, 5, 9)
    };
    let core = partial_merge(&cell, &pm_cfg).unwrap();

    let engine_out = &engine.cells[0].output;
    assert_eq!(engine.cells[0].chunks.len(), core.partitions);
    assert_eq!(engine_out.centroids.k(), core.merge.centroids.k());
    let ew: f64 = engine_out.cluster_weights.iter().sum();
    let cw: f64 = core.merge.cluster_weights.iter().sum();
    assert_eq!(ew, n as f64);
    assert_eq!(cw, n as f64);
    let engine_mse = metrics::mse_against(&cell, &engine_out.centroids).unwrap();
    let core_mse = metrics::mse_against(&cell, &core.merge.centroids).unwrap();
    let ratio = engine_mse / core_mse;
    assert!((0.5..2.0).contains(&ratio), "quality regimes diverged: {ratio}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compression_round_trip_preserves_moments() {
    let cell = pmkm_data::generator::generate_cell(&CellConfig::paper(4_000, 77)).unwrap();
    let cfg = PartialMergeConfig {
        kmeans: KMeansConfig { restarts: 3, ..KMeansConfig::paper(30, 5) },
        ..PartialMergeConfig::paper(30, 5, 5)
    };
    let out = compress_cell(&cell, &cfg).unwrap();
    assert!(out.summary.ratio > 10.0, "ratio = {}", out.summary.ratio);

    let faith = faithfulness(&cell, &out.histogram).unwrap();
    assert!(faith.mean_rel_error < 0.02, "mean err = {}", faith.mean_rel_error);
    assert!(faith.cov_rel_error < 0.30, "cov err = {}", faith.cov_rel_error);

    // Reconstruct a surrogate and compare first moments with the original.
    let surrogate = reconstruct(&out.histogram, 4_000, 1).unwrap();
    let orig = pmkm_data::stats::summarize(&cell).unwrap();
    let rec = pmkm_data::stats::summarize(&surrogate).unwrap();
    for d in 0..cell.dim() {
        let scale = orig[d].variance.sqrt().max(1.0);
        assert!(
            (orig[d].mean - rec[d].mean).abs() / scale < 0.25,
            "dim {d}: mean {} vs {}",
            orig[d].mean,
            rec[d].mean
        );
    }
}

#[test]
fn paper_claim_partial_merge_wins_at_large_n() {
    // §5.2: "at N = 12,500, partial/merge breaks even, and the MSE and
    // execution time … is significantly better than a serial k-means."
    // At reduced restart counts the time advantage is already decisive.
    let cfg = SweepConfig { k: 40, restarts: 2, versions: 1, sizes: vec![25_000], seed: 0xBEEF };
    let serial = pmkm_bench::experiments::run_serial(&cfg, 25_000, 0);
    let split10 = run_split(&cfg, 25_000, 0, 10);
    assert!(
        split10.overall_ms < serial.overall_ms,
        "10-split ({:.0} ms) should beat serial ({:.0} ms)",
        split10.overall_ms,
        serial.overall_ms
    );
    // The paper's Min MSE metric also favors partial/merge at this size.
    assert!(
        split10.min_mse < serial.min_mse,
        "10-split MSE {} vs serial {}",
        split10.min_mse,
        serial.min_mse
    );
}

#[test]
fn paper_claim_small_n_serial_is_fine() {
    // §5.2: for very small cells the serial algorithm is at least as good
    // and much faster (partial/merge pays overhead for nothing).
    let cfg = SweepConfig { k: 40, restarts: 2, versions: 1, sizes: vec![250], seed: 0xF00D };
    let serial = pmkm_bench::experiments::run_serial(&cfg, 250, 0);
    let split10 = run_split(&cfg, 250, 0, 10);
    // Quality: serial sees all points at once; it must not be (much) worse.
    assert!(serial.data_mse <= split10.data_mse * 1.5 + 1.0);
}

#[test]
fn sweep_rows_serialize_and_average() {
    let cfg = SweepConfig { k: 6, restarts: 2, versions: 2, sizes: vec![400], seed: 2 };
    let rows = run_sweep(&cfg);
    assert_eq!(rows.len(), 6);
    let json = serde_json::to_string(&rows).unwrap();
    let back: Vec<pmkm_bench::experiments::CaseRow> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), rows.len());
    let means = mean_rows(&rows);
    assert_eq!(means.len(), 3);
}

#[test]
fn serial_baseline_equals_partial_with_one_split() {
    // partial/merge with p = 1 degenerates to serial k-means plus a
    // passthrough merge: data-space quality must match the serial baseline
    // built from the same (seed-derived) restart streams.
    let cell = pmkm_data::generator::generate_cell(&CellConfig::paper(2_000, 4)).unwrap();
    let kcfg = KMeansConfig { restarts: 3, ..KMeansConfig::paper(10, 21) };
    let serial = serial_kmeans(&cell, &kcfg).unwrap();
    let pm = PartialMergeConfig {
        kmeans: kcfg,
        partitions: PartitionSpec::Count(1),
        ..PartialMergeConfig::paper(10, 1, 21)
    };
    let merged = partial_merge(&cell, &pm).unwrap();
    let pm_mse = metrics::mse_against(&cell, &merged.merge.centroids).unwrap();
    // Not bit-identical (the chunk derives its own seed stream) but the
    // same algorithm at the same scale: identical quality regime.
    let ratio = pm_mse / serial.outcome.best.mse;
    assert!((0.5..2.0).contains(&ratio), "ratio = {ratio}");
    assert_eq!(merged.merge.epm, 0.0, "single split must passthrough-merge");
}

#[test]
fn engine_aborts_cleanly_on_corrupt_bucket() {
    // Failure injection: a bucket whose payload was flipped must abort the
    // whole pipeline with a checksum error — no hang, no partial results
    // silently returned.
    let dir = tmpdir("corrupt");
    let cell = pmkm_data::generator::generate_cell(&CellConfig::paper(2_000, 8)).unwrap();
    let good_cell = GridCell::new(10, 10).unwrap();
    let bad_cell = GridCell::new(11, 11).unwrap();
    let good = dir.join(good_cell.bucket_file_name());
    let bad = dir.join(bad_cell.bucket_file_name());
    GridBucket { cell: good_cell, points: cell.clone() }.write_to(&good).unwrap();
    GridBucket { cell: bad_cell, points: cell }.write_to(&bad).unwrap();
    // Flip one payload byte of the bad bucket.
    let mut bytes = std::fs::read(&bad).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&bad, bytes).unwrap();

    let plan = optimize_fixed_split(
        LogicalPlan::new(
            vec![good, bad],
            KMeansConfig { restarts: 1, ..KMeansConfig::paper(4, 1) },
        ),
        &Resources::fixed(1 << 20, 2),
        500,
    );
    let started = std::time::Instant::now();
    let err = pmkm_stream::execute(&plan);
    assert!(err.is_err(), "corrupt bucket must fail the run");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "pipeline must not hang on corruption"
    );
    // Adaptive execution handles the same failure identically.
    let err2 = pmkm_stream::execute_adaptive(&plan);
    assert!(err2.is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_error_names_the_root_cause() {
    let dir = tmpdir("rootcause");
    let cell_id = GridCell::new(12, 12).unwrap();
    let path = dir.join(cell_id.bucket_file_name());
    std::fs::write(&path, b"definitely not a bucket file, padded past the header").unwrap();
    let plan = optimize_fixed_split(
        LogicalPlan::new(vec![path], KMeansConfig::paper(4, 1)),
        &Resources::fixed(1 << 20, 2),
        500,
    );
    match pmkm_stream::execute(&plan) {
        Err(pmkm_stream::EngineError::Data(e)) => {
            assert!(
                e.to_string().contains("magic") || e.to_string().contains("format"),
                "unexpected data error: {e}"
            );
        }
        other => panic!("expected Data error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn observed_partial_merge_reports_dataset_and_monotone_trajectories() {
    // The observability satellite's core invariant: an observed
    // partial/merge run yields a RunReport whose total point count matches
    // the dataset exactly and whose per-chunk MSE trajectories — Lloyd's
    // objective after every assign step — are monotonically non-increasing.
    let points = pmkm_data::generator::generate_cell(&CellConfig::paper(3_000, 5)).unwrap();
    let cfg = PartialMergeConfig {
        kmeans: KMeansConfig { restarts: 3, ..KMeansConfig::paper(8, 5) },
        partitions: PartitionSpec::Count(4),
        ..PartialMergeConfig::paper(8, 4, 5)
    };
    let rec = pmkm_obs::Recorder::new();
    let (result, report) =
        pmkm_core::partial_merge_observed(&points, &cfg, None, Some(&rec)).unwrap();

    assert_eq!(report.total_points(), points.len());
    assert_eq!(report.cells.len(), 1);
    assert_eq!(report.cells[0].chunks.len(), result.chunks.len());
    for chunk in &report.cells[0].chunks {
        let t = &chunk.mse_trajectory;
        assert!(t.len() >= 2, "chunk {} trajectory too short: {t:?}", chunk.chunk);
        for w in t.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "chunk {} trajectory increased: {} -> {}",
                chunk.chunk,
                w[0],
                w[1]
            );
        }
        assert!((t[t.len() - 1] - chunk.best_mse).abs() <= 1e-9 * chunk.best_mse.max(1.0));
    }

    // The counters agree with the report's own accounting.
    let snap = report.metrics;
    let counter =
        |name: &str| snap.counters.iter().find(|c| c.name == name).map(|c| c.value).unwrap_or(0);
    assert_eq!(counter("partial_points_total"), points.len() as u64);
    assert_eq!(counter("partial_chunks_total"), result.chunks.len() as u64);
    assert!(counter("lloyd_iterations_total") > 0);

    // Observation must not change the clustering itself.
    let unobserved = partial_merge(&points, &cfg).unwrap();
    assert_eq!(unobserved.merge.centroids, result.merge.centroids);
    assert_eq!(unobserved.merge.epm, result.merge.epm);
}

#[test]
fn observed_engine_run_report_round_trips_and_balances() {
    // Engine-level observability: the RunReport survives JSON round trips
    // losslessly, and its queue-depth histograms account for every send.
    let dir = tmpdir("obs_engine");
    let cell_id = GridCell::new(33, 44).unwrap();
    let points = pmkm_data::generator::generate_cell(&CellConfig::paper(2_500, 9)).unwrap();
    let n = points.len();
    let path = dir.join(cell_id.bucket_file_name());
    GridBucket { cell: cell_id, points }.write_to(&path).unwrap();

    let plan = optimize_fixed_split(
        LogicalPlan::new(vec![path], KMeansConfig { restarts: 2, ..KMeansConfig::paper(6, 3) }),
        &Resources::fixed(1 << 20, 2),
        500,
    );
    let rec = std::sync::Arc::new(pmkm_obs::Recorder::new());
    let engine = pmkm_stream::execute_observed(&plan, Some(rec.clone())).unwrap();
    let report = engine.run_report(Some(&rec));

    assert_eq!(report.total_points(), n);
    let json = serde_json::to_string_pretty(&report).unwrap();
    let back: pmkm_obs::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);

    for q in &report.queues {
        assert_eq!(
            q.depth.counts.iter().sum::<u64>(),
            q.sends,
            "queue {} depth histogram does not balance",
            q.name
        );
    }
    // Busy + blocked never exceeds lifetime by more than timer noise.
    for op in &report.operators {
        let spent = op.busy + op.blocked;
        assert!(
            spent <= op.lifetime + std::time::Duration::from_millis(50),
            "operator {} clone {}: busy+blocked {spent:?} > lifetime {:?}",
            op.name,
            op.clone_id,
            op.lifetime
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
