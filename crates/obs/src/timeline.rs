//! Per-worker state timelines for the multi-cell orchestrator.
//!
//! A [`Timeline`] holds one bounded transition ring per registered worker
//! lane. Every transition is stamped by the caller with the owning
//! recorder's monotonic clock (`Recorder::elapsed_us`), so timeline
//! entries, ledger records, and profiler spans all share one time base and
//! can be joined into a single run chronology.
//!
//! Lanes move through the states of [`WorkerState`]: the orchestrator's
//! worker loop records `idle` / `stealing` / `checkpoint` / `budget-wait`
//! directly, while the pipeline operators of the cell a lane is currently
//! *bound* to (see [`Timeline::bind_cell`]) record `scan` / `partial` /
//! `merge` as the cell flows through them. Same-state records coalesce, so
//! the ring holds genuine transitions only and stays small.
//!
//! [`Timeline::snapshot`] folds the rings into a [`WorkerTimeline`]:
//! per-lane per-state dwell times, a busy/total utilization, and the
//! planet-level `wall_us` rollup — the **maximum** busy time over lanes
//! (per-thread-max, the same methodology as the profiler's `wall_us`
//! column), not the sum, so it reads as "wall clock the busiest worker
//! needed".
//!
//! Like every observability seam in this workspace, the timeline only
//! observes: attaching one must never change results, and code paths
//! without a recorder never touch it.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Default per-lane transition ring capacity.
pub const DEFAULT_LANE_CAPACITY: usize = 1024;

/// The states a worker lane moves through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkerState {
    /// Looking for work (own deque empty, nothing stolen yet).
    Idle,
    /// Executing a cell stolen from another worker's deque.
    Stealing,
    /// The bound cell is scanning its bucket.
    Scan,
    /// The bound cell is clustering chunks (partial k-means).
    Partial,
    /// The bound cell is merging partial centroids.
    Merge,
    /// The bound cell is compacting its coreset tree (coreset-mode runs:
    /// inserting chunk coresets and carrying same-level buckets upward).
    Compact,
    /// Persisting the finished cell's checkpoint.
    Checkpoint,
    /// Parked waiting for memory-budget headroom.
    BudgetWait,
}

impl WorkerState {
    /// Every state, in ring-chart legend order.
    pub const ALL: [WorkerState; 8] = [
        WorkerState::Idle,
        WorkerState::Stealing,
        WorkerState::Scan,
        WorkerState::Partial,
        WorkerState::Merge,
        WorkerState::Compact,
        WorkerState::Checkpoint,
        WorkerState::BudgetWait,
    ];

    /// Stable wire label (used in `worker.state` ledger events).
    pub fn as_str(self) -> &'static str {
        match self {
            WorkerState::Idle => "idle",
            WorkerState::Stealing => "stealing",
            WorkerState::Scan => "scan",
            WorkerState::Partial => "partial",
            WorkerState::Merge => "merge",
            WorkerState::Compact => "compact",
            WorkerState::Checkpoint => "checkpoint",
            WorkerState::BudgetWait => "budget-wait",
        }
    }

    /// Parses a wire label back into a state.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|st| st.as_str() == s)
    }

    /// True for states that count toward utilization (everything except
    /// waiting for work or for budget headroom).
    pub fn is_busy(self) -> bool {
        !matches!(self, WorkerState::Idle | WorkerState::BudgetWait)
    }

    fn idx(self) -> usize {
        Self::ALL.iter().position(|s| *s == self).expect("state in ALL")
    }
}

/// One recorded state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// When the lane entered the state (µs on the shared recorder clock).
    pub ts_us: u64,
    /// The state entered.
    pub state: WorkerState,
}

struct Lane {
    label: String,
    opened_us: u64,
    current: WorkerState,
    since_us: u64,
    last_us: u64,
    transitions: u64,
    state_us: [u64; WorkerState::ALL.len()],
    ring: VecDeque<Transition>,
}

impl Lane {
    fn new(label: String, ts_us: u64, capacity: usize) -> Self {
        let mut ring = VecDeque::with_capacity(capacity.min(64));
        ring.push_back(Transition { ts_us, state: WorkerState::Idle });
        Self {
            label,
            opened_us: ts_us,
            current: WorkerState::Idle,
            since_us: ts_us,
            last_us: ts_us,
            transitions: 1,
            state_us: [0; WorkerState::ALL.len()],
            ring,
        }
    }
}

/// Shared per-worker state timeline. See the [module docs](self).
pub struct Timeline {
    capacity: usize,
    lanes: Mutex<Vec<Lane>>,
    bindings: Mutex<HashMap<u32, usize>>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    /// A timeline with the default per-lane ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// A timeline whose lanes keep at most `capacity` transitions (min 2,
    /// so the opening state and the newest transition always survive).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(2),
            lanes: Mutex::new(Vec::new()),
            bindings: Mutex::new(HashMap::new()),
        }
    }

    /// Registers a worker lane starting in `idle` at `ts_us`; returns its
    /// lane id.
    pub fn register(&self, label: &str, ts_us: u64) -> usize {
        let mut lanes = self.lanes.lock();
        lanes.push(Lane::new(label.to_string(), ts_us, self.capacity));
        lanes.len() - 1
    }

    /// Number of registered lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.lock().len()
    }

    /// The label a lane was registered with.
    pub fn label(&self, lane: usize) -> Option<String> {
        self.lanes.lock().get(lane).map(|l| l.label.clone())
    }

    /// Records `lane` entering `state` at `ts_us`. Same-state records
    /// coalesce; returns true only when a genuine transition was recorded.
    /// Timestamps are clamped monotonic per lane; unknown lanes are
    /// ignored.
    pub fn record(&self, lane: usize, state: WorkerState, ts_us: u64) -> bool {
        let mut lanes = self.lanes.lock();
        let Some(l) = lanes.get_mut(lane) else { return false };
        let ts_us = ts_us.max(l.last_us);
        l.last_us = ts_us;
        if state == l.current {
            return false;
        }
        l.state_us[l.current.idx()] += ts_us - l.since_us;
        l.current = state;
        l.since_us = ts_us;
        l.transitions += 1;
        if l.ring.len() == self.capacity {
            l.ring.pop_front();
        }
        l.ring.push_back(Transition { ts_us, state });
        true
    }

    /// Binds `cell` to `lane` so pipeline operators working on the cell
    /// can record states onto the worker lane that owns it.
    pub fn bind_cell(&self, cell: u32, lane: usize) {
        self.bindings.lock().insert(cell, lane);
    }

    /// Removes a cell binding (after the cell's pipeline finished).
    pub fn unbind_cell(&self, cell: u32) {
        self.bindings.lock().remove(&cell);
    }

    /// [`Timeline::record`] addressed by bound cell instead of lane.
    /// Returns the lane on a genuine transition, `None` when the cell is
    /// unbound or the record coalesced.
    pub fn record_cell(&self, cell: u32, state: WorkerState, ts_us: u64) -> Option<usize> {
        let lane = *self.bindings.lock().get(&cell)?;
        self.record(lane, state, ts_us).then_some(lane)
    }

    /// The retained transitions of one lane, oldest first.
    pub fn transitions(&self, lane: usize) -> Vec<Transition> {
        self.lanes.lock().get(lane).map(|l| l.ring.iter().copied().collect()).unwrap_or_default()
    }

    /// Folds every lane into a [`WorkerTimeline`] as of `now_us` (the
    /// open interval of each lane's current state is counted up to `now`).
    pub fn snapshot(&self, now_us: u64) -> WorkerTimeline {
        let lanes = self.lanes.lock();
        let mut workers = Vec::with_capacity(lanes.len());
        let mut wall_us = 0u64;
        let mut min_open = u64::MAX;
        for l in lanes.iter() {
            let now = now_us.max(l.last_us);
            let mut state_us = l.state_us;
            state_us[l.current.idx()] += now - l.since_us;
            let busy_us: u64 =
                WorkerState::ALL.iter().filter(|s| s.is_busy()).map(|s| state_us[s.idx()]).sum();
            let total_us = now - l.opened_us;
            let utilization = if total_us == 0 { 0.0 } else { busy_us as f64 / total_us as f64 };
            wall_us = wall_us.max(busy_us);
            min_open = min_open.min(l.opened_us);
            workers.push(WorkerLaneReport {
                worker: l.label.clone(),
                current: l.current.as_str().to_string(),
                transitions: l.transitions,
                idle_us: state_us[WorkerState::Idle.idx()],
                stealing_us: state_us[WorkerState::Stealing.idx()],
                scan_us: state_us[WorkerState::Scan.idx()],
                partial_us: state_us[WorkerState::Partial.idx()],
                merge_us: state_us[WorkerState::Merge.idx()],
                compact_us: state_us[WorkerState::Compact.idx()],
                checkpoint_us: state_us[WorkerState::Checkpoint.idx()],
                budget_wait_us: state_us[WorkerState::BudgetWait.idx()],
                busy_us,
                total_us,
                utilization,
            });
        }
        let span_us = if workers.is_empty() { 0 } else { now_us.saturating_sub(min_open) };
        WorkerTimeline { workers, wall_us, span_us }
    }
}

impl std::fmt::Debug for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timeline")
            .field("lanes", &self.lanes.lock().len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// Aggregated per-worker dwell times of one lane. All times µs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkerLaneReport {
    /// Lane label (`"w0"`, `"w1"`, …).
    pub worker: String,
    /// State the lane was in at snapshot time.
    pub current: String,
    /// Genuine transitions recorded (coalesced records excluded).
    pub transitions: u64,
    /// Time spent idle (looking for work).
    pub idle_us: u64,
    /// Time spent on stolen cells.
    pub stealing_us: u64,
    /// Time spent in the scan phase of bound cells.
    pub scan_us: u64,
    /// Time spent in partial k-means of bound cells.
    pub partial_us: u64,
    /// Time spent merging bound cells.
    pub merge_us: u64,
    /// Time spent compacting coreset trees of bound cells (defaulted so
    /// pre-coreset reports still deserialize).
    #[serde(default)]
    pub compact_us: u64,
    /// Time spent writing checkpoints.
    pub checkpoint_us: u64,
    /// Time parked on the memory budget.
    pub budget_wait_us: u64,
    /// Total busy time (everything except idle and budget-wait).
    pub busy_us: u64,
    /// Lane lifetime at snapshot time.
    pub total_us: u64,
    /// `busy_us / total_us` in `[0, 1]`.
    pub utilization: f64,
}

/// Timeline rollup across every worker lane.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkerTimeline {
    /// Per-lane reports in registration order.
    pub workers: Vec<WorkerLaneReport>,
    /// Per-thread-max wall clock: the busy time of the busiest lane (µs).
    pub wall_us: u64,
    /// Observed span from the first lane registration to the snapshot (µs).
    pub span_us: u64,
}

impl WorkerTimeline {
    /// True when no lanes were ever registered.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_labels_round_trip() {
        for s in WorkerState::ALL {
            assert_eq!(WorkerState::parse(s.as_str()), Some(s));
        }
        assert_eq!(WorkerState::parse("nope"), None);
        assert!(!WorkerState::Idle.is_busy());
        assert!(!WorkerState::BudgetWait.is_busy());
        assert!(WorkerState::Partial.is_busy());
    }

    #[test]
    fn transitions_coalesce_and_accumulate_dwell_times() {
        let tl = Timeline::new();
        let w = tl.register("w0", 0);
        assert!(tl.record(w, WorkerState::Scan, 10));
        assert!(!tl.record(w, WorkerState::Scan, 20), "same state must coalesce");
        assert!(tl.record(w, WorkerState::Partial, 40));
        assert!(tl.record(w, WorkerState::Idle, 100));
        let snap = tl.snapshot(130);
        let lane = &snap.workers[0];
        assert_eq!(lane.idle_us, 10 + 30); // 0..10 opening idle + 100..130
        assert_eq!(lane.scan_us, 30); // 10..40
        assert_eq!(lane.partial_us, 60); // 40..100
        assert_eq!(lane.busy_us, 90);
        assert_eq!(lane.total_us, 130);
        assert!((lane.utilization - 90.0 / 130.0).abs() < 1e-12);
        assert_eq!(lane.transitions, 4); // idle, scan, partial, idle
        assert_eq!(lane.current, "idle");
        assert_eq!(snap.wall_us, 90);
        assert_eq!(snap.span_us, 130);
    }

    #[test]
    fn wall_rollup_is_per_thread_max_not_sum() {
        let tl = Timeline::new();
        let a = tl.register("w0", 0);
        let b = tl.register("w1", 0);
        tl.record(a, WorkerState::Partial, 0);
        tl.record(a, WorkerState::Idle, 100);
        tl.record(b, WorkerState::Merge, 0);
        tl.record(b, WorkerState::Idle, 60);
        let snap = tl.snapshot(100);
        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.wall_us, 100, "max(100, 60), not 160");
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let tl = Timeline::with_capacity(4);
        let w = tl.register("w0", 0);
        // Alternate states so nothing coalesces.
        for i in 0..10u64 {
            let s = if i % 2 == 0 { WorkerState::Scan } else { WorkerState::Idle };
            tl.record(w, s, i * 10);
        }
        let ring = tl.transitions(w);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.last().unwrap().ts_us, 90);
        // Dwell accounting is unaffected by ring eviction.
        let snap = tl.snapshot(90);
        assert_eq!(snap.workers[0].scan_us + snap.workers[0].idle_us, 90);
    }

    #[test]
    fn cell_bindings_route_to_the_owning_lane() {
        let tl = Timeline::new();
        let w0 = tl.register("w0", 0);
        let w1 = tl.register("w1", 0);
        tl.bind_cell(7, w1);
        assert_eq!(tl.record_cell(7, WorkerState::Scan, 5), Some(w1));
        assert_eq!(tl.record_cell(7, WorkerState::Scan, 6), None, "coalesced");
        assert_eq!(tl.record_cell(9, WorkerState::Scan, 7), None, "unbound cell");
        tl.unbind_cell(7);
        assert_eq!(tl.record_cell(7, WorkerState::Partial, 8), None);
        let snap = tl.snapshot(10);
        assert_eq!(snap.workers[w1].transitions, 2);
        assert_eq!(snap.workers[w0].transitions, 1);
    }

    #[test]
    fn timestamps_clamp_monotonic_per_lane() {
        let tl = Timeline::new();
        let w = tl.register("w0", 100);
        tl.record(w, WorkerState::Scan, 50); // behind the lane clock
        let snap = tl.snapshot(200);
        // The transition was clamped to ts 100, so idle dwell is 0.
        assert_eq!(snap.workers[0].idle_us, 0);
        assert_eq!(snap.workers[0].scan_us, 100);
    }

    #[test]
    fn worker_timeline_serializes_and_round_trips() {
        let tl = Timeline::new();
        let w = tl.register("w0", 0);
        tl.record(w, WorkerState::Checkpoint, 10);
        let snap = tl.snapshot(20);
        let json = serde_json::to_string(&snap).unwrap();
        let back: WorkerTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert!(!snap.is_empty());
        assert!(WorkerTimeline::default().is_empty());
    }
}
