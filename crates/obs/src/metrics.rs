//! A lock-cheap metrics registry.
//!
//! Instruments are cheap to update from many threads at once: counters and
//! gauges are single atomics, histograms are one atomic per bucket plus an
//! atomic bit-cast sum. The registry itself takes a short
//! [`parking_lot::Mutex`] only on instrument *creation/lookup*; hot paths
//! hold an `Arc` to the instrument and never touch the registry again.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::report::{
    CounterSample, GaugeSample, HistogramSample, HistogramSnapshot, MetricsSnapshot,
};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) with a compare-and-swap loop.
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with fixed, cumulative-style buckets.
///
/// `bounds` are the inclusive upper bounds of the finite buckets; one extra
/// `+Inf` bucket catches everything above the last bound, so an observation
/// always lands in exactly one of `bounds.len() + 1` buckets.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram; `bounds` must be finite and strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(bounds.iter().all(|b| b.is_finite()));
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The finite bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A plain-data snapshot (`counts.len() == bounds.len() + 1`; the last
    /// entry is the `+Inf` bucket).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// A named collection of instruments.
///
/// `counter`/`gauge`/`histogram` get-or-create by name and hand back an
/// `Arc`; updating through the `Arc` is lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`; `bounds` are used only on first creation
    /// (later callers share the existing instrument).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new(bounds))))
    }

    /// A plain-data snapshot of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(name, c)| CounterSample { name: name.clone(), value: c.get() })
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(name, g)| GaugeSample { name: name.clone(), value: g.get() })
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(name, h)| HistogramSample { name: name.clone(), histogram: h.snapshot() })
                .collect(),
        }
    }

    /// The counter `family{label="value"}` — a labeled member of the
    /// `family` metric family. The label value is escaped; members of one
    /// family share a single `# TYPE` line in the Prometheus rendering.
    pub fn labeled_counter(&self, family: &str, label: &str, value: &str) -> Arc<Counter> {
        self.counter(&labeled_name(family, label, value))
    }

    /// Renders every instrument in the Prometheus text exposition format
    /// (counters, gauges, and cumulative histogram buckets). Labeled
    /// members of one family (`name{label="v"}`) are grouped under a
    /// single `# TYPE` line. An empty registry renders the empty string.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, c) in self.counters.lock().iter() {
            let family = metric_family(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} counter");
                last_family = family.to_string();
            }
            let _ = writeln!(out, "{name} {}", c.get());
        }
        last_family.clear();
        for (name, g) in self.gauges.lock().iter() {
            let family = metric_family(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} gauge");
                last_family = family.to_string();
            }
            let _ = writeln!(out, "{name} {}", g.get());
        }
        for (name, h) in self.histograms.lock().iter() {
            let snap = h.snapshot();
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &count) in snap.counts.iter().enumerate() {
                cumulative += count;
                let le = match snap.bounds.get(i) {
                    Some(bound) => escape_label_value(&bound.to_string()),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_sum {}", snap.sum);
            let _ = writeln!(out, "{name}_count {}", snap.count);
        }
        out
    }
}

/// The family part of a (possibly labeled) metric name:
/// `fault_events_total{kind="x"}` → `fault_events_total`.
fn metric_family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Formats a labeled metric name: `family{label="escaped value"}`.
pub fn labeled_name(family: &str, label: &str, value: &str) -> String {
    format!("{family}{{{label}=\"{}\"}}", escape_label_value(value))
}

/// Escapes a Prometheus label *value*: backslash, double quote, and newline
/// must be backslash-escaped per the text exposition format.
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_semantics() {
        let r = Registry::new();
        let c = r.counter("items");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same instrument.
        assert_eq!(r.counter("items").get(), 5);
        assert_eq!(r.counter("other").get(), 0);
    }

    #[test]
    fn gauge_goes_up_and_down() {
        let g = Gauge::default();
        g.set(2.5);
        g.add(1.0);
        g.add(-4.0);
        assert!((g.get() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_placement() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 2.0, 10.0, 50.0, 1000.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        // Inclusive upper bounds: 0.5 and 1.0 → ≤1; 2.0 and 10.0 → ≤10;
        // 50.0 → ≤100; 1000.0 → +Inf.
        assert_eq!(snap.counts, vec![2, 2, 1, 1]);
        assert_eq!(snap.count, 6);
        assert!((snap.sum - 1063.5).abs() < 1e-9);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let r = Arc::new(Registry::new());
        let c = r.counter("hits");
        let h = r.histogram("sizes", &[10.0, 100.0]);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let (c, h) = (Arc::clone(&c), Arc::clone(&h));
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.observe((t * 1000 + i) as f64 % 200.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.counts.iter().sum::<u64>(), 8000);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("jobs_total").add(2);
        r.gauge("queue_depth").set(3.0);
        r.histogram("latency", &[1.0, 5.0]).observe(2.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total 2"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("latency_bucket{le=\"5\"} 1"));
        assert!(text.contains("latency_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("latency_count 1"));
    }

    #[test]
    fn labeled_counter_family_shares_one_type_line() {
        let r = Registry::new();
        r.labeled_counter("fault_events_total", "kind", "worker_panic").add(2);
        r.labeled_counter("fault_events_total", "kind", "chunk_retry").inc();
        r.counter("other_total").inc();
        let text = r.render_prometheus();
        let type_lines = text.lines().filter(|l| *l == "# TYPE fault_events_total counter").count();
        assert_eq!(type_lines, 1, "family must get exactly one TYPE line:\n{text}");
        assert!(text.contains("fault_events_total{kind=\"worker_panic\"} 2"));
        assert!(text.contains("fault_events_total{kind=\"chunk_retry\"} 1"));
        assert!(text.contains("# TYPE other_total counter"));
        // The TYPE line precedes every member of its family.
        let type_pos = text.find("# TYPE fault_events_total counter").unwrap();
        assert!(type_pos < text.find("fault_events_total{").unwrap());
    }

    #[test]
    fn labeled_name_escapes_values() {
        assert_eq!(labeled_name("f", "kind", "a\"b"), "f{kind=\"a\\\"b\"}");
        assert_eq!(labeled_name("f", "kind", "plain"), "f{kind=\"plain\"}");
    }

    #[test]
    fn empty_registry_renders_empty_string() {
        assert_eq!(Registry::new().render_prometheus(), "");
    }

    #[test]
    fn zero_observation_histogram_renders_all_buckets() {
        let r = Registry::new();
        r.histogram("idle", &[1.0, 2.0]);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE idle histogram"));
        assert!(text.contains("idle_bucket{le=\"1\"} 0"));
        assert!(text.contains("idle_bucket{le=\"2\"} 0"));
        assert!(text.contains("idle_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("idle_sum 0"));
        assert!(text.contains("idle_count 0"));
    }

    #[test]
    fn inf_bucket_is_cumulative_total() {
        let r = Registry::new();
        let h = r.histogram("lat", &[1.0]);
        h.observe(0.5);
        h.observe(100.0);
        h.observe(200.0);
        let text = r.render_prometheus();
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn label_value_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
    }

    // Property: however the observations fall, every one lands in exactly
    // one bucket — the per-bucket counts sum to the total.
    proptest! {
        #[test]
        fn histogram_counts_sum_to_observations(values in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
            let h = Histogram::new(&[-100.0, 0.0, 1.0, 1000.0]);
            for &v in &values {
                h.observe(v);
            }
            let snap = h.snapshot();
            prop_assert_eq!(snap.counts.iter().sum::<u64>(), values.len() as u64);
            prop_assert_eq!(snap.count, values.len() as u64);
            prop_assert_eq!(snap.counts.len(), snap.bounds.len() + 1);
        }
    }
}
