//! Hierarchical span profiler with self/child wall-time attribution.
//!
//! A [`Profiler`] aggregates nested timed spans into a *phase tree*: each
//! distinct stack of span names (`partial` → `assign`) is one node holding a
//! call count and total wall time. Per-thread span stacks mean concurrent
//! operator clones profile independently and their times *sum* into the
//! shared tree — the same semantics as the operator `busy` accounting, so on
//! a multi-clone run a phase's total can exceed wall-clock time.
//!
//! Alongside the summed totals, every node tracks a *per-thread* total and
//! reports the maximum as `wall_us`: for a phase whose clones run
//! concurrently, that is the phase's elapsed wall time rather than the sum
//! of thread times, so a 4-clone partial phase no longer looks 4× longer
//! than the run it happened inside.
//!
//! Output comes in two shapes:
//!
//! * [`Profiler::phase_rows`] — flat [`PhaseReport`] rows (path, calls,
//!   total, self, wall) sorted by path, embedded in `RunReport.phases`;
//! * [`Profiler::folded`] — folded-stack text, one
//!   `scan;read <self_us> <wall_us>` line per phase. The *last* column is
//!   the per-thread-max wall time; pipe through `awk '{print $1, $2}'` for
//!   strict `flamegraph.pl` single-value input.
//!
//! Time comes from a pluggable [`ProfilerClock`]; tests use [`ManualClock`]
//! for deterministic output, production uses the default [`MonotonicClock`].
//!
//! ```
//! use pmkm_obs::profile::{ManualClock, Profiler};
//! use std::sync::Arc;
//!
//! let clock = Arc::new(ManualClock::new());
//! let prof = Profiler::with_clock(clock.clone());
//! {
//!     let _outer = prof.enter("partial");
//!     clock.advance_us(10);
//!     {
//!         let _inner = prof.enter("assign");
//!         clock.advance_us(30);
//!     }
//! }
//! assert_eq!(prof.folded(), "partial 10 40\npartial;assign 30 30\n");
//! ```

use crate::report::PhaseReport;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Instant;

/// Source of monotonic microsecond timestamps for the profiler.
pub trait ProfilerClock: Send + Sync {
    /// Microseconds since an arbitrary (but fixed) epoch.
    fn now_us(&self) -> u64;
}

/// The production clock: microseconds since the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfilerClock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when
/// [`ManualClock::advance_us`] is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.now.fetch_add(us, Ordering::Relaxed);
    }
}

impl ProfilerClock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// One node of the aggregated phase tree. Names live in the parent's
/// `children` map (and `roots` for top-level nodes).
struct Node {
    /// Child name → node index, kept sorted for deterministic traversal.
    children: BTreeMap<String, usize>,
    total_us: u64,
    calls: u64,
    /// Per-thread share of `total_us`; the maximum is the node's wall time
    /// when its threads ran concurrently.
    per_thread: HashMap<ThreadId, u64>,
}

struct State {
    /// Arena of tree nodes; indices are stable for the profiler's lifetime.
    nodes: Vec<Node>,
    /// Root name → node index.
    roots: BTreeMap<String, usize>,
    /// Per-thread stack of open span node indices.
    stacks: HashMap<ThreadId, Vec<usize>>,
}

impl State {
    fn resolve(&mut self, parent: Option<usize>, name: &str) -> usize {
        let map = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = map.get(name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            children: BTreeMap::new(),
            total_us: 0,
            calls: 0,
            per_thread: HashMap::new(),
        });
        let map = match parent {
            Some(p) => &mut self.nodes[p].children,
            None => &mut self.roots,
        };
        map.insert(name.to_string(), idx);
        idx
    }
}

/// Aggregating span profiler. See the [module docs](self) for the model.
///
/// Entering and exiting a span takes a short mutex; spans are meant to wrap
/// *phases* (a chunk's assignment step, a merge), never per-point work, so
/// contention is negligible next to the work being timed.
pub struct Profiler {
    clock: Arc<dyn ProfilerClock>,
    state: Mutex<State>,
}

impl Profiler {
    /// A profiler on the default monotonic clock.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A profiler on an injected clock (use [`ManualClock`] in tests).
    pub fn with_clock(clock: Arc<dyn ProfilerClock>) -> Self {
        Self {
            clock,
            state: Mutex::new(State {
                nodes: Vec::new(),
                roots: BTreeMap::new(),
                stacks: HashMap::new(),
            }),
        }
    }

    /// Opens a span named `name` nested under the calling thread's current
    /// innermost open span (or as a root). Dropping the guard closes it.
    pub fn enter(&self, name: &str) -> PhaseGuard<'_> {
        let tid = std::thread::current().id();
        let node = {
            let mut state = self.state.lock();
            let parent = state.stacks.get(&tid).and_then(|s| s.last().copied());
            let node = state.resolve(parent, name);
            state.stacks.entry(tid).or_default().push(node);
            node
        };
        // Stamp *after* releasing the lock so lock wait is not attributed
        // to the span being opened.
        PhaseGuard { profiler: self, node, tid, start_us: self.clock.now_us() }
    }

    fn exit(&self, node: usize, tid: ThreadId, start_us: u64) {
        let end_us = self.clock.now_us();
        let mut state = self.state.lock();
        if let Some(stack) = state.stacks.get_mut(&tid) {
            // Normal case: the guard being dropped is the innermost span.
            // Out-of-order drops (possible if a guard is moved) still close
            // the right node.
            if let Some(pos) = stack.iter().rposition(|&n| n == node) {
                stack.remove(pos);
            }
        }
        let n = &mut state.nodes[node];
        let elapsed = end_us.saturating_sub(start_us);
        n.total_us += elapsed;
        n.calls += 1;
        *n.per_thread.entry(tid).or_insert(0) += elapsed;
    }

    /// Flat per-phase rows sorted by path (`/`-joined), with
    /// `self_us = total_us − Σ children.total_us` (saturating) and
    /// `wall_us = max` over the per-thread totals.
    pub fn phase_rows(&self) -> Vec<PhaseReport> {
        let state = self.state.lock();
        let mut rows = Vec::new();
        let mut pending: Vec<(usize, String)> =
            state.roots.iter().rev().map(|(name, &idx)| (idx, name.clone())).collect();
        while let Some((idx, path)) = pending.pop() {
            let node = &state.nodes[idx];
            let child_total: u64 = node.children.values().map(|&c| state.nodes[c].total_us).sum();
            rows.push(PhaseReport {
                path: path.clone(),
                calls: node.calls,
                total_us: node.total_us,
                self_us: node.total_us.saturating_sub(child_total),
                wall_us: node.per_thread.values().copied().max().unwrap_or(0),
            });
            for (name, &child) in node.children.iter().rev() {
                pending.push((child, format!("{path}/{name}")));
            }
        }
        rows
    }

    /// Folded-stack text: one `a;b;c <self_us> <wall_us>` line per phase in
    /// depth-first order. The first value is the thread-summed self time
    /// (the classic flamegraph weight), the second the per-thread-max wall
    /// time. Output is deterministic: siblings are sorted by name.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for row in self.phase_rows() {
            out.push_str(&row.path.replace('/', ";"));
            out.push(' ');
            out.push_str(&row.self_us.to_string());
            out.push(' ');
            out.push_str(&row.wall_us.to_string());
            out.push('\n');
        }
        out
    }

    /// Sum of the root phases' total times (≈ profiled wall time per thread,
    /// summed over threads).
    pub fn total_us(&self) -> u64 {
        let state = self.state.lock();
        state.roots.values().map(|&idx| state.nodes[idx].total_us).sum()
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Profiler")
            .field("nodes", &state.nodes.len())
            .field("roots", &state.roots.len())
            .finish()
    }
}

/// Guard for one open span; dropping it closes the span and adds the elapsed
/// time to the phase tree.
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct PhaseGuard<'p> {
    profiler: &'p Profiler,
    node: usize,
    tid: ThreadId,
    start_us: u64,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.profiler.exit(self.node, self.tid, self.start_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> (Arc<ManualClock>, Profiler) {
        let clock = Arc::new(ManualClock::new());
        let prof = Profiler::with_clock(clock.clone());
        (clock, prof)
    }

    #[test]
    fn nested_spans_attribute_self_and_child_time_exactly() {
        let (clock, prof) = manual();
        {
            let _outer = prof.enter("partial");
            clock.advance_us(5); // self time before children
            {
                let _a = prof.enter("assign");
                clock.advance_us(30);
            }
            {
                let _u = prof.enter("update");
                clock.advance_us(10);
            }
            clock.advance_us(5); // self time after children
        }
        let rows = prof.phase_rows();
        let by_path: std::collections::HashMap<_, _> =
            rows.iter().map(|r| (r.path.as_str(), r)).collect();
        let partial = by_path["partial"];
        assert_eq!(partial.total_us, 50);
        assert_eq!(partial.self_us, 10);
        assert_eq!(partial.calls, 1);
        assert_eq!(by_path["partial/assign"].total_us, 30);
        assert_eq!(by_path["partial/assign"].self_us, 30);
        assert_eq!(by_path["partial/update"].total_us, 10);
        // self + children == total, exactly, under the manual clock.
        assert_eq!(
            partial.self_us
                + by_path["partial/assign"].total_us
                + by_path["partial/update"].total_us,
            partial.total_us
        );
    }

    #[test]
    fn repeated_calls_accumulate() {
        let (clock, prof) = manual();
        for _ in 0..3 {
            let _g = prof.enter("scan");
            clock.advance_us(7);
        }
        let rows = prof.phase_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].calls, 3);
        assert_eq!(rows[0].total_us, 21);
        assert_eq!(prof.total_us(), 21);
    }

    #[test]
    fn folded_output_is_deterministic_and_sorted() {
        let (clock, prof) = manual();
        // Enter children in non-alphabetical order; output must still be
        // sorted and byte-identical across runs.
        {
            let _m = prof.enter("merge");
            clock.advance_us(4);
        }
        {
            let _p = prof.enter("partial");
            {
                let _u = prof.enter("update");
                clock.advance_us(2);
            }
            {
                let _a = prof.enter("assign");
                clock.advance_us(3);
            }
            clock.advance_us(1);
        }
        // Columns: self_us then wall_us. Single-threaded, wall == total.
        let expected = "merge 4 4\npartial 1 6\npartial;assign 3 3\npartial;update 2 2\n";
        assert_eq!(prof.folded(), expected);
        assert_eq!(prof.folded(), expected); // stable across calls
    }

    #[test]
    fn same_phase_on_two_threads_sums_into_one_node() {
        let clock = Arc::new(ManualClock::new());
        let prof = Arc::new(Profiler::with_clock(clock.clone()));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (prof, clock) = (Arc::clone(&prof), Arc::clone(&clock));
                std::thread::spawn(move || {
                    let _g = prof.enter("partial");
                    clock.advance_us(10);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rows = prof.phase_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].calls, 2);
        // Each thread saw the shared clock advance at least its own 10µs;
        // with two advances the combined total lands in [20, 40].
        assert!(rows[0].total_us >= 20 && rows[0].total_us <= 40);
        // Wall is the per-thread max: never more than the summed total.
        assert!(rows[0].wall_us >= 10 && rows[0].wall_us <= rows[0].total_us);
    }

    #[test]
    fn wall_time_is_per_thread_max_not_thread_sum() {
        // Two threads run the same phase strictly one after the other, each
        // observing exactly a 10µs advance: the summed total is 20 but the
        // per-thread max (the "wall" column) is 10.
        let clock = Arc::new(ManualClock::new());
        let prof = Arc::new(Profiler::with_clock(clock.clone()));
        for _ in 0..2 {
            let (prof, clock) = (Arc::clone(&prof), Arc::clone(&clock));
            std::thread::spawn(move || {
                let _g = prof.enter("partial");
                clock.advance_us(10);
            })
            .join()
            .unwrap();
        }
        let rows = prof.phase_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].total_us, 20);
        assert_eq!(rows[0].wall_us, 10);
        assert_eq!(prof.folded(), "partial 20 10\n");
    }

    #[test]
    fn sibling_stacks_do_not_nest_across_threads() {
        // A span open on thread A must not become the parent of a span
        // opened on thread B.
        let (clock, prof) = manual();
        let prof = Arc::new(prof);
        let _outer = prof.enter("partial");
        clock.advance_us(1);
        let p = Arc::clone(&prof);
        std::thread::spawn(move || {
            let _g = p.enter("merge");
        })
        .join()
        .unwrap();
        drop(_outer);
        let paths: Vec<String> = prof.phase_rows().into_iter().map(|r| r.path).collect();
        assert_eq!(paths, vec!["merge".to_string(), "partial".to_string()]);
    }

    #[test]
    fn monotonic_clock_measures_real_time() {
        let prof = Profiler::new();
        {
            let _g = prof.enter("sleep");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let rows = prof.phase_rows();
        assert_eq!(rows[0].path, "sleep");
        assert!(rows[0].total_us >= 1_000);
    }

    #[test]
    fn phase_rows_serialize() {
        let (clock, prof) = manual();
        {
            let _g = prof.enter("scan");
            clock.advance_us(3);
        }
        let rows = prof.phase_rows();
        let json = serde_json::to_string(&rows).unwrap();
        let back: Vec<PhaseReport> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rows);
    }
}
