//! Dependency-light HTTP exporter for live pipeline telemetry.
//!
//! [`MetricsServer`] binds a `std::net::TcpListener` and answers a handful
//! of routes with a small hand-rolled HTTP/1.1 responder — no async
//! runtime, no HTTP crate:
//!
//! * `GET /metrics` — the recorder's registry in Prometheus text format;
//! * `GET /report.json` — the final [`RunReport`] once one has been
//!   published via [`MetricsServer::set_report`], else a *live* snapshot
//!   (elapsed time, current metrics, current profiler phases) built on the
//!   fly, so the endpoint is useful while a run is still in flight;
//! * `GET /healthz` — `{"status":"ok", ...}` liveness probe;
//! * `GET /events?after=N` — run-ledger long-poll (requires a
//!   [`LedgerSink`] via [`MetricsServer::serve_with_ledger`]): returns the
//!   JSONL records with sequence number greater than `N` as soon as any
//!   exist, waiting up to ~2 s before answering with an empty body. Each
//!   record carries its own `seq`, so a scraper resumes from the last one
//!   it saw and watches a run in flight;
//! * `GET /ledger.jsonl` — the full journal so far, as a download;
//! * `GET /status` — live planet progress (requires a [`StatusCell`] via
//!   [`MetricsServer::serve_full`]): the orchestrator's latest
//!   [`crate::status::StatusSnapshot`], with per-worker state and
//!   utilization rows refreshed from the recorder's timeline at request
//!   time.
//!
//! One background thread accepts connections and hands them to a small
//! pool of worker threads over a channel, so a slow scraper cannot block
//! the next one; short read/write timeouts bound each worker's exposure
//! to a broken client. This is telemetry for a handful of scrapers, not a
//! web server. Bind to port 0 to let the OS pick (tests do), then read the
//! actual address back with [`MetricsServer::local_addr`].
//!
//! ```
//! use pmkm_obs::{MetricsServer, Recorder};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(Recorder::new());
//! rec.registry().counter("chunks_total").add(3);
//! let server = MetricsServer::serve("127.0.0.1:0", rec).unwrap();
//! let addr = server.local_addr();
//! // ... point a browser or `curl` at http://{addr}/metrics ...
//! server.shutdown();
//! ```

use crate::ledger::LedgerSink;
use crate::report::RunReport;
use crate::status::{StatusCell, WorkerStatus};
use crate::trace::Recorder;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

const IO_TIMEOUT: Duration = Duration::from_secs(2);
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long `/events` waits for new records before answering empty. Kept
/// under [`IO_TIMEOUT`] so a long-poller cannot outlive a worker's write
/// window, and short enough that shutdown drains promptly.
const EVENTS_POLL_WINDOW: Duration = Duration::from_millis(1900);
/// Sleep between ledger checks inside one `/events` long-poll.
const EVENTS_POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Worker threads answering requests concurrently. Scrapes are cheap, so
/// a handful of workers rides out a slow client without unbounded threads.
const DEFAULT_WORKERS: usize = 4;

/// A running telemetry HTTP server. See the [module docs](self).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    report: Arc<Mutex<Option<RunReport>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, port 0 for OS-assigned) and
    /// starts answering requests on a background accept thread plus a
    /// small worker pool.
    pub fn serve(addr: impl ToSocketAddrs, recorder: Arc<Recorder>) -> std::io::Result<Self> {
        Self::serve_with_options(addr, recorder, DEFAULT_WORKERS, None)
    }

    /// Like [`MetricsServer::serve`] with an explicit worker-pool size
    /// (clamped to at least one worker).
    pub fn serve_with_workers(
        addr: impl ToSocketAddrs,
        recorder: Arc<Recorder>,
        workers: usize,
    ) -> std::io::Result<Self> {
        Self::serve_with_options(addr, recorder, workers, None)
    }

    /// Like [`MetricsServer::serve`] with a run ledger attached, enabling
    /// the `/events` long-poll stream and the `/ledger.jsonl` download.
    /// The ledger should also be registered as a sink on `recorder` so it
    /// actually receives the run's events.
    pub fn serve_with_ledger(
        addr: impl ToSocketAddrs,
        recorder: Arc<Recorder>,
        ledger: Arc<LedgerSink>,
    ) -> std::io::Result<Self> {
        Self::serve_with_options(addr, recorder, DEFAULT_WORKERS, Some(ledger))
    }

    /// Like [`MetricsServer::serve_with_options`] without a `/status`
    /// source. Kept for callers that predate the status endpoint.
    pub fn serve_with_options(
        addr: impl ToSocketAddrs,
        recorder: Arc<Recorder>,
        workers: usize,
        ledger: Option<Arc<LedgerSink>>,
    ) -> std::io::Result<Self> {
        Self::serve_full(addr, recorder, workers, ledger, None)
    }

    /// The fully-explicit constructor behind the `serve*` conveniences.
    /// A [`StatusCell`] enables the `/status` endpoint; the orchestrator
    /// publishes snapshots into it while the exporter reads them.
    pub fn serve_full(
        addr: impl ToSocketAddrs,
        recorder: Arc<Recorder>,
        workers: usize,
        ledger: Option<Arc<LedgerSink>>,
        status: Option<Arc<StatusCell>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let report: Arc<Mutex<Option<RunReport>>> = Arc::new(Mutex::new(None));
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut handles = Vec::with_capacity(workers + 1);
        for i in 0..workers.max(1) {
            let conn_rx = Arc::clone(&conn_rx);
            let recorder = Arc::clone(&recorder);
            let report = Arc::clone(&report);
            let ledger = ledger.clone();
            let status = status.clone();
            let stop = Arc::clone(&stop);
            handles.push(
                std::thread::Builder::new().name(format!("pmkm-metrics-worker-{i}")).spawn(
                    move || loop {
                        // Take the lock only to dequeue, not while serving,
                        // so workers answer distinct clients concurrently.
                        let conn = conn_rx.lock().recv();
                        match conn {
                            // One slow or broken client must not wedge the
                            // exporter; errors just drop the connection.
                            Ok(stream) => {
                                let _ = handle_connection(
                                    stream,
                                    &recorder,
                                    &report,
                                    ledger.as_deref(),
                                    status.as_deref(),
                                    &stop,
                                );
                            }
                            // Accept thread gone: sender dropped, drain done.
                            Err(_) => break,
                        }
                    },
                )?,
            );
        }
        handles.push({
            let stop = Arc::clone(&stop);
            std::thread::Builder::new().name("pmkm-metrics-accept".into()).spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        if conn_tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
                // Dropping `conn_tx` here wakes every idle worker with a
                // recv error so the pool drains and exits.
            })?
        });
        Ok(Self { addr, stop, report, handles })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Publishes the final report; `/report.json` serves it verbatim from
    /// now on instead of building live snapshots.
    pub fn set_report(&self, report: RunReport) {
        *self.report.lock() = Some(report);
    }

    /// Stops the accept loop, drains the worker pool, and joins every
    /// server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection. The accept
        // thread then drops the channel sender, which unblocks the workers.
        let _ = TcpStream::connect(self.addr);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("addr", &self.addr).finish()
    }
}

/// A live `/report.json` body: no cells/operators yet, but current elapsed
/// time, metrics, and profiler phases.
fn live_report(recorder: &Recorder) -> RunReport {
    let mut report = RunReport::new();
    report.elapsed = Duration::from_micros(recorder.elapsed_us());
    report.metrics = recorder.registry().snapshot();
    report.phases = recorder.phase_rows();
    report
}

/// A `/status` body: the orchestrator's latest snapshot with the worker
/// rows and (while running) the elapsed clock refreshed at request time
/// from the recorder's timeline, so the dashboard shows current worker
/// states even between orchestrator publishes.
fn status_body(recorder: &Recorder, status: &StatusCell) -> Result<String, serde_json::Error> {
    let mut snap = (*status.get()).clone();
    // The coreset operator publishes into its own slot; merge the latest
    // anytime clustering into the document at request time.
    snap.coreset = status.coreset().map(|cs| (*cs).clone());
    if let Some(timeline) = recorder.timeline() {
        let now = recorder.elapsed_us();
        if snap.state == "running" {
            snap.elapsed_us = now;
        }
        snap.workers = timeline
            .snapshot(now)
            .workers
            .into_iter()
            .map(|lane| WorkerStatus {
                worker: lane.worker,
                state: lane.current,
                utilization: lane.utilization,
            })
            .collect();
    }
    serde_json::to_string_pretty(&snap)
}

/// Serves one `/events` long-poll: returns the records with `seq > after`
/// as soon as any exist, polling the ledger until the window closes or the
/// server begins shutdown.
fn poll_events(ledger: &LedgerSink, after: u64, stop: &AtomicBool) -> String {
    let deadline = Instant::now() + EVENTS_POLL_WINDOW;
    loop {
        let records = ledger.records_after(after);
        if !records.is_empty() {
            let mut out = String::new();
            for record in &records {
                if let Ok(line) = serde_json::to_string(record) {
                    out.push_str(&line);
                    out.push('\n');
                }
            }
            return out;
        }
        if Instant::now() >= deadline || stop.load(Ordering::SeqCst) {
            return String::new();
        }
        std::thread::sleep(EVENTS_POLL_INTERVAL);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    recorder: &Recorder,
    report: &Mutex<Option<RunReport>>,
    ledger: Option<&LedgerSink>,
    status: Option<&StatusCell>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = read_request_head(&mut stream)?;
    let (status, content_type, body) = match parse_request_line(&request) {
        Some(("GET", "/metrics")) => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            recorder.registry().render_prometheus(),
        ),
        Some(("GET", "/events")) => match ledger {
            Some(ledger) => {
                let after = query_param(&request, "after").unwrap_or(0);
                ("200 OK", "application/x-ndjson", poll_events(ledger, after, stop))
            }
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no ledger attached (run with --ledger)\n".to_string(),
            ),
        },
        Some(("GET", "/ledger.jsonl")) => match ledger {
            Some(ledger) => ("200 OK", "application/x-ndjson", ledger.snapshot_jsonl()),
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no ledger attached (run with --ledger)\n".to_string(),
            ),
        },
        Some(("GET", "/report.json")) => {
            let body = {
                let stored = report.lock();
                match stored.as_ref() {
                    Some(r) => serde_json::to_string_pretty(r),
                    None => serde_json::to_string_pretty(&live_report(recorder)),
                }
            };
            match body {
                Ok(json) => ("200 OK", "application/json", json),
                Err(e) => (
                    "500 Internal Server Error",
                    "text/plain; charset=utf-8",
                    format!("serialization error: {e}\n"),
                ),
            }
        }
        Some(("GET", "/status")) => match status {
            Some(cell) => match status_body(recorder, cell) {
                Ok(json) => ("200 OK", "application/json", json),
                Err(e) => (
                    "500 Internal Server Error",
                    "text/plain; charset=utf-8",
                    format!("serialization error: {e}\n"),
                ),
            },
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no status source attached (run pmkm orchestrate --serve)\n".to_string(),
            ),
        },
        Some(("GET", "/healthz")) => (
            "200 OK",
            "application/json",
            format!("{{\"status\":\"ok\",\"uptime_us\":{}}}", recorder.elapsed_us()),
        ),
        Some(("GET", _)) => {
            ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string())
        }
        Some((_, _)) => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        ),
        None => ("400 Bad Request", "text/plain; charset=utf-8", "bad request\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads until the end of the header block (`\r\n\r\n`), EOF, or the size
/// cap. The body, if any, is ignored — every route is a GET.
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// `"GET /metrics HTTP/1.1\r\n..."` → `("GET", "/metrics")`. Query strings
/// are stripped so `/metrics?x=1` still routes.
fn parse_request_line(request: &str) -> Option<(&str, &str)> {
    let line = request.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

/// Extracts a `u64` query parameter from the raw request head, e.g.
/// `query_param("GET /events?after=12 HTTP/1.1…", "after")` → `Some(12)`.
/// Missing or unparsable values yield `None`.
fn query_param(request: &str, key: &str) -> Option<u64> {
    let line = request.lines().next()?;
    let target = line.split_whitespace().nth(1)?;
    let query = target.split_once('?')?.1;
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(parse_request_line("POST / HTTP/1.1\r\n\r\n"), Some(("POST", "/")));
        assert_eq!(
            parse_request_line("GET /metrics?scrape=1 HTTP/1.1\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(parse_request_line(""), None);
        assert_eq!(parse_request_line("GARBAGE"), None);
    }

    #[test]
    fn query_param_extraction() {
        assert_eq!(query_param("GET /events?after=12 HTTP/1.1\r\n\r\n", "after"), Some(12));
        assert_eq!(query_param("GET /events?x=1&after=7 HTTP/1.1\r\n", "after"), Some(7));
        assert_eq!(query_param("GET /events HTTP/1.1\r\n", "after"), None);
        assert_eq!(query_param("GET /events?after=nope HTTP/1.1\r\n", "after"), None);
        assert_eq!(query_param("", "after"), None);
    }

    #[test]
    fn live_report_carries_metrics_and_phases() {
        use crate::profile::{ManualClock, Profiler};
        let clock = Arc::new(ManualClock::new());
        let prof = Arc::new(Profiler::with_clock(clock.clone()));
        let rec = Recorder::new().with_profiler(prof.clone());
        rec.registry().counter("chunks_total").add(2);
        {
            let _g = prof.enter("scan");
            clock.advance_us(5);
        }
        let report = live_report(&rec);
        assert_eq!(report.metrics.counters[0].name, "chunks_total");
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].path, "scan");
    }
}
