//! Live planet-progress snapshots for the `/status` endpoint.
//!
//! The orchestrator publishes a fresh [`StatusSnapshot`] into a shared
//! [`StatusCell`] at every progress point (cell committed, budget change,
//! run open/close). A publish swaps one `Arc` pointer under a
//! never-held-long mutex and a read clones the `Arc`, so readers never
//! block the orchestrator and the orchestrator never blocks readers —
//! the HTTP exporter serves whatever snapshot is current without touching
//! orchestrator state.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// `/status` document schema version.
///
/// History: v1 = planet progress + worker lanes; v2 adds the optional
/// `coreset` block (anytime mid-stream clustering from the coreset tree).
pub const STATUS_SCHEMA_VERSION: u32 = 2;

/// Mid-stream clustering published by the coreset operator: the latest
/// anytime-query result plus the live shape of the merge-reduce tree.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoresetStatus {
    /// Cell index the query ran on.
    pub cell: u32,
    /// Tree depth (`max level + 1`).
    pub levels: u32,
    /// Live buckets (≤ `floor(log2(chunks)) + 1` without a window).
    pub live_buckets: usize,
    /// Total representative weight across live buckets.
    pub live_weight: f64,
    /// Raw point mass inserted into the tree so far.
    pub ingested_points: f64,
    /// Raw point mass of quarantined chunks that never reached the tree.
    pub lost_points: f64,
    /// Raw point mass evicted by the sliding window.
    pub expired_points: f64,
    /// Pairwise compactions performed so far.
    pub compactions: u64,
    /// Chunk coresets inserted so far.
    pub builds: u64,
    /// Anytime queries answered so far.
    pub queries: u64,
    /// `k` of the anytime clustering below.
    pub k: usize,
    /// Weighted MSE of the anytime clustering over the live union.
    pub mse: f64,
    /// Lloyd iterations the anytime query spent.
    pub iterations: usize,
    /// Input points (union size) the anytime query consumed — bounded by
    /// `live_buckets × coreset_size`.
    pub query_points: usize,
    /// The anytime centroids, one `dim`-length row per cluster.
    pub centroids: Vec<Vec<f64>>,
}

/// One worker's row in the `/status` document.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkerStatus {
    /// Lane label (`"w0"`, …).
    pub worker: String,
    /// Current state wire label (`"partial"`, `"budget-wait"`, …).
    pub state: String,
    /// Busy/total utilization in `[0, 1]`.
    pub utilization: f64,
}

/// Planet progress as served by `/status`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusSnapshot {
    /// Document schema version ([`STATUS_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Run state: `"idle"`, `"running"`, `"done"`, `"interrupted"`, or
    /// `"failed"`.
    pub state: String,
    /// Cells in the plan.
    pub cells_total: usize,
    /// Cells committed (including resumed ones).
    pub cells_done: usize,
    /// Cells currently executing on a worker.
    pub cells_running: usize,
    /// Committed cells whose clustering was entirely lost.
    pub cells_lost: usize,
    /// Cells restored from checkpoints instead of executed.
    pub cells_resumed: usize,
    /// `Σw_expected` over committed cells.
    pub expected_points: f64,
    /// `Σw_received` over committed cells.
    pub received_points: f64,
    /// `Σw_lost` over committed cells.
    pub lost_points: f64,
    /// `received / expected` (1.0 while nothing is expected).
    pub mass_ratio: f64,
    /// Memory budget capacity, bytes.
    pub budget_cap_bytes: u64,
    /// Budget high-water mark so far, bytes.
    pub budget_peak_bytes: u64,
    /// Cells executed off another worker's deque so far.
    pub steals: u64,
    /// Run time at publish, µs on the recorder clock.
    pub elapsed_us: u64,
    /// Estimated time to completion from cell throughput so far, µs
    /// (0 while unknown).
    pub eta_us: u64,
    /// Per-worker state and utilization.
    pub workers: Vec<WorkerStatus>,
    /// Latest mid-stream coreset clustering, when a coreset-mode run has
    /// published one (defaulted so v1 documents still deserialize).
    #[serde(default)]
    pub coreset: Option<CoresetStatus>,
}

impl Default for StatusSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl StatusSnapshot {
    /// An empty `"idle"` snapshot.
    pub fn new() -> Self {
        Self {
            schema: STATUS_SCHEMA_VERSION,
            state: "idle".to_string(),
            cells_total: 0,
            cells_done: 0,
            cells_running: 0,
            cells_lost: 0,
            cells_resumed: 0,
            expected_points: 0.0,
            received_points: 0.0,
            lost_points: 0.0,
            mass_ratio: 1.0,
            budget_cap_bytes: 0,
            budget_peak_bytes: 0,
            steals: 0,
            elapsed_us: 0,
            eta_us: 0,
            workers: Vec::new(),
            coreset: None,
        }
    }
}

/// Shared slot holding the current [`StatusSnapshot`]. See the
/// [module docs](self) for the publish/read model.
pub struct StatusCell {
    snap: Mutex<Arc<StatusSnapshot>>,
    /// Published independently of the planet snapshot: the coreset operator
    /// runs inside the engine (not the orchestrator loop), so its updates
    /// must not race or overwrite progress publishes.
    coreset: Mutex<Option<Arc<CoresetStatus>>>,
}

impl Default for StatusCell {
    fn default() -> Self {
        Self::new()
    }
}

impl StatusCell {
    /// A cell holding an empty `"idle"` snapshot.
    pub fn new() -> Self {
        Self { snap: Mutex::new(Arc::new(StatusSnapshot::new())), coreset: Mutex::new(None) }
    }

    /// Publishes a new snapshot (single pointer swap).
    pub fn publish(&self, snap: StatusSnapshot) {
        *self.snap.lock() = Arc::new(snap);
    }

    /// The current snapshot (single pointer clone).
    pub fn get(&self) -> Arc<StatusSnapshot> {
        Arc::clone(&self.snap.lock())
    }

    /// Publishes a fresh mid-stream coreset clustering (pointer swap).
    pub fn publish_coreset(&self, status: CoresetStatus) {
        *self.coreset.lock() = Some(Arc::new(status));
    }

    /// The latest coreset clustering, if any run published one.
    pub fn coreset(&self) -> Option<Arc<CoresetStatus>> {
        self.coreset.lock().clone()
    }
}

impl std::fmt::Debug for StatusCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.get();
        f.debug_struct("StatusCell")
            .field("state", &snap.state)
            .field("cells_done", &snap.cells_done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_get_swap_snapshots() {
        let cell = StatusCell::new();
        assert_eq!(cell.get().state, "idle");
        let before = cell.get();
        let mut snap = StatusSnapshot::new();
        snap.state = "running".into();
        snap.cells_done = 3;
        cell.publish(snap);
        // Readers holding the old Arc keep a consistent document.
        assert_eq!(before.state, "idle");
        assert_eq!(cell.get().cells_done, 3);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut snap = StatusSnapshot::new();
        snap.state = "running".into();
        snap.workers.push(WorkerStatus {
            worker: "w0".into(),
            state: "partial".into(),
            utilization: 0.75,
        });
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatusSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.schema, STATUS_SCHEMA_VERSION);
    }

    #[test]
    fn v1_snapshot_without_coreset_still_deserializes() {
        let mut json = serde_json::to_string(&StatusSnapshot::new()).unwrap();
        json = json.replace(",\"coreset\":null", "");
        assert!(!json.contains("coreset"));
        let back: StatusSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.coreset, None);
    }

    #[test]
    fn coreset_slot_is_independent_of_snapshot_publishes() {
        let cell = StatusCell::new();
        assert!(cell.coreset().is_none());
        cell.publish_coreset(CoresetStatus { cell: 3, live_buckets: 2, ..Default::default() });
        let mut snap = StatusSnapshot::new();
        snap.state = "running".into();
        cell.publish(snap);
        let cs = cell.coreset().expect("survives snapshot publishes");
        assert_eq!(cs.cell, 3);
        assert_eq!(cs.live_buckets, 2);
    }

    #[test]
    fn concurrent_publish_and_read_never_tear() {
        let cell = Arc::new(StatusCell::new());
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 0..1000usize {
                    let mut snap = StatusSnapshot::new();
                    snap.cells_done = i;
                    snap.cells_total = i;
                    cell.publish(snap);
                }
            })
        };
        for _ in 0..1000 {
            let snap = cell.get();
            assert_eq!(snap.cells_done, snap.cells_total, "snapshot torn");
        }
        writer.join().unwrap();
    }
}
