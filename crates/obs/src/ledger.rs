//! The run ledger: a versioned, append-only JSONL event journal.
//!
//! A [`LedgerSink`] is a [`TraceSink`] that gives every event a monotonic
//! sequence number and appends it as one JSON object per line — to a file,
//! an in-memory tail, or both. Because it attaches through the ordinary
//! `Recorder::with_sink` seam, bare runs (no recorder) pay nothing and
//! ledger-enabled runs stay bit-identical to bare runs: the ledger only
//! *observes* the event stream the instrumented code already emits.
//!
//! On top of the raw journal sit three layers:
//!
//! * [`parse_ledger`] / [`read_ledger`] — line-oriented readers returning
//!   [`LedgerRecord`]s; unknown fields are ignored and missing
//!   `#[serde(default)]` fields are zeroed, so a v1 journal parses under
//!   every later reader.
//! * [`rollup`] — folds a record stream into a [`LedgerRollup`]: per-cell
//!   mass accounting, per-chunk timings, kernel dispatch decisions, the
//!   fault timeline, and the per-phase self/wall-time table. The rollup of
//!   a run's ledger reproduces the run's `RunReport` fault counters and
//!   mass accounting exactly (asserted by the stream crate's tests).
//! * [`diff_profiles`] — compares two [`RunProfile`]s (built from ledgers
//!   *or* `RunReport`s) and attributes the elapsed-time delta to specific
//!   phases with a confidence score, for `pmkm diff` and the
//!   `pipeline_bench` regression gate.
//!
//! ## Causality model
//!
//! Records are causally linked by identifier fields rather than explicit
//! parent pointers: `run.open`/`run.close` bracket the run, `cell.open`
//! (scan) and `cell.close` (merge) bracket one cell keyed by its `cell`
//! field, and `chunk.close` records carry `(cell, chunk)` so a chunk's
//! retries, quarantine, and timing join to its cell. `fault` records carry
//! a `kind` plus the same identifiers, and every record's `ts_us` comes
//! from the one monotonic recorder clock, so sorting by `(ts_us, seq)`
//! yields a consistent global timeline.

use crate::report::{FaultReport, PhaseReport, RunReport};
use crate::trace::{Event, FieldValue, TraceSink};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

/// Journal schema version, stamped into the `ledger.open` header record.
///
/// v1 is the initial schema. Additions must be `#[serde(default)]` fields
/// on [`LedgerRecord`] (or new event names), never removals, so old
/// journals keep parsing under new readers.
pub const LEDGER_VERSION: u32 = 1;

/// Default number of records retained in memory for `/events` serving.
const DEFAULT_RETAINED: usize = 65_536;

/// One journal line: a trace event plus its ledger sequence number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerRecord {
    /// Monotonic per-ledger sequence number (the `/events?after=` cursor).
    /// Absent in pre-release journals; defaults to 0.
    #[serde(default)]
    pub seq: u64,
    /// Microseconds since the recorder epoch.
    pub ts_us: u64,
    /// Event name (`"chunk.close"`, `"fault"`, …).
    pub name: String,
    /// Named payload fields in emission order.
    #[serde(default)]
    pub fields: Vec<(String, FieldValue)>,
}

impl LedgerRecord {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// A field as `u64` (accepts `U64` and non-negative `I64`).
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        match self.field(name)? {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// A field as `f64` (accepts `F64`, `U64`, and `I64`).
    pub fn f64_field(&self, name: &str) -> Option<f64> {
        match self.field(name)? {
            FieldValue::F64(v) => Some(*v),
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// A field as `&str`.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        match self.field(name)? {
            FieldValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// A field as `bool`.
    pub fn bool_field(&self, name: &str) -> Option<bool> {
        match self.field(name)? {
            FieldValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct LedgerState {
    writer: Option<BufWriter<std::fs::File>>,
    tail: VecDeque<LedgerRecord>,
    next_seq: u64,
}

/// Append-only JSONL journal sink. See the [module docs](self).
///
/// The sink keeps an in-memory tail of the newest [`DEFAULT_RETAINED`]
/// records (for `/events` long-polling) and, when file-backed, streams
/// every record to disk as it is recorded.
pub struct LedgerSink {
    state: Mutex<LedgerState>,
    path: Option<PathBuf>,
    retained: usize,
}

impl LedgerSink {
    /// Creates (truncating) a file-backed ledger at `path` and writes the
    /// versioned `ledger.open` header record.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path.as_ref())?;
        let sink = Self {
            state: Mutex::new(LedgerState {
                writer: Some(BufWriter::new(file)),
                tail: VecDeque::new(),
                next_seq: 0,
            }),
            path: Some(path.as_ref().to_path_buf()),
            retained: DEFAULT_RETAINED,
        };
        sink.write_header();
        Ok(sink)
    }

    /// A memory-only ledger (serves `/events` without touching disk).
    pub fn in_memory() -> Self {
        let sink = Self {
            state: Mutex::new(LedgerState { writer: None, tail: VecDeque::new(), next_seq: 0 }),
            path: None,
            retained: DEFAULT_RETAINED,
        };
        sink.write_header();
        sink
    }

    fn write_header(&self) {
        self.push(Event {
            ts_us: 0,
            name: "ledger.open".to_string(),
            fields: vec![("version".to_string(), FieldValue::U64(LEDGER_VERSION as u64))],
        });
    }

    fn push(&self, event: Event) {
        let mut state = self.state.lock();
        let record = LedgerRecord {
            seq: state.next_seq,
            ts_us: event.ts_us,
            name: event.name,
            fields: event.fields,
        };
        state.next_seq += 1;
        if let Some(writer) = state.writer.as_mut() {
            if let Ok(line) = serde_json::to_string(&record) {
                let _ = writer.write_all(line.as_bytes());
                let _ = writer.write_all(b"\n");
            }
        }
        if state.tail.len() == self.retained {
            state.tail.pop_front();
        }
        state.tail.push_back(record);
    }

    /// The backing file path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The sequence number the next record will get.
    pub fn next_seq(&self) -> u64 {
        self.state.lock().next_seq
    }

    /// Retained records with `seq > after`, oldest first — the `/events`
    /// long-poll read. Records older than the retained tail are gone; use
    /// the journal file for the full history.
    pub fn records_after(&self, after: u64) -> Vec<LedgerRecord> {
        self.state.lock().tail.iter().filter(|r| r.seq > after).cloned().collect()
    }

    /// The full journal as JSONL text: the file contents when file-backed
    /// (flushed first), else the serialized in-memory tail.
    pub fn snapshot_jsonl(&self) -> String {
        self.flush();
        if let Some(path) = &self.path {
            if let Ok(text) = std::fs::read_to_string(path) {
                return text;
            }
        }
        let state = self.state.lock();
        let mut out = String::new();
        for record in &state.tail {
            if let Ok(line) = serde_json::to_string(record) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

impl TraceSink for LedgerSink {
    fn record(&self, event: &Event) {
        self.push(event.clone());
    }

    fn flush(&self) {
        if let Some(writer) = self.state.lock().writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

impl Drop for LedgerSink {
    fn drop(&mut self) {
        if let Some(writer) = self.state.lock().writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

impl std::fmt::Debug for LedgerSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LedgerSink")
            .field("path", &self.path)
            .field("next_seq", &self.state.lock().next_seq)
            .finish()
    }
}

/// Parses JSONL text into records. Blank lines are skipped; the first
/// malformed line aborts with a message naming its line number.
pub fn parse_ledger(text: &str) -> Result<Vec<LedgerRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<LedgerRecord>(line) {
            Ok(record) => records.push(record),
            Err(e) => return Err(format!("ledger line {}: {e}", i + 1)),
        }
    }
    Ok(records)
}

/// Reads and parses a ledger file; parse failures surface as
/// `io::ErrorKind::InvalidData`.
pub fn read_ledger(path: impl AsRef<Path>) -> std::io::Result<Vec<LedgerRecord>> {
    let text = std::fs::read_to_string(path)?;
    parse_ledger(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Emits one `run.phase` record per profiler phase row into `rec`'s sinks,
/// so a ledger carries the per-phase self/wall-time table without needing
/// the `RunReport`. Call once, after the profiled work has finished.
pub fn emit_phase_events(rec: &crate::trace::Recorder) {
    for row in rec.phase_rows() {
        rec.event(
            "run.phase",
            &[
                ("path", row.path.as_str().into()),
                ("calls", row.calls.into()),
                ("total_us", row.total_us.into()),
                ("self_us", row.self_us.into()),
                ("wall_us", row.wall_us.into()),
            ],
        );
    }
}

// ---------------------------------------------------------------------------
// Rollup
// ---------------------------------------------------------------------------

/// Mass accounting and outcome of one cell, folded from `cell.close`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CellRollup {
    /// Cell label.
    pub cell: String,
    /// Chunks merged into the cell.
    pub chunks: u64,
    /// Mass the scan promised (`Σw_expected`).
    pub expected_points: f64,
    /// Mass lost to quarantine or failed reads.
    pub lost_points: f64,
    /// Chunks quarantined instead of merged.
    pub lost_chunks: u64,
    /// True when the cell merged with missing mass.
    pub degraded: bool,
    /// Weighted MSE of the merged clustering.
    pub mse: f64,
    /// Error-per-mass of the merged clustering.
    pub epm: f64,
}

/// One chunk's timing, folded from `chunk.close`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChunkRollup {
    /// Owning cell label.
    pub cell: String,
    /// Chunk id within the cell.
    pub chunk: u64,
    /// Points clustered.
    pub points: u64,
    /// Wall time of the chunk's clustering (µs).
    pub duration_us: u64,
    /// Clustering attempts (1 unless panics forced retries).
    pub attempts: u64,
}

/// One kernel's dispatch tally, folded from `lloyd.kernel`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelRollup {
    /// Kernel label (`"fused"`, `"scalar"`, …).
    pub kind: String,
    /// Lloyd runs dispatched to this kernel.
    pub runs: u64,
    /// Point-assignments executed by this kernel.
    pub points: u64,
}

/// One checkpoint write, folded from `cell.checkpoint` records of an
/// orchestrated run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CheckpointRollup {
    /// When the checkpoint was written (µs since recorder epoch).
    pub ts_us: u64,
    /// Cell label (grid index, or the bucket file name for lost cells).
    pub cell: String,
    /// Write sequence within the run (1-based).
    pub seq: u64,
    /// Checkpoint file size, bytes.
    pub bytes: u64,
}

/// One fault on the run's timeline, folded from `fault` records.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultEntry {
    /// When the fault was recorded (µs since recorder epoch).
    pub ts_us: u64,
    /// Fault kind (`"scan_retry"`, `"chunk_quarantined"`, …).
    pub kind: String,
    /// Compact rendering of the fault's context fields.
    pub detail: String,
}

/// Net live state of one coreset-tree level, folded from
/// `coreset.build`/`coreset.compact`/`coreset.evict` records.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoresetLevelRollup {
    /// Tree level (0 = fresh chunk coresets).
    pub level: u32,
    /// Net live buckets at this level (builds/compaction outputs minus
    /// compaction inputs and evictions). Signed so a malformed journal
    /// shows up as a negative count instead of a silent wrap.
    pub buckets: i64,
    /// Net live representative weight at this level.
    pub weight: f64,
}

/// Coreset-engine state folded from `coreset.*` records: per-level net
/// bucket counts and weights, which for a well-formed journal of a
/// non-decaying run reproduce the live tree exactly.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoresetRollup {
    /// `coreset.build` records folded.
    pub builds: u64,
    /// `coreset.compact` records folded.
    pub compactions: u64,
    /// `coreset.evict` records folded.
    pub evictions: u64,
    /// `coreset.query` records folded.
    pub queries: u64,
    /// Raw point mass evicted by sliding windows.
    pub expired_points: f64,
    /// Net per-level live state, sorted by level.
    pub levels: Vec<CoresetLevelRollup>,
}

impl CoresetRollup {
    /// True when no coreset records were seen.
    pub fn is_empty(&self) -> bool {
        self.builds == 0 && self.compactions == 0 && self.evictions == 0 && self.queries == 0
    }

    /// Net live buckets across levels.
    pub fn live_buckets(&self) -> i64 {
        self.levels.iter().map(|l| l.buckets).sum()
    }

    /// Net live representative weight across levels.
    pub fn live_weight(&self) -> f64 {
        self.levels.iter().map(|l| l.weight).sum()
    }
}

/// Block-scan I/O rebuilt from `scan.block` records (GB02 block
/// containers only; empty for GB01-only runs and pre-container journals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScanRollup {
    /// Blocks fetched and decoded.
    pub blocks: u64,
    /// Bytes fetched from the storage backend (compressed size).
    pub stored_bytes: u64,
    /// Bytes after decode (raw `f64` payload).
    pub payload_bytes: u64,
    /// Blocks decoded straight from a borrowed mmap range with no
    /// intermediate payload copy.
    pub zero_copy_blocks: u64,
    /// Blocks already resident when the consumer asked for them (the
    /// double-buffered prefetcher won the race).
    pub prefetch_hits: u64,
}

impl ScanRollup {
    /// True when no `scan.block` records were seen.
    pub fn is_empty(&self) -> bool {
        self.blocks == 0
    }

    /// Payload/stored compression ratio (1.0 when nothing was stored).
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.payload_bytes as f64 / self.stored_bytes as f64
        }
    }

    /// Fraction of block fetches served out of the prefetch buffer.
    pub fn prefetch_hit_rate(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.blocks as f64
        }
    }
}

/// Aggregated view of one ledger. Produced by [`rollup`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LedgerRollup {
    /// Journal schema version from the `ledger.open` header (0 if absent).
    pub version: u32,
    /// Total records folded.
    pub events: u64,
    /// Run wall time: the `run.close` elapsed when present, else the
    /// newest record timestamp.
    pub elapsed_us: u64,
    /// Per-phase table from `run.phase` records, sorted by path.
    pub phases: Vec<PhaseReport>,
    /// Fault counters rebuilt from `fault` records.
    pub faults: FaultReport,
    /// Every fault in timeline order.
    pub fault_timeline: Vec<FaultEntry>,
    /// Per-cell mass accounting, sorted by cell label.
    pub cells: Vec<CellRollup>,
    /// Per-chunk timings in record order.
    pub chunks: Vec<ChunkRollup>,
    /// Kernel dispatch tallies, sorted by kind.
    pub kernels: Vec<KernelRollup>,
    /// Checkpoint writes in timeline order (orchestrated runs only;
    /// absent in pre-orchestrator journals).
    #[serde(default)]
    pub checkpoints: Vec<CheckpointRollup>,
    /// Cells restored from checkpoints, from the `run.resume` record (0
    /// when the run was not a resume).
    #[serde(default)]
    pub resumed_cells: u64,
    /// Checkpoint files the resume rejected as corrupt or stale.
    #[serde(default)]
    pub invalid_checkpoints: u64,
    /// `worker.state` transitions recorded (0 when no timeline was
    /// attached; absent in pre-timeline journals).
    #[serde(default)]
    pub worker_transitions: u64,
    /// Stall verdicts (`watchdog.stall`) emitted by the watchdog.
    #[serde(default)]
    pub watchdog_stalls: u64,
    /// Straggler verdicts (`watchdog.straggler`) emitted by the watchdog.
    #[serde(default)]
    pub watchdog_stragglers: u64,
    /// Coreset-tree state rebuilt from `coreset.*` records (empty for
    /// classic merge-path runs and pre-coreset journals).
    #[serde(default)]
    pub coreset: CoresetRollup,
    /// Block-scan I/O rebuilt from `scan.block` records (empty for
    /// GB01-only runs and pre-container journals).
    #[serde(default)]
    pub scan: ScanRollup,
}

impl LedgerRollup {
    /// `Σw_expected` across cells.
    pub fn expected_weight(&self) -> f64 {
        self.cells.iter().map(|c| c.expected_points).sum()
    }

    /// `Σw_lost` across cells.
    pub fn lost_weight(&self) -> f64 {
        self.cells.iter().map(|c| c.lost_points).sum()
    }

    /// The mass-conservation ratio `Σw_received / Σw_expected` (1.0 when
    /// nothing was expected).
    pub fn mass_ratio(&self) -> f64 {
        let expected = self.expected_weight();
        if expected <= 0.0 {
            1.0
        } else {
            (expected - self.lost_weight()) / expected
        }
    }

    /// The `n` slowest chunks, slowest first.
    pub fn slowest_chunks(&self, n: usize) -> Vec<&ChunkRollup> {
        let mut sorted: Vec<&ChunkRollup> = self.chunks.iter().collect();
        sorted.sort_by(|a, b| {
            b.duration_us
                .cmp(&a.duration_us)
                .then_with(|| (a.cell.as_str(), a.chunk).cmp(&(b.cell.as_str(), b.chunk)))
        });
        sorted.truncate(n);
        sorted
    }
}

/// Applies one `fault` record's `kind` to the counter block. Returns false
/// for kinds this reader does not know (newer writers), which are still
/// kept on the timeline.
fn apply_fault_kind(faults: &mut FaultReport, kind: &str) -> bool {
    match kind {
        "scan_retry" => faults.scan_retries += 1,
        "scan_failure" => faults.scan_failures += 1,
        "chunk_poisoned" => faults.chunks_poisoned += 1,
        "chunk_quarantined" => faults.chunks_quarantined += 1,
        "worker_panic" => faults.worker_panics += 1,
        "chunk_retry" => faults.chunk_retries += 1,
        "queue_stall" => faults.queue_stalls += 1,
        "cell_degraded" => faults.cells_degraded += 1,
        _ => return false,
    }
    true
}

/// Folds a record stream into a [`LedgerRollup`].
pub fn rollup(records: &[LedgerRecord]) -> LedgerRollup {
    let mut out = LedgerRollup { events: records.len() as u64, ..LedgerRollup::default() };
    let mut phases: BTreeMap<String, PhaseReport> = BTreeMap::new();
    let mut cells: BTreeMap<String, CellRollup> = BTreeMap::new();
    let mut kernels: BTreeMap<String, KernelRollup> = BTreeMap::new();
    let mut coreset_levels: BTreeMap<u32, (i64, f64)> = BTreeMap::new();
    let mut close_elapsed: Option<u64> = None;
    for r in records {
        out.elapsed_us = out.elapsed_us.max(r.ts_us);
        match r.name.as_str() {
            "ledger.open" => {
                out.version = r.u64_field("version").unwrap_or(0) as u32;
            }
            "run.close" => {
                close_elapsed = r.u64_field("elapsed_us").or(close_elapsed);
            }
            "run.phase" => {
                if let Some(path) = r.str_field("path") {
                    phases.insert(
                        path.to_string(),
                        PhaseReport {
                            path: path.to_string(),
                            calls: r.u64_field("calls").unwrap_or(0),
                            total_us: r.u64_field("total_us").unwrap_or(0),
                            self_us: r.u64_field("self_us").unwrap_or(0),
                            wall_us: r.u64_field("wall_us").unwrap_or(0),
                        },
                    );
                }
            }
            "fault" => {
                let kind = r.str_field("kind").unwrap_or("unknown").to_string();
                apply_fault_kind(&mut out.faults, &kind);
                let detail = r
                    .fields
                    .iter()
                    .filter(|(k, _)| k != "kind")
                    .map(|(k, v)| format!("{k}={}", render_field(v)))
                    .collect::<Vec<_>>()
                    .join(" ");
                out.fault_timeline.push(FaultEntry { ts_us: r.ts_us, kind, detail });
            }
            "cell.close" => {
                let cell = r.str_field("cell").map(str::to_string).unwrap_or_else(|| {
                    r.u64_field("cell").map(|c| c.to_string()).unwrap_or_default()
                });
                cells.insert(
                    cell.clone(),
                    CellRollup {
                        cell,
                        chunks: r.u64_field("chunks").unwrap_or(0),
                        expected_points: r.f64_field("expected_points").unwrap_or(0.0),
                        lost_points: r.f64_field("lost_points").unwrap_or(0.0),
                        lost_chunks: r.u64_field("lost_chunks").unwrap_or(0),
                        degraded: r.bool_field("degraded").unwrap_or(false),
                        mse: r.f64_field("mse").unwrap_or(0.0),
                        epm: r.f64_field("epm").unwrap_or(0.0),
                    },
                );
            }
            "chunk.close" => {
                out.chunks.push(ChunkRollup {
                    cell: r.str_field("cell").map(str::to_string).unwrap_or_else(|| {
                        r.u64_field("cell").map(|c| c.to_string()).unwrap_or_default()
                    }),
                    chunk: r.u64_field("chunk").unwrap_or(0),
                    points: r.u64_field("points").unwrap_or(0),
                    duration_us: r.u64_field("duration_us").unwrap_or(0),
                    attempts: r.u64_field("attempts").unwrap_or(1),
                });
            }
            "cell.checkpoint" => {
                out.checkpoints.push(CheckpointRollup {
                    ts_us: r.ts_us,
                    cell: r.str_field("cell").map(str::to_string).unwrap_or_else(|| {
                        r.u64_field("cell").map(|c| c.to_string()).unwrap_or_default()
                    }),
                    seq: r.u64_field("seq").unwrap_or(0),
                    bytes: r.u64_field("bytes").unwrap_or(0),
                });
            }
            "run.resume" => {
                out.resumed_cells = r.u64_field("cells_resumed").unwrap_or(0);
                out.invalid_checkpoints = r.u64_field("checkpoints_invalid").unwrap_or(0);
            }
            "worker.state" => out.worker_transitions += 1,
            "watchdog.stall" => out.watchdog_stalls += 1,
            "watchdog.straggler" => out.watchdog_stragglers += 1,
            "lloyd.kernel" => {
                let kind = r.str_field("kind").unwrap_or("unknown").to_string();
                let entry = kernels.entry(kind.clone()).or_insert_with(|| KernelRollup {
                    kind,
                    runs: 0,
                    points: 0,
                });
                entry.runs += 1;
                entry.points += r.u64_field("points").unwrap_or(0);
            }
            "coreset.build" => {
                out.coreset.builds += 1;
                let slot = coreset_levels.entry(0).or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 += r.f64_field("weight").unwrap_or(0.0);
            }
            "coreset.compact" => {
                out.coreset.compactions += 1;
                let level = r.u64_field("level").unwrap_or(0) as u32;
                let out_slot = coreset_levels.entry(level).or_insert((0, 0.0));
                out_slot.0 += 1;
                out_slot.1 += r.f64_field("weight").unwrap_or(0.0);
                // A compaction consumes the two newest buckets one level
                // below and emits one bucket at `level`.
                let in_level = level.saturating_sub(1);
                let in_slot = coreset_levels.entry(in_level).or_insert((0, 0.0));
                in_slot.0 -= 2;
                in_slot.1 -= r.f64_field("consumed_weight").unwrap_or(0.0);
            }
            "coreset.evict" => {
                out.coreset.evictions += 1;
                let level = r.u64_field("level").unwrap_or(0) as u32;
                let slot = coreset_levels.entry(level).or_insert((0, 0.0));
                slot.0 -= 1;
                slot.1 -= r.f64_field("weight").unwrap_or(0.0);
                out.coreset.expired_points += r.f64_field("points").unwrap_or(0.0);
            }
            "coreset.query" => out.coreset.queries += 1,
            "scan.block" => {
                out.scan.blocks += 1;
                out.scan.stored_bytes += r.u64_field("stored_bytes").unwrap_or(0);
                out.scan.payload_bytes += r.u64_field("payload_bytes").unwrap_or(0);
                if r.bool_field("zero_copy").unwrap_or(false) {
                    out.scan.zero_copy_blocks += 1;
                }
                if r.bool_field("prefetch_hit").unwrap_or(false) {
                    out.scan.prefetch_hits += 1;
                }
            }
            _ => {}
        }
    }
    out.coreset.levels = coreset_levels
        .into_iter()
        .map(|(level, (buckets, weight))| CoresetLevelRollup { level, buckets, weight })
        .collect();
    if let Some(us) = close_elapsed {
        out.elapsed_us = us;
    }
    out.phases = phases.into_values().collect();
    out.cells = cells.into_values().collect();
    out.kernels = kernels.into_values().collect();
    out
}

fn render_field(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(x) => x.to_string(),
        FieldValue::I64(x) => x.to_string(),
        FieldValue::F64(x) => format!("{x}"),
        FieldValue::Bool(x) => x.to_string(),
        FieldValue::Str(x) => x.clone(),
    }
}

// ---------------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------------

/// The comparable surface of one run — buildable from a ledger rollup or a
/// `RunReport`, so `pmkm diff` accepts either format on either side.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunProfile {
    /// Display label (usually the source path).
    pub label: String,
    /// Run wall time (µs).
    pub elapsed_us: u64,
    /// Per-phase table.
    pub phases: Vec<PhaseReport>,
    /// Kernel dispatch tallies (empty when the source does not carry them).
    pub kernels: Vec<KernelRollup>,
    /// Fault counters.
    pub faults: FaultReport,
    /// `Σw_expected` across cells.
    pub expected_weight: f64,
    /// `Σw_lost` across cells.
    pub lost_weight: f64,
}

impl RunProfile {
    /// Builds a profile from a ledger rollup.
    pub fn from_rollup(label: impl Into<String>, r: &LedgerRollup) -> Self {
        Self {
            label: label.into(),
            elapsed_us: r.elapsed_us,
            phases: r.phases.clone(),
            kernels: r.kernels.clone(),
            faults: r.faults,
            expected_weight: r.expected_weight(),
            lost_weight: r.lost_weight(),
        }
    }

    /// Builds a profile from a `RunReport`.
    pub fn from_run_report(label: impl Into<String>, r: &RunReport) -> Self {
        Self {
            label: label.into(),
            elapsed_us: r.elapsed.as_micros() as u64,
            phases: r.phases.clone(),
            kernels: Vec::new(),
            faults: r.faults,
            expected_weight: r.cells.iter().map(|c| c.expected_points).sum(),
            lost_weight: r.cells.iter().map(|c| c.lost_points).sum(),
        }
    }
}

/// One phase's contribution to an elapsed-time delta.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseDelta {
    /// Phase path.
    pub path: String,
    /// Self time in run A (µs).
    pub self_us_a: u64,
    /// Self time in run B (µs).
    pub self_us_b: u64,
    /// `self_us_b − self_us_a`.
    pub delta_us: i64,
    /// `|delta| / Σ|delta|` over all phases — how much of the total change
    /// this phase accounts for, in `[0, 1]`.
    pub share: f64,
}

/// Per-phase attribution of the self-time difference between two phase
/// tables, sorted by `|delta|` descending. Phases present on only one side
/// diff against zero.
pub fn attribute_phases(a: &[PhaseReport], b: &[PhaseReport]) -> Vec<PhaseDelta> {
    let mut paths: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for p in a {
        paths.entry(p.path.as_str()).or_default().0 = p.self_us;
    }
    for p in b {
        paths.entry(p.path.as_str()).or_default().1 = p.self_us;
    }
    let total: u64 = paths.values().map(|&(x, y)| x.abs_diff(y)).sum();
    let mut deltas: Vec<PhaseDelta> = paths
        .into_iter()
        .map(|(path, (x, y))| PhaseDelta {
            path: path.to_string(),
            self_us_a: x,
            self_us_b: y,
            delta_us: y as i64 - x as i64,
            share: if total == 0 { 0.0 } else { x.abs_diff(y) as f64 / total as f64 },
        })
        .collect();
    deltas.sort_by(|p, q| {
        q.delta_us.unsigned_abs().cmp(&p.delta_us.unsigned_abs()).then_with(|| p.path.cmp(&q.path))
    });
    deltas
}

/// One fault counter that changed between two runs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultDelta {
    /// Fault kind.
    pub kind: String,
    /// Count in run A.
    pub a: u64,
    /// Count in run B.
    pub b: u64,
}

fn fault_pairs(f: &FaultReport) -> [(&'static str, u64); 8] {
    [
        ("scan_retries", f.scan_retries),
        ("scan_failures", f.scan_failures),
        ("chunks_poisoned", f.chunks_poisoned),
        ("chunks_quarantined", f.chunks_quarantined),
        ("worker_panics", f.worker_panics),
        ("chunk_retries", f.chunk_retries),
        ("queue_stalls", f.queue_stalls),
        ("cells_degraded", f.cells_degraded),
    ]
}

/// The result of diffing two [`RunProfile`]s.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfileDiff {
    /// Label of run A (the baseline).
    pub label_a: String,
    /// Label of run B (the candidate).
    pub label_b: String,
    /// Run A wall time (µs).
    pub elapsed_us_a: u64,
    /// Run B wall time (µs).
    pub elapsed_us_b: u64,
    /// `elapsed_b / elapsed_a` (1.0 when A is empty).
    pub slowdown: f64,
    /// True when B exceeded A's elapsed time by more than the threshold.
    pub regression: bool,
    /// Per-phase attribution, largest |delta| first.
    pub phases: Vec<PhaseDelta>,
    /// Confidence of the top attribution: the leading phase's share of the
    /// total self-time change (0 when the phase tables are identical).
    pub confidence: f64,
    /// Fault counters that changed.
    pub fault_deltas: Vec<FaultDelta>,
    /// Kernel dispatch changes, rendered (`"assign: fused → scalar"` style).
    pub kernel_changes: Vec<String>,
    /// Mass-conservation ratio of run A.
    pub mass_ratio_a: f64,
    /// Mass-conservation ratio of run B.
    pub mass_ratio_b: f64,
}

impl ProfileDiff {
    /// The phase the delta is attributed to, when one dominates.
    pub fn attributed_phase(&self) -> Option<&PhaseDelta> {
        self.phases.first().filter(|p| p.share > 0.0)
    }

    /// Human-readable rendering for terminals and CI logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "A: {} ({} µs)\nB: {} ({} µs)\nelapsed ratio B/A: {:.3}{}\n",
            self.label_a,
            self.elapsed_us_a,
            self.label_b,
            self.elapsed_us_b,
            self.slowdown,
            if self.regression { "  REGRESSION" } else { "" },
        ));
        if let Some(top) = self.attributed_phase() {
            out.push_str(&format!(
                "attribution: phase '{}' ({:+} µs self, confidence {:.2})\n",
                top.path, top.delta_us, self.confidence
            ));
        }
        if !self.phases.is_empty() {
            out.push_str(
                "phase                      self A µs    self B µs      delta µs  share\n",
            );
            for p in &self.phases {
                out.push_str(&format!(
                    "{:<24} {:>12} {:>12} {:>13} {:>6.2}\n",
                    p.path, p.self_us_a, p.self_us_b, p.delta_us, p.share
                ));
            }
        }
        for k in &self.kernel_changes {
            out.push_str(&format!("kernel: {k}\n"));
        }
        for f in &self.fault_deltas {
            out.push_str(&format!("fault {}: {} → {}\n", f.kind, f.a, f.b));
        }
        if (self.mass_ratio_a - self.mass_ratio_b).abs() > f64::EPSILON {
            out.push_str(&format!(
                "mass ratio: {:.6} → {:.6}\n",
                self.mass_ratio_a, self.mass_ratio_b
            ));
        }
        out
    }
}

fn mass_ratio(expected: f64, lost: f64) -> f64 {
    if expected <= 0.0 {
        1.0
    } else {
        (expected - lost) / expected
    }
}

/// Diffs two profiles: B is a regression against A when B's elapsed time
/// exceeds A's by more than `threshold` (0.10 = 10% slower).
pub fn diff_profiles(a: &RunProfile, b: &RunProfile, threshold: f64) -> ProfileDiff {
    let slowdown = if a.elapsed_us == 0 { 1.0 } else { b.elapsed_us as f64 / a.elapsed_us as f64 };
    let phases = attribute_phases(&a.phases, &b.phases);
    let confidence = phases.first().map(|p| p.share).unwrap_or(0.0);
    let fault_deltas = fault_pairs(&a.faults)
        .iter()
        .zip(fault_pairs(&b.faults).iter())
        .filter(|((_, x), (_, y))| x != y)
        .map(|(&(kind, x), &(_, y))| FaultDelta { kind: kind.to_string(), a: x, b: y })
        .collect();
    let mut kernel_changes = Vec::new();
    let mut kinds: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for k in &a.kernels {
        kinds.entry(k.kind.as_str()).or_default().0 = k.runs;
    }
    for k in &b.kernels {
        kinds.entry(k.kind.as_str()).or_default().1 = k.runs;
    }
    for (kind, (x, y)) in kinds {
        if x != y {
            kernel_changes.push(format!("{kind}: {x} → {y} dispatches"));
        }
    }
    ProfileDiff {
        label_a: a.label.clone(),
        label_b: b.label.clone(),
        elapsed_us_a: a.elapsed_us,
        elapsed_us_b: b.elapsed_us,
        slowdown,
        regression: a.elapsed_us > 0 && slowdown > 1.0 + threshold,
        phases,
        confidence,
        fault_deltas,
        kernel_changes,
        mass_ratio_a: mass_ratio(a.expected_weight, a.lost_weight),
        mass_ratio_b: mass_ratio(b.expected_weight, b.lost_weight),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Recorder;
    use std::sync::Arc;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pmkm_ledger_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn ledger_round_trips_write_parse_rollup() {
        let path = temp_path("roundtrip");
        {
            let sink = Arc::new(LedgerSink::create(&path).unwrap());
            let rec = Recorder::new().with_sink(sink.clone());
            rec.event("cell.open", &[("cell", "0".into()), ("expected_points", 100.0.into())]);
            rec.event(
                "chunk.close",
                &[
                    ("cell", "0".into()),
                    ("chunk", 0u64.into()),
                    ("points", 50u64.into()),
                    ("duration_us", 300u64.into()),
                    ("attempts", 1u64.into()),
                ],
            );
            rec.event("fault", &[("kind", "chunk_retry".into()), ("cell", "0".into())]);
            rec.event(
                "cell.close",
                &[
                    ("cell", "0".into()),
                    ("chunks", 2u64.into()),
                    ("expected_points", 100.0.into()),
                    ("lost_points", 0.0.into()),
                    ("lost_chunks", 0u64.into()),
                    ("degraded", false.into()),
                    ("mse", 0.5.into()),
                    ("epm", 0.1.into()),
                ],
            );
            rec.flush();
            // Rollup of the in-memory tail matches rollup of the file.
            let from_tail = rollup(&sink.records_after(0));
            let from_file = rollup(&read_ledger(&path).unwrap());
            // Header (seq 0) is excluded from the tail read; fold it in.
            assert_eq!(from_file.cells, from_tail.cells);
            assert_eq!(from_file.chunks, from_tail.chunks);
            assert_eq!(from_file.faults, from_tail.faults);
        }
        let records = read_ledger(&path).unwrap();
        assert_eq!(records[0].name, "ledger.open");
        assert_eq!(records[0].u64_field("version"), Some(LEDGER_VERSION as u64));
        // Sequence numbers are dense and monotonic.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        let up = rollup(&records);
        assert_eq!(up.version, LEDGER_VERSION);
        assert_eq!(up.cells.len(), 1);
        assert_eq!(up.cells[0].expected_points, 100.0);
        assert_eq!(up.faults.chunk_retries, 1);
        assert_eq!(up.fault_timeline.len(), 1);
        assert_eq!(up.chunks.len(), 1);
        assert_eq!(up.chunks[0].duration_us, 300);
        assert_eq!(up.mass_ratio(), 1.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_block_records_roll_up_io_and_prefetch_tallies() {
        let sink = Arc::new(LedgerSink::in_memory());
        let rec = Recorder::new().with_sink(sink.clone());
        // Three blocks: one compressed prefetch hit, one zero-copy raw
        // block, one plain miss.
        for (stored, payload, zero_copy, hit) in
            [(400u64, 800u64, false, true), (800, 800, true, false), (800, 800, false, false)]
        {
            rec.event(
                "scan.block",
                &[
                    ("cell", "9".into()),
                    ("block", 0u64.into()),
                    ("stored_bytes", stored.into()),
                    ("payload_bytes", payload.into()),
                    ("zero_copy", zero_copy.into()),
                    ("prefetch_hit", hit.into()),
                ],
            );
        }
        let roll = rollup(&sink.records_after(0));
        assert!(!roll.scan.is_empty());
        assert_eq!(roll.scan.blocks, 3);
        assert_eq!(roll.scan.stored_bytes, 2000);
        assert_eq!(roll.scan.payload_bytes, 2400);
        assert_eq!(roll.scan.zero_copy_blocks, 1);
        assert_eq!(roll.scan.prefetch_hits, 1);
        assert!((roll.scan.compression_ratio() - 1.2).abs() < 1e-12);
        assert!((roll.scan.prefetch_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        // A GB01-only journal stays empty and serde-defaults on old files.
        assert!(rollup(&[]).scan.is_empty());
        assert_eq!(rollup(&[]).scan.compression_ratio(), 1.0);
    }

    #[test]
    fn v1_ledger_without_seq_parses_under_v2_reader() {
        // A pre-`seq` journal line (the v1-shape document) must parse under
        // the current reader with the missing field defaulted — the
        // `#[serde(default)]` forward-compat contract.
        let sink = LedgerSink::in_memory();
        let rec = Recorder::new().with_sink(Arc::new(sink));
        rec.event("run.close", &[("elapsed_us", 42u64.into())]);
        // Simulate the older writer by stripping the `seq` key.
        let record = LedgerRecord {
            seq: 7,
            ts_us: 5,
            name: "run.close".into(),
            fields: vec![("elapsed_us".into(), FieldValue::U64(42))],
        };
        let json = serde_json::to_string(&record).unwrap();
        let v1 = json.replace("\"seq\":7,", "");
        assert!(!v1.contains("seq"), "surgery failed: {v1}");
        let back: LedgerRecord = serde_json::from_str(&v1).unwrap();
        assert_eq!(back.seq, 0);
        assert_eq!(back.ts_us, 5);
        assert_eq!(back.u64_field("elapsed_us"), Some(42));
        // And a whole stripped journal still parses + rolls up.
        let stripped = parse_ledger(&v1).unwrap();
        assert_eq!(rollup(&stripped).elapsed_us, 42);
    }

    #[test]
    fn malformed_ledger_lines_name_the_line() {
        let err = parse_ledger("{\"ts_us\":1,\"name\":\"a\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn records_after_is_a_cursor() {
        let sink = Arc::new(LedgerSink::in_memory());
        let rec = Recorder::new().with_sink(sink.clone());
        for i in 0..5u64 {
            rec.event("e", &[("i", i.into())]);
        }
        // Header is seq 0; events are 1..=5.
        assert_eq!(sink.next_seq(), 6);
        let all = sink.records_after(0);
        assert_eq!(all.len(), 5);
        let tail = sink.records_after(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 4);
        assert!(sink.records_after(100).is_empty());
    }

    #[test]
    fn snapshot_jsonl_round_trips_in_memory() {
        let sink = Arc::new(LedgerSink::in_memory());
        let rec = Recorder::new().with_sink(sink.clone());
        rec.event("x", &[]);
        let text = sink.snapshot_jsonl();
        let records = parse_ledger(&text).unwrap();
        assert_eq!(records.len(), 2); // header + event
        assert_eq!(records[0].name, "ledger.open");
        assert_eq!(records[1].name, "x");
    }

    #[test]
    fn rollup_prefers_run_close_elapsed_and_tracks_kernels() {
        let records = vec![
            LedgerRecord {
                seq: 0,
                ts_us: 900,
                name: "lloyd.kernel".into(),
                fields: vec![
                    ("kind".into(), FieldValue::Str("fused".into())),
                    ("points".into(), FieldValue::U64(1000)),
                ],
            },
            LedgerRecord {
                seq: 1,
                ts_us: 950,
                name: "lloyd.kernel".into(),
                fields: vec![
                    ("kind".into(), FieldValue::Str("fused".into())),
                    ("points".into(), FieldValue::U64(500)),
                ],
            },
            LedgerRecord {
                seq: 2,
                ts_us: 1000,
                name: "run.close".into(),
                fields: vec![("elapsed_us".into(), FieldValue::U64(1234))],
            },
        ];
        let up = rollup(&records);
        assert_eq!(up.elapsed_us, 1234);
        assert_eq!(up.kernels.len(), 1);
        assert_eq!(up.kernels[0].runs, 2);
        assert_eq!(up.kernels[0].points, 1500);
    }

    fn phases(rows: &[(&str, u64)]) -> Vec<PhaseReport> {
        rows.iter()
            .map(|&(path, self_us)| PhaseReport {
                path: path.into(),
                calls: 1,
                total_us: self_us,
                self_us,
                wall_us: self_us,
            })
            .collect()
    }

    #[test]
    fn diff_attributes_assign_phase_between_scalar_and_fused_runs() {
        // A scalar run spends far longer in partial/assign than a fused
        // run; everything else is comparable. The diff must attribute the
        // delta to the assignment phase with nonzero confidence.
        let scalar = RunProfile {
            label: "scalar".into(),
            elapsed_us: 10_000,
            phases: phases(&[("partial", 500), ("partial/assign", 8000), ("merge", 500)]),
            ..RunProfile::default()
        };
        let fused = RunProfile {
            label: "fused".into(),
            elapsed_us: 5_000,
            phases: phases(&[("partial", 520), ("partial/assign", 3100), ("merge", 480)]),
            ..RunProfile::default()
        };
        let diff = diff_profiles(&scalar, &fused, 0.10);
        assert!(!diff.regression, "B is faster, not a regression");
        let top = diff.attributed_phase().expect("attribution");
        assert_eq!(top.path, "partial/assign");
        assert!(top.delta_us < 0);
        assert!(diff.confidence > 0.9, "confidence = {}", diff.confidence);
        // The reverse direction is a regression, attributed identically.
        let rev = diff_profiles(&fused, &scalar, 0.10);
        assert!(rev.regression);
        assert_eq!(rev.attributed_phase().unwrap().path, "partial/assign");
        assert!(rev.render().contains("REGRESSION"));
        assert!(rev.render().contains("partial/assign"));
    }

    #[test]
    fn diff_reports_fault_and_kernel_changes() {
        let mut a = RunProfile { label: "a".into(), elapsed_us: 100, ..RunProfile::default() };
        a.kernels = vec![KernelRollup { kind: "fused".into(), runs: 4, points: 100 }];
        let mut b = RunProfile { label: "b".into(), elapsed_us: 104, ..RunProfile::default() };
        b.faults.worker_panics = 2;
        b.kernels = vec![KernelRollup { kind: "scalar".into(), runs: 4, points: 100 }];
        let diff = diff_profiles(&a, &b, 0.10);
        assert!(!diff.regression);
        assert_eq!(diff.fault_deltas.len(), 1);
        assert_eq!(diff.fault_deltas[0].kind, "worker_panics");
        assert_eq!(diff.fault_deltas[0].b, 2);
        assert_eq!(diff.kernel_changes.len(), 2);
        let rendered = diff.render();
        assert!(rendered.contains("worker_panics"));
        assert!(rendered.contains("fused"));
    }

    #[test]
    fn profile_from_run_report_carries_mass_and_faults() {
        let mut report = RunReport::new();
        report.elapsed = std::time::Duration::from_micros(777);
        report.faults.scan_retries = 3;
        let profile = RunProfile::from_run_report("r", &report);
        assert_eq!(profile.elapsed_us, 777);
        assert_eq!(profile.faults.scan_retries, 3);
        assert_eq!(mass_ratio(profile.expected_weight, profile.lost_weight), 1.0);
    }

    #[test]
    fn rollup_serializes() {
        let up = rollup(&[LedgerRecord {
            seq: 0,
            ts_us: 0,
            name: "ledger.open".into(),
            fields: vec![("version".into(), FieldValue::U64(1))],
        }]);
        let json = serde_json::to_string(&up).unwrap();
        let back: LedgerRollup = serde_json::from_str(&json).unwrap();
        assert_eq!(back, up);
    }

    #[test]
    fn rollup_reproduces_coreset_tree_state() {
        fn rec(seq: u64, name: &str, fields: Vec<(String, FieldValue)>) -> LedgerRecord {
            LedgerRecord { seq, ts_us: seq, name: name.into(), fields }
        }
        // Four chunk builds of weight 100 each, then the binary counter
        // compacts pairwise: two level-1 buckets, then one level-2 bucket.
        let mut records = Vec::new();
        for i in 0..4u64 {
            records.push(rec(
                i,
                "coreset.build",
                vec![
                    ("cell".into(), FieldValue::U64(0)),
                    ("chunk".into(), FieldValue::U64(i)),
                    ("weight".into(), FieldValue::F64(100.0)),
                ],
            ));
        }
        for (seq, level, consumed) in [(4u64, 1u64, 200.0), (5, 1, 200.0), (6, 2, 400.0)] {
            records.push(rec(
                seq,
                "coreset.compact",
                vec![
                    ("cell".into(), FieldValue::U64(0)),
                    ("level".into(), FieldValue::U64(level)),
                    ("weight".into(), FieldValue::F64(consumed)),
                    ("consumed_weight".into(), FieldValue::F64(consumed)),
                ],
            ));
        }
        records.push(rec(
            7,
            "coreset.evict",
            vec![
                ("cell".into(), FieldValue::U64(0)),
                ("level".into(), FieldValue::U64(2)),
                ("weight".into(), FieldValue::F64(400.0)),
                ("points".into(), FieldValue::F64(400.0)),
            ],
        ));
        records.push(rec(8, "coreset.query", vec![("cell".into(), FieldValue::U64(0))]));
        let up = rollup(&records);
        assert_eq!(up.coreset.builds, 4);
        assert_eq!(up.coreset.compactions, 3);
        assert_eq!(up.coreset.evictions, 1);
        assert_eq!(up.coreset.queries, 1);
        assert_eq!(up.coreset.expired_points, 400.0);
        // All mass was compacted up to level 2 and then evicted: every
        // level nets out to zero buckets and zero weight.
        assert_eq!(up.coreset.live_buckets(), 0);
        assert_eq!(up.coreset.live_weight(), 0.0);
        for lvl in &up.coreset.levels {
            assert_eq!(lvl.buckets, 0, "level {} buckets", lvl.level);
            assert_eq!(lvl.weight, 0.0, "level {} weight", lvl.level);
        }
        // Round-trips, and old journals without coreset records parse to
        // an empty block.
        let json = serde_json::to_string(&up).unwrap();
        let back: LedgerRollup = serde_json::from_str(&json).unwrap();
        assert_eq!(back, up);
        let empty = rollup(&[]);
        assert!(empty.coreset.is_empty());
    }

    #[test]
    fn slowest_chunks_sorts_and_truncates() {
        let mut up = LedgerRollup::default();
        for (i, us) in [(0u64, 10u64), (1, 50), (2, 30)] {
            up.chunks.push(ChunkRollup {
                cell: "0".into(),
                chunk: i,
                points: 1,
                duration_us: us,
                attempts: 1,
            });
        }
        let top = up.slowest_chunks(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].duration_us, 50);
        assert_eq!(top[1].duration_us, 30);
    }
}
