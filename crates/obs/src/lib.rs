//! # pmkm-obs — observability for the partial/merge pipeline
//!
//! Three small layers, each usable on its own:
//!
//! 1. [`metrics`] — a lock-cheap metrics [`Registry`] of named
//!    [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s, with a
//!    Prometheus text renderer ([`Registry::render_prometheus`]).
//! 2. [`trace`] — a structured [`Recorder`] that stamps [`Event`]s with
//!    monotonic microsecond timestamps and fans them out to pluggable
//!    [`TraceSink`]s (an in-memory [`RingBufferSink`], a [`JsonlSink`]
//!    file writer).
//! 3. [`report`] — plain-data [`RunReport`] types (serde round-trippable)
//!    that the pipeline and the stream engine fill in per run.
//! 4. [`profile`] — a hierarchical span [`Profiler`] aggregating nested
//!    timed phases (scan → partial{seed, assign, update, converge} → merge)
//!    with self/child attribution and folded-stack flamegraph export.
//! 5. [`serve`] — a dependency-light HTTP [`MetricsServer`] exposing
//!    `/metrics`, `/report.json`, `/healthz`, and — when a ledger is
//!    attached — the `/events` long-poll stream and `/ledger.jsonl`
//!    download, on a background thread.
//! 6. [`config`] — [`ObsConfig`] knobs (trace ring capacity, queue-depth
//!    sampling interval) carried by the [`Recorder`].
//! 7. [`ledger`] — the versioned, append-only JSONL run ledger
//!    ([`LedgerSink`]) with a parser, a per-cell/per-phase [`rollup`]
//!    engine, and the cross-run [`diff_profiles`] attribution engine.
//! 8. [`timeline`] — per-worker state [`Timeline`]s (bounded transition
//!    rings on the recorder clock) aggregated into [`WorkerTimeline`]
//!    utilization and per-thread-max wall rollups.
//! 9. [`status`] — the live `/status` planet-progress document
//!    ([`StatusSnapshot`]) published through a pointer-swap
//!    [`StatusCell`].
//! 10. [`chrome`] — Chrome trace-event / Perfetto JSON export
//!     ([`chrome_trace`]) and terminal Gantt rendering ([`ascii_gantt`])
//!     of a run ledger.
//!
//! The instrumented code paths in `pmkm-core` and `pmkm-stream` thread an
//! `Option<&Recorder>` through; `None` keeps the hooks zero-cost (no
//! allocation, no locking, no timestamping), which is the contract the
//! `lloyd` benches guard.
//!
//! ```
//! use pmkm_obs::{Recorder, RingBufferSink};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingBufferSink::new(64));
//! let rec = Recorder::new().with_sink(ring.clone());
//! rec.registry().counter("chunks_total").add(3);
//! rec.event("partial.chunk", &[("points", 500u64.into())]);
//! assert_eq!(ring.events().len(), 1);
//! assert!(rec.registry().render_prometheus().contains("chunks_total 3"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod config;
pub mod ledger;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod serve;
pub mod status;
pub mod timeline;
pub mod trace;

pub use chrome::{ascii_gantt, chrome_trace, chrome_trace_from_report};
pub use config::ObsConfig;
pub use ledger::{
    attribute_phases, diff_profiles, emit_phase_events, parse_ledger, read_ledger, rollup,
    CheckpointRollup, CoresetLevelRollup, CoresetRollup, LedgerRecord, LedgerRollup, LedgerSink,
    PhaseDelta, ProfileDiff, RunProfile, LEDGER_VERSION,
};
pub use metrics::{escape_label_value, labeled_name, Counter, Gauge, Histogram, Registry};
pub use profile::{ManualClock, MonotonicClock, PhaseGuard, Profiler, ProfilerClock};
pub use report::{
    CellReport, ChunkReport, CoresetReport, CounterSample, FaultReport, GaugeSample,
    HistogramSample, HistogramSnapshot, MergeReport, MetricsSnapshot, OperatorReport,
    OrchestratorReport, PhaseReport, QueueReport, RunReport,
};
pub use serve::MetricsServer;
pub use status::{CoresetStatus, StatusCell, StatusSnapshot, WorkerStatus, STATUS_SCHEMA_VERSION};
pub use timeline::{Timeline, Transition, WorkerLaneReport, WorkerState, WorkerTimeline};
pub use trace::{Event, FieldValue, JsonlSink, Recorder, RingBufferSink, Span, TraceSink};
