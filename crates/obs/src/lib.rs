//! # pmkm-obs — observability for the partial/merge pipeline
//!
//! Three small layers, each usable on its own:
//!
//! 1. [`metrics`] — a lock-cheap metrics [`Registry`] of named
//!    [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s, with a
//!    Prometheus text renderer ([`Registry::render_prometheus`]).
//! 2. [`trace`] — a structured [`Recorder`] that stamps [`Event`]s with
//!    monotonic microsecond timestamps and fans them out to pluggable
//!    [`TraceSink`]s (an in-memory [`RingBufferSink`], a [`JsonlSink`]
//!    file writer).
//! 3. [`report`] — plain-data [`RunReport`] types (serde round-trippable)
//!    that the pipeline and the stream engine fill in per run.
//!
//! The instrumented code paths in `pmkm-core` and `pmkm-stream` thread an
//! `Option<&Recorder>` through; `None` keeps the hooks zero-cost (no
//! allocation, no locking, no timestamping), which is the contract the
//! `lloyd` benches guard.
//!
//! ```
//! use pmkm_obs::{Recorder, RingBufferSink};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingBufferSink::new(64));
//! let rec = Recorder::new().with_sink(ring.clone());
//! rec.registry().counter("chunks_total").add(3);
//! rec.event("partial.chunk", &[("points", 500u64.into())]);
//! assert_eq!(ring.events().len(), 1);
//! assert!(rec.registry().render_prometheus().contains("chunks_total 3"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod report;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use report::{
    CellReport, ChunkReport, CounterSample, GaugeSample, HistogramSample, HistogramSnapshot,
    MergeReport, MetricsSnapshot, OperatorReport, QueueReport, RunReport,
};
pub use trace::{Event, FieldValue, JsonlSink, Recorder, RingBufferSink, Span, TraceSink};
