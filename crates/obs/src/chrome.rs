//! Chrome trace-event export and ASCII Gantt rendering.
//!
//! [`chrome_trace`] converts a run ledger into the Chrome trace-event JSON
//! format (the `{"traceEvents": [...]}` object form), loadable in
//! `chrome://tracing`, Perfetto, and speedscope:
//!
//! * `worker.state` records become complete (`ph:"X"`) slices on one track
//!   per worker lane, so steals, budget waits, and per-phase dwell are
//!   visible as a Gantt chart;
//! * `cell.open`/`cell.close` bracket one slice per cell, with its
//!   `chunk.close` timings nested inside (a chunk record carries its end
//!   timestamp and duration, so the slice is `[ts−dur, ts]`);
//! * checkpoints, faults, and watchdog verdicts render as instant
//!   (`ph:"i"`) markers on dedicated tracks.
//!
//! All timestamps are the ledger's `ts_us` values unchanged — the trace
//! shares the run's single monotonic clock. [`chrome_trace_from_report`]
//! covers `RunReport` JSON inputs, which carry durations but no start
//! timestamps: each cell's chunk slices are laid end-to-end from t=0, so
//! within-cell ordering and durations are real while cross-cell alignment
//! is not (every cell track starts at zero).
//!
//! [`ascii_gantt`] renders the same `worker.state` stream as a terminal
//! chart for `pmkm inspect`.

use crate::ledger::LedgerRecord;
use crate::report::RunReport;
use crate::timeline::WorkerState;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Track ids: workers are `1 + lane`, cells follow [`CELL_TID_BASE`], and
/// marker tracks sit between them.
const CELL_TID_BASE: u64 = 1000;
const CHECKPOINT_TID: u64 = 900;
const FAULT_TID: u64 = 901;
const WATCHDOG_TID: u64 = 902;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Accumulates trace events and renders the final JSON document.
struct TraceJson {
    events: Vec<String>,
}

impl TraceJson {
    fn new() -> Self {
        Self { events: Vec::new() }
    }

    fn complete(&mut self, name: &str, cat: &str, ts: u64, dur: u64, tid: u64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":1,\"tid\":{tid}}}",
            esc(name),
            esc(cat),
        ));
    }

    fn instant(&mut self, name: &str, cat: &str, ts: u64, tid: u64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
             \"pid\":1,\"tid\":{tid}}}",
            esc(name),
            esc(cat),
        ));
    }

    fn thread_name(&mut self, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name),
        ));
    }

    fn finish(self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(&self.events.join(","));
        out.push_str("]}");
        out
    }
}

/// Per-worker transition stream extracted from `worker.state` records,
/// keyed by lane, plus the labels. Shared by the JSON and ASCII renderers.
fn worker_streams(records: &[LedgerRecord]) -> BTreeMap<u64, (String, Vec<(u64, String)>)> {
    let mut lanes: BTreeMap<u64, (String, Vec<(u64, String)>)> = BTreeMap::new();
    for r in records {
        if r.name != "worker.state" {
            continue;
        }
        let lane = r.u64_field("lane").unwrap_or(0);
        let worker = r.str_field("worker").unwrap_or("w?").to_string();
        let state = r.str_field("state").unwrap_or("idle").to_string();
        let entry = lanes.entry(lane).or_insert_with(|| (worker.clone(), Vec::new()));
        entry.1.push((r.ts_us, state));
    }
    lanes
}

/// Converts ledger records into Chrome trace-event JSON. See the
/// [module docs](self) for the track layout.
pub fn chrome_trace(records: &[LedgerRecord]) -> String {
    let end_ts = records.iter().map(|r| r.ts_us).max().unwrap_or(0);
    let mut trace = TraceJson::new();
    if !records.is_empty() {
        trace.thread_name(0, "run");
    }

    // Worker lanes: one slice per state interval.
    for (lane, (worker, stream)) in worker_streams(records) {
        let tid = 1 + lane;
        trace.thread_name(tid, &format!("worker {worker}"));
        for (i, (ts, state)) in stream.iter().enumerate() {
            let until = stream.get(i + 1).map(|(t, _)| *t).unwrap_or(end_ts);
            trace.complete(state, "worker", *ts, until.saturating_sub(*ts), tid);
        }
    }

    // Cell tracks: the cell's open→close slice plus its chunk slices.
    let mut cell_tids: BTreeMap<String, u64> = BTreeMap::new();
    let mut tid_for = |cell: &str, trace: &mut TraceJson| -> u64 {
        if let Some(t) = cell_tids.get(cell) {
            return *t;
        }
        let tid = CELL_TID_BASE + cell_tids.len() as u64;
        cell_tids.insert(cell.to_string(), tid);
        trace.thread_name(tid, &format!("cell {cell}"));
        tid
    };
    let cell_label = |r: &LedgerRecord| -> String {
        r.str_field("cell")
            .map(str::to_string)
            .or_else(|| r.u64_field("cell").map(|c| c.to_string()))
            .unwrap_or_default()
    };
    let mut open_cells: BTreeMap<String, u64> = BTreeMap::new();
    for r in records {
        match r.name.as_str() {
            "cell.open" => {
                open_cells.insert(cell_label(r), r.ts_us);
            }
            "cell.close" => {
                let cell = cell_label(r);
                let tid = tid_for(&cell, &mut trace);
                let start = open_cells.remove(&cell).unwrap_or(r.ts_us);
                let name = if r.bool_field("resumed").unwrap_or(false) {
                    format!("cell {cell} (resumed)")
                } else {
                    format!("cell {cell}")
                };
                trace.complete(&name, "cell", start, r.ts_us.saturating_sub(start), tid);
            }
            "chunk.close" => {
                let cell = cell_label(r);
                let tid = tid_for(&cell, &mut trace);
                let dur = r.u64_field("duration_us").unwrap_or(0);
                let chunk = r.u64_field("chunk").unwrap_or(0);
                trace.complete(
                    &format!("chunk {chunk}"),
                    "chunk",
                    r.ts_us.saturating_sub(dur),
                    dur,
                    tid,
                );
            }
            "cell.checkpoint" => {
                trace.instant(
                    &format!("checkpoint {}", cell_label(r)),
                    "checkpoint",
                    r.ts_us,
                    CHECKPOINT_TID,
                );
            }
            "fault" => {
                let kind = r.str_field("kind").unwrap_or("unknown");
                trace.instant(&format!("fault:{kind}"), "fault", r.ts_us, FAULT_TID);
            }
            "watchdog.stall" | "watchdog.straggler" => {
                let reason = r.str_field("reason").unwrap_or("");
                trace.instant(&format!("{} {reason}", r.name), "watchdog", r.ts_us, WATCHDOG_TID);
            }
            _ => {}
        }
    }
    // A still-open cell (interrupted run) renders up to the last record.
    for (cell, start) in open_cells {
        let tid = tid_for(&cell, &mut trace);
        trace.complete(
            &format!("cell {cell} (open)"),
            "cell",
            start,
            end_ts.saturating_sub(start),
            tid,
        );
    }
    if !records.is_empty() {
        trace.complete("run", "run", 0, end_ts, 0);
    }
    trace.finish()
}

/// Chrome trace from a `RunReport`: per-cell chunk slices laid end-to-end
/// from t=0 on one track per cell (see the [module docs](self) caveat).
pub fn chrome_trace_from_report(report: &RunReport) -> String {
    let mut trace = TraceJson::new();
    for (i, cell) in report.cells.iter().enumerate() {
        let tid = CELL_TID_BASE + i as u64;
        trace.thread_name(tid, &format!("cell {}", cell.cell));
        let mut cursor = 0u64;
        for chunk in &cell.chunks {
            let dur = chunk.elapsed.as_micros() as u64;
            trace.complete(&format!("chunk {}", chunk.chunk), "chunk", cursor, dur, tid);
            cursor += dur;
        }
        let merge_us = cell.merge.elapsed.as_micros() as u64;
        trace.complete("merge", "merge", cursor, merge_us, tid);
    }
    if let Some(tl) = &report.timeline {
        // No transition timestamps survive into the report, so lanes
        // render as one summary slice each.
        for (i, lane) in tl.workers.iter().enumerate() {
            let tid = 1 + i as u64;
            trace.thread_name(tid, &format!("worker {}", lane.worker));
            trace.complete(
                &format!("busy {:.0}% ({})", lane.utilization * 100.0, lane.current),
                "worker",
                0,
                lane.busy_us,
                tid,
            );
        }
    }
    trace.complete("run", "run", 0, report.elapsed.as_micros() as u64, 0);
    trace.finish()
}

fn state_glyph(state: &str) -> char {
    match WorkerState::parse(state) {
        Some(WorkerState::Idle) => '.',
        Some(WorkerState::Stealing) => 't',
        Some(WorkerState::Scan) => 'S',
        Some(WorkerState::Partial) => 'P',
        Some(WorkerState::Merge) => 'M',
        Some(WorkerState::Compact) => 'K',
        Some(WorkerState::Checkpoint) => 'C',
        Some(WorkerState::BudgetWait) => 'B',
        None => '?',
    }
}

/// Renders the `worker.state` stream as an ASCII Gantt chart, one row per
/// lane, `width` columns over the run's full span. Returns `None` when
/// the ledger carries no `worker.state` records.
pub fn ascii_gantt(records: &[LedgerRecord], width: usize) -> Option<String> {
    let lanes = worker_streams(records);
    if lanes.is_empty() {
        return None;
    }
    let width = width.clamp(10, 400);
    let start = records.iter().map(|r| r.ts_us).min().unwrap_or(0);
    let end = records.iter().map(|r| r.ts_us).max().unwrap_or(0).max(start + 1);
    let span = end - start;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "[gantt ] {span} µs over {} worker(s); . idle  t stealing  S scan  P partial  \
         M merge  C checkpoint  B budget-wait",
        lanes.len()
    );
    for (_, (worker, stream)) in lanes {
        let mut row = String::with_capacity(width);
        for col in 0..width {
            // The state active at the column's midpoint.
            let mid = start + span * (2 * col as u64 + 1) / (2 * width as u64);
            let state = stream
                .iter()
                .take_while(|(ts, _)| *ts <= mid)
                .last()
                .map(|(_, s)| s.as_str())
                .unwrap_or("idle");
            row.push(state_glyph(state));
        }
        let busy = stream_busy_us(&stream, end);
        let util = 100.0 * busy as f64 / span as f64;
        let _ = writeln!(out, "  {worker:<6} |{row}| {util:5.1}% busy");
    }
    Some(out)
}

/// Busy µs of one transition stream up to `end`.
fn stream_busy_us(stream: &[(u64, String)], end: u64) -> u64 {
    let mut busy = 0u64;
    for (i, (ts, state)) in stream.iter().enumerate() {
        let until = stream.get(i + 1).map(|(t, _)| *t).unwrap_or(end);
        if WorkerState::parse(state).is_some_and(WorkerState::is_busy) {
            busy += until.saturating_sub(*ts);
        }
    }
    busy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LedgerSink;
    use crate::timeline::Timeline;
    use crate::trace::Recorder;
    use std::sync::Arc;

    // Minimal typed mirror of the trace-event schema, used to prove the
    // exporter's output parses as the format a viewer expects. Unknown
    // fields are ignored by the reader, matching real consumers. Field
    // names match the wire format verbatim — the vendored serde derive
    // has no `rename` support.
    #[allow(non_snake_case)]
    #[derive(Debug, serde::Deserialize)]
    struct Doc {
        #[serde(default)]
        traceEvents: Vec<Ev>,
        #[serde(default)]
        displayTimeUnit: String,
    }

    #[derive(Debug, Default, serde::Deserialize)]
    struct Ev {
        #[serde(default)]
        name: String,
        #[serde(default)]
        ph: String,
        #[serde(default)]
        ts: u64,
        #[serde(default)]
        dur: u64,
        #[serde(default)]
        pid: u64,
        #[serde(default)]
        tid: u64,
    }

    fn sample_ledger() -> Vec<LedgerRecord> {
        let sink = Arc::new(LedgerSink::in_memory());
        let tl = Arc::new(Timeline::new());
        let rec = Recorder::new().with_sink(sink.clone()).with_timeline(tl.clone());
        let w0 = rec.register_worker("w0").unwrap();
        rec.event("run.open", &[("cells", 1u64.into())]);
        rec.event("cell.open", &[("cell", 7u32.into()), ("expected_points", 100.0.into())]);
        rec.worker_state(w0, WorkerState::Scan);
        rec.event(
            "chunk.close",
            &[
                ("cell", 7u32.into()),
                ("chunk", 0usize.into()),
                ("points", 50usize.into()),
                ("duration_us", 10u64.into()),
                ("attempts", 1usize.into()),
            ],
        );
        rec.worker_state(w0, WorkerState::Merge);
        rec.event("fault", &[("kind", "chunk_retry".into()), ("cell", 7u32.into())]);
        rec.event(
            "cell.close",
            &[("cell", 7u32.into()), ("chunks", 1u64.into()), ("expected_points", 100.0.into())],
        );
        rec.event("cell.checkpoint", &[("cell", 7u32.into()), ("seq", 1u64.into())]);
        rec.worker_state(w0, WorkerState::Idle);
        rec.event("watchdog.stall", &[("reason", "no_progress".into())]);
        rec.event("run.close", &[("elapsed_us", 50u64.into())]);
        sink.records_after(0)
    }

    #[test]
    fn chrome_trace_parses_as_trace_event_json() {
        let records = sample_ledger();
        let json = chrome_trace(&records);
        let doc: Doc = serde_json::from_str(&json).unwrap();
        assert_eq!(doc.displayTimeUnit, "ms");
        assert!(!doc.traceEvents.is_empty());
        for ev in &doc.traceEvents {
            assert!(["X", "i", "M"].contains(&ev.ph.as_str()), "bad ph in {ev:?}");
            assert_eq!(ev.pid, 1);
            assert!(!ev.name.is_empty());
        }
        // All three track families are present.
        let slices: Vec<&Ev> = doc.traceEvents.iter().filter(|e| e.ph == "X").collect();
        assert!(slices.iter().any(|e| e.tid == 1 && e.name == "scan"), "worker slice");
        assert!(slices.iter().any(|e| e.tid >= CELL_TID_BASE && e.name.starts_with("cell ")));
        let chunk = slices.iter().find(|e| e.name == "chunk 0").expect("chunk slice");
        assert_eq!(chunk.dur, 10);
        let instants: Vec<&Ev> = doc.traceEvents.iter().filter(|e| e.ph == "i").collect();
        assert!(instants.iter().any(|e| e.tid == FAULT_TID));
        assert!(instants.iter().any(|e| e.tid == CHECKPOINT_TID));
        assert!(instants.iter().any(|e| e.tid == WATCHDOG_TID));
    }

    #[test]
    fn chrome_trace_handles_interrupted_runs_and_empty_input() {
        assert!(chrome_trace(&[]).contains("\"traceEvents\":[]"));
        // A cell.open without close renders as an "(open)" slice.
        let records = vec![LedgerRecord {
            seq: 0,
            ts_us: 5,
            name: "cell.open".into(),
            fields: vec![("cell".into(), crate::FieldValue::U64(3))],
        }];
        let doc: Doc = serde_json::from_str(&chrome_trace(&records)).unwrap();
        assert!(doc.traceEvents.iter().any(|e| e.name == "cell 3 (open)"));
    }

    #[test]
    fn chrome_trace_escapes_names() {
        let records = vec![LedgerRecord {
            seq: 0,
            ts_us: 1,
            name: "fault".into(),
            fields: vec![("kind".into(), crate::FieldValue::Str("a\"b\\c\nd".into()))],
        }];
        let json = chrome_trace(&records);
        let doc: Doc = serde_json::from_str(&json).unwrap();
        assert!(doc.traceEvents.iter().any(|e| e.name.contains("a\"b\\c\nd")));
    }

    fn chunk_report(chunk: usize, us: u64) -> crate::ChunkReport {
        crate::ChunkReport {
            chunk,
            points: 10,
            best_mse: 0.0,
            iterations: 1,
            elapsed: std::time::Duration::from_micros(us),
            mse_trajectory: Vec::new(),
        }
    }

    #[test]
    fn report_trace_lays_chunks_end_to_end() {
        let mut report = RunReport::new();
        report.elapsed = std::time::Duration::from_micros(100);
        report.cells.push(crate::CellReport {
            cell: "4".into(),
            total_points: 20,
            expected_points: 20.0,
            lost_points: 0.0,
            lost_chunks: 0,
            degraded: false,
            chunks: vec![chunk_report(0, 30), chunk_report(1, 20)],
            merge: crate::MergeReport {
                input_centroids: 2,
                epm: 0.0,
                mse: 0.0,
                iterations: 1,
                converged: true,
                elapsed: std::time::Duration::from_micros(40),
            },
        });
        let doc: Doc = serde_json::from_str(&chrome_trace_from_report(&report)).unwrap();
        let c0 = doc.traceEvents.iter().find(|e| e.name == "chunk 0").unwrap();
        let c1 = doc.traceEvents.iter().find(|e| e.name == "chunk 1").unwrap();
        assert_eq!((c0.ts, c0.dur), (0, 30));
        assert_eq!((c1.ts, c1.dur), (30, 20));
        let merge = doc.traceEvents.iter().find(|e| e.name == "merge").unwrap();
        assert_eq!(merge.ts, 50);
    }

    #[test]
    fn ascii_gantt_renders_lanes_and_legend() {
        let records = sample_ledger();
        let chart = ascii_gantt(&records, 40).expect("worker.state records present");
        assert!(chart.contains("[gantt ]"));
        assert!(chart.contains("w0"));
        assert!(chart.contains("% busy"));
        // No worker.state records → no chart.
        assert!(ascii_gantt(&[], 40).is_none());
    }
}
