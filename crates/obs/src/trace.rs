//! Structured tracing: events, spans, and pluggable sinks.

use crate::config::ObsConfig;
use crate::metrics::Registry;
use crate::profile::{PhaseGuard, Profiler};
use crate::timeline::{Timeline, WorkerState};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// One typed field value on an [`Event`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Microseconds since the owning [`Recorder`] was created (monotonic).
    pub ts_us: u64,
    /// Event name, dotted by convention (`"lloyd.iteration"`).
    pub name: String,
    /// Named field values, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

/// Where emitted events go. Implementations must be safe to share across
/// operator threads.
pub trait TraceSink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);
    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// An in-memory ring buffer keeping the newest `capacity` events.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, buf: Mutex::new(VecDeque::with_capacity(capacity)) }
    }

    /// A ring sized by [`ObsConfig::trace_ring_capacity`].
    pub fn from_config(config: &ObsConfig) -> Self {
        Self::new(config.trace_ring_capacity)
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, event: &Event) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// A sink appending one JSON object per line (JSONL) to a file.
pub struct JsonlSink {
    out: Mutex<BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path` and writes events to it as JSONL.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self { out: Mutex::new(BufWriter::new(file)) })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &Event) {
        if let Ok(line) = serde_json::to_string(event) {
            let mut out = self.out.lock();
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.lock().flush();
    }
}

/// The event recorder: a monotonic clock, a set of sinks, and a metrics
/// [`Registry`].
///
/// Instrumented code takes `Option<&Recorder>`; `None` short-circuits every
/// hook before any timestamp or allocation happens, so disabled tracing
/// costs one branch.
pub struct Recorder {
    epoch: Instant,
    sinks: Vec<Arc<dyn TraceSink>>,
    registry: Registry,
    profiler: Option<Arc<Profiler>>,
    timeline: Option<Arc<Timeline>>,
    config: ObsConfig,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder with no sinks (metrics still work; events go nowhere).
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            sinks: Vec::new(),
            registry: Registry::new(),
            profiler: None,
            timeline: None,
            config: ObsConfig::default(),
        }
    }

    /// Adds a sink (builder style).
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Attaches a span profiler (builder style); [`Recorder::phase`] spans
    /// go nowhere without one.
    pub fn with_profiler(mut self, profiler: Arc<Profiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Replaces the observability config (builder style).
    pub fn with_config(mut self, config: ObsConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a worker-state timeline (builder style); the
    /// [`Recorder::worker_state`] family goes nowhere without one.
    pub fn with_timeline(mut self, timeline: Arc<Timeline>) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// The attached span profiler, if any.
    pub fn profiler(&self) -> Option<&Arc<Profiler>> {
        self.profiler.as_ref()
    }

    /// The attached worker-state timeline, if any.
    pub fn timeline(&self) -> Option<&Arc<Timeline>> {
        self.timeline.as_ref()
    }

    /// Registers a worker lane on the attached timeline (no-op without
    /// one), emitting the lane's opening `worker.state` event.
    pub fn register_worker(&self, label: &str) -> Option<usize> {
        let tl = self.timeline.as_deref()?;
        let lane = tl.register(label, self.elapsed_us());
        self.emit_worker_state(label, lane, WorkerState::Idle);
        Some(lane)
    }

    /// Records a worker-state transition on `lane`. Coalesced records
    /// (same state) and recorders without a timeline emit nothing.
    pub fn worker_state(&self, lane: usize, state: WorkerState) {
        let Some(tl) = self.timeline.as_deref() else { return };
        if tl.record(lane, state, self.elapsed_us()) {
            if let Some(label) = tl.label(lane) {
                self.emit_worker_state(&label, lane, state);
            }
        }
    }

    /// Records a worker-state transition addressed by the cell bound to a
    /// lane (see [`Timeline::bind_cell`]). Unbound cells, coalesced
    /// records, and recorders without a timeline emit nothing.
    pub fn worker_state_cell(&self, cell: u32, state: WorkerState) {
        let Some(tl) = self.timeline.as_deref() else { return };
        if let Some(lane) = tl.record_cell(cell, state, self.elapsed_us()) {
            if let Some(label) = tl.label(lane) {
                self.emit_worker_state(&label, lane, state);
            }
        }
    }

    fn emit_worker_state(&self, label: &str, lane: usize, state: WorkerState) {
        self.event(
            "worker.state",
            &[("worker", label.into()), ("lane", lane.into()), ("state", state.as_str().into())],
        );
    }

    /// The observability config (defaults unless overridden).
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// Opens a profiler phase span, or returns `None` when no profiler is
    /// attached. Idiomatic call site, zero-cost without a recorder:
    ///
    /// ```
    /// # use pmkm_obs::Recorder;
    /// # fn work(rec: Option<&Recorder>) {
    /// let _phase = rec.and_then(|r| r.phase("assign"));
    /// // ... timed work ...
    /// # }
    /// ```
    pub fn phase(&self, name: &str) -> Option<PhaseGuard<'_>> {
        self.profiler.as_deref().map(|p| p.enter(name))
    }

    /// Phase rows from the attached profiler (empty without one).
    pub fn phase_rows(&self) -> Vec<crate::report::PhaseReport> {
        self.profiler.as_deref().map(|p| p.phase_rows()).unwrap_or_default()
    }

    /// The recorder's metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Microseconds since the recorder was created.
    pub fn elapsed_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Emits one event to every sink.
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let event = Event {
            ts_us: self.elapsed_us(),
            name: name.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        for sink in &self.sinks {
            sink.record(&event);
        }
    }

    /// Starts a span; dropping the guard emits `<name>` with a
    /// `duration_us` field (plus any fields given at close).
    pub fn span<'r>(&'r self, name: &'r str) -> Span<'r> {
        Span { recorder: self, name, started: Instant::now(), fields: Vec::new() }
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("sinks", &self.sinks.len()).finish()
    }
}

/// Guard returned by [`Recorder::span`].
pub struct Span<'r> {
    recorder: &'r Recorder,
    name: &'r str,
    started: Instant,
    fields: Vec<(String, FieldValue)>,
}

impl Span<'_> {
    /// Attaches a field to the closing event.
    pub fn field(&mut self, key: &str, value: FieldValue) {
        self.fields.push((key.to_string(), value));
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let mut fields: Vec<(String, FieldValue)> =
            vec![("duration_us".to_string(), (self.started.elapsed().as_micros() as u64).into())];
        fields.append(&mut self.fields);
        let event =
            Event { ts_us: self.recorder.elapsed_us(), name: self.name.to_string(), fields };
        for sink in &self.recorder.sinks {
            sink.record(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_monotonic_timestamps_and_fields() {
        let ring = Arc::new(RingBufferSink::new(8));
        let rec = Recorder::new().with_sink(ring.clone());
        rec.event("a", &[("n", 1u64.into())]);
        rec.event("b", &[("x", 2.5.into()), ("ok", true.into())]);
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].ts_us <= events[1].ts_us);
        assert_eq!(events[1].fields[0], ("x".to_string(), FieldValue::F64(2.5)));
        assert_eq!(events[1].fields[1], ("ok".to_string(), FieldValue::Bool(true)));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let ring = Arc::new(RingBufferSink::new(3));
        let rec = Recorder::new().with_sink(ring.clone());
        for i in 0..5u64 {
            rec.event("e", &[("i", i.into())]);
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].fields[0].1, FieldValue::U64(2));
        assert_eq!(events[2].fields[0].1, FieldValue::U64(4));
    }

    #[test]
    fn span_emits_duration_on_drop() {
        let ring = Arc::new(RingBufferSink::new(4));
        let rec = Recorder::new().with_sink(ring.clone());
        {
            let mut span = rec.span("work");
            span.field("items", 7u64.into());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "work");
        match events[0].fields[0] {
            (ref k, FieldValue::U64(us)) => {
                assert_eq!(k, "duration_us");
                assert!(us >= 1_000);
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert_eq!(events[0].fields[1], ("items".to_string(), FieldValue::U64(7)));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("pmkm_obs_trace_{}.jsonl", std::process::id()));
        {
            let sink = Arc::new(JsonlSink::create(&path).unwrap());
            let rec = Recorder::new().with_sink(sink);
            rec.event("one", &[("v", 1u64.into())]);
            rec.event("two", &[("s", "hi".into())]);
            rec.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: Event = serde_json::from_str(line).unwrap();
            assert!(back.name == "one" || back.name == "two");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn worker_state_transitions_emit_events_and_coalesce() {
        use crate::timeline::{Timeline, WorkerState};
        let ring = Arc::new(RingBufferSink::new(64));
        let timeline = Arc::new(Timeline::new());
        let rec = Recorder::new().with_sink(ring.clone()).with_timeline(Arc::clone(&timeline));
        let lane = rec.register_worker("w0").expect("timeline attached");
        rec.worker_state(lane, WorkerState::Scan);
        rec.worker_state(lane, WorkerState::Scan); // coalesced: no event
        rec.worker_state(lane, WorkerState::Idle);
        let events = ring.events();
        let states: Vec<&Event> = events.iter().filter(|e| e.name == "worker.state").collect();
        assert_eq!(states.len(), 3, "register + scan + idle, coalesced repeat dropped");
        assert_eq!(
            states[1].fields,
            vec![
                ("worker".to_string(), FieldValue::Str("w0".into())),
                ("lane".to_string(), FieldValue::U64(lane as u64)),
                ("state".to_string(), FieldValue::Str("scan".into())),
            ]
        );
        // Cell-bound recording reaches the same lane.
        timeline.bind_cell(7, lane);
        rec.worker_state_cell(7, WorkerState::Partial);
        assert_eq!(ring.events().iter().filter(|e| e.name == "worker.state").count(), 4);
        // Without a timeline the whole family is a no-op.
        let bare = Recorder::new().with_sink(ring.clone());
        assert!(bare.register_worker("w1").is_none());
        bare.worker_state(0, WorkerState::Merge);
        assert_eq!(ring.events().iter().filter(|e| e.name == "worker.state").count(), 4);
    }

    #[test]
    fn event_round_trips_through_json() {
        let e = Event {
            ts_us: 123,
            name: "x.y".into(),
            fields: vec![
                ("a".into(), FieldValue::I64(-4)),
                ("b".into(), FieldValue::Str("s".into())),
            ],
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
