//! Plain-data run reports.
//!
//! Everything here derives `Serialize`/`Deserialize` and round-trips
//! losslessly through `serde_json` (asserted by the integration tests):
//! floats are printed shortest-round-trip, `Duration` as `{secs, nanos}`.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Schema version stamped into every [`RunReport`].
///
/// v2 added the `phases` breakdown; v3 added fault accounting (the
/// top-level `degraded` flag, the `faults` counter block, and the per-cell
/// `expected_points`/`lost_points`/`lost_chunks`/`degraded` fields); v4
/// added the per-phase `wall_us` column (per-thread-max elapsed time); v5
/// added the optional `orchestrator` block of planet-level multi-cell
/// runs (scheduling, checkpoint and resume counters); v6 added the
/// optional `timeline` per-worker state rollup (utilization and
/// per-thread-max wall clock); v7 added the optional `coreset` block
/// (merge-reduce tree shape and mass accounting of coreset-mode runs) and
/// the timeline lanes' `compact_us` column.
/// Every addition is `#[serde(default)]`, so older documents still parse.
pub const SCHEMA_VERSION: u32 = 7;

/// Coreset-engine accounting for one run (schema v7): the aggregated shape
/// and mass audit of every cell's merge-reduce tree. `None` on classic
/// merge-path runs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CoresetReport {
    /// Cells that ran a coreset tree.
    pub trees: usize,
    /// Deepest tree (levels = max level + 1) across cells.
    pub max_levels: u32,
    /// Live buckets summed over cells at cell completion.
    pub live_buckets: usize,
    /// Pairwise compactions performed across cells.
    pub compactions: u64,
    /// Chunk coresets built across cells.
    pub builds: u64,
    /// Anytime queries answered across cells (including terminal merges).
    pub queries: u64,
    /// Total representative weight live at cell completion.
    pub live_weight: f64,
    /// Raw point mass ingested into trees.
    pub ingested_points: f64,
    /// Raw point mass quarantined before reaching a tree.
    pub lost_points: f64,
    /// Raw point mass evicted by sliding windows.
    pub expired_points: f64,
}

/// Fault-tolerance counters for one run (schema v3). All zero on a
/// fault-free run — and on any report parsed from a v1/v2 document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// Scan read attempts that were retried after a transient error.
    pub scan_retries: u64,
    /// Buckets (or bucket tails) abandoned after retries were exhausted.
    pub scan_failures: u64,
    /// Chunks dropped because their payload failed validation (e.g.
    /// non-finite coordinates).
    pub chunks_poisoned: u64,
    /// Chunks abandoned entirely (poisoned, or crashed past the retry
    /// budget); their mass is reported lost.
    pub chunks_quarantined: u64,
    /// Partial-worker panics that were caught and isolated.
    pub worker_panics: u64,
    /// Chunk clusterings re-run after a caught panic.
    pub chunk_retries: u64,
    /// Artificial queue-send stalls injected by a fault plan.
    pub queue_stalls: u64,
    /// Cells merged with missing mass.
    pub cells_degraded: u64,
}

impl FaultReport {
    /// True when any counter is non-zero.
    pub fn any(&self) -> bool {
        *self != Self::default()
    }
}

/// A plain-data copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (last is +Inf).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// One named counter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One named gauge value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Gauge value.
    pub value: f64,
}

/// One named histogram snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// The histogram's state.
    pub histogram: HistogramSnapshot,
}

/// A point-in-time copy of a whole registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

/// One aggregated row of the span profiler's phase tree.
///
/// Produced by `Profiler::phase_rows`; `total_us`/`self_us` are summed
/// across threads, so on multi-clone runs they can exceed wall-clock time.
/// `wall_us` is the per-thread *maximum* instead — for a phase whose clones
/// run concurrently it approximates the phase's elapsed wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// `/`-joined span path, e.g. `"partial/assign"`.
    pub path: String,
    /// Times the span was entered.
    pub calls: u64,
    /// Total time inside the span, including children, summed over threads
    /// (µs).
    pub total_us: u64,
    /// Time not attributed to any child span, summed over threads (µs).
    pub self_us: u64,
    /// Maximum per-thread time inside the span (µs) — the phase's elapsed
    /// wall time when its threads run concurrently. Absent (0) in pre-v4
    /// documents.
    #[serde(default)]
    pub wall_us: u64,
}

/// Per-operator-clone accounting with a busy-vs-blocked split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorReport {
    /// Operator name (e.g. `"partial-kmeans"`).
    pub name: String,
    /// Clone index among clones of the same operator.
    pub clone_id: usize,
    /// Items consumed.
    pub items_in: u64,
    /// Items produced.
    pub items_out: u64,
    /// Time spent doing useful work.
    pub busy: Duration,
    /// Time spent blocked on queue sends/receives.
    pub blocked: Duration,
    /// Wall-clock lifetime of the clone.
    pub lifetime: Duration,
    /// `busy / lifetime`, clamped to `[0, 1]`.
    pub utilization: f64,
}

/// Per-queue accounting, including a depth histogram sampled at send time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueReport {
    /// Queue name (e.g. `"chunker→partial"`).
    pub name: String,
    /// Configured capacity.
    pub capacity: usize,
    /// Successful sends.
    pub sends: u64,
    /// Successful receives.
    pub recvs: u64,
    /// Sends that found the queue full (backpressure events).
    pub full_blocks: u64,
    /// Receives that found the queue empty.
    pub empty_blocks: u64,
    /// Total time producers spent blocked sending.
    pub blocked_send: Duration,
    /// Total time consumers spent blocked receiving.
    pub blocked_recv: Duration,
    /// Queue depth observed at each successful send.
    pub depth: HistogramSnapshot,
}

/// Per-chunk partial-k-means outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkReport {
    /// Chunk index within its cell.
    pub chunk: usize,
    /// Points in the chunk.
    pub points: usize,
    /// Best MSE over the restarts.
    pub best_mse: f64,
    /// Total Lloyd iterations across restarts.
    pub iterations: usize,
    /// Wall-clock time for the chunk.
    pub elapsed: Duration,
    /// Per-iteration MSE of the winning restart (monotonically
    /// non-increasing). Empty for passthrough/ECVQ chunks.
    pub mse_trajectory: Vec<f64>,
}

/// The merge phase of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeReport {
    /// Weighted centroids fed into the merge.
    pub input_centroids: usize,
    /// Error-per-mass of the merged clustering.
    pub epm: f64,
    /// Weighted MSE of the merged clustering.
    pub mse: f64,
    /// Lloyd iterations in the merge run.
    pub iterations: usize,
    /// Whether the merge run converged.
    pub converged: bool,
    /// Wall-clock time for the merge.
    pub elapsed: Duration,
}

/// Everything that happened to one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Cell label (grid index, or `"in-memory"` for the core pipeline).
    pub cell: String,
    /// Points clustered in the cell.
    pub total_points: usize,
    /// Points the cell was expected to carry (`0` when unknown — v1/v2
    /// documents and in-memory runs).
    #[serde(default)]
    pub expected_points: f64,
    /// Input mass lost to quarantined chunks or failed reads
    /// (`Σw_expected − Σw_received`).
    #[serde(default)]
    pub lost_points: f64,
    /// Chunks of this cell that were quarantined instead of merged.
    #[serde(default)]
    pub lost_chunks: usize,
    /// True when the cell was merged with missing mass.
    #[serde(default)]
    pub degraded: bool,
    /// Per-chunk outcomes, chunk order.
    pub chunks: Vec<ChunkReport>,
    /// The merge phase.
    pub merge: MergeReport,
}

/// Scheduling, checkpoint and resume accounting of an orchestrated
/// multi-cell run (schema v5). Absent from single-run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OrchestratorReport {
    /// Worker threads pulling cells off the work-stealing deques.
    pub jobs: usize,
    /// Cells in the plan.
    pub cells_total: usize,
    /// Cells restored from checkpoints instead of re-scanned.
    pub cells_resumed: usize,
    /// Cells executed through the pipeline this run.
    pub cells_executed: usize,
    /// Checkpoint files written this run.
    pub checkpoints_written: usize,
    /// Checkpoint files rejected (bad checksum/version/fingerprint) and
    /// re-scanned.
    pub checkpoints_invalid: usize,
    /// True when a kill drill stopped the run before every cell finished.
    pub interrupted: bool,
    /// High-water mark of the shared memory budget, bytes (0 = no budget).
    pub budget_peak_bytes: u64,
    /// Cells a worker stole from another worker's deque.
    pub steals: u64,
}

/// The top-level report for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Per-cell outcomes.
    pub cells: Vec<CellReport>,
    /// Per-operator-clone accounting (empty for in-process runs).
    pub operators: Vec<OperatorReport>,
    /// Per-queue accounting (empty for in-process runs).
    pub queues: Vec<QueueReport>,
    /// Snapshot of the recorder's metrics registry.
    pub metrics: MetricsSnapshot,
    /// Span-profiler phase breakdown (empty when no profiler was attached;
    /// absent in schema v1 documents).
    #[serde(default)]
    pub phases: Vec<PhaseReport>,
    /// True when any cell was merged with missing mass (absent in v1/v2
    /// documents).
    #[serde(default)]
    pub degraded: bool,
    /// Fault-tolerance counters (all zero for fault-free and v1/v2 runs).
    #[serde(default)]
    pub faults: FaultReport,
    /// Planet-level orchestration accounting (`None` for single runs and
    /// pre-v5 documents).
    #[serde(default)]
    pub orchestrator: Option<OrchestratorReport>,
    /// Per-worker state-timeline rollup (`None` when no timeline was
    /// attached and for pre-v6 documents).
    #[serde(default)]
    pub timeline: Option<crate::timeline::WorkerTimeline>,
    /// Coreset-engine rollup (`None` on classic merge-path runs and for
    /// pre-v7 documents).
    #[serde(default)]
    pub coreset: Option<CoresetReport>,
}

impl RunReport {
    /// An empty report with the current schema version.
    pub fn new() -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            elapsed: Duration::ZERO,
            cells: Vec::new(),
            operators: Vec::new(),
            queues: Vec::new(),
            metrics: MetricsSnapshot::default(),
            phases: Vec::new(),
            degraded: false,
            faults: FaultReport::default(),
            orchestrator: None,
            timeline: None,
            coreset: None,
        }
    }

    /// Total points across every cell.
    pub fn total_points(&self) -> usize {
        self.cells.iter().map(|c| c.total_points).sum()
    }
}

impl Default for RunReport {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            elapsed: Duration::from_micros(12_345),
            cells: vec![CellReport {
                cell: "0".to_string(),
                total_points: 1000,
                expected_points: 1000.0,
                lost_points: 0.0,
                lost_chunks: 0,
                degraded: false,
                chunks: vec![ChunkReport {
                    chunk: 0,
                    points: 1000,
                    best_mse: 0.125,
                    iterations: 7,
                    elapsed: Duration::from_micros(431),
                    mse_trajectory: vec![0.5, 0.25, 0.125],
                }],
                merge: MergeReport {
                    input_centroids: 10,
                    epm: 0.02,
                    mse: 0.1,
                    iterations: 3,
                    converged: true,
                    elapsed: Duration::from_micros(99),
                },
            }],
            operators: vec![OperatorReport {
                name: "partial-kmeans".to_string(),
                clone_id: 1,
                items_in: 4,
                items_out: 4,
                busy: Duration::from_millis(3),
                blocked: Duration::from_millis(1),
                lifetime: Duration::from_millis(5),
                utilization: 0.6,
            }],
            queues: vec![QueueReport {
                name: "chunker→partial".to_string(),
                capacity: 8,
                sends: 4,
                recvs: 4,
                full_blocks: 1,
                empty_blocks: 2,
                blocked_send: Duration::from_micros(10),
                blocked_recv: Duration::from_micros(20),
                depth: HistogramSnapshot {
                    bounds: vec![0.0, 1.0],
                    counts: vec![2, 1, 1],
                    count: 4,
                    sum: 5.0,
                },
            }],
            metrics: MetricsSnapshot {
                counters: vec![CounterSample { name: "chunks_total".into(), value: 4 }],
                gauges: vec![GaugeSample { name: "depth".into(), value: 1.5 }],
                histograms: vec![HistogramSample {
                    name: "sizes".into(),
                    histogram: HistogramSnapshot {
                        bounds: vec![10.0],
                        counts: vec![1, 0],
                        count: 1,
                        sum: 3.0,
                    },
                }],
            },
            phases: vec![PhaseReport {
                path: "partial/assign".into(),
                calls: 7,
                total_us: 400,
                self_us: 350,
                wall_us: 380,
            }],
            degraded: false,
            faults: FaultReport::default(),
            orchestrator: None,
            timeline: None,
            coreset: None,
        }
    }

    /// Strips the v7 `coreset` key from a serialized report, producing the
    /// JSON a v6-or-older writer would have emitted.
    fn strip_v7_keys(json: &str) -> String {
        let json = json.replace(",\"coreset\":null", "");
        assert!(!json.contains("\"coreset\""), "surgery failed: {json}");
        json
    }

    /// Strips the v6 `timeline` key from a serialized report, producing
    /// the JSON a v5-or-older writer would have emitted.
    fn strip_v6_keys(json: &str) -> String {
        let json = strip_v7_keys(json).replace(",\"timeline\":null", "");
        assert!(!json.contains("timeline"), "surgery failed: {json}");
        json
    }

    /// Strips the v5 `orchestrator` key from a serialized report,
    /// producing the JSON a v4-or-older writer would have emitted.
    fn strip_v5_keys(json: &str) -> String {
        let json = strip_v6_keys(json).replace(",\"orchestrator\":null", "");
        assert!(!json.contains("orchestrator"), "surgery failed: {json}");
        json
    }

    /// Strips every v3 addition from a serialized report, producing the
    /// exact JSON an older (v1/v2) writer would have emitted. The report
    /// must carry default values in all v3 fields for the surgery to apply.
    fn strip_v3_keys(report: &RunReport) -> String {
        let faults_json = serde_json::to_string(&FaultReport::default()).unwrap();
        let json = strip_v5_keys(&serde_json::to_string(report).unwrap())
            .replace(&format!(",\"degraded\":false,\"faults\":{faults_json}"), "")
            .replace(
                ",\"expected_points\":0.0,\"lost_points\":0.0,\"lost_chunks\":0,\"degraded\":false",
                "",
            );
        for absent in ["faults", "lost_points", "lost_chunks", "expected_points"] {
            assert!(!json.contains(absent), "surgery failed for {absent}: {json}");
        }
        json
    }

    #[test]
    fn v1_report_without_phases_still_parses() {
        let mut report = sample_report();
        report.phases.clear();
        report.schema_version = 1;
        report.cells[0].expected_points = 0.0;
        // A v1 document has none of the v2/v3 keys at all.
        let json = strip_v3_keys(&report).replace(",\"phases\":[]", "");
        assert!(!json.contains("phases"), "surgery failed: {json}");
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, 1);
        assert!(back.phases.is_empty());
        assert_eq!(back, report);
    }

    #[test]
    fn v2_report_without_fault_fields_still_parses() {
        let mut report = sample_report();
        report.schema_version = 2;
        report.cells[0].expected_points = 0.0;
        let json = strip_v3_keys(&report);
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, 2);
        assert!(!back.degraded);
        assert!(!back.faults.any());
        assert_eq!(back, report);
    }

    #[test]
    fn v3_report_without_wall_us_still_parses() {
        // A v3 writer emitted phases without the v4 `wall_us` column; the
        // field must default to 0 under the current reader.
        let mut report = sample_report();
        report.schema_version = 3;
        report.phases[0].wall_us = 0;
        let json =
            strip_v5_keys(&serde_json::to_string(&report).unwrap()).replace(",\"wall_us\":0", "");
        assert!(!json.contains("wall_us"), "surgery failed: {json}");
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, 3);
        assert_eq!(back.phases[0].wall_us, 0);
        assert_eq!(back, report);
    }

    #[test]
    fn v6_report_without_coreset_block_still_parses() {
        // A v6 writer emitted no `coreset` key at all; the field must
        // default to None under the current reader.
        let mut report = sample_report();
        report.schema_version = 6;
        let json = strip_v7_keys(&serde_json::to_string(&report).unwrap());
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, 6);
        assert!(back.coreset.is_none());
        assert_eq!(back, report);
    }

    #[test]
    fn coreset_block_round_trips() {
        let mut report = sample_report();
        report.coreset = Some(CoresetReport {
            trees: 2,
            max_levels: 5,
            live_buckets: 7,
            compactions: 13,
            builds: 20,
            queries: 6,
            live_weight: 48_000.0,
            ingested_points: 50_000.0,
            lost_points: 2_000.0,
            expired_points: 0.0,
        });
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.coreset.unwrap().compactions, 13);
    }

    #[test]
    fn v5_report_without_timeline_block_still_parses() {
        // A v5 writer emitted no `timeline` key at all; the field must
        // default to None under the current reader.
        let mut report = sample_report();
        report.schema_version = 5;
        let json = strip_v6_keys(&serde_json::to_string(&report).unwrap());
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, 5);
        assert!(back.timeline.is_none());
        assert_eq!(back, report);
    }

    #[test]
    fn v4_report_without_orchestrator_block_still_parses() {
        // A v4 writer emitted no `orchestrator` key at all; the field must
        // default to None under the current reader.
        let mut report = sample_report();
        report.schema_version = 4;
        let json = strip_v5_keys(&serde_json::to_string(&report).unwrap());
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, 4);
        assert!(back.orchestrator.is_none());
        assert_eq!(back, report);
    }

    #[test]
    fn orchestrator_block_round_trips() {
        let mut report = sample_report();
        report.orchestrator = Some(OrchestratorReport {
            jobs: 4,
            cells_total: 8,
            cells_resumed: 3,
            cells_executed: 5,
            checkpoints_written: 5,
            checkpoints_invalid: 1,
            interrupted: false,
            budget_peak_bytes: 1 << 20,
            steals: 2,
        });
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.orchestrator.unwrap().cells_resumed, 3);
    }

    #[test]
    fn run_report_round_trips_losslessly() {
        let report = sample_report();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn total_points_sums_cells() {
        let mut report = sample_report();
        report.cells.push(CellReport {
            cell: "1".to_string(),
            total_points: 250,
            expected_points: 250.0,
            lost_points: 0.0,
            lost_chunks: 0,
            degraded: false,
            chunks: Vec::new(),
            merge: MergeReport {
                input_centroids: 0,
                epm: 0.0,
                mse: 0.0,
                iterations: 0,
                converged: false,
                elapsed: Duration::ZERO,
            },
        });
        assert_eq!(report.total_points(), 1250);
    }

    #[test]
    fn empty_report_has_schema_version() {
        let report = RunReport::new();
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.total_points(), 0);
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
