//! Tunable observability knobs, previously hard-coded constants.

use serde::{Deserialize, Serialize};

/// Default capacity of the in-memory trace ring buffer.
pub const DEFAULT_TRACE_RING_CAPACITY: usize = 8192;

/// Default queue-depth sampling interval: observe the depth histogram on
/// every successful send.
pub const DEFAULT_QUEUE_DEPTH_SAMPLE_INTERVAL: u64 = 1;

/// Configuration for the observability layer.
///
/// Carried by a `Recorder`; consumers (the stream executor's smart queues,
/// CLI sink construction) read the knobs from there. The defaults reproduce
/// the previous hard-coded behaviour exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Capacity of in-memory trace ring buffers built from this config.
    pub trace_ring_capacity: usize,
    /// Sample the queue-depth histogram on every Nth successful send
    /// (1 = every send). Values below 1 are treated as 1.
    pub queue_depth_sample_interval: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            trace_ring_capacity: DEFAULT_TRACE_RING_CAPACITY,
            queue_depth_sample_interval: DEFAULT_QUEUE_DEPTH_SAMPLE_INTERVAL,
        }
    }
}

impl ObsConfig {
    /// The depth-sampling interval, clamped to at least 1.
    pub fn depth_sample_interval(&self) -> u64 {
        self.queue_depth_sample_interval.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_preserve_previous_behaviour() {
        let cfg = ObsConfig::default();
        assert_eq!(cfg.trace_ring_capacity, 8192);
        assert_eq!(cfg.queue_depth_sample_interval, 1);
        assert_eq!(cfg.depth_sample_interval(), 1);
    }

    #[test]
    fn zero_interval_clamps_to_one() {
        let cfg = ObsConfig { queue_depth_sample_interval: 0, ..ObsConfig::default() };
        assert_eq!(cfg.depth_sample_interval(), 1);
    }
}
