//! End-to-end exporter tests: bind port 0, speak raw HTTP over a
//! `TcpStream`, and check every route's status, content type, and body.

use pmkm_obs::profile::{ManualClock, Profiler};
use pmkm_obs::{MetricsServer, Recorder, RunReport};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// One raw HTTP/1.1 GET; returns (status line, headers, body).
fn get(addr: SocketAddr, path: &str) -> (String, String, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: pmkm\r\nConnection: close\r\n\r\n"))
}

fn request(addr: SocketAddr, raw: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

fn header<'h>(headers: &'h str, name: &str) -> Option<&'h str> {
    headers.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        (k.trim().eq_ignore_ascii_case(name)).then(|| v.trim())
    })
}

#[test]
fn exporter_serves_all_three_routes() {
    let clock = Arc::new(ManualClock::new());
    let prof = Arc::new(Profiler::with_clock(clock.clone()));
    let rec = Arc::new(Recorder::new().with_profiler(prof.clone()));
    rec.registry().counter("chunks_total").add(7);
    rec.registry().histogram("chunk_points", &[10.0, 100.0]).observe(42.0);
    {
        let _g = prof.enter("partial");
        clock.advance_us(25);
    }

    let server = MetricsServer::serve("127.0.0.1:0", Arc::clone(&rec)).expect("bind port 0");
    let addr = server.local_addr();
    assert_ne!(addr.port(), 0, "port 0 must resolve to a real port");

    // /metrics — Prometheus text with the registered instruments.
    let (status, headers, body) = get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(header(&headers, "content-type"), Some("text/plain; version=0.0.4; charset=utf-8"));
    assert_eq!(
        header(&headers, "content-length").map(|v| v.parse::<usize>().unwrap()),
        Some(body.len())
    );
    assert!(body.contains("chunks_total 7"), "metrics body: {body}");
    assert!(body.contains("chunk_points_bucket{le=\"+Inf\"} 1"), "metrics body: {body}");

    // /report.json before set_report — a live snapshot with current
    // metrics and profiler phases.
    let (status, headers, body) = get(addr, "/report.json");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    let live: RunReport = serde_json::from_str(&body).expect("live report parses");
    assert!(live.cells.is_empty());
    assert_eq!(live.metrics.counters[0].name, "chunks_total");
    assert_eq!(live.phases.len(), 1);
    assert_eq!(live.phases[0].path, "partial");
    assert_eq!(live.phases[0].total_us, 25);

    // /healthz — parseable liveness JSON.
    let (status, headers, body) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    assert!(body.contains("\"status\":\"ok\""), "healthz body: {body}");

    // After set_report the stored document is served verbatim.
    let mut done = RunReport::new();
    done.phases = prof.phase_rows();
    server.set_report(done.clone());
    let (_, _, body) = get(addr, "/report.json");
    let back: RunReport = serde_json::from_str(&body).expect("final report parses");
    assert_eq!(back, done);

    server.shutdown();
}

#[test]
fn exporter_serves_status_with_live_worker_rows() {
    use pmkm_obs::timeline::{Timeline, WorkerState};
    use pmkm_obs::{StatusCell, StatusSnapshot, STATUS_SCHEMA_VERSION};

    let timeline = Arc::new(Timeline::new());
    let rec = Arc::new(Recorder::new().with_timeline(Arc::clone(&timeline)));
    let status = Arc::new(StatusCell::new());
    let server = MetricsServer::serve_full(
        "127.0.0.1:0",
        Arc::clone(&rec),
        2,
        None,
        Some(Arc::clone(&status)),
    )
    .expect("bind");
    let addr = server.local_addr();

    // Idle snapshot before the orchestrator publishes anything.
    let (st, headers, body) = get(addr, "/status");
    assert_eq!(st, "HTTP/1.1 200 OK");
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    let snap: StatusSnapshot = serde_json::from_str(&body).expect("status parses");
    assert_eq!(snap.schema, STATUS_SCHEMA_VERSION);
    assert_eq!(snap.state, "idle");

    // After a publish plus worker activity, the document carries the
    // orchestrator's numbers and worker rows refreshed from the timeline.
    let lane = rec.register_worker("w0").expect("timeline attached");
    rec.worker_state(lane, WorkerState::Partial);
    let mut running = StatusSnapshot::new();
    running.state = "running".into();
    running.cells_total = 4;
    running.cells_done = 1;
    running.mass_ratio = 1.0;
    status.publish(running);
    let (_, _, body) = get(addr, "/status");
    let snap: StatusSnapshot = serde_json::from_str(&body).expect("status parses");
    assert_eq!(snap.state, "running");
    assert_eq!((snap.cells_total, snap.cells_done), (4, 1));
    assert_eq!(snap.workers.len(), 1);
    assert_eq!(snap.workers[0].worker, "w0");
    assert_eq!(snap.workers[0].state, "partial");

    server.shutdown();

    // A server without a status source 404s the route.
    let bare = MetricsServer::serve("127.0.0.1:0", Arc::new(Recorder::new())).expect("bind");
    let (st, _, _) = get(bare.local_addr(), "/status");
    assert_eq!(st, "HTTP/1.1 404 Not Found");
    bare.shutdown();
}

#[test]
fn exporter_rejects_unknown_paths_and_methods() {
    let rec = Arc::new(Recorder::new());
    let server = MetricsServer::serve("127.0.0.1:0", rec).expect("bind");
    let addr = server.local_addr();

    let (status, _, _) = get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    let (status, _, _) =
        request(addr, "POST /metrics HTTP/1.1\r\nHost: pmkm\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");

    // Query strings route to the bare path.
    let (status, _, _) = get(addr, "/healthz?probe=1");
    assert_eq!(status, "HTTP/1.1 200 OK");

    server.shutdown();
}

#[test]
fn exporter_answers_concurrent_scrapes_from_the_worker_pool() {
    let rec = Arc::new(Recorder::new());
    rec.registry().counter("chunks_total").add(11);
    let server = MetricsServer::serve("127.0.0.1:0", Arc::clone(&rec)).expect("bind");
    let addr = server.local_addr();

    // More clients than pool workers, all firing at once across every
    // route; each must get a complete, well-formed response.
    let paths = ["/metrics", "/report.json", "/healthz"];
    let barrier = Arc::new(std::sync::Barrier::new(paths.len() * 4));
    let threads: Vec<_> = (0..paths.len() * 4)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            let path = paths[i % paths.len()];
            std::thread::spawn(move || {
                barrier.wait();
                get(addr, path)
            })
        })
        .collect();
    for (i, t) in threads.into_iter().enumerate() {
        let (status, headers, body) = t.join().expect("scraper thread");
        assert_eq!(status, "HTTP/1.1 200 OK", "client {i}");
        assert_eq!(
            header(&headers, "content-length").map(|v| v.parse::<usize>().unwrap()),
            Some(body.len()),
            "client {i} got a truncated body"
        );
        match i % paths.len() {
            0 => assert!(body.contains("chunks_total 11"), "client {i}: {body}"),
            1 => {
                let live: RunReport = serde_json::from_str(&body).expect("report parses");
                assert_eq!(live.metrics.counters[0].name, "chunks_total");
            }
            _ => assert!(body.contains("\"status\":\"ok\""), "client {i}: {body}"),
        }
    }

    // A slow client holding one worker must not block other scrapes.
    let mut idle = TcpStream::connect(addr).expect("slow client connects");
    idle.write_all(b"GET /metrics HTTP/1.1\r\n").expect("partial request");
    let (status, _, _) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK", "healthz stuck behind a stalled scraper");
    drop(idle);

    server.shutdown();
}

#[test]
fn exporter_streams_ledger_events_and_tolerates_slow_consumers() {
    use pmkm_obs::{LedgerRecord, LedgerSink};

    let ledger = Arc::new(LedgerSink::in_memory());
    let rec = Arc::new(Recorder::new().with_sink(Arc::clone(&ledger) as _));
    rec.event("chunk.close", &[("cell", 3u64.into()), ("points", 500u64.into())]);
    let server = MetricsServer::serve_with_ledger("127.0.0.1:0", Arc::clone(&rec), ledger.clone())
        .expect("bind");
    let addr = server.local_addr();

    // /ledger.jsonl — the whole journal (header + our event) as NDJSON.
    let (status, headers, body) = get(addr, "/ledger.jsonl");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(header(&headers, "content-type"), Some("application/x-ndjson"));
    let records: Vec<LedgerRecord> =
        body.lines().map(|l| serde_json::from_str(l).expect("record parses")).collect();
    assert_eq!(records[0].name, "ledger.open");
    assert!(records.iter().any(|r| r.name == "chunk.close"), "{body}");
    let last_seq = records.last().unwrap().seq;

    // /events?after=0 answers immediately when records past the cursor
    // already exist (seq 0, the header, sits before it).
    let (status, _, body) = get(addr, "/events?after=0");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("chunk.close"), "{body}");

    // A long-poll past the cursor blocks until a new event lands; feed one
    // from another thread mid-poll and check it comes back alone.
    let feeder = {
        let rec = Arc::clone(&rec);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(150));
            rec.event("merge.done", &[("cell", 3u64.into())]);
        })
    };
    let (status, _, body) = get(addr, &format!("/events?after={last_seq}"));
    feeder.join().unwrap();
    assert_eq!(status, "HTTP/1.1 200 OK");
    let fresh: Vec<LedgerRecord> =
        body.lines().map(|l| serde_json::from_str(l).expect("record parses")).collect();
    assert_eq!(fresh.len(), 1, "{body}");
    assert_eq!(fresh[0].name, "merge.done");
    assert!(fresh[0].seq > last_seq);

    // Slow consumers — one client parked in a long-poll with nothing to
    // deliver, one stalled mid-request — must not starve other routes out
    // of the worker pool.
    let parked = std::thread::spawn(move || get(addr, "/events?after=999999"));
    let mut stalled = TcpStream::connect(addr).expect("stalled client connects");
    stalled.write_all(b"GET /events HTTP/1.1\r\n").expect("partial request");
    std::thread::sleep(std::time::Duration::from_millis(50));
    for path in ["/healthz", "/metrics", "/ledger.jsonl"] {
        let (status, _, _) = get(addr, path);
        assert_eq!(status, "HTTP/1.1 200 OK", "{path} stuck behind slow /events consumers");
    }
    drop(stalled);
    // The parked poll eventually answers (empty — nothing new arrived).
    let (status, _, body) = parked.join().expect("parked poller");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.is_empty(), "expected an empty long-poll window, got: {body}");

    server.shutdown();

    // Without a ledger the streaming routes 404 with a hint.
    let bare = MetricsServer::serve("127.0.0.1:0", Arc::new(Recorder::new())).expect("bind");
    for path in ["/events", "/ledger.jsonl"] {
        let (status, _, body) = get(bare.local_addr(), path);
        assert_eq!(status, "HTTP/1.1 404 Not Found", "{path}");
        assert!(body.contains("no ledger attached"), "{path}: {body}");
    }
    bare.shutdown();
}

#[test]
fn exporter_survives_shutdown_while_idle_and_frees_port_eventually() {
    let rec = Arc::new(Recorder::new());
    let server = MetricsServer::serve("127.0.0.1:0", Arc::clone(&rec)).expect("bind");
    let addr = server.local_addr();
    server.shutdown();
    // The accept loop is gone: a fresh connection must not be answered.
    if let Ok(mut s) = TcpStream::connect(addr) {
        let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let mut buf = String::new();
        s.set_read_timeout(Some(std::time::Duration::from_millis(500))).unwrap();
        let n = s.read_to_string(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server answered after shutdown: {buf}");
    }
}
