//! The seeded chaos suite: deterministic fault schedules driven through the
//! full pipeline.
//!
//! Every schedule is a pure function of its seed, so each scenario replays
//! byte-for-byte: `PMKM_CHAOS_SEED=<s1>,<s2>,…` reproduces a failing seed
//! exactly (the CI chaos job pins a fixed matrix the same way). The
//! invariants checked here are the tentpole's contract:
//!
//! 1. a zero-fault run is bit-identical to the engine's pre-fault-layer
//!    output (pinned below),
//! 2. every faulted tolerant run either errors cleanly or conserves mass
//!    over the surviving chunks (`received + lost == expected`) with finite
//!    E_pm,
//! 3. recoverable faults (transient scan errors, one-shot panics) leave the
//!    results bit-identical to the fault-free run,
//! 4. the strict policy never emits degraded results — it fails.

use pmkm_core::KMeansConfig;
use pmkm_stream::fault::InjectedPanic;
use pmkm_stream::prelude::*;
use pmkm_stream::{EngineReport, FaultPlan, FaultPolicy};
use std::path::PathBuf;
use std::sync::Once;

/// Keeps injected panics out of the test output (real panics still print).
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The chaos seed matrix: `PMKM_CHAOS_SEED=11,23` overrides the default.
fn seeds() -> Vec<u64> {
    match std::env::var("PMKM_CHAOS_SEED") {
        Ok(v) => v
            .split(',')
            .map(|s| s.trim().parse().expect("PMKM_CHAOS_SEED must be comma-separated u64s"))
            .collect(),
        Err(_) => vec![11, 23, 47],
    }
}

fn write_cell(dir: &std::path::Path, idx: u16, n: usize, seed: u64) -> PathBuf {
    use pmkm_core::PointSource;
    use rand::Rng;
    let mut rng = pmkm_core::seeding::rng_for(seed, idx as u64);
    let mut points = pmkm_core::Dataset::new(2).unwrap();
    for _ in 0..n {
        let blob = if rng.gen_bool(0.5) { 0.0 } else { 40.0 };
        points.push(&[blob + rng.gen_range(-1.0..1.0), blob + rng.gen_range(-1.0..1.0)]).unwrap();
    }
    assert_eq!(points.len(), n);
    let cell = pmkm_data::GridCell::new(idx, idx).unwrap();
    let path = dir.join(cell.bucket_file_name());
    pmkm_data::GridBucket { cell, points }.write_to(&path).unwrap();
    path
}

/// The standard chaos workload: two cells (indices 722 and 1083) of 180 and
/// 120 points, k = 3, fixed 40-point chunks → 5 + 3 chunks.
fn workload(tag: &str) -> (std::path::PathBuf, PhysicalPlan) {
    let dir = std::env::temp_dir().join(format!("pmkm_chaos_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths = vec![write_cell(&dir, 2, 180, 1234), write_cell(&dir, 3, 120, 1234)];
    let logical =
        LogicalPlan::new(paths, KMeansConfig { restarts: 2, ..KMeansConfig::paper(3, 42) });
    let plan = optimize_fixed_split(logical, &Resources::fixed(1 << 20, 2), 40);
    (dir, plan)
}

fn centroid_bits(report: &EngineReport, cell_index: u32) -> Vec<u64> {
    let cell = report.cells.iter().find(|c| c.cell.index() == cell_index).unwrap();
    cell.output.centroids.iter().flat_map(|p| p.iter().map(|v| v.to_bits())).collect()
}

fn weight_bits(report: &EngineReport, cell_index: u32) -> Vec<u64> {
    let cell = report.cells.iter().find(|c| c.cell.index() == cell_index).unwrap();
    cell.output.cluster_weights.iter().map(|v| v.to_bits()).collect()
}

fn epm_bits(report: &EngineReport, cell_index: u32) -> u64 {
    report.cells.iter().find(|c| c.cell.index() == cell_index).unwrap().output.epm.to_bits()
}

/// The engine's output on this workload before the fault layer existed,
/// captured bit-for-bit from the pre-PR build. The zero-fault path must
/// reproduce it exactly — the fault layer may cost nothing when idle.
mod pinned {
    pub const CELL_A: u32 = 722;
    pub const CELL_B: u32 = 1083;
    pub const EPM_A: u64 = 0x403b3b5b2ec1843c;
    pub const EPM_B: u64 = 0x4032aced0b40c065;
    pub const CENTROIDS_A: [u64; 6] = [
        0x4044171e385db843,
        0x404413669edc3071,
        0xbfab0d982696a2f3,
        0x3facf7acd7ce2afd,
        0x4043e9a0476993da,
        0x4043d8ee6c93d4be,
    ];
    pub const CENTROIDS_B: [u64; 6] = [
        0x4043f55937ff88ae,
        0x404404ace5645acc,
        0x3fb1812d424bae86,
        0xbfceb343f574a16f,
        0xbfd9d06436987bf6,
        0x3fd70f2c694a3ff1,
    ];
    pub const WEIGHTS_A: [u64; 3] = [0x4046000000000000, 0x4054400000000000, 0x404b800000000000];
    pub const WEIGHTS_B: [u64; 3] = [0x404c800000000000, 0x4047000000000000, 0x4031000000000000];
}

fn assert_matches_pinned(report: &EngineReport) {
    assert_eq!(report.cells.len(), 2);
    assert_eq!(epm_bits(report, pinned::CELL_A), pinned::EPM_A);
    assert_eq!(epm_bits(report, pinned::CELL_B), pinned::EPM_B);
    assert_eq!(centroid_bits(report, pinned::CELL_A), pinned::CENTROIDS_A);
    assert_eq!(centroid_bits(report, pinned::CELL_B), pinned::CENTROIDS_B);
    assert_eq!(weight_bits(report, pinned::CELL_A), pinned::WEIGHTS_A);
    assert_eq!(weight_bits(report, pinned::CELL_B), pinned::WEIGHTS_B);
    assert_eq!(report.cells[0].chunks.len(), 5);
    assert_eq!(report.cells[1].chunks.len(), 3);
    assert!(!report.degraded);
    for c in &report.cells {
        assert!(!c.degraded);
        assert_eq!(c.lost_points, 0.0);
        assert_eq!(c.lost_chunks, 0);
    }
}

/// Mass conservation over surviving chunks, per cell and run-wide.
fn assert_mass_invariants(report: &EngineReport) {
    for c in &report.cells {
        let received: f64 = c.output.cluster_weights.iter().sum();
        assert!(
            (received + c.lost_points - c.expected_points).abs() < 1e-6,
            "cell {}: received {} + lost {} != expected {}",
            c.cell.index(),
            received,
            c.lost_points,
            c.expected_points
        );
        let expect = if c.cell.index() == pinned::CELL_A { 180.0 } else { 120.0 };
        assert_eq!(c.expected_points, expect, "cell {}", c.cell.index());
        assert!(received > 0.0);
        assert!(c.output.epm.is_finite() && c.output.epm >= 0.0, "cell {}", c.cell.index());
        assert!(c.output.cluster_weights.iter().all(|w| *w > 0.0 && w.is_finite()));
        assert_eq!(c.degraded, c.lost_points > 0.0, "cell {}", c.cell.index());
        if c.lost_chunks > 0 {
            assert!(c.degraded, "cell {} lost chunks but is not degraded", c.cell.index());
        }
    }
    let any_loss = report.faults.scan_failures > 0
        || report.faults.chunks_quarantined > 0
        || report.faults.cells_degraded > 0;
    assert_eq!(report.degraded, any_loss);
}

#[test]
fn zero_fault_run_is_bit_identical_to_pre_pr_output() {
    let (dir, plan) = workload("pinned");
    // The historical entry point (strict policy, no fault plan)…
    let clean = execute(&plan).unwrap();
    assert_matches_pinned(&clean);
    assert!(!clean.faults.any());
    // …and the fault-layer entry point with an empty schedule.
    let with_plan = execute_with_faults(&plan, None, Some(FaultPlan::none(7))).unwrap();
    assert_matches_pinned(&with_plan);
    assert!(!with_plan.faults.any());
    // A tolerant policy with nothing to tolerate also changes nothing.
    let mut tolerant_plan = plan;
    tolerant_plan.fault_policy = FaultPolicy::tolerant();
    let tolerant = execute_with_faults(&tolerant_plan, None, None).unwrap();
    assert_matches_pinned(&tolerant);
    assert!(!tolerant.faults.any());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recoverable_faults_reproduce_the_fault_free_result() {
    quiet_injected_panics();
    let (dir, plan) = workload("recover");
    let mut plan = plan;
    plan.fault_policy = FaultPolicy::tolerant();
    // Every chunk panics once; every scan batch fails once. All of it is
    // recoverable, so the output must be bit-identical to the pinned run.
    let fault_plan = FaultPlan {
        scan_error_rate: 1.0,
        scan_permanent_fraction: 0.0,
        panic_rate: 1.0,
        panic_sticky_fraction: 0.0,
        ..FaultPlan::none(5)
    };
    let report = execute_with_faults(&plan, None, Some(fault_plan)).unwrap();
    assert_matches_pinned(&report);
    assert!(report.faults.worker_panics >= 8, "got {:?}", report.faults);
    assert!(report.faults.scan_retries > 0);
    assert_eq!(report.faults.chunks_quarantined, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_matrix_conserves_surviving_mass() {
    quiet_injected_panics();
    for seed in seeds() {
        let (dir, plan) = workload(&format!("matrix_{seed}"));
        let mut plan = plan;
        plan.fault_policy = FaultPolicy::tolerant();
        for fault_plan in [FaultPlan::light(seed), FaultPlan::heavy(seed)] {
            let run = || execute_with_faults(&plan, None, Some(fault_plan.clone()));
            match run() {
                Ok(report) => {
                    assert_mass_invariants(&report);
                    // Replays are byte-identical: same cells, same bits,
                    // same failure counters.
                    let again = run().unwrap();
                    assert_eq!(report.faults, again.faults, "seed {seed}");
                    assert_eq!(report.degraded, again.degraded, "seed {seed}");
                    assert_eq!(report.cells.len(), again.cells.len(), "seed {seed}");
                    for c in &report.cells {
                        assert_eq!(
                            centroid_bits(&report, c.cell.index()),
                            centroid_bits(&again, c.cell.index()),
                            "seed {seed} cell {}",
                            c.cell.index()
                        );
                    }
                }
                Err(e) => panic!("tolerant policy must survive seed {seed}: {e}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The orchestrator under the chaos matrix: light and heavy schedules with
/// the tolerant policy conserve mass **across all cells** — planet-wide,
/// Σ(received + lost) == Σ expected — and replay byte-identically.
#[test]
fn orchestrator_chaos_matrix_conserves_planet_mass() {
    use pmkm_stream::{orchestrate, OrchestratorOptions};
    for seed in seeds() {
        let dir =
            std::env::temp_dir().join(format!("pmkm_chaos_orch_{seed}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let paths = vec![
            write_cell(&dir, 2, 180, 1234),
            write_cell(&dir, 3, 120, 1234),
            write_cell(&dir, 4, 150, 1234),
            write_cell(&dir, 5, 90, 1234),
        ];
        let expected_total = 180.0 + 120.0 + 150.0 + 90.0;
        quiet_injected_panics();
        let logical =
            LogicalPlan::new(paths, KMeansConfig { restarts: 2, ..KMeansConfig::paper(3, 42) });
        let mut plan = optimize_fixed_split(logical, &Resources::fixed(1 << 20, 2), 40);
        plan.fault_policy = FaultPolicy::tolerant();
        for fault_plan in [FaultPlan::light(seed), FaultPlan::heavy(seed)] {
            let run =
                || orchestrate(&plan, &OrchestratorOptions::new(3), None, Some(fault_plan.clone()));
            let planet = run().unwrap_or_else(|e| {
                panic!("tolerant orchestrated run must survive seed {seed}: {e}")
            });
            assert_eq!(planet.cells.len(), 4, "seed {seed}: an outcome went missing");
            // Planet-wide conservation over surviving cells; a cell whose
            // every chunk was quarantined reports no clustering and must be
            // flagged degraded.
            let received = planet.received_points();
            let lost = planet.lost_points();
            let expected = planet.expected_points();
            assert!(
                (received + lost - expected).abs() < 1e-6,
                "seed {seed}: received {received} + lost {lost} != expected {expected}"
            );
            assert!(expected <= expected_total + 1e-6, "seed {seed}");
            if planet.clusterings().count() == 4 {
                assert_eq!(expected, expected_total, "seed {seed}");
            } else {
                assert!(planet.degraded, "seed {seed}: lost a whole cell silently");
            }
            // Per-cell accounting also balances.
            for c in &planet.cells {
                if let Some(cl) = &c.clustering {
                    let got: f64 = cl.output.cluster_weights.iter().sum();
                    assert!(
                        (got + cl.lost_points - cl.expected_points).abs() < 1e-6,
                        "seed {seed} cell {}",
                        c.input
                    );
                    assert!(cl.output.epm.is_finite() && cl.output.epm >= 0.0);
                }
            }
            // Replays are byte-identical, worker count notwithstanding.
            let again = run().unwrap();
            assert_eq!(planet.faults, again.faults, "seed {seed}");
            assert_eq!(planet.degraded, again.degraded, "seed {seed}");
            for (a, b) in planet.cells.iter().zip(&again.cells) {
                match (&a.clustering, &b.clustering) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.output.centroids, y.output.centroids, "seed {seed}");
                        assert_eq!(x.output.epm.to_bits(), y.output.epm.to_bits());
                    }
                    _ => panic!("seed {seed}: replay diverged on cell {}", a.input),
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The pinned workload converted to GB02 block containers reproduces the
/// exact pre-PR bits through every backend × codec at 1 and 4 workers:
/// storage format, compression, prefetch, and parallelism are all
/// invisible to the clustering output.
#[test]
fn gb02_backends_reproduce_pinned_bits_any_worker_count() {
    use pmkm_data::{BackendKind, Codec};
    let (dir, base_plan) = workload("gb02_ident");
    // Convert each bucket in place to GB02 with a block size deliberately
    // misaligned with the 40-point chunks (37), so batching is reshaped.
    let gb02_paths: Vec<PathBuf> =
        base_plan.logical.inputs.iter().map(|p| p.with_extension("gb2")).collect();
    for codec in Codec::ALL {
        for (src, dst) in base_plan.logical.inputs.iter().zip(&gb02_paths) {
            let bucket = pmkm_data::GridBucket::read_from(src).unwrap();
            pmkm_data::write_gb02(&bucket, dst, codec, 37).unwrap();
        }
        for backend in BackendKind::ALL {
            for workers in [1usize, 4] {
                let logical = LogicalPlan::new(
                    gb02_paths.clone(),
                    KMeansConfig { restarts: 2, ..KMeansConfig::paper(3, 42) },
                );
                let mut plan =
                    optimize_fixed_split(logical, &Resources::fixed(1 << 20, workers), 40);
                plan.scan_backend = backend;
                let report = execute(&plan).unwrap();
                assert_matches_pinned(&report);
                assert_mass_invariants(&report);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The chaos matrix over the sim-object-store backend: GET-level
/// flakiness (a fault channel the other backends never roll) composes
/// with scan/panic injection, and tolerant runs still conserve surviving
/// mass and replay byte-identically.
#[test]
fn gb02_sim_store_chaos_matrix_conserves_mass() {
    use pmkm_data::{BackendKind, Codec};
    quiet_injected_panics();
    for seed in seeds() {
        let (dir, base_plan) = workload(&format!("gb02_chaos_{seed}"));
        let gb02_paths: Vec<PathBuf> = base_plan
            .logical
            .inputs
            .iter()
            .map(|p| {
                let bucket = pmkm_data::GridBucket::read_from(p).unwrap();
                let dst = p.with_extension("gb2");
                pmkm_data::write_gb02(&bucket, &dst, Codec::ShuffleRle, 37).unwrap();
                dst
            })
            .collect();
        let logical = LogicalPlan::new(
            gb02_paths,
            KMeansConfig { restarts: 2, ..KMeansConfig::paper(3, 42) },
        );
        let mut plan = optimize_fixed_split(logical, &Resources::fixed(1 << 20, 2), 40);
        plan.fault_policy = FaultPolicy::tolerant();
        plan.scan_backend = BackendKind::SimObjectStore;
        for fault_plan in [FaultPlan::light(seed), FaultPlan::heavy(seed)] {
            let run = || execute_with_faults(&plan, None, Some(fault_plan.clone()));
            let report =
                run().unwrap_or_else(|e| panic!("tolerant policy must survive seed {seed}: {e}"));
            assert_mass_invariants(&report);
            let again = run().unwrap();
            assert_eq!(report.faults, again.faults, "seed {seed}");
            assert_eq!(report.degraded, again.degraded, "seed {seed}");
            for c in &report.cells {
                assert_eq!(
                    centroid_bits(&report, c.cell.index()),
                    centroid_bits(&again, c.cell.index()),
                    "seed {seed} cell {}",
                    c.cell.index()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn strict_policy_fails_cleanly_instead_of_degrading() {
    quiet_injected_panics();
    for seed in seeds() {
        let (dir, plan) = workload(&format!("strict_{seed}"));
        // Strict policy (the plan default): a heavy schedule must surface
        // as a clean error, never as silently-degraded output.
        // A clean `Err` is the contract; `Ok` is only possible if this
        // seed's schedule injected nothing fatal into this workload —
        // then the output must be pristine.
        if let Ok(report) = execute_with_faults(&plan, None, Some(FaultPlan::heavy(seed))) {
            assert!(!report.degraded, "seed {seed}");
            assert_eq!(report.faults.chunks_quarantined, 0, "seed {seed}");
            assert_matches_pinned(&report);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn degraded_run_report_round_trips_and_flags_loss() {
    quiet_injected_panics();
    let (dir, plan) = workload("report");
    let mut plan = plan;
    plan.fault_policy = FaultPolicy::tolerant();
    // Sticky-panic every chunk of cell B's range? Simplest guaranteed loss:
    // poison every chunk; quarantine then drops each poisoned one.
    let fault_plan = FaultPlan { poison_rate: 1.0, ..FaultPlan::none(3) };
    let report = execute_with_faults(&plan, None, Some(fault_plan)).unwrap();
    // Every chunk was poisoned and quarantined: no cells survive, the run
    // is degraded, and the counters say why.
    assert!(report.cells.is_empty());
    assert!(report.degraded);
    assert_eq!(report.faults.chunks_poisoned, 8);
    assert_eq!(report.faults.chunks_quarantined, 8);
    assert_eq!(report.faults.cells_degraded, 2);

    let run_report = report.run_report(None);
    assert!(run_report.degraded);
    assert_eq!(run_report.faults, report.faults);
    let json = serde_json::to_string(&run_report).unwrap();
    let back: pmkm_obs::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, run_report);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partial_loss_marks_only_the_hit_cell_degraded() {
    quiet_injected_panics();
    // Find a seed whose heavy schedule quarantines some but not all chunks
    // and leaves at least one cell fully intact — then check per-cell
    // accounting end-to-end.
    for seed in 0..200u64 {
        let fault_plan = FaultPlan { poison_rate: 0.2, ..FaultPlan::none(seed) };
        let hit_a = (0..5).any(|id| fault_plan.chunk_fault(722, id).is_some());
        let hit_b = (0..3).any(|id| fault_plan.chunk_fault(1083, id).is_some());
        if !(hit_a ^ hit_b) {
            continue;
        }
        let (dir, plan) = workload(&format!("partial_{seed}"));
        let mut plan = plan;
        plan.fault_policy = FaultPolicy::tolerant();
        let report = execute_with_faults(&plan, None, Some(fault_plan)).unwrap();
        assert_mass_invariants(&report);
        assert!(report.degraded);
        let degraded: Vec<bool> = report.cells.iter().map(|c| c.degraded).collect();
        assert!(degraded.iter().any(|d| *d) && !degraded.iter().all(|d| *d), "seed {seed}");
        let clean = report.cells.iter().find(|c| !c.degraded).unwrap();
        assert_eq!(clean.lost_points, 0.0);
        assert_eq!(clean.lost_chunks, 0);
        let hurt = report.cells.iter().find(|c| c.degraded).unwrap();
        assert!(hurt.lost_points > 0.0 && hurt.lost_chunks > 0);
        // Lost mass is a whole number of points on this workload.
        assert_eq!(hurt.lost_points.fract(), 0.0);
        std::fs::remove_dir_all(&dir).ok();
        return;
    }
    panic!("no seed under 200 hits exactly one cell");
}

/// The coreset path under the chaos matrix: a quarantined chunk's mass is
/// debited from the tree's audit exactly like the merge path's, the audit
/// balances through compaction (`ingested + lost == expected`), and the
/// live-bucket bound survives arbitrary fault schedules.
#[test]
fn coreset_chaos_matrix_conserves_mass_through_compaction() {
    quiet_injected_panics();
    for seed in seeds() {
        let (dir, plan) = workload(&format!("coreset_{seed}"));
        let mut plan = plan;
        plan.coreset = Some(pmkm_stream::CoresetSpec::new(12));
        plan.fault_policy = FaultPolicy::tolerant();
        for fault_plan in [FaultPlan::light(seed), FaultPlan::heavy(seed)] {
            let run = || execute_with_faults(&plan, None, Some(fault_plan.clone()));
            let report = run()
                .unwrap_or_else(|e| panic!("tolerant coreset run must survive seed {seed}: {e}"));
            for c in &report.cells {
                let stats = c.coreset.expect("coreset stats on a coreset run");
                // The emitted weights are the tree's live representatives:
                // they carry exactly the ingested mass…
                let received: f64 = c.output.cluster_weights.iter().sum();
                assert!(
                    (received - stats.ingested_points).abs() < 1e-6,
                    "seed {seed} cell {}: weights {} vs ingested {}",
                    c.cell.index(),
                    received,
                    stats.ingested_points
                );
                // …and the audit debits quarantined chunks, balancing the
                // bucket's promise through every compaction.
                assert!(
                    (stats.ingested_points + stats.lost_points - c.expected_points).abs() < 1e-6,
                    "seed {seed} cell {}: ingested {} + lost {} != expected {}",
                    c.cell.index(),
                    stats.ingested_points,
                    stats.lost_points,
                    c.expected_points
                );
                assert_eq!(c.lost_points, stats.lost_points, "seed {seed}");
                assert_eq!(c.degraded, c.lost_points > 0.0 || c.lost_chunks > 0, "seed {seed}");
                if c.lost_chunks > 0 {
                    assert!(stats.lost_points > 0.0, "seed {seed}: lost chunk left no debit");
                }
                // Faults never break the memory bound: live buckets stay
                // within the binary counter's popcount ceiling.
                assert!(stats.builds >= 1, "seed {seed}");
                assert!(
                    stats.live_buckets as u32 <= (stats.builds as usize).ilog2() + 1,
                    "seed {seed}: {} buckets from {} builds",
                    stats.live_buckets,
                    stats.builds
                );
                assert!(c.output.epm.is_finite() && c.output.epm >= 0.0);
            }
            // Replays are byte-identical.
            let again = run().unwrap();
            assert_eq!(report.faults, again.faults, "seed {seed}");
            for c in &report.cells {
                assert_eq!(
                    centroid_bits(&report, c.cell.index()),
                    centroid_bits(&again, c.cell.index()),
                    "seed {seed} cell {}",
                    c.cell.index()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A fault-free coreset run through the fault layer is bit-identical to
/// the plain entry point, and a strict-policy run with guaranteed chunk
/// loss fails cleanly instead of emitting a degraded tree.
#[test]
fn coreset_strict_policy_fails_cleanly_and_idle_fault_layer_costs_nothing() {
    quiet_injected_panics();
    let (dir, plan) = workload("coreset_strict");
    let mut plan = plan;
    plan.coreset = Some(pmkm_stream::CoresetSpec::new(12));

    // Idle fault layer: same bits as the plain path.
    let clean = execute(&plan).unwrap();
    let with_layer = execute_with_faults(&plan, None, Some(FaultPlan::none(7))).unwrap();
    for c in &clean.cells {
        assert_eq!(
            centroid_bits(&clean, c.cell.index()),
            centroid_bits(&with_layer, c.cell.index())
        );
        let stats = c.coreset.expect("coreset stats");
        assert_eq!(stats.lost_points, 0.0);
        assert!(!c.degraded);
    }

    // Poison every chunk under the strict default: a clean error, never a
    // silently-degraded tree.
    let err = execute_with_faults(
        &plan,
        None,
        Some(FaultPlan { poison_rate: 1.0, ..FaultPlan::none(3) }),
    );
    assert!(err.is_err(), "strict policy must refuse lost coreset mass");
    std::fs::remove_dir_all(&dir).ok();
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        // Any seeded schedule under the tolerant policy conserves mass
        // over surviving chunks and keeps every statistic finite.
        #[test]
        fn tolerant_runs_conserve_surviving_mass(
            seed in any::<u64>(),
            scan_error_rate in 0.0..0.4f64,
            scan_permanent_fraction in 0.0..1.0f64,
            truncate_rate in 0.0..0.3f64,
            poison_rate in 0.0..0.3f64,
            panic_rate in 0.0..0.4f64,
            panic_sticky_fraction in 0.0..1.0f64,
        ) {
            quiet_injected_panics();
            let fault_plan = FaultPlan {
                seed,
                scan_error_rate,
                scan_permanent_fraction,
                truncate_rate,
                poison_rate,
                panic_rate,
                panic_sticky_fraction,
                ..FaultPlan::none(seed)
            };
            let (dir, plan) = workload(&format!("prop_{seed}"));
            let mut plan = plan;
            plan.fault_policy = FaultPolicy::tolerant();
            let report = execute_with_faults(&plan, None, Some(fault_plan))
                .expect("tolerant policy must survive any schedule");
            for c in &report.cells {
                let received: f64 = c.output.cluster_weights.iter().sum();
                prop_assert!((received + c.lost_points - c.expected_points).abs() < 1e-6);
                prop_assert!(c.output.epm.is_finite() && c.output.epm >= 0.0);
                prop_assert!(c.output.mse.is_finite());
            }
            // Loss only ever shows up flagged.
            let lost_any = report.cells.iter().any(|c| c.lost_points > 0.0)
                || report.faults.scan_failures > 0
                || report.faults.chunks_quarantined > 0;
            if lost_any {
                prop_assert!(report.degraded);
            } else if report.cells.len() == 2 {
                prop_assert!(!report.degraded);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
