//! The coreset oracle suite: property tests pinning the merge-reduce
//! tree's contract, at the tree level and through the full engine.
//!
//! The invariants checked here are the tentpole's contract:
//!
//! 1. **per-level mass conservation** — the binary-counter tree never
//!    creates or destroys weight: at every level the live representative
//!    weight sums back to the raw mass it stands for, and tree-wide
//!    `live_weight + expired == ingested` exactly (integer masses group
//!    losslessly in f64),
//! 2. **query cost** — an anytime query consumes at most
//!    `live_buckets × size` input points, and `live_buckets` is the
//!    popcount of the chunk counter, ≤ ⌈log₂ chunks⌉ + 1,
//! 3. **scheduling independence** — 1-worker and 4-worker runs are
//!    bit-identical (the coreset operator drains chunks in id order),
//! 4. **anytime = final** — on a finite stream, the last published
//!    anytime query *is* the terminal clustering, bit for bit,
//! 5. **bounded regret** — mid-stream query MSE against the raw prefix
//!    stays within a small constant of the serial weighted-Lloyd
//!    baseline on the same prefix.

use pmkm_core::{CoresetConfig, CoresetTree, Dataset, KMeansConfig, PointSource, WeightedSet};
use pmkm_stream::prelude::*;
use pmkm_stream::CoresetSpec;
use proptest::prelude::*;
use rand::Rng;
use std::path::PathBuf;

/// A deterministic two-blob chunk: `n` unit-weight points alternating
/// between blobs at 0 and 40, perturbed by the seeded RNG.
fn blob_chunk(n: usize, seed: u64, stream: u64) -> WeightedSet {
    let mut rng = pmkm_core::seeding::rng_for(seed, stream);
    let mut set = WeightedSet::new(2).unwrap();
    for i in 0..n {
        let blob = if i % 2 == 0 { 0.0 } else { 40.0 };
        set.push(&[blob + rng.gen_range(-1.0..1.0), blob + rng.gen_range(-1.0..1.0)], 1.0).unwrap();
    }
    set
}

/// `⌈log₂ chunks⌉ + 1`, the ISSUE's live-bucket ceiling.
fn bucket_ceiling(chunks: usize) -> u32 {
    assert!(chunks > 0);
    (usize::BITS - (chunks - 1).leading_zeros()) + 1
}

fn write_cell(dir: &std::path::Path, idx: u16, n: usize, seed: u64) -> PathBuf {
    let mut rng = pmkm_core::seeding::rng_for(seed, idx as u64);
    let mut points = pmkm_core::Dataset::new(2).unwrap();
    for i in 0..n {
        let blob = if i % 2 == 0 { 0.0 } else { 40.0 };
        points.push(&[blob + rng.gen_range(-1.0..1.0), blob + rng.gen_range(-1.0..1.0)]).unwrap();
    }
    let cell = pmkm_data::GridCell::new(idx, idx).unwrap();
    let path = dir.join(cell.bucket_file_name());
    pmkm_data::GridBucket { cell, points }.write_to(&path).unwrap();
    path
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pmkm_cprop_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // (1) Per-level mass conservation, exactly, after every insert: each
    // level's live weight equals the raw mass of the chunks it covers,
    // the binary counter keeps at most one bucket per level, and the
    // tree-wide audit balances without any loss channel.
    #[test]
    fn per_level_mass_conservation_is_exact(
        seed in any::<u64>(),
        chunks in 1usize..48,
        chunk_points in 1usize..40,
        size in 4usize..24,
    ) {
        let mut tree = CoresetTree::new(CoresetConfig::new(size), seed, 7).unwrap();
        for id in 0..chunks {
            tree.insert_chunk(id, blob_chunk(chunk_points, seed, id as u64), chunk_points as f64)
                .unwrap();
            let ingested = ((id + 1) * chunk_points) as f64;
            let hist = tree.level_histogram();
            // Integer masses: grouped sums are exact, so == not ≈.
            let total: f64 = hist.values().map(|(_, w)| w).sum();
            prop_assert_eq!(total, ingested);
            prop_assert_eq!(tree.live_weight(), ingested);
            for (level, (buckets, weight)) in &hist {
                prop_assert_eq!(*buckets, 1, "binary counter: one bucket per level");
                // A level-ℓ bucket covers exactly 2^ℓ chunks.
                prop_assert_eq!(
                    *weight,
                    (chunk_points << level) as f64,
                    "level {} covers 2^{} chunks", level, level
                );
            }
            let stats = tree.stats();
            prop_assert_eq!(stats.lost_points, 0.0);
            prop_assert_eq!(stats.expired_points, 0.0);
            prop_assert_eq!(stats.live_buckets, (id + 1).count_ones() as usize);
        }
    }

    // (2) Query cost: the union an anytime query clusters is bounded by
    // live_buckets × size representatives, and live_buckets by the
    // popcount ≤ ⌈log₂ chunks⌉ + 1 ceiling.
    #[test]
    fn query_cost_is_bounded_by_levels_times_size(
        seed in any::<u64>(),
        chunks in 1usize..64,
        size in 4usize..16,
    ) {
        let mut tree = CoresetTree::new(CoresetConfig::new(size), seed, 3).unwrap();
        for id in 0..chunks {
            tree.insert_chunk(id, blob_chunk(30, seed, id as u64), 30.0).unwrap();
        }
        prop_assert_eq!(tree.live_buckets(), chunks.count_ones() as usize);
        prop_assert!(tree.live_buckets() as u32 <= bucket_ceiling(chunks));
        prop_assert!(tree.union().unwrap().len() <= tree.live_buckets() * size.max(30));
        let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 5) };
        let out = tree.query_now(&cfg, 1).unwrap();
        // The engine-visible cost figure obeys the same bound.
        prop_assert!(out.input_centroids <= tree.live_buckets() * size.max(30));
        prop_assert!(out.mse.is_finite() && out.mse >= 0.0);
    }

    // Sliding window: evicted mass is *expired*, never *lost*, and the
    // audit still balances: live + expired == ingested.
    #[test]
    fn sliding_window_expires_mass_without_losing_it(
        seed in any::<u64>(),
        chunks in 2usize..40,
        window in 1usize..8,
    ) {
        let cfg = CoresetConfig { window: Some(window), ..CoresetConfig::new(8) };
        let mut tree = CoresetTree::new(cfg, seed, 11).unwrap();
        for id in 0..chunks {
            tree.insert_chunk(id, blob_chunk(20, seed, id as u64), 20.0).unwrap();
            let stats = tree.stats();
            prop_assert_eq!(stats.lost_points, 0.0);
            prop_assert_eq!(stats.live_weight + stats.expired_points, stats.ingested_points);
            // Live buckets only ever cover the window.
            for b in tree.buckets() {
                prop_assert!(b.last_chunk + window > id);
            }
        }
        if chunks > window {
            prop_assert!(tree.stats().expired_points > 0.0, "something must expire");
        }
    }

    // Exponential decay: each arriving chunk scales all pre-existing live
    // weight by λ, then adds its own mass — so the live weight follows
    // the recurrence exactly (and stays below the undecayed mass).
    #[test]
    fn decay_follows_the_weight_recurrence(
        seed in any::<u64>(),
        chunks in 2usize..24,
        decay in 0.5f64..0.99,
    ) {
        let cfg = CoresetConfig { decay: Some(decay), ..CoresetConfig::new(8) };
        let mut tree = CoresetTree::new(cfg, seed, 13).unwrap();
        let mut expect = 0.0f64;
        for id in 0..chunks {
            tree.insert_chunk(id, blob_chunk(20, seed, id as u64), 20.0).unwrap();
            expect = expect * decay + 20.0;
            let live = tree.live_weight();
            prop_assert!(
                (live - expect).abs() < 1e-6 * expect,
                "live {} vs recurrence {}", live, expect
            );
            prop_assert!(live < tree.stats().ingested_points || id == 0);
        }
    }
}

/// (2b) The ISSUE's memory-bound proof: a 10×-longer stream keeps live
/// buckets within the same logarithmic ceiling — memory does not grow
/// linearly with stream length.
#[test]
fn ten_times_longer_stream_keeps_live_buckets_logarithmic() {
    let size = 12;
    for chunks in [12usize, 120] {
        let mut tree = CoresetTree::new(CoresetConfig::new(size), 99, 1).unwrap();
        let mut peak = 0usize;
        for id in 0..chunks {
            tree.insert_chunk(id, blob_chunk(25, 99, id as u64), 25.0).unwrap();
            peak = peak.max(tree.live_buckets());
        }
        // Peak over the whole run, not just the final popcount: mid-run
        // the counter holds at most ⌈log₂ chunks⌉ + 1 buckets.
        assert!(
            peak as u32 <= bucket_ceiling(chunks),
            "{chunks} chunks peaked at {peak} live buckets"
        );
        // Live representatives (the actual memory) obey levels × size.
        assert!(tree.union().unwrap().len() <= (tree.max_level() as usize + 1) * size.max(25));
        assert_eq!(tree.stats().ingested_points, (chunks * 25) as f64);
    }
}

/// (3) Scheduling independence through the full engine: the coreset
/// operator drains chunks in id order, so worker count cannot change a
/// single output bit.
#[test]
fn one_and_four_worker_runs_are_bit_identical() {
    let dir = tmpdir("workers");
    let paths = vec![write_cell(&dir, 8, 300, 17), write_cell(&dir, 9, 180, 17)];
    let run = |workers: usize| {
        let logical = LogicalPlan::new(
            paths.clone(),
            KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 23) },
        );
        let mut plan = optimize_fixed_split(logical, &Resources::fixed(1 << 20, workers), 25);
        plan.coreset = Some(CoresetSpec::new(16));
        execute(&plan).unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.cells.len(), 2);
    for (a, b) in one.cells.iter().zip(&four.cells) {
        assert_eq!(a.cell, b.cell);
        let bits = |c: &pmkm_stream::CellClustering| -> Vec<u64> {
            c.output.centroids.iter().flat_map(|p| p.iter().map(|v| v.to_bits())).collect()
        };
        assert_eq!(bits(a), bits(b), "cell {}", a.cell.index());
        assert_eq!(a.output.mse.to_bits(), b.output.mse.to_bits());
        assert_eq!(a.output.epm.to_bits(), b.output.epm.to_bits());
        let wa: Vec<u64> = a.output.cluster_weights.iter().map(|v| v.to_bits()).collect();
        let wb: Vec<u64> = b.output.cluster_weights.iter().map(|v| v.to_bits()).collect();
        assert_eq!(wa, wb);
        // Same tree shape too: builds, compactions, levels.
        let (sa, sb) = (a.coreset.unwrap(), b.coreset.unwrap());
        assert_eq!(sa.builds, sb.builds);
        assert_eq!(sa.compactions, sb.compactions);
        assert_eq!(sa.live_buckets, sb.live_buckets);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// (4) Anytime = final: on a finite stream the last anytime query the
/// probe saw *is* the emitted terminal clustering, bit for bit.
#[test]
fn anytime_query_after_the_last_chunk_is_the_final_clustering() {
    let dir = tmpdir("anytime");
    let paths = vec![write_cell(&dir, 5, 240, 31)];
    let status = std::sync::Arc::new(pmkm_obs::StatusCell::new());
    let logical =
        LogicalPlan::new(paths, KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 41) });
    let mut plan = optimize_fixed_split(logical, &Resources::fixed(1 << 20, 2), 30);
    plan.coreset = Some(CoresetSpec { probe: Some(status.clone()), ..CoresetSpec::new(16) });
    let report = execute(&plan).unwrap();
    let cell = &report.cells[0];
    let last = status.coreset().expect("the probe saw at least one anytime query");
    let final_bits: Vec<u64> =
        cell.output.centroids.iter().flat_map(|p| p.iter().map(|v| v.to_bits())).collect();
    let anytime_bits: Vec<u64> =
        last.centroids.iter().flat_map(|p| p.iter().map(|v| v.to_bits())).collect();
    assert_eq!(final_bits, anytime_bits);
    assert_eq!(last.mse.to_bits(), cell.output.mse.to_bits());
    assert_eq!(last.ingested_points, 240.0);
    assert_eq!(last.lost_points, 0.0);
    // The probe never perturbs the clustering: a probe-free run emits
    // the same bits.
    let mut bare = plan.clone();
    bare.coreset = Some(CoresetSpec::new(16));
    let unprobed = execute(&bare).unwrap();
    let bare_bits: Vec<u64> = unprobed.cells[0]
        .output
        .centroids
        .iter()
        .flat_map(|p| p.iter().map(|v| v.to_bits()))
        .collect();
    assert_eq!(final_bits, bare_bits);
    std::fs::remove_dir_all(&dir).ok();
}

/// (5) Bounded regret: at every prefix of the stream, the anytime
/// query's MSE against the *raw* prefix stays within a small constant of
/// the serial weighted-Lloyd baseline clustering the same prefix — the
/// coreset answers mid-stream questions about the data it has seen, not
/// just about its compressed summary.
#[test]
fn mid_stream_query_mse_stays_within_the_serial_lloyd_bound() {
    let chunk_points = 40;
    let chunks = 12;
    let cfg = KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 61) };
    let mut tree = CoresetTree::new(CoresetConfig::new(16), 77, 2).unwrap();
    let mut prefix = Dataset::new(2).unwrap();
    for id in 0..chunks {
        let chunk = blob_chunk(chunk_points, 77, id as u64);
        for i in 0..chunk.len() {
            prefix.push(chunk.coords(i)).unwrap();
        }
        tree.insert_chunk(id, chunk, chunk_points as f64).unwrap();
        let out = tree.query_now(&cfg, 2).unwrap();
        let coreset_mse = pmkm_core::metrics::mse_against(&prefix, &out.centroids).unwrap();
        let serial = pmkm_baselines::serial_kmeans(&prefix, &cfg).unwrap().min_mse();
        assert!(
            coreset_mse <= 2.0 * serial + 1e-9,
            "chunk {id}: anytime MSE {coreset_mse} vs serial bound {serial}"
        );
    }
}
