//! The resume-equivalence suite: the orchestrator's headline contract.
//!
//! Every per-cell result is a pure function of `(bucket, plan, fault seed)`,
//! so a run that is killed after k checkpoints and then resumed must produce
//! **bit-identical** per-cell centroids, weights, E_pm, mass accounting and
//! fault counters to an uninterrupted run. This suite enforces that across:
//!
//! 1. a seeded kill-point matrix on a ≥ 8-cell planet (the acceptance bar),
//! 2. chaos schedules under the tolerant policy (fault counters and lost
//!    mass must survive the round trip through the checkpoint files),
//! 3. corrupted / truncated / stale checkpoint files — detected via
//!    checksum, fingerprint and version checks, answered with a silent
//!    re-scan, never a panic,
//! 4. random `(seed, cells, kill_k, jobs)` triples via proptest.

use pmkm_core::KMeansConfig;
use pmkm_stream::fault::InjectedPanic;
use pmkm_stream::prelude::*;
use pmkm_stream::{FaultPlan, FaultPolicy};
use std::path::{Path, PathBuf};
use std::sync::Once;

fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

fn write_cell(dir: &Path, idx: u16, n: usize, seed: u64) -> PathBuf {
    use rand::Rng;
    let mut rng = pmkm_core::seeding::rng_for(seed, idx as u64);
    let mut points = pmkm_core::Dataset::new(2).unwrap();
    for _ in 0..n {
        let blob = if rng.gen_bool(0.5) { 0.0 } else { 40.0 };
        points.push(&[blob + rng.gen_range(-1.0..1.0), blob + rng.gen_range(-1.0..1.0)]).unwrap();
    }
    let cell = pmkm_data::GridCell::new(idx, idx).unwrap();
    let path = dir.join(cell.bucket_file_name());
    pmkm_data::GridBucket { cell, points }.write_to(&path).unwrap();
    path
}

/// A planet of `cells` buckets with varied sizes, k = 2, 40-point chunks.
fn planet(tag: &str, cells: usize, data_seed: u64, plan_seed: u64) -> (PathBuf, PhysicalPlan) {
    let dir = std::env::temp_dir().join(format!("pmkm_resume_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths: Vec<PathBuf> =
        (1..=cells).map(|i| write_cell(&dir, i as u16, 60 + 25 * (i % 4), data_seed)).collect();
    let logical =
        LogicalPlan::new(paths, KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, plan_seed) });
    let plan = optimize_fixed_split(logical, &Resources::fixed(1 << 20, 2), 40);
    (dir, plan)
}

fn f64_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Bit-level equality over everything a resumed run must reproduce.
/// (Durations are wall-clock and deliberately excluded.)
fn assert_bit_identical(a: &PlanetReport, b: &PlanetReport) {
    assert_eq!(a.cells.len(), b.cells.len(), "cell count");
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.input, y.input);
        assert_eq!(x.path, y.path);
        assert_eq!(x.degraded, y.degraded, "cell {}", x.input);
        assert_eq!(x.faults, y.faults, "cell {}", x.input);
        match (&x.clustering, &y.clustering) {
            (None, None) => {}
            (Some(cx), Some(cy)) => {
                assert_eq!(cx.cell, cy.cell);
                let flat = |c: &pmkm_stream::CellClustering| -> Vec<u64> {
                    c.output.centroids.iter().flat_map(|p| p.iter().map(|v| v.to_bits())).collect()
                };
                assert_eq!(flat(cx), flat(cy), "cell {} centroids", x.input);
                assert_eq!(
                    f64_bits(&cx.output.cluster_weights),
                    f64_bits(&cy.output.cluster_weights),
                    "cell {} weights",
                    x.input
                );
                assert_eq!(cx.output.epm.to_bits(), cy.output.epm.to_bits(), "cell {}", x.input);
                assert_eq!(cx.output.mse.to_bits(), cy.output.mse.to_bits());
                assert_eq!(cx.output.iterations, cy.output.iterations);
                assert_eq!(cx.output.converged, cy.output.converged);
                assert_eq!(cx.output.input_centroids, cy.output.input_centroids);
                assert_eq!(cx.expected_points.to_bits(), cy.expected_points.to_bits());
                assert_eq!(cx.lost_points.to_bits(), cy.lost_points.to_bits());
                assert_eq!(cx.lost_chunks, cy.lost_chunks);
                assert_eq!(cx.degraded, cy.degraded);
                assert_eq!(cx.chunks.len(), cy.chunks.len());
                for (sx, sy) in cx.chunks.iter().zip(&cy.chunks) {
                    assert_eq!(sx.chunk, sy.chunk);
                    assert_eq!(sx.points, sy.points);
                    assert_eq!(sx.best_mse.to_bits(), sy.best_mse.to_bits());
                    assert_eq!(sx.total_iterations, sy.total_iterations);
                }
                for (tx, ty) in cx.trajectories.iter().zip(&cy.trajectories) {
                    assert_eq!(f64_bits(tx), f64_bits(ty));
                }
            }
            _ => panic!("cell {}: clustering present on one side only", x.input),
        }
    }
    assert_eq!(a.faults, b.faults, "planet fault counters");
    assert_eq!(a.degraded, b.degraded);
    assert_eq!(a.expected_points().to_bits(), b.expected_points().to_bits());
    assert_eq!(a.lost_points().to_bits(), b.lost_points().to_bits());
    assert_eq!(a.received_points().to_bits(), b.received_points().to_bits());
}

fn ckpt_dir(data_dir: &Path) -> PathBuf {
    data_dir.join("ckpt")
}

/// The acceptance bar: a 9-cell planet killed after k ∈ {1, 4, 8}
/// checkpoints resumes to bit-identical results.
#[test]
fn kill_and_resume_matches_uninterrupted_across_kill_matrix() {
    let (dir, plan) = planet("kill_matrix", 9, 31, 17);
    let baseline = orchestrate(&plan, &OrchestratorOptions::new(3), None, None).unwrap();
    assert_eq!(baseline.cells.len(), 9);
    for kill_k in [1usize, 4, 8] {
        let cdir = dir.join(format!("ckpt_{kill_k}"));
        let killed = orchestrate(
            &plan,
            &OrchestratorOptions::new(2).with_checkpoints(&cdir).kill_after(kill_k),
            None,
            None,
        )
        .unwrap();
        assert!(killed.interrupted, "kill_k={kill_k}");
        assert_eq!(killed.checkpoints_written, kill_k, "kill_k={kill_k}");
        // Only checkpointed cells survive the simulated death.
        assert_eq!(killed.cells.len(), kill_k, "kill_k={kill_k}");

        let resumed = orchestrate(
            &plan,
            &OrchestratorOptions::new(3).with_checkpoints(&cdir).resuming(),
            None,
            None,
        )
        .unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.cells_resumed, kill_k, "kill_k={kill_k}");
        assert_eq!(resumed.cells_executed, 9 - kill_k, "kill_k={kill_k}");
        assert_eq!(resumed.checkpoints_invalid, 0);
        assert_eq!(resumed.cells.iter().filter(|c| c.resumed).count(), kill_k);
        assert_bit_identical(&baseline, &resumed);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Chaos + resume: fault counters and lost-mass accounting survive the
/// round trip through the checkpoint files, and mass is conserved
/// planet-wide (Σ received + Σ lost == Σ expected).
#[test]
fn chaos_run_resumes_with_identical_fault_accounting() {
    quiet_injected_panics();
    let (dir, plan) = planet("chaos_resume", 8, 77, 5);
    let mut plan = plan;
    plan.fault_policy = FaultPolicy::tolerant();
    let faults = Some(FaultPlan::light(23));
    let baseline = orchestrate(&plan, &OrchestratorOptions::new(2), None, faults.clone()).unwrap();
    let cdir = ckpt_dir(&dir);
    let killed = orchestrate(
        &plan,
        &OrchestratorOptions::new(2).with_checkpoints(&cdir).kill_after(3),
        None,
        faults.clone(),
    )
    .unwrap();
    assert!(killed.interrupted);
    let resumed = orchestrate(
        &plan,
        &OrchestratorOptions::new(4).with_checkpoints(&cdir).resuming(),
        None,
        faults,
    )
    .unwrap();
    assert_bit_identical(&baseline, &resumed);
    // Planet-wide mass conservation over surviving chunks.
    let received = resumed.received_points();
    let lost = resumed.lost_points();
    let expected = resumed.expected_points();
    assert!(
        (received + lost - expected).abs() < 1e-6,
        "received {received} + lost {lost} != expected {expected}"
    );
    assert!(expected > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

/// A resumed orchestrated run's `/metrics` mass gauges cover the *whole*
/// planet: restored cells roll their mass into `mass_weight_expected` /
/// `mass_weight_received` exactly as live merges do, so
/// `mass_conservation_ratio` reports `Σw_received / Σw_expected` over
/// executed and resumed cells alike.
#[test]
fn resumed_cells_roll_into_mass_conservation_gauges() {
    let (dir, plan) = planet("mass_gauges", 6, 41, 9);
    let cdir = ckpt_dir(&dir);
    let killed = orchestrate(
        &plan,
        &OrchestratorOptions::new(2).with_checkpoints(&cdir).kill_after(3),
        None,
        None,
    )
    .unwrap();
    assert!(killed.interrupted);
    let rec = std::sync::Arc::new(pmkm_obs::Recorder::new());
    let resumed = orchestrate(
        &plan,
        &OrchestratorOptions::new(3).with_checkpoints(&cdir).resuming(),
        Some(std::sync::Arc::clone(&rec)),
        None,
    )
    .unwrap();
    assert_eq!(resumed.cells_resumed, 3);
    let expected = rec.registry().gauge("mass_weight_expected").get();
    let received = rec.registry().gauge("mass_weight_received").get();
    let ratio = rec.registry().gauge("mass_conservation_ratio").get();
    assert_eq!(
        expected,
        resumed.expected_points(),
        "gauges must include the {} resumed cells",
        resumed.cells_resumed
    );
    assert_eq!(received, resumed.received_points());
    assert!((ratio - 1.0).abs() < 1e-12, "clean run must conserve all mass, got {ratio}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupted, truncated and garbage checkpoint files are caught by the
/// checksum and answered with a re-scan — never a panic, and the final
/// results are still bit-identical.
#[test]
fn corrupted_checkpoints_fall_back_to_rescan() {
    let (dir, plan) = planet("corrupt", 8, 13, 3);
    let baseline = orchestrate(&plan, &OrchestratorOptions::new(2), None, None).unwrap();
    let cdir = ckpt_dir(&dir);
    let full = orchestrate(&plan, &OrchestratorOptions::new(2).with_checkpoints(&cdir), None, None)
        .unwrap();
    assert_eq!(full.checkpoints_written, 8);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&cdir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    files.sort();
    assert_eq!(files.len(), 8);
    // Flip a payload byte in one…
    let text = std::fs::read_to_string(&files[0]).unwrap();
    let mut bytes = text.into_bytes();
    let last = bytes.len() - 3;
    bytes[last] ^= 0x01;
    std::fs::write(&files[0], &bytes).unwrap();
    // …truncate another mid-payload…
    let text = std::fs::read_to_string(&files[1]).unwrap();
    std::fs::write(&files[1], &text[..text.len() / 2]).unwrap();
    // …and replace a third with garbage.
    std::fs::write(&files[2], b"not json at all\n").unwrap();

    let resumed = orchestrate(
        &plan,
        &OrchestratorOptions::new(3).with_checkpoints(&cdir).resuming(),
        None,
        None,
    )
    .unwrap();
    assert_eq!(resumed.checkpoints_invalid, 3);
    assert_eq!(resumed.cells_resumed, 5);
    assert_eq!(resumed.cells_executed, 3);
    assert_bit_identical(&baseline, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

/// A checkpoint from a *different plan* (fingerprint mismatch) or a
/// *newer format version* is stale, not trusted.
#[test]
fn stale_fingerprint_or_newer_version_forces_rescan() {
    let (dir, plan) = planet("stale", 4, 9, 21);
    let cdir = ckpt_dir(&dir);
    let full = orchestrate(&plan, &OrchestratorOptions::new(2).with_checkpoints(&cdir), None, None)
        .unwrap();
    assert_eq!(full.checkpoints_written, 4);

    // Same buckets, different k-means seed → different fingerprint.
    let mut other = plan.clone();
    other.logical.kmeans.seed = 9999;
    let other_baseline = orchestrate(&other, &OrchestratorOptions::new(2), None, None).unwrap();
    let resumed = orchestrate(
        &other,
        &OrchestratorOptions::new(2).with_checkpoints(&cdir).resuming(),
        None,
        None,
    )
    .unwrap();
    assert_eq!(resumed.cells_resumed, 0);
    assert_eq!(resumed.checkpoints_invalid, 4);
    assert_bit_identical(&other_baseline, &resumed);

    // A file claiming a future format version is rejected too. (The resume
    // above rewrote checkpoints for `other`; doctor one to version 99.)
    let mut files: Vec<PathBuf> = std::fs::read_dir(&cdir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    files.sort();
    let text = std::fs::read_to_string(&files[0]).unwrap();
    let doctored = text.replacen("\"checkpoint\":1", "\"checkpoint\":99", 1);
    assert_ne!(text, doctored);
    std::fs::write(&files[0], doctored).unwrap();
    let resumed2 = orchestrate(
        &other,
        &OrchestratorOptions::new(2).with_checkpoints(&cdir).resuming(),
        None,
        None,
    )
    .unwrap();
    assert_eq!(resumed2.checkpoints_invalid, 1);
    assert_eq!(resumed2.cells_resumed, 3);
    assert_bit_identical(&other_baseline, &resumed2);
    std::fs::remove_dir_all(&dir).ok();
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        // Random (seed, cells, kill_k, jobs) triples: kill-then-resume is
        // always bit-identical to uninterrupted, faulty or not.
        #[test]
        fn kill_resume_equivalence(
            data_seed in 0..1000u64,
            plan_seed in 0..1000u64,
            cells in 3..=5usize,
            kill_k in 0..=5usize,
            jobs in 1..=4usize,
        ) {
            quiet_injected_panics();
            let kill_k = kill_k.min(cells);
            let faulty = (data_seed ^ plan_seed) % 2 == 1;
            let tag = format!("prop_{data_seed}_{plan_seed}_{cells}_{kill_k}_{jobs}");
            let (dir, plan) = planet(&tag, cells, data_seed, plan_seed);
            let mut plan = plan;
            let faults = if faulty {
                plan.fault_policy = FaultPolicy::tolerant();
                Some(FaultPlan::light(data_seed ^ plan_seed))
            } else {
                None
            };
            let baseline =
                orchestrate(&plan, &OrchestratorOptions::new(jobs), None, faults.clone()).unwrap();
            let cdir = ckpt_dir(&dir);
            let killed = orchestrate(
                &plan,
                &OrchestratorOptions::new(jobs).with_checkpoints(&cdir).kill_after(kill_k),
                None,
                faults.clone(),
            )
            .unwrap();
            // kill_after(0) never fires: the run completes and checkpoints
            // every cell; resume then re-executes nothing.
            if kill_k > 0 && kill_k < cells {
                prop_assert!(killed.interrupted);
                prop_assert_eq!(killed.checkpoints_written, kill_k);
            }
            let resumed = orchestrate(
                &plan,
                &OrchestratorOptions::new(jobs).with_checkpoints(&cdir).resuming(),
                None,
                faults,
            )
            .unwrap();
            prop_assert_eq!(resumed.checkpoints_invalid, 0);
            prop_assert_eq!(resumed.cells_resumed, killed.checkpoints_written);
            assert_bit_identical(&baseline, &resumed);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
