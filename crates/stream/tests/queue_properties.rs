//! Property tests for the smart-queue substrate and fine-grained operators.

use pmkm_core::{Dataset, KMeansConfig, PointSource};
use pmkm_stream::ops::fine_kmeans;
use pmkm_stream::SmartQueue;
use proptest::prelude::*;
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_item_delivered_exactly_once(
        items in proptest::collection::vec(any::<u64>(), 0..256),
        consumers in 1usize..5,
        capacity in 1usize..32,
    ) {
        let q: SmartQueue<u64> = SmartQueue::new("prop", capacity);
        let p = q.producer();
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                let c = q.consumer();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = c.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        q.seal();
        for &v in &items {
            p.send(v).unwrap();
        }
        drop(p);
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        let mut want = items.clone();
        want.sort_unstable();
        prop_assert_eq!(all, want);
        let s = q.stats();
        prop_assert_eq!(s.sends, items.len() as u64);
        prop_assert_eq!(s.recvs, items.len() as u64);
    }

    #[test]
    fn single_consumer_preserves_order(
        items in proptest::collection::vec(any::<u32>(), 0..128),
        capacity in 1usize..16,
    ) {
        let q: SmartQueue<u32> = SmartQueue::new("order", capacity);
        let p = q.producer();
        let c = q.consumer();
        q.seal();
        let want = items.clone();
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = c.recv() {
                got.push(v);
            }
            got
        });
        for v in items {
            p.send(v).unwrap();
        }
        drop(p);
        prop_assert_eq!(consumer.join().unwrap(), want);
    }

    // Backpressure + shutdown ordering: with a queue far smaller than the
    // stream, producers must block (never drop), every item must still be
    // delivered before end-of-stream, and consumers only see `None` after
    // the full stream has drained.
    #[test]
    fn backpressure_delivers_everything_before_shutdown(
        items in proptest::collection::vec(any::<u16>(), 1..200),
        capacity in 1usize..4,
        producers in 1usize..4,
    ) {
        let q: SmartQueue<u16> = SmartQueue::new("bp", capacity);
        let chunks: Vec<Vec<u16>> =
            items.chunks(items.len().div_ceil(producers)).map(<[u16]>::to_vec).collect();
        let senders: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let p = q.producer();
                let chunk = chunk.clone();
                thread::spawn(move || {
                    for v in chunk {
                        p.send(v).unwrap();
                    }
                })
            })
            .collect();
        let c = q.consumer();
        q.seal();
        let mut got = Vec::new();
        while let Some(v) = c.recv() {
            got.push(v);
        }
        // `None` is sticky: once the stream ended it stays ended.
        prop_assert!(c.recv().is_none());
        for h in senders {
            h.join().unwrap();
        }
        got.sort_unstable();
        let mut want = items.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        let s = q.stats();
        prop_assert_eq!(s.sends, items.len() as u64);
        prop_assert_eq!(s.recvs, items.len() as u64);
        // Blocking is accounted, never silently swallowed: every
        // backpressure event is a send that eventually completed.
        prop_assert!(s.full_blocks <= s.sends);
    }

    // The depth histogram only ever grows, stays within the sampling
    // budget (`ceil(sends / every)` observations), and never records a
    // depth above the queue's capacity.
    #[test]
    fn depth_histogram_is_monotone_and_bounded(
        rounds in proptest::collection::vec(1usize..16, 1..12),
        capacity in 1usize..32,
        every in 1u64..6,
    ) {
        let q: SmartQueue<u32> = SmartQueue::new("depth", capacity).with_depth_sample_interval(every);
        let p = q.producer();
        let c = q.consumer();
        q.seal();
        let mut prev = q.stats().depth_counts;
        let mut sent = 0u64;
        let mut received = 0u64;
        for &n in &rounds {
            for _ in 0..n {
                // Keep room so the single-threaded send never blocks, but
                // let the depth wander through the buckets.
                if sent - received >= capacity as u64 || (sent.is_multiple_of(3) && received < sent) {
                    c.recv().unwrap();
                    received += 1;
                }
                p.send(0).unwrap();
                sent += 1;
            }
            let s = q.stats();
            // Monotone: cumulative counters never decrease between snapshots.
            for (now, before) in s.depth_counts.iter().zip(&prev) {
                prop_assert!(now >= before, "bucket shrank: {:?} -> {:?}", prev, s.depth_counts);
            }
            prev = s.depth_counts;
            // Bounded by the sampling interval: seq 0, every, 2*every, ...
            let sampled: u64 = prev.iter().sum();
            prop_assert_eq!(sampled, sent.div_ceil(every));
        }
        // Depths beyond capacity are impossible; the overflow buckets
        // strictly above the capacity's bucket must stay empty.
        let bounds = [0usize, 1, 3, 7, 15, 31, 63];
        let s = q.stats();
        for (i, &bound) in bounds.iter().enumerate() {
            if capacity <= bound {
                for overflow in &s.depth_counts[i + 1..] {
                    prop_assert_eq!(*overflow, 0u64);
                }
                break;
            }
        }
    }

    // Producer stalls (the chaos harness's queue-stall fault) must never
    // lose or duplicate messages: consumers just block on the empty queue
    // and the accounting stays exact.
    #[test]
    fn producer_stalls_lose_nothing(
        items in proptest::collection::vec(any::<u32>(), 1..64),
        stall_mask in any::<u64>(),
        consumers in 1usize..4,
    ) {
        let q: SmartQueue<u32> = SmartQueue::new("stall", 2);
        let p = q.producer();
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                let c = q.consumer();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = c.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        q.seal();
        for (i, &v) in items.iter().enumerate() {
            if stall_mask & (1 << (i % 64)) != 0 {
                thread::sleep(std::time::Duration::from_micros(50));
            }
            p.send(v).unwrap();
        }
        drop(p);
        let mut all: Vec<u32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        let mut want = items.clone();
        want.sort_unstable();
        prop_assert_eq!(all, want);
        let s = q.stats();
        prop_assert_eq!(s.sends, items.len() as u64);
        prop_assert_eq!(s.recvs, items.len() as u64);
        prop_assert!(s.empty_blocks <= s.recvs + consumers as u64);
    }

    #[test]
    fn fine_kmeans_conserves_weight_any_input(
        flat in proptest::collection::vec(-100.0..100.0f64, 2 * 8..2 * 48),
        sorters in 1usize..4,
        seed in any::<u64>(),
    ) {
        let n2 = flat.len() - flat.len() % 2;
        let ds = Dataset::from_flat(2, flat[..n2].to_vec()).unwrap();
        let k = 2.min(ds.len());
        let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(k, seed) };
        let run = fine_kmeans(&ds, &cfg, sorters).unwrap();
        let total: f64 = run.cluster_weights.iter().sum();
        prop_assert!((total - ds.len() as f64).abs() < 1e-9);
        prop_assert!(run.mse.is_finite() && run.mse >= 0.0);
        prop_assert_eq!(run.centroids.k(), k);
    }
}
