//! Property tests for the smart-queue substrate and fine-grained operators.

use pmkm_core::{Dataset, KMeansConfig, PointSource};
use pmkm_stream::ops::fine_kmeans;
use pmkm_stream::SmartQueue;
use proptest::prelude::*;
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_item_delivered_exactly_once(
        items in proptest::collection::vec(any::<u64>(), 0..256),
        consumers in 1usize..5,
        capacity in 1usize..32,
    ) {
        let q: SmartQueue<u64> = SmartQueue::new("prop", capacity);
        let p = q.producer();
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                let c = q.consumer();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = c.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        q.seal();
        for &v in &items {
            p.send(v).unwrap();
        }
        drop(p);
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        let mut want = items.clone();
        want.sort_unstable();
        prop_assert_eq!(all, want);
        let s = q.stats();
        prop_assert_eq!(s.sends, items.len() as u64);
        prop_assert_eq!(s.recvs, items.len() as u64);
    }

    #[test]
    fn single_consumer_preserves_order(
        items in proptest::collection::vec(any::<u32>(), 0..128),
        capacity in 1usize..16,
    ) {
        let q: SmartQueue<u32> = SmartQueue::new("order", capacity);
        let p = q.producer();
        let c = q.consumer();
        q.seal();
        let want = items.clone();
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = c.recv() {
                got.push(v);
            }
            got
        });
        for v in items {
            p.send(v).unwrap();
        }
        drop(p);
        prop_assert_eq!(consumer.join().unwrap(), want);
    }

    #[test]
    fn fine_kmeans_conserves_weight_any_input(
        flat in proptest::collection::vec(-100.0..100.0f64, 2 * 8..2 * 48),
        sorters in 1usize..4,
        seed in any::<u64>(),
    ) {
        let n2 = flat.len() - flat.len() % 2;
        let ds = Dataset::from_flat(2, flat[..n2].to_vec()).unwrap();
        let k = 2.min(ds.len());
        let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(k, seed) };
        let run = fine_kmeans(&ds, &cfg, sorters).unwrap();
        let total: f64 = run.cluster_weights.iter().sum();
        prop_assert!((total - ds.len() as f64).abs() < 1e-9);
        prop_assert!(run.mse.is_finite() && run.mse >= 0.0);
        prop_assert_eq!(run.centroids.k(), k);
    }
}
