//! The observed-run suite: the tentpole invariants of the live
//! observability layer.
//!
//! 1. **Zero interference** — an orchestrate run with the full stack
//!    attached (event ledger, worker timeline, `/status` cell, watchdog)
//!    is bit-identical to a bare run of the same plan.
//! 2. **Status truth** — the final `/status` snapshot agrees with the
//!    `PlanetReport` on every cell and mass number.
//! 3. **Watchdog restraint** — a chaos run under the tolerant policy
//!    with a sane deadline produces zero stall/straggler verdicts.
//! 4. **Liveness** — `/events` sequence numbers are strictly monotonic
//!    and `/healthz` keeps answering while a multi-worker run is live.

use pmkm_core::KMeansConfig;
use pmkm_obs::{
    chrome_trace, chrome_trace_from_report, rollup, LedgerSink, MetricsServer, Recorder,
    StatusCell, Timeline,
};
use pmkm_stream::fault::InjectedPanic;
use pmkm_stream::prelude::*;
use pmkm_stream::{Watchdog, WatchdogConfig, WatchdogSink};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Once};
use std::time::Duration;

fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

fn write_cell(dir: &Path, idx: u16, n: usize, seed: u64) -> PathBuf {
    use rand::Rng;
    let mut rng = pmkm_core::seeding::rng_for(seed, idx as u64);
    let mut points = pmkm_core::Dataset::new(2).unwrap();
    for _ in 0..n {
        let blob = if rng.gen_bool(0.5) { 0.0 } else { 40.0 };
        points.push(&[blob + rng.gen_range(-1.0..1.0), blob + rng.gen_range(-1.0..1.0)]).unwrap();
    }
    let cell = pmkm_data::GridCell::new(idx, idx).unwrap();
    let path = dir.join(cell.bucket_file_name());
    pmkm_data::GridBucket { cell, points }.write_to(&path).unwrap();
    path
}

/// A planet of `cells` buckets with varied sizes, k = 2, 40-point chunks.
fn planet(tag: &str, cells: usize, data_seed: u64, plan_seed: u64) -> (PathBuf, PhysicalPlan) {
    let dir = std::env::temp_dir().join(format!("pmkm_observe_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths: Vec<PathBuf> =
        (1..=cells).map(|i| write_cell(&dir, i as u16, 60 + 25 * (i % 4), data_seed)).collect();
    let logical =
        LogicalPlan::new(paths, KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, plan_seed) });
    let plan = optimize_fixed_split(logical, &Resources::fixed(1 << 20, 2), 40);
    (dir, plan)
}

fn f64_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Bit-level equality over everything the observability layer must not
/// perturb. (Durations are wall-clock and deliberately excluded.)
fn assert_bit_identical(a: &PlanetReport, b: &PlanetReport) {
    assert_eq!(a.cells.len(), b.cells.len(), "cell count");
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.input, y.input);
        assert_eq!(x.path, y.path);
        assert_eq!(x.degraded, y.degraded, "cell {}", x.input);
        assert_eq!(x.faults, y.faults, "cell {}", x.input);
        match (&x.clustering, &y.clustering) {
            (None, None) => {}
            (Some(cx), Some(cy)) => {
                assert_eq!(cx.cell, cy.cell);
                let flat = |c: &pmkm_stream::CellClustering| -> Vec<u64> {
                    c.output.centroids.iter().flat_map(|p| p.iter().map(|v| v.to_bits())).collect()
                };
                assert_eq!(flat(cx), flat(cy), "cell {} centroids", x.input);
                assert_eq!(
                    f64_bits(&cx.output.cluster_weights),
                    f64_bits(&cy.output.cluster_weights),
                    "cell {} weights",
                    x.input
                );
                assert_eq!(cx.output.epm.to_bits(), cy.output.epm.to_bits(), "cell {}", x.input);
                assert_eq!(cx.output.mse.to_bits(), cy.output.mse.to_bits());
                assert_eq!(cx.expected_points.to_bits(), cy.expected_points.to_bits());
                assert_eq!(cx.lost_points.to_bits(), cy.lost_points.to_bits());
            }
            _ => panic!("cell {}: one run produced a clustering, the other did not", x.input),
        }
    }
    assert_eq!(a.faults, b.faults, "planet fault counters");
    assert_eq!(a.degraded, b.degraded);
    assert_eq!(a.cells_total, b.cells_total);
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: pmkm\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Pulls `"key":<number>` out of a JSON body without a Value type.
fn json_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle).unwrap_or_else(|| panic!("missing {key} in {body}"));
    let rest = &body[at + needle.len()..];
    let digits: String =
        rest.trim_start().chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
    digits.split('.').next().unwrap().parse().unwrap_or_else(|_| panic!("bad {key} in {body}"))
}

/// Pulls `"key":"value"` out of a JSON body without a Value type.
fn json_str(body: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle).unwrap_or_else(|| panic!("missing {key} in {body}"));
    let rest = body[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix('"').unwrap_or_else(|| panic!("{key} not a string in {body}"));
    rest.chars().take_while(|c| *c != '"').collect()
}

fn json_f64(body: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle).unwrap_or_else(|| panic!("missing {key} in {body}"));
    let rest = &body[at + needle.len()..].trim_start();
    let digits: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | 'e' | 'E' | '+'))
        .collect();
    digits.parse().unwrap_or_else(|_| panic!("bad {key} in {body}"))
}

/// Invariants 1 + 2: the fully-observed run is bit-identical to the bare
/// run, and the final status snapshot tells the same story as the report.
#[test]
fn observed_run_is_bit_identical_and_status_matches_the_report() {
    let (dir, plan) = planet("pin", 6, 11, 7);

    let bare = orchestrate(&plan, &OrchestratorOptions::new(3), None, None).unwrap();

    let ledger = Arc::new(LedgerSink::in_memory());
    let watchdog_sink = Arc::new(WatchdogSink::new());
    let timeline = Arc::new(Timeline::new());
    let status = Arc::new(StatusCell::new());
    let rec = Arc::new(
        Recorder::new()
            .with_sink(ledger.clone())
            .with_sink(watchdog_sink.clone())
            .with_timeline(timeline.clone()),
    );
    let watchdog = Watchdog::start(
        Arc::clone(&rec),
        Arc::clone(&watchdog_sink),
        WatchdogConfig::after(Duration::from_secs(30)),
    );
    let opts = OrchestratorOptions::new(3).with_status(Arc::clone(&status));
    let observed = orchestrate(&plan, &opts, Some(Arc::clone(&rec)), None).unwrap();
    watchdog.stop();

    assert_bit_identical(&bare, &observed);

    // The final snapshot is the report, seen through /status eyes.
    let snap = status.get();
    assert_eq!(snap.state, "done");
    assert_eq!(snap.cells_total, observed.cells_total);
    assert_eq!(snap.cells_done, observed.cells.len());
    assert_eq!(snap.cells_running, 0);
    assert_eq!(snap.expected_points.to_bits(), observed.expected_points().to_bits());
    assert_eq!(snap.received_points.to_bits(), observed.received_points().to_bits());
    assert_eq!(snap.lost_points.to_bits(), observed.lost_points().to_bits());
    assert_eq!(snap.steals, observed.steals);
    assert!(!snap.workers.is_empty(), "worker rows in the final snapshot");

    // The ledger saw worker-state transitions and no watchdog verdicts,
    // and the record stream renders as a Chrome trace document.
    let records = ledger.records_after(0);
    let roll = rollup(&records);
    assert!(roll.worker_transitions > 0, "timeline events in the ledger");
    assert_eq!(roll.watchdog_stalls, 0);
    assert_eq!(roll.watchdog_stragglers, 0);
    let trace = chrome_trace(&records);
    assert!(trace.contains("\"traceEvents\":["), "chrome trace shape: {trace}");
    assert!(trace.contains("worker.state") || trace.contains("\"ph\":\"X\""));

    // The report carries the timeline rollup (schema v6) and also renders.
    let tl = observed.run_report(Some(&rec)).timeline.expect("v6 timeline block");
    assert_eq!(tl.workers.len(), 3, "one lane per worker");
    assert!(tl.span_us > 0);
    let from_report = chrome_trace_from_report(&observed.run_report(Some(&rec)));
    assert!(from_report.contains("\"traceEvents\":["));

    std::fs::remove_dir_all(dir).ok();
}

/// Invariant 3: heavy chaos under the tolerant policy is slow and ugly but
/// *alive* — a watchdog with a sane deadline must stay silent. This is the
/// false-positive guard: progress beacons (chunk.close / cell.close) keep
/// arriving, so neither the stall nor the straggler rule may fire.
#[test]
fn watchdog_stays_silent_under_heavy_chaos_with_tolerant_policy() {
    quiet_injected_panics();
    let (dir, mut plan) = planet("chaos_quiet", 6, 29, 3);
    plan.fault_policy = FaultPolicy::tolerant();

    let ledger = Arc::new(LedgerSink::in_memory());
    let sink = Arc::new(WatchdogSink::new());
    let rec = Arc::new(Recorder::new().with_sink(ledger.clone()).with_sink(sink.clone()));
    let config = WatchdogConfig::after(Duration::from_secs(30));
    let watchdog = Watchdog::start(Arc::clone(&rec), Arc::clone(&sink), config.clone());

    let report = orchestrate(
        &plan,
        &OrchestratorOptions::new(2),
        Some(Arc::clone(&rec)),
        Some(FaultPlan::heavy(17)),
    )
    .unwrap();
    // One extra synchronous sweep at the post-run clock so the test does
    // not depend on the polling thread's schedule.
    sink.check(&rec, &config, rec.elapsed_us());
    watchdog.stop();

    assert_eq!(report.cells.len(), report.cells_total, "tolerant run commits every cell");
    let roll = rollup(&ledger.records_after(0));
    assert_eq!(roll.watchdog_stalls, 0, "no stall verdicts under live progress");
    assert_eq!(roll.watchdog_stragglers, 0, "no straggler verdicts under live progress");

    std::fs::remove_dir_all(dir).ok();
}

/// Invariant 4: `/events` and `/status` under a live multi-worker run.
/// Sequence numbers must be strictly monotonic across polls, `/status`
/// must always parse with a sane shape, and `/healthz` must never block.
#[test]
fn events_and_status_stay_live_under_a_multi_worker_run() {
    let (dir, plan) = planet("live", 8, 41, 13);

    let ledger = Arc::new(LedgerSink::in_memory());
    let timeline = Arc::new(Timeline::new());
    let status = Arc::new(StatusCell::new());
    let rec = Arc::new(Recorder::new().with_sink(ledger.clone()).with_timeline(timeline.clone()));
    let server = MetricsServer::serve_full(
        "127.0.0.1:0",
        Arc::clone(&rec),
        2,
        Some(Arc::clone(&ledger)),
        Some(Arc::clone(&status)),
    )
    .expect("bind port 0");
    let addr = server.local_addr();

    let run = {
        let rec = Arc::clone(&rec);
        let status = Arc::clone(&status);
        std::thread::spawn(move || {
            let opts = OrchestratorOptions::new(3).with_status(status);
            orchestrate(&plan, &opts, Some(rec), None).unwrap()
        })
    };

    // Poll all three routes while the run is live, then once more after
    // the snapshot settles on "done" (an empty `/events` long-poll waits
    // ~2 s, so the loop stops as soon as the run is over). Monotonicity
    // must hold across the transition.
    let mut last_seq = 0u64;
    let mut seen_done = false;
    for _ in 0..400 {
        let (health_status, health_body) = get(addr, "/healthz");
        assert_eq!(health_status, "HTTP/1.1 200 OK", "/healthz while running");
        assert!(health_body.contains("\"status\":\"ok\""), "healthz body: {health_body}");

        let (ev_status, ev_body) = get(addr, &format!("/events?after={last_seq}"));
        assert_eq!(ev_status, "HTTP/1.1 200 OK");
        for line in ev_body.lines().filter(|l| !l.trim().is_empty()) {
            let seq = json_u64(line, "seq");
            assert!(seq > last_seq, "monotonic seq: {seq} after {last_seq}");
            last_seq = seq;
        }

        let (st_status, st_body) = get(addr, "/status");
        assert_eq!(st_status, "HTTP/1.1 200 OK");
        assert_eq!(json_u64(&st_body, "schema"), u64::from(pmkm_obs::STATUS_SCHEMA_VERSION));
        let done = json_u64(&st_body, "cells_done");
        let total = json_u64(&st_body, "cells_total");
        assert!(done <= total.max(8), "done {done} within plan size");
        let ratio = json_f64(&st_body, "mass_ratio");
        assert!((0.0..=1.0).contains(&ratio), "mass ratio in range: {ratio}");

        if seen_done {
            break;
        }
        seen_done = json_str(&st_body, "state") == "done";
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(seen_done, "the run never reported done through /status");

    let report = run.join().expect("run thread");
    assert_eq!(report.cells.len(), 8);

    // After completion the snapshot settles on the report's numbers.
    let (_, st_body) = get(addr, "/status");
    assert_eq!(json_str(&st_body, "state"), "done", "final state: {st_body}");
    assert_eq!(json_u64(&st_body, "cells_done") as usize, report.cells.len());
    assert_eq!(json_u64(&st_body, "cells_running"), 0);

    // New events past the final cursor still respect the cursor contract.
    let (_, tail) = get(addr, &format!("/events?after={last_seq}"));
    for line in tail.lines().filter(|l| !l.trim().is_empty()) {
        let seq = json_u64(line, "seq");
        assert!(seq > last_seq);
        last_seq = seq;
    }
    assert!(last_seq > 0, "the ledger saw events");

    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}
