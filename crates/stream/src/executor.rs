//! The pipelined executor: one thread per physical operator instance,
//! bounded smart queues between them, end-of-stream propagated by producer
//! hang-up (§3: "all data stream operators process data in a pipelined
//! fashion").

use crate::error::{EngineError, Result};
use crate::fault::{FaultContext, FaultPlan};
use crate::item::{CellClustering, ChunkMsg, MergeMsg, ScanMsg};
use crate::ops::{ChunkerOp, CoresetOp, MergeKMeansOp, PartialKMeansOp, ScanOp};
use crate::plan::PhysicalPlan;
use crate::queue::{QueueStats, SmartQueue};
use crate::telemetry::OpStats;
use pmkm_obs::{
    CellReport, ChunkReport, CoresetReport, FaultReport, MergeReport, Recorder, RunReport,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a finished pipeline run reports.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// One clustering per non-empty input cell, sorted by cell index.
    pub cells: Vec<CellClustering>,
    /// Telemetry of every operator instance.
    pub op_stats: Vec<OpStats>,
    /// Telemetry of every queue.
    pub queue_stats: Vec<QueueStats>,
    /// End-to-end wall time.
    pub elapsed: Duration,
    /// Failure counters accumulated across the run (all zero on a clean
    /// run).
    pub faults: FaultReport,
    /// True when any input mass was lost: a quarantined bucket, chunk or
    /// degraded cell means the results do not cover every scanned point.
    pub degraded: bool,
}

impl EngineReport {
    /// Total wall time the cloned partial operators spent busy — the
    /// engine-level equivalent of Table 2's `t C0−Ci` column.
    pub fn partial_busy(&self) -> Duration {
        self.op_stats.iter().filter(|s| s.name == "partial-kmeans").map(|s| s.busy).sum()
    }

    /// Busy time of the merge operator (`t merge`). Coreset runs replace
    /// the merge operator with the coreset operator, whose busy time
    /// (tree maintenance + anytime queries) plays the same role.
    pub fn merge_busy(&self) -> Duration {
        self.op_stats
            .iter()
            .filter(|s| s.name == "merge" || s.name == "coreset")
            .map(|s| s.busy)
            .sum()
    }

    /// Converts the engine telemetry into the observability layer's
    /// [`RunReport`]. When a recorder is supplied, its metrics registry is
    /// snapshotted into the report as well.
    pub fn run_report(&self, rec: Option<&Recorder>) -> RunReport {
        let cells = self.cells.iter().map(cell_report).collect();
        RunReport {
            elapsed: self.elapsed,
            cells,
            operators: self.op_stats.iter().map(OpStats::to_report).collect(),
            queues: self.queue_stats.iter().map(QueueStats::to_report).collect(),
            metrics: rec.map(|r| r.registry().snapshot()).unwrap_or_default(),
            phases: rec.map(|r| r.phase_rows()).unwrap_or_default(),
            degraded: self.degraded,
            faults: self.faults,
            coreset: coreset_report(&self.cells),
            ..RunReport::new()
        }
    }
}

/// Folds the per-cell coreset-tree summaries into the run report's v7
/// `coreset` block. `None` when no cell ran in coreset mode, so classic
/// merge-path reports keep serializing byte-identically to v6.
pub fn coreset_report<'a>(
    cells: impl IntoIterator<Item = &'a CellClustering>,
) -> Option<CoresetReport> {
    let mut out = CoresetReport::default();
    let mut any = false;
    for stats in cells.into_iter().filter_map(|c| c.coreset.as_ref()) {
        any = true;
        out.trees += 1;
        out.max_levels = out.max_levels.max(stats.levels);
        out.live_buckets += stats.live_buckets;
        out.compactions += stats.compactions;
        out.builds += stats.builds;
        out.queries += stats.queries;
        out.live_weight += stats.live_weight;
        out.ingested_points += stats.ingested_points;
        out.lost_points += stats.lost_points;
        out.expired_points += stats.expired_points;
    }
    any.then_some(out)
}

/// Converts one cell's clustering into the observability layer's
/// [`CellReport`] — shared by the single-run executor and the multi-cell
/// orchestrator's planet-level report.
pub fn cell_report(c: &CellClustering) -> CellReport {
    let chunks = c
        .chunks
        .iter()
        .enumerate()
        .map(|(i, ch)| ChunkReport {
            chunk: ch.chunk,
            points: ch.points,
            best_mse: ch.best_mse,
            iterations: ch.total_iterations,
            elapsed: ch.elapsed,
            mse_trajectory: c.trajectories.get(i).cloned().unwrap_or_default(),
        })
        .collect();
    CellReport {
        cell: c.cell.index().to_string(),
        total_points: c.output.cluster_weights.iter().sum::<f64>().round() as usize,
        expected_points: c.expected_points,
        lost_points: c.lost_points,
        lost_chunks: c.lost_chunks,
        degraded: c.degraded,
        chunks,
        merge: MergeReport {
            input_centroids: c.output.input_centroids,
            epm: c.output.epm,
            mse: c.output.mse,
            iterations: c.output.iterations,
            converged: c.output.converged,
            elapsed: c.output.elapsed,
        },
    }
}

/// Executes a physical plan to completion.
///
/// The dataflow is scan → chunker → `partial_clones` × partial k-means →
/// merge, with the final results drained on the calling thread. Operator
/// panics and errors abort the run and surface as [`EngineError`].
pub fn execute(plan: &PhysicalPlan) -> Result<EngineReport> {
    execute_observed(plan, None)
}

/// [`execute`] with an optional trace/metrics recorder attached to every
/// operator instance. With `None` this is exactly `execute` — no events,
/// no metrics, no extra work on the hot path.
pub fn execute_observed(plan: &PhysicalPlan, rec: Option<Arc<Recorder>>) -> Result<EngineReport> {
    execute_with_faults(plan, rec, None)
}

/// [`execute_observed`] with a deterministic fault-injection schedule — the
/// entry point of the chaos suite. With `fault_plan: None` and the default
/// [`crate::fault::FaultPolicy::strict`] policy this is exactly
/// `execute_observed`: no injection, no validation passes, byte-identical
/// results.
pub fn execute_with_faults(
    plan: &PhysicalPlan,
    rec: Option<Arc<Recorder>>,
    fault_plan: Option<FaultPlan>,
) -> Result<EngineReport> {
    execute_inner(plan, rec, fault_plan, true)
}

/// [`execute_with_faults`] without the run-level journal framing — the
/// orchestrator's per-cell hook. Cell-scoped events (`cell.open`,
/// `cell.close`, `chunk.close`, faults) still flow to the recorder, but
/// `run.open` / `run.close` / phase emission are left to the caller, which
/// brackets the whole multi-cell run exactly once.
pub fn execute_cell(
    plan: &PhysicalPlan,
    rec: Option<Arc<Recorder>>,
    fault_plan: Option<FaultPlan>,
) -> Result<EngineReport> {
    execute_inner(plan, rec, fault_plan, false)
}

fn execute_inner(
    plan: &PhysicalPlan,
    rec: Option<Arc<Recorder>>,
    fault_plan: Option<FaultPlan>,
    emit_run_events: bool,
) -> Result<EngineReport> {
    plan.validate()?;
    let faults = FaultContext::new(fault_plan, plan.fault_policy);
    let started = Instant::now();
    if emit_run_events {
        if let Some(rec) = rec.as_deref() {
            rec.event(
                "run.open",
                &[
                    ("cells", plan.logical.inputs.len().into()),
                    ("partial_clones", plan.partial_clones.into()),
                    ("scan_clones", plan.scan_clones.into()),
                ],
            );
        }
    }
    let cap = plan.queue_capacity;
    let depth_every = rec.as_deref().map(|r| r.config().depth_sample_interval()).unwrap_or(1);
    let q_scan: SmartQueue<ScanMsg> =
        SmartQueue::new("scan→chunker", cap).with_depth_sample_interval(depth_every);
    let q_chunks: SmartQueue<ChunkMsg> =
        SmartQueue::new("chunker→partial", cap).with_depth_sample_interval(depth_every);
    let q_merge: SmartQueue<MergeMsg> =
        SmartQueue::new("partial→merge", cap).with_depth_sample_interval(depth_every);
    let q_results: SmartQueue<CellClustering> =
        SmartQueue::new("merge→sink", cap).with_depth_sample_interval(depth_every);

    // Deal input buckets round-robin over the scan clones.
    let scan_clones = plan.scan_clones.min(plan.logical.inputs.len()).max(1);
    let mut scan_inputs: Vec<Vec<std::path::PathBuf>> = vec![Vec::new(); scan_clones];
    for (i, path) in plan.logical.inputs.iter().enumerate() {
        scan_inputs[i % scan_clones].push(path.clone());
    }
    let scans: Vec<ScanOp> = scan_inputs
        .into_iter()
        .map(|paths| {
            ScanOp::new(paths, plan.scan_batch, q_scan.producer())
                .with_recorder(rec.clone())
                .with_faults(faults.clone())
                .with_backend(plan.scan_backend)
        })
        .collect();
    let chunker = ChunkerOp::new(
        q_scan.consumer(),
        q_chunks.producer(),
        q_merge.producer(),
        plan.chunk_policy,
    )
    .with_recorder(rec.clone())
    .with_faults(faults.clone());
    let partials: Vec<PartialKMeansOp> = (0..plan.partial_clones)
        .map(|i| {
            PartialKMeansOp::new(q_chunks.consumer(), q_merge.producer(), plan.logical.kmeans, i)
                .with_coreset(plan.coreset.as_ref().map(|s| s.size))
                .with_recorder(rec.clone())
                .with_faults(faults.clone())
        })
        .collect();
    // The tail of the pipeline is either the classic buffer-everything
    // merge or the bounded-memory coreset tree — same queues, same
    // contract, different operator.
    let tail_name = if plan.coreset.is_some() { "coreset" } else { "merge" };
    let tail: Box<dyn FnOnce() -> Result<OpStats> + Send> = if let Some(spec) = plan.coreset.clone()
    {
        let op = CoresetOp::new(
            q_merge.consumer(),
            q_results.producer(),
            plan.logical.kmeans,
            plan.logical.merge_restarts,
            spec,
        )
        .with_recorder(rec.clone())
        .with_faults(faults.clone());
        Box::new(move || op.run())
    } else {
        let op = MergeKMeansOp::new(
            q_merge.consumer(),
            q_results.producer(),
            plan.logical.kmeans,
            plan.logical.merge_mode,
            plan.logical.merge_restarts,
        )
        .with_recorder(rec.clone())
        .with_faults(faults.clone());
        Box::new(move || op.run())
    };
    let results = q_results.consumer();
    q_scan.seal();
    q_chunks.seal();
    q_merge.seal();
    q_results.seal();

    let (mut cells, op_stats) = crossbeam::thread::scope(|s| -> Result<_> {
        let mut handles = Vec::new();
        for scan in scans {
            handles.push(("scan", s.spawn(move |_| scan.run())));
        }
        handles.push(("chunker", s.spawn(|_| chunker.run())));
        for p in partials {
            handles.push(("partial-kmeans", s.spawn(move |_| p.run())));
        }
        handles.push((tail_name, s.spawn(move |_| tail())));

        // Sink: drain final results on this thread while the pipeline runs.
        let mut cells = Vec::new();
        while let Some(r) = results.recv() {
            cells.push(r);
        }

        let mut op_stats = Vec::new();
        let mut first_err: Option<EngineError> = None;
        for (name, h) in handles {
            match h.join() {
                Ok(Ok(stats)) => op_stats.push(stats),
                Ok(Err(e)) => {
                    // Keep the root cause: a Disconnected error is the
                    // *consequence* of another operator failing, so prefer
                    // non-disconnection errors.
                    match (&first_err, &e) {
                        (None, _) => first_err = Some(e),
                        (Some(EngineError::Disconnected(_)), e2)
                            if !matches!(e2, EngineError::Disconnected(_)) =>
                        {
                            first_err = Some(e)
                        }
                        _ => {}
                    }
                }
                Err(_) => first_err = Some(EngineError::OperatorPanic(name.to_string())),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok((cells, op_stats)),
        }
    })
    .map_err(|_| EngineError::OperatorPanic("scope".into()))??;

    cells.sort_by_key(|c| c.cell.index());
    let queue_stats = vec![q_scan.stats(), q_chunks.stats(), q_merge.stats(), q_results.stats()];
    let fault_report = faults.counters.snapshot();
    let degraded = fault_report.scan_failures > 0
        || fault_report.chunks_quarantined > 0
        || fault_report.cells_degraded > 0;
    let elapsed = started.elapsed();
    if emit_run_events {
        if let Some(rec) = rec.as_deref() {
            // Phases before close: `run.close` marks the journal's logical
            // end.
            pmkm_obs::emit_phase_events(rec);
            rec.event(
                "run.close",
                &[
                    ("elapsed_us", (elapsed.as_micros() as u64).into()),
                    ("cells", cells.len().into()),
                    ("degraded", degraded.into()),
                ],
            );
            rec.flush();
        }
    }
    Ok(EngineReport { cells, op_stats, queue_stats, elapsed, faults: fault_report, degraded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{optimize, optimize_fixed_split};
    use crate::plan::LogicalPlan;
    use crate::resources::Resources;
    use pmkm_core::{Dataset, KMeansConfig};
    use pmkm_data::{GridBucket, GridCell};
    use std::path::PathBuf;

    fn write_cell(dir: &std::path::Path, idx: u16, n: usize, seed: u64) -> PathBuf {
        use rand::Rng;
        let mut rng = pmkm_core::seeding::rng_for(seed, idx as u64);
        let mut points = Dataset::new(2).unwrap();
        for _ in 0..n {
            let blob = if rng.gen_bool(0.5) { 0.0 } else { 40.0 };
            points
                .push(&[blob + rng.gen_range(-1.0..1.0), blob + rng.gen_range(-1.0..1.0)])
                .unwrap();
        }
        let cell = GridCell::new(idx, idx).unwrap();
        let path = dir.join(cell.bucket_file_name());
        GridBucket { cell, points }.write_to(&path).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pmkm_exec_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn clusters_multiple_cells_end_to_end() {
        let dir = tmpdir("multi");
        let paths = vec![
            write_cell(&dir, 1, 300, 7),
            write_cell(&dir, 2, 150, 7),
            write_cell(&dir, 3, 80, 7),
        ];
        let logical =
            LogicalPlan::new(paths, KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 11) });
        let plan = optimize_fixed_split(logical, &Resources::fixed(1 << 20, 3), 64);
        let report = execute(&plan).unwrap();
        assert_eq!(report.cells.len(), 3);
        // Sorted by cell index; weights conserved per cell.
        let ns = [300.0, 150.0, 80.0];
        for (i, c) in report.cells.iter().enumerate() {
            let total: f64 = c.output.cluster_weights.iter().sum();
            assert_eq!(total, ns[i], "cell {i}");
            // Two blobs at 0 and 40: the merged centroids find them.
            let mut xs: Vec<f64> = c.output.centroids.iter().map(|p| p[0]).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert!(xs[0] < 5.0 && xs[xs.len() - 1] > 35.0);
        }
        // Telemetry exists for every operator.
        assert_eq!(report.op_stats.iter().filter(|s| s.name == "partial-kmeans").count(), 3);
        assert_eq!(report.queue_stats.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clone_count_does_not_change_results() {
        let dir = tmpdir("clones");
        let paths = vec![write_cell(&dir, 5, 400, 3)];
        let mk_plan = |workers: usize| {
            optimize_fixed_split(
                LogicalPlan::new(
                    paths.clone(),
                    KMeansConfig { restarts: 2, ..KMeansConfig::paper(3, 99) },
                ),
                &Resources::fixed(1 << 20, workers),
                50,
            )
        };
        let one = execute(&mk_plan(1)).unwrap();
        let four = execute(&mk_plan(4)).unwrap();
        assert_eq!(one.cells.len(), 1);
        assert_eq!(one.cells[0].output.centroids, four.cells[0].output.centroids);
        assert_eq!(one.cells[0].output.epm, four.cells[0].output.epm);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_matches_in_memory_pipeline() {
        // The stream engine's fixed-split path must equal
        // pmkm_core::partial_merge with the same chunk seeds. We verify the
        // weaker (and more meaningful) invariant that both recover the same
        // blob structure with equal weight totals.
        let dir = tmpdir("parity");
        let paths = vec![write_cell(&dir, 8, 200, 21)];
        let logical =
            LogicalPlan::new(paths, KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 5) });
        let plan = optimize_fixed_split(logical, &Resources::fixed(1 << 20, 2), 40);
        let report = execute(&plan).unwrap();
        let engine_out = &report.cells[0].output;
        let total: f64 = engine_out.cluster_weights.iter().sum();
        assert_eq!(total, 200.0);
        assert_eq!(report.cells[0].chunks.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_budget_policy_resolves_chunks() {
        let dir = tmpdir("budget");
        let paths = vec![write_cell(&dir, 9, 100, 2)];
        let logical =
            LogicalPlan::new(paths, KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 5) });
        // dim-2 points are 16 B; 400 B budget → 25 points/chunk → 4 chunks.
        let plan = optimize(logical, &Resources::fixed(400, 2));
        let report = execute(&plan).unwrap();
        assert_eq!(report.cells[0].chunks.len(), 4);
        for c in &report.cells[0].chunks {
            assert!(c.points <= 25);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_clones_do_not_change_results() {
        let dir = tmpdir("scanclones");
        let paths = vec![
            write_cell(&dir, 11, 200, 4),
            write_cell(&dir, 12, 150, 4),
            write_cell(&dir, 13, 120, 4),
        ];
        let mk = |scan_clones: usize| {
            let mut plan = optimize_fixed_split(
                LogicalPlan::new(
                    paths.clone(),
                    KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 6) },
                ),
                &Resources::fixed(1 << 20, 2),
                60,
            );
            plan.scan_clones = scan_clones;
            plan
        };
        let one = execute(&mk(1)).unwrap();
        let three = execute(&mk(3)).unwrap();
        assert_eq!(one.cells.len(), 3);
        for (a, b) in one.cells.iter().zip(&three.cells) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.output.centroids, b.output.centroids);
            assert_eq!(a.output.epm, b.output.epm);
        }
        // Telemetry reflects the clone count.
        assert_eq!(three.op_stats.iter().filter(|s| s.name == "scan").count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_bucket_aborts_with_data_error() {
        let logical = LogicalPlan::new(
            vec![PathBuf::from("/nonexistent/cell.gb")],
            KMeansConfig::paper(2, 0),
        );
        let plan = optimize(logical, &Resources::fixed(1 << 20, 2));
        assert!(matches!(execute(&plan), Err(EngineError::Data(_))));
    }

    #[test]
    fn observed_run_matches_unobserved_and_builds_run_report() {
        use pmkm_obs::{Profiler, RingBufferSink};
        let dir = tmpdir("observed");
        let paths = vec![write_cell(&dir, 6, 250, 17), write_cell(&dir, 7, 90, 17)];
        let mk_plan = || {
            optimize_fixed_split(
                LogicalPlan::new(
                    paths.clone(),
                    KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 13) },
                ),
                &Resources::fixed(1 << 20, 2),
                60,
            )
        };
        let plain = execute(&mk_plan()).unwrap();

        let ring = Arc::new(RingBufferSink::new(4096));
        let rec = Arc::new(
            Recorder::new().with_sink(ring.clone()).with_profiler(Arc::new(Profiler::new())),
        );
        let observed = execute_observed(&mk_plan(), Some(rec.clone())).unwrap();

        // Observation must not change the results.
        assert_eq!(plain.cells.len(), observed.cells.len());
        for (a, b) in plain.cells.iter().zip(&observed.cells) {
            assert_eq!(a.output.centroids, b.output.centroids);
            assert_eq!(a.output.epm, b.output.epm);
        }
        // Events flowed: at least one per cell from scan and merge.
        assert!(ring.len() >= 4, "expected trace events, got {}", ring.len());
        // Trajectories were captured per chunk.
        for c in &observed.cells {
            assert_eq!(c.trajectories.len(), c.chunks.len());
        }

        let report = observed.run_report(Some(&rec));
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.total_points(), 340);
        assert_eq!(report.operators.len(), observed.op_stats.len());
        assert_eq!(report.queues.len(), 4);
        // Queue depth histograms account for every send.
        for q in &report.queues {
            let bucketed: u64 = q.depth.counts.iter().sum();
            assert_eq!(bucketed, q.sends, "queue {}", q.name);
        }
        assert!(!report.metrics.counters.is_empty());
        // Every operator contributed spans, and the partial spans nest the
        // shared k-means phases beneath them.
        let paths_seen: Vec<&str> = report.phases.iter().map(|p| p.path.as_str()).collect();
        for expect in ["scan", "chunk", "partial", "partial/seed", "partial/assign", "merge"] {
            assert!(paths_seen.contains(&expect), "missing phase {expect}: {paths_seen:?}");
        }
        for p in &report.phases {
            assert!(p.self_us <= p.total_us, "phase {}", p.path);
        }
        // The report round-trips losslessly through JSON.
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_ledger_rollup_reproduces_fault_counters_and_mass() {
        use crate::fault::FaultPolicy;
        use pmkm_obs::{parse_ledger, rollup, LedgerSink, Profiler};
        let dir = tmpdir("ledger_chaos");
        let paths = vec![
            write_cell(&dir, 1, 200, 23),
            write_cell(&dir, 2, 160, 23),
            write_cell(&dir, 3, 120, 23),
        ];
        let mk_plan = || {
            let mut plan = optimize_fixed_split(
                LogicalPlan::new(
                    paths.clone(),
                    KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 31) },
                ),
                &Resources::fixed(1 << 20, 2),
                40,
            );
            plan.fault_policy = FaultPolicy::tolerant();
            plan
        };
        let chaos = Some(FaultPlan::heavy(77));

        // Bare chaos run: the determinism baseline.
        let bare = execute_with_faults(&mk_plan(), None, chaos.clone()).unwrap();

        // Ledger-enabled chaos run with the same seed.
        let ledger = Arc::new(LedgerSink::in_memory());
        let rec = Arc::new(
            Recorder::new().with_sink(ledger.clone()).with_profiler(Arc::new(Profiler::new())),
        );
        let observed = execute_with_faults(&mk_plan(), Some(rec.clone()), chaos).unwrap();

        // Attaching the ledger must not change the clustering.
        assert_eq!(bare.cells.len(), observed.cells.len());
        for (a, b) in bare.cells.iter().zip(&observed.cells) {
            assert_eq!(a.output.centroids, b.output.centroids);
            assert_eq!(a.output.epm, b.output.epm);
            assert_eq!(a.lost_points, b.lost_points);
        }
        assert_eq!(bare.faults, observed.faults);

        // The ledger's rollup reproduces the run report exactly: fault
        // counters count-for-count and mass accounting cell-for-cell.
        let report = observed.run_report(Some(&rec));
        let records = parse_ledger(&ledger.snapshot_jsonl()).unwrap();
        let roll = rollup(&records);
        assert!(roll.faults.any(), "heavy chaos plan injected nothing");
        assert_eq!(roll.faults, report.faults);
        let report_expected: f64 = report.cells.iter().map(|c| c.expected_points).sum();
        let report_lost: f64 = report.cells.iter().map(|c| c.lost_points).sum();
        // Fully-lost cells never reach the report's cell list but do reach
        // the ledger, so the ledger's mass accounting covers at least the
        // report's and never disagrees on what both saw.
        for cell in &report.cells {
            let ledger_cell = roll
                .cells
                .iter()
                .find(|c| c.cell == cell.cell)
                .unwrap_or_else(|| panic!("cell {} missing from ledger", cell.cell));
            assert_eq!(ledger_cell.expected_points, cell.expected_points);
            assert_eq!(ledger_cell.lost_points, cell.lost_points);
            assert_eq!(ledger_cell.lost_chunks, cell.lost_chunks as u64);
            assert_eq!(ledger_cell.degraded, cell.degraded);
        }
        assert!(roll.expected_weight() >= report_expected);
        assert!(roll.lost_weight() >= report_lost);
        // Phases and timing made it into the journal.
        assert_eq!(roll.elapsed_us, report.elapsed.as_micros() as u64);
        assert!(!roll.phases.is_empty());
        assert!(!roll.chunks.is_empty());
        // The mass gauges expose the same ratio on /metrics.
        let ratio = rec.registry().gauge("mass_conservation_ratio").get();
        assert!((ratio - roll.mass_ratio()).abs() < 1e-9, "{ratio} vs {}", roll.mass_ratio());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coreset_mode_clusters_end_to_end_with_bounded_buckets() {
        use crate::plan::CoresetSpec;
        let dir = tmpdir("coreset");
        let paths = vec![write_cell(&dir, 21, 300, 9)];
        let mk_plan = |workers: usize| {
            let mut plan = optimize_fixed_split(
                LogicalPlan::new(
                    paths.clone(),
                    KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 11) },
                ),
                &Resources::fixed(1 << 20, workers),
                30, // 300 points → 10 chunks
            );
            plan.coreset = Some(CoresetSpec::new(32));
            plan
        };
        let report = execute(&mk_plan(3)).unwrap();
        assert_eq!(report.cells.len(), 1);
        let c = &report.cells[0];
        let total: f64 = c.output.cluster_weights.iter().sum();
        assert_eq!(total, 300.0, "coreset weights must conserve the cell mass");
        // Two blobs at 0 and 40: the anytime clustering still finds them.
        let mut xs: Vec<f64> = c.output.centroids.iter().map(|p| p[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(xs[0] < 5.0 && xs[xs.len() - 1] > 35.0);
        let stats = c.coreset.expect("coreset stats on a coreset run");
        assert_eq!(stats.builds, 10);
        // 10 chunks → popcount(10) = 2 live buckets, ≤ the log bound.
        assert_eq!(stats.live_buckets, 2);
        assert!(stats.live_buckets as u32 <= 10usize.ilog2() + 1);
        assert_eq!(stats.ingested_points, 300.0);
        // Worker count must not change the clustering (ordered drain).
        let four = execute(&mk_plan(4)).unwrap();
        assert_eq!(c.output.centroids, four.cells[0].output.centroids);
        assert_eq!(c.output.mse, four.cells[0].output.mse);
        // The v7 report block aggregates the tree.
        let run = report.run_report(None);
        let block = run.coreset.expect("coreset block");
        assert_eq!(block.trees, 1);
        assert_eq!(block.builds, 10);
        assert_eq!(block.ingested_points, 300.0);
        // Classic runs keep the block absent.
        let mut classic = mk_plan(3);
        classic.coreset = None;
        assert!(execute(&classic).unwrap().run_report(None).coreset.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_busy_accessors() {
        let dir = tmpdir("busy");
        let paths = vec![write_cell(&dir, 4, 150, 1)];
        let plan = optimize_fixed_split(
            LogicalPlan::new(paths, KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 0) }),
            &Resources::fixed(1 << 20, 2),
            30,
        );
        let report = execute(&plan).unwrap();
        assert!(report.partial_busy() > Duration::ZERO);
        assert!(report.elapsed >= report.merge_busy());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
