//! Per-operator telemetry.

use pmkm_obs::OperatorReport;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Runtime statistics of one operator instance (one clone).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpStats {
    /// Operator name (`"scan"`, `"chunker"`, `"partial-kmeans"`, `"merge"`).
    pub name: String,
    /// Clone index for cloned operators, 0 otherwise.
    pub clone_id: usize,
    /// Items consumed from the input edge.
    pub items_in: u64,
    /// Items produced on the output edge.
    pub items_out: u64,
    /// Time spent doing work (excludes time blocked on queues).
    pub busy: Duration,
    /// Time spent blocked on queue sends/receives (backpressure and
    /// underflow waits).
    pub blocked: Duration,
    /// Wall-clock lifetime of the operator.
    pub lifetime: Duration,
}

impl OpStats {
    /// Fraction of its lifetime the operator spent busy (0 when unknown).
    ///
    /// Clamped to `[0, 1]`: timer granularity can make `busy` overshoot
    /// `lifetime` by a few ticks (the two are measured with separate
    /// `Instant` reads), and a ratio above 1.0 is meaningless to report.
    pub fn utilization(&self) -> f64 {
        if self.lifetime.is_zero() {
            0.0
        } else {
            (self.busy.as_secs_f64() / self.lifetime.as_secs_f64()).clamp(0.0, 1.0)
        }
    }

    /// Folds another clone's stats into this one: throughput and busy /
    /// blocked time add up, lifetime takes the max (clones run
    /// concurrently, so their wall-clock spans overlap).
    pub fn merge(&mut self, other: &OpStats) {
        self.items_in += other.items_in;
        self.items_out += other.items_out;
        self.busy += other.busy;
        self.blocked += other.blocked;
        self.lifetime = self.lifetime.max(other.lifetime);
    }

    /// Converts into the observability layer's report row.
    pub fn to_report(&self) -> OperatorReport {
        OperatorReport {
            name: self.name.clone(),
            clone_id: self.clone_id,
            items_in: self.items_in,
            items_out: self.items_out,
            busy: self.busy,
            blocked: self.blocked,
            lifetime: self.lifetime,
            utilization: self.utilization(),
        }
    }
}

/// Builder used inside operator run loops.
#[derive(Debug)]
pub struct OpMeter {
    name: String,
    clone_id: usize,
    items_in: u64,
    items_out: u64,
    busy: Duration,
    blocked: Duration,
    started: Instant,
}

impl OpMeter {
    /// Starts metering an operator.
    pub fn new(name: impl Into<String>, clone_id: usize) -> Self {
        Self {
            name: name.into(),
            clone_id,
            items_in: 0,
            items_out: 0,
            busy: Duration::ZERO,
            blocked: Duration::ZERO,
            started: Instant::now(),
        }
    }

    /// Records one consumed item.
    pub fn item_in(&mut self) {
        self.items_in += 1;
    }

    /// Records one produced item.
    pub fn item_out(&mut self) {
        self.items_out += 1;
    }

    /// Times a unit of work and adds it to the busy total.
    pub fn work<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.busy += start.elapsed();
        out
    }

    /// Times a potentially blocking queue operation (send/recv) and adds it
    /// to the blocked total.
    pub fn wait<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.blocked += start.elapsed();
        out
    }

    /// Finishes metering.
    pub fn finish(self) -> OpStats {
        OpStats {
            name: self.name,
            clone_id: self.clone_id,
            items_in: self.items_in,
            items_out: self.items_out,
            busy: self.busy,
            blocked: self.blocked,
            lifetime: self.started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates() {
        let mut m = OpMeter::new("op", 2);
        m.item_in();
        m.item_in();
        let v = m.work(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        m.item_out();
        let s = m.finish();
        assert_eq!(s.name, "op");
        assert_eq!(s.clone_id, 2);
        assert_eq!(s.items_in, 2);
        assert_eq!(s.items_out, 1);
        assert!(s.busy >= Duration::from_millis(4));
        assert!(s.lifetime >= s.busy);
    }

    #[test]
    fn utilization_bounds() {
        let m = OpMeter::new("idle", 0);
        let s = m.finish();
        let u = s.utilization();
        assert!((0.0..=1.0).contains(&u));
    }

    #[test]
    fn utilization_is_clamped_when_busy_overshoots_lifetime() {
        // Separate Instant reads can leave busy a hair above lifetime; the
        // ratio must never exceed 1.0.
        let s = OpStats {
            name: "hot".into(),
            busy: Duration::from_millis(1001),
            lifetime: Duration::from_millis(1000),
            ..OpStats::default()
        };
        assert_eq!(s.utilization(), 1.0);
        let zero = OpStats::default();
        assert_eq!(zero.utilization(), 0.0);
    }

    #[test]
    fn wait_accumulates_blocked_time() {
        let mut m = OpMeter::new("op", 0);
        m.wait(|| std::thread::sleep(Duration::from_millis(5)));
        let s = m.finish();
        assert!(s.blocked >= Duration::from_millis(4));
        assert!(s.busy.is_zero());
    }

    #[test]
    fn merge_sums_throughput_and_takes_max_lifetime() {
        let mut a = OpStats {
            name: "partial-kmeans".into(),
            clone_id: 0,
            items_in: 3,
            items_out: 3,
            busy: Duration::from_millis(30),
            blocked: Duration::from_millis(5),
            lifetime: Duration::from_millis(50),
        };
        let b = OpStats {
            name: "partial-kmeans".into(),
            clone_id: 1,
            items_in: 4,
            items_out: 4,
            busy: Duration::from_millis(40),
            blocked: Duration::from_millis(10),
            lifetime: Duration::from_millis(45),
        };
        a.merge(&b);
        assert_eq!(a.items_in, 7);
        assert_eq!(a.items_out, 7);
        assert_eq!(a.busy, Duration::from_millis(70));
        assert_eq!(a.blocked, Duration::from_millis(15));
        assert_eq!(a.lifetime, Duration::from_millis(50));
    }

    #[test]
    fn to_report_carries_the_busy_blocked_split() {
        let s = OpStats {
            name: "merge".into(),
            clone_id: 1,
            items_in: 10,
            items_out: 2,
            busy: Duration::from_millis(60),
            blocked: Duration::from_millis(20),
            lifetime: Duration::from_millis(100),
        };
        let r = s.to_report();
        assert_eq!(r.name, "merge");
        assert_eq!(r.clone_id, 1);
        assert_eq!(r.busy, Duration::from_millis(60));
        assert_eq!(r.blocked, Duration::from_millis(20));
        assert!((r.utilization - 0.6).abs() < 1e-12);
    }
}
