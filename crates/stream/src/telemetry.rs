//! Per-operator telemetry.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Runtime statistics of one operator instance (one clone).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpStats {
    /// Operator name (`"scan"`, `"chunker"`, `"partial-kmeans"`, `"merge"`).
    pub name: String,
    /// Clone index for cloned operators, 0 otherwise.
    pub clone_id: usize,
    /// Items consumed from the input edge.
    pub items_in: u64,
    /// Items produced on the output edge.
    pub items_out: u64,
    /// Time spent doing work (excludes time blocked on queues).
    pub busy: Duration,
    /// Wall-clock lifetime of the operator.
    pub lifetime: Duration,
}

impl OpStats {
    /// Fraction of its lifetime the operator spent busy (0 when unknown).
    pub fn utilization(&self) -> f64 {
        if self.lifetime.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / self.lifetime.as_secs_f64()
        }
    }
}

/// Builder used inside operator run loops.
#[derive(Debug)]
pub struct OpMeter {
    name: String,
    clone_id: usize,
    items_in: u64,
    items_out: u64,
    busy: Duration,
    started: Instant,
}

impl OpMeter {
    /// Starts metering an operator.
    pub fn new(name: impl Into<String>, clone_id: usize) -> Self {
        Self {
            name: name.into(),
            clone_id,
            items_in: 0,
            items_out: 0,
            busy: Duration::ZERO,
            started: Instant::now(),
        }
    }

    /// Records one consumed item.
    pub fn item_in(&mut self) {
        self.items_in += 1;
    }

    /// Records one produced item.
    pub fn item_out(&mut self) {
        self.items_out += 1;
    }

    /// Times a unit of work and adds it to the busy total.
    pub fn work<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.busy += start.elapsed();
        out
    }

    /// Finishes metering.
    pub fn finish(self) -> OpStats {
        OpStats {
            name: self.name,
            clone_id: self.clone_id,
            items_in: self.items_in,
            items_out: self.items_out,
            busy: self.busy,
            lifetime: self.started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates() {
        let mut m = OpMeter::new("op", 2);
        m.item_in();
        m.item_in();
        let v = m.work(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        m.item_out();
        let s = m.finish();
        assert_eq!(s.name, "op");
        assert_eq!(s.clone_id, 2);
        assert_eq!(s.items_in, 2);
        assert_eq!(s.items_out, 1);
        assert!(s.busy >= Duration::from_millis(4));
        assert!(s.lifetime >= s.busy);
    }

    #[test]
    fn utilization_bounds() {
        let m = OpMeter::new("idle", 0);
        let s = m.finish();
        let u = s.utilization();
        assert!((0.0..=1.0).contains(&u));
    }
}
