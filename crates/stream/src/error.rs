//! Engine error type.

use std::fmt;

/// Errors surfaced by the stream engine.
#[derive(Debug)]
pub enum EngineError {
    /// A clustering step failed.
    Core(pmkm_core::Error),
    /// Reading input data failed.
    Data(pmkm_data::DataError),
    /// A downstream operator hung up before the stream finished — the
    /// pipeline is broken (usually a panicked operator).
    Disconnected(&'static str),
    /// Invalid plan or resource specification.
    InvalidPlan(String),
    /// An operator thread panicked.
    OperatorPanic(String),
    /// A chunk carried non-finite coordinates and the fault policy does
    /// not allow quarantining it.
    PoisonedChunk {
        /// Owning cell index.
        cell: u32,
        /// Partition index of the poisoned chunk.
        chunk_id: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "clustering error: {e}"),
            EngineError::Data(e) => write!(f, "data error: {e}"),
            EngineError::Disconnected(edge) => {
                write!(f, "stream edge '{edge}' disconnected mid-stream")
            }
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::OperatorPanic(op) => write!(f, "operator '{op}' panicked"),
            EngineError::PoisonedChunk { cell, chunk_id } => {
                write!(f, "chunk {chunk_id} of cell {cell} has non-finite coordinates")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            EngineError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pmkm_core::Error> for EngineError {
    fn from(e: pmkm_core::Error) -> Self {
        EngineError::Core(e)
    }
}

impl From<pmkm_data::DataError> for EngineError {
    fn from(e: pmkm_data::DataError) -> Self {
        EngineError::Data(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = EngineError::Core(pmkm_core::Error::ZeroK);
        assert!(e.to_string().contains("clustering"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(EngineError::Disconnected("chunks").to_string().contains("chunks"));
        assert!(EngineError::OperatorPanic("scan".into()).to_string().contains("scan"));
        let poisoned = EngineError::PoisonedChunk { cell: 9, chunk_id: 2 };
        assert!(poisoned.to_string().contains("chunk 2"));
        assert!(poisoned.to_string().contains("cell 9"));
    }
}
