//! The data items flowing on the pipeline's edges.

use pmkm_core::coreset::CoresetStats;
use pmkm_core::merge::MergeOutput;
use pmkm_core::partial::PartialOutput;
use pmkm_core::pipeline::ChunkStats;
use pmkm_core::Dataset;
use pmkm_data::GridCell;
use serde::{Deserialize, Serialize};

/// Scan → chunker messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanMsg {
    /// A batch of points read from one cell's bucket.
    Batch {
        /// The cell being scanned.
        cell: GridCell,
        /// The points in this batch.
        points: Dataset,
    },
    /// The scan finished the cell's bucket (the chunker flushes the cell's
    /// final, possibly short, chunk on seeing this).
    CellEnd {
        /// The finished cell.
        cell: GridCell,
        /// Points the bucket header promised. Under a tolerant fault
        /// policy the scan may deliver fewer (abandoned bucket tail); the
        /// difference surfaces as lost mass in the merge.
        expected_points: usize,
    },
}

/// Chunker → partial-k-means messages: one memory-sized partition.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMsg {
    /// Owning cell.
    pub cell: GridCell,
    /// Partition index within the cell (`0..p`).
    pub chunk_id: usize,
    /// The partition's points.
    pub points: Dataset,
}

/// Partial/chunker → merge messages.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeMsg {
    /// One partition's weighted centroids.
    Partial {
        /// Owning cell.
        cell: GridCell,
        /// Partition index.
        chunk_id: usize,
        /// The partial k-means output.
        output: PartialOutput,
    },
    /// Emitted by the chunker when a cell's last chunk has been sent; tells
    /// the merge operator how many partials to expect for the cell.
    CellPlan {
        /// The completed cell.
        cell: GridCell,
        /// Number of chunks the cell was split into.
        chunks: usize,
        /// Points the cell's bucket header promised (`Σw_expected` for the
        /// merge's mass accounting).
        expected_points: usize,
    },
    /// A chunk that will never produce a partial: quarantined after
    /// failing validation or crashing past the retry budget. Counts toward
    /// the cell's completeness so the merge can still finish the cell.
    ChunkLost {
        /// Owning cell.
        cell: GridCell,
        /// Partition index of the lost chunk.
        chunk_id: usize,
        /// Points the chunk carried (lost mass).
        points: usize,
    },
}

/// Final per-cell result emitted by the merge operator.
///
/// Serializable because it is exactly the payload an orchestrated run
/// persists in a per-cell checkpoint file after the merge completes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellClustering {
    /// The cell.
    pub cell: GridCell,
    /// The merged representation.
    pub output: MergeOutput,
    /// Per-chunk statistics, in chunk order.
    pub chunks: Vec<ChunkStats>,
    /// Per-chunk MSE trajectories of the winning restarts, aligned with
    /// `chunks` (empty vectors for tiny-chunk passthroughs).
    pub trajectories: Vec<Vec<f64>>,
    /// Points the cell's bucket promised (`Σw_expected`); equals the
    /// clustered weight on a fault-free run.
    pub expected_points: f64,
    /// Mass missing from the merge (`Σw_expected − Σw_received`).
    pub lost_points: f64,
    /// Chunks of this cell that were quarantined.
    pub lost_chunks: usize,
    /// True when the cell merged with missing mass.
    pub degraded: bool,
    /// Coreset-tree summary when the cell ran in coreset mode (`None` on
    /// the classic merge path; defaulted so pre-coreset checkpoints still
    /// deserialize).
    #[serde(default)]
    pub coreset: Option<CoresetStats>,
}
