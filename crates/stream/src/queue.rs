//! Smart queues: the bounded, telemetry-bearing edges between operators.
//!
//! "Producer operator(s) and consumer operator(s) are connected via smart
//! queues to avoid buffer overflow or underflow" (§3.4). Concretely: a
//! bounded MPMC channel — blocking sends give backpressure (no overflow),
//! blocking receives give pipelining (no busy underflow) — plus counters
//! that let the engine report throughput and contention per edge. The MPMC
//! receive side is what makes *operator cloning* trivial: every clone of a
//! consumer holds a receiver on the same queue and the clones steal work
//! from each other.

use crossbeam::channel::{bounded, Receiver, SendError, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;
use pmkm_obs::{HistogramSnapshot, QueueReport};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of depth-histogram buckets: depths 0, 1, 2–3, 4–7, 8–15, 16–31,
/// 32–63, and 64+. Power-of-two ranges keep the sampling a handful of
/// compares regardless of capacity.
const DEPTH_BUCKETS: usize = 8;

/// Inclusive upper bounds of the finite depth buckets (the 8th is +Inf).
const DEPTH_BOUNDS: [f64; DEPTH_BUCKETS - 1] = [0.0, 1.0, 3.0, 7.0, 15.0, 31.0, 63.0];

fn depth_bucket(depth: usize) -> usize {
    match depth {
        0 => 0,
        1 => 1,
        2..=3 => 2,
        4..=7 => 3,
        8..=15 => 4,
        16..=31 => 5,
        32..=63 => 6,
        _ => 7,
    }
}

/// Snapshot of one queue's telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Edge name (e.g. `"chunks"`).
    pub name: String,
    /// Configured capacity.
    pub capacity: usize,
    /// Items pushed.
    pub sends: u64,
    /// Items popped.
    pub recvs: u64,
    /// Sends that found the queue full and had to block (backpressure
    /// events — the producer outpacing the consumer).
    pub full_blocks: u64,
    /// Receives that found the queue empty and had to block (underflow
    /// events — the consumer outpacing the producer).
    pub empty_blocks: u64,
    /// Total time producers spent blocked on a full queue.
    pub blocked_send: Duration,
    /// Total time consumers spent blocked on an empty queue.
    pub blocked_recv: Duration,
    /// Queue-depth histogram sampled after every Nth successful send (N is
    /// the depth-sample interval, default 1): counts for depths 0, 1, 2–3,
    /// 4–7, 8–15, 16–31, 32–63, 64+. With the default interval the counts
    /// sum to `sends`.
    pub depth_counts: Vec<u64>,
}

impl QueueStats {
    /// Converts into the observability layer's report row.
    pub fn to_report(&self) -> QueueReport {
        let count: u64 = self.depth_counts.iter().sum();
        QueueReport {
            name: self.name.clone(),
            capacity: self.capacity,
            sends: self.sends,
            recvs: self.recvs,
            full_blocks: self.full_blocks,
            empty_blocks: self.empty_blocks,
            blocked_send: self.blocked_send,
            blocked_recv: self.blocked_recv,
            depth: HistogramSnapshot {
                bounds: DEPTH_BOUNDS.to_vec(),
                counts: self.depth_counts.clone(),
                count,
                // Exact depths are bucketed away; the sum is not tracked.
                sum: 0.0,
            },
        }
    }
}

#[derive(Debug)]
struct Counters {
    sends: AtomicU64,
    recvs: AtomicU64,
    full_blocks: AtomicU64,
    empty_blocks: AtomicU64,
    blocked_send_nanos: AtomicU64,
    blocked_recv_nanos: AtomicU64,
    depth: [AtomicU64; DEPTH_BUCKETS],
    /// Successful sends seen by the depth sampler (shared across producer
    /// clones so the interval applies to the edge, not per clone).
    depth_seq: AtomicU64,
    /// Sample the depth histogram every Nth send (≥ 1).
    depth_every: AtomicU64,
}

impl Default for Counters {
    fn default() -> Self {
        Self {
            sends: AtomicU64::new(0),
            recvs: AtomicU64::new(0),
            full_blocks: AtomicU64::new(0),
            empty_blocks: AtomicU64::new(0),
            blocked_send_nanos: AtomicU64::new(0),
            blocked_recv_nanos: AtomicU64::new(0),
            depth: Default::default(),
            depth_seq: AtomicU64::new(0),
            depth_every: AtomicU64::new(1),
        }
    }
}

impl Counters {
    fn observe_depth(&self, depth: usize) {
        let seq = self.depth_seq.fetch_add(1, Ordering::Relaxed);
        let every = self.depth_every.load(Ordering::Relaxed);
        if seq.is_multiple_of(every) {
            self.depth[depth_bucket(depth)].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A named, bounded MPMC queue.
///
/// Cheap to clone on both ends; the channel closes when every sender (or
/// every receiver) is dropped, which is how end-of-stream propagates through
/// a pipeline without explicit EOS messages on most edges.
pub struct SmartQueue<T> {
    name: String,
    capacity: usize,
    counters: Arc<Counters>,
    sender: Mutex<Option<Sender<T>>>,
    receiver: Receiver<T>,
}

impl<T> SmartQueue<T> {
    /// Creates a queue with the given capacity (min 1).
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let (tx, rx) = bounded(capacity);
        Self {
            name: name.into(),
            capacity,
            counters: Arc::new(Counters::default()),
            sender: Mutex::new(Some(tx)),
            receiver: rx,
        }
    }

    /// Sets the depth-histogram sampling interval: observe the depth on
    /// every Nth successful send (builder style, clamped to ≥ 1; the
    /// default 1 samples every send). Driven by
    /// `ObsConfig::queue_depth_sample_interval` in the executor.
    pub fn with_depth_sample_interval(self, every: u64) -> Self {
        self.counters.depth_every.store(every.max(1), Ordering::Relaxed);
        self
    }

    /// A producer handle. Call once per producer clone, **before**
    /// [`SmartQueue::seal`].
    pub fn producer(&self) -> QueueProducer<T> {
        let guard = self.sender.lock();
        let tx = guard.as_ref().expect("queue already sealed").clone();
        QueueProducer { tx, counters: Arc::clone(&self.counters) }
    }

    /// A consumer handle. Call once per consumer clone.
    pub fn consumer(&self) -> QueueConsumer<T> {
        QueueConsumer { rx: self.receiver.clone(), counters: Arc::clone(&self.counters) }
    }

    /// Drops the queue's internal sender so the channel closes once all
    /// handed-out producers finish. Must be called after wiring, before
    /// waiting for the pipeline, or consumers never see end-of-stream.
    pub fn seal(&self) {
        self.sender.lock().take();
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            name: self.name.clone(),
            capacity: self.capacity,
            sends: self.counters.sends.load(Ordering::Relaxed),
            recvs: self.counters.recvs.load(Ordering::Relaxed),
            full_blocks: self.counters.full_blocks.load(Ordering::Relaxed),
            empty_blocks: self.counters.empty_blocks.load(Ordering::Relaxed),
            blocked_send: Duration::from_nanos(
                self.counters.blocked_send_nanos.load(Ordering::Relaxed),
            ),
            blocked_recv: Duration::from_nanos(
                self.counters.blocked_recv_nanos.load(Ordering::Relaxed),
            ),
            depth_counts: self.counters.depth.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Sending half; dropped ⇒ one fewer producer on the edge.
pub struct QueueProducer<T> {
    tx: Sender<T>,
    counters: Arc<Counters>,
}

impl<T> QueueProducer<T> {
    /// Blocking send with backpressure accounting. `Err` means every
    /// consumer hung up (broken pipeline).
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        match self.tx.try_send(item) {
            Ok(()) => {
                self.counters.sends.fetch_add(1, Ordering::Relaxed);
                self.counters.observe_depth(self.tx.len());
                Ok(())
            }
            Err(TrySendError::Full(item)) => {
                self.counters.full_blocks.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                let res = self.tx.send(item);
                self.counters
                    .blocked_send_nanos
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if res.is_ok() {
                    self.counters.sends.fetch_add(1, Ordering::Relaxed);
                    self.counters.observe_depth(self.tx.len());
                }
                res
            }
            Err(TrySendError::Disconnected(item)) => Err(SendError(item)),
        }
    }
}

impl<T> Clone for QueueProducer<T> {
    fn clone(&self) -> Self {
        Self { tx: self.tx.clone(), counters: Arc::clone(&self.counters) }
    }
}

/// Receiving half; clones share the queue (work stealing between operator
/// clones).
pub struct QueueConsumer<T> {
    rx: Receiver<T>,
    counters: Arc<Counters>,
}

impl<T> QueueConsumer<T> {
    /// Blocking receive with underflow accounting. `None` means the stream
    /// ended (all producers dropped and the queue drained).
    pub fn recv(&self) -> Option<T> {
        match self.rx.try_recv() {
            Ok(item) => {
                self.counters.recvs.fetch_add(1, Ordering::Relaxed);
                Some(item)
            }
            Err(TryRecvError::Empty) => {
                self.counters.empty_blocks.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                let res = self.rx.recv().ok();
                self.counters
                    .blocked_recv_nanos
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if res.is_some() {
                    self.counters.recvs.fetch_add(1, Ordering::Relaxed);
                }
                res
            }
            Err(TryRecvError::Disconnected) => None,
        }
    }
}

impl<T> Clone for QueueConsumer<T> {
    fn clone(&self) -> Self {
        Self { rx: self.rx.clone(), counters: Arc::clone(&self.counters) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_single_producer_consumer() {
        let q: SmartQueue<u32> = SmartQueue::new("t", 4);
        let p = q.producer();
        let c = q.consumer();
        q.seal();
        for i in 0..4 {
            p.send(i).unwrap();
        }
        drop(p);
        let got: Vec<u32> = std::iter::from_fn(|| c.recv()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn end_of_stream_after_all_producers_drop() {
        let q: SmartQueue<u32> = SmartQueue::new("t", 2);
        let p1 = q.producer();
        let p2 = q.producer();
        let c = q.consumer();
        q.seal();
        p1.send(1).unwrap();
        drop(p1);
        p2.send(2).unwrap();
        drop(p2);
        assert!(c.recv().is_some());
        assert!(c.recv().is_some());
        assert!(c.recv().is_none());
    }

    #[test]
    fn backpressure_blocks_and_is_counted() {
        let q: SmartQueue<u32> = SmartQueue::new("t", 1);
        let p = q.producer();
        let c = q.consumer();
        q.seal();
        p.send(0).unwrap();
        let handle = thread::spawn(move || {
            p.send(1).unwrap(); // must block until the consumer drains
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(c.recv(), Some(0));
        handle.join().unwrap();
        assert_eq!(c.recv(), Some(1));
        let s = q.stats();
        assert_eq!(s.sends, 2);
        assert_eq!(s.recvs, 2);
        assert!(s.full_blocks >= 1);
        assert!(s.blocked_send >= Duration::from_millis(10));
    }

    #[test]
    fn cloned_consumers_partition_the_stream() {
        let q: SmartQueue<u64> = SmartQueue::new("t", 8);
        let p = q.producer();
        let c1 = q.consumer();
        let c2 = q.consumer();
        q.seal();
        let n = 1000u64;
        let producer = thread::spawn(move || {
            for i in 0..n {
                p.send(i).unwrap();
            }
        });
        let worker = |c: QueueConsumer<u64>| {
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = c.recv() {
                    got.push(v);
                }
                got
            })
        };
        let h1 = worker(c1);
        let h2 = worker(c2);
        producer.join().unwrap();
        let mut all = h1.join().unwrap();
        all.extend(h2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_when_consumers_gone() {
        let q: SmartQueue<u32> = SmartQueue::new("t", 1);
        let p = q.producer();
        let c = q.consumer();
        q.seal();
        drop(c);
        // Note: the SmartQueue itself holds a receiver; a real pipeline
        // hands it out and drops the queue. Simulate by dropping the queue.
        drop(q);
        assert!(p.send(1).is_err());
    }

    #[test]
    fn empty_block_counted() {
        let q: SmartQueue<u32> = SmartQueue::new("t", 2);
        let p = q.producer();
        let c = q.consumer();
        q.seal();
        let h = thread::spawn(move || c.recv());
        thread::sleep(Duration::from_millis(20));
        p.send(7).unwrap();
        assert_eq!(h.join().unwrap(), Some(7));
        let s = q.stats();
        assert!(s.empty_blocks >= 1);
        assert!(s.blocked_recv >= Duration::from_millis(10));
    }

    #[test]
    fn capacity_minimum_is_one() {
        let q: SmartQueue<u32> = SmartQueue::new("t", 0);
        assert_eq!(q.stats().capacity, 1);
    }

    #[test]
    fn depth_histogram_counts_sum_to_sends() {
        let q: SmartQueue<u32> = SmartQueue::new("t", 16);
        let p = q.producer();
        let c = q.consumer();
        q.seal();
        // Fill to varying depths with interleaved drains.
        for i in 0..10 {
            p.send(i).unwrap();
        }
        for _ in 0..5 {
            c.recv().unwrap();
        }
        for i in 10..20 {
            p.send(i).unwrap();
        }
        let s = q.stats();
        assert_eq!(s.sends, 20);
        assert_eq!(s.depth_counts.len(), DEPTH_BUCKETS);
        assert_eq!(s.depth_counts.iter().sum::<u64>(), s.sends);
        // Depths above capacity are impossible: cap 16 ⇒ 64+ bucket empty.
        assert_eq!(s.depth_counts[7], 0);

        let report = s.to_report();
        assert_eq!(report.depth.count, 20);
        assert_eq!(report.depth.counts, s.depth_counts);
        assert_eq!(report.depth.bounds.len() + 1, report.depth.counts.len());
    }

    #[test]
    fn depth_sampling_interval_thins_observations() {
        let q: SmartQueue<u32> = SmartQueue::new("t", 32).with_depth_sample_interval(4);
        let p = q.producer();
        let _c = q.consumer();
        q.seal();
        for i in 0..20 {
            p.send(i).unwrap();
        }
        let s = q.stats();
        assert_eq!(s.sends, 20);
        // Sends 0, 4, 8, 12, 16 are sampled: 5 observations, not 20.
        assert_eq!(s.depth_counts.iter().sum::<u64>(), 5);
    }

    #[test]
    fn depth_sampling_interval_zero_clamps_to_every_send() {
        let q: SmartQueue<u32> = SmartQueue::new("t", 8).with_depth_sample_interval(0);
        let p = q.producer();
        let _c = q.consumer();
        q.seal();
        for i in 0..6 {
            p.send(i).unwrap();
        }
        assert_eq!(q.stats().depth_counts.iter().sum::<u64>(), 6);
    }

    #[test]
    fn depth_bucket_boundaries() {
        assert_eq!(depth_bucket(0), 0);
        assert_eq!(depth_bucket(1), 1);
        assert_eq!(depth_bucket(2), 2);
        assert_eq!(depth_bucket(3), 2);
        assert_eq!(depth_bucket(4), 3);
        assert_eq!(depth_bucket(63), 6);
        assert_eq!(depth_bucket(64), 7);
        assert_eq!(depth_bucket(100_000), 7);
    }
}
