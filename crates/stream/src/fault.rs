//! Deterministic fault injection and the engine's tolerance policy.
//!
//! A [`FaultPlan`] decides — purely from a seed and stable identifiers
//! (bucket path, cell index, chunk id, attempt number) — where the pipeline
//! misbehaves: scan reads error out, chunks arrive truncated or poisoned
//! with NaNs, partial workers panic mid-chunk, queue sends stall. Because
//! every decision is a hash of `(seed, site, key)` rather than a draw from
//! shared RNG state, a schedule replays byte-for-byte regardless of thread
//! interleaving or clone count — the property the chaos suite builds on.
//!
//! A [`FaultPolicy`] decides how the engine *reacts*: the default
//! ([`FaultPolicy::strict`]) preserves the historical fail-fast behavior,
//! while [`FaultPolicy::tolerant`] enables retry-with-backoff for scan
//! errors, quarantine for poisoned or repeatedly-crashing chunks, and the
//! degraded merge that proceeds with surviving mass. Injection and
//! tolerance are orthogonal: chaos tests combine a `FaultPlan` with either
//! policy, and production runs use a policy with no plan at all.

use pmkm_obs::{labeled_name, FaultReport, FieldValue, Recorder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Emits one `fault` ledger event (`kind` plus any site-specific context
/// fields) and bumps the `fault_events_total{kind="..."}` counter family.
///
/// Call this at exactly the sites that increment a [`FaultCounters`]
/// field, using the kind names the ledger rollup maps back onto
/// [`FaultReport`] counters (`scan_retry`, `scan_failure`,
/// `chunk_poisoned`, `chunk_quarantined`, `worker_panic`, `chunk_retry`,
/// `queue_stall`, `cell_degraded`) — that one-to-one pairing is what lets
/// a ledger rollup reproduce the run's fault counters exactly.
pub fn record_fault(rec: Option<&Recorder>, kind: &str, fields: &[(&str, FieldValue)]) {
    if let Some(rec) = rec {
        let mut all: Vec<(&str, FieldValue)> = Vec::with_capacity(fields.len() + 1);
        all.push(("kind", kind.into()));
        all.extend_from_slice(fields);
        rec.event("fault", &all);
        rec.registry().counter(&labeled_name("fault_events_total", "kind", kind)).inc();
    }
}

/// Injection site tags, hashed into every roll so the same key draws
/// independent faults at different sites.
const SITE_SCAN: u64 = 0x5343_414E; // "SCAN"
const SITE_SCAN_KIND: u64 = 0x5343_4B44; // "SCKD"
const SITE_OBJGET: u64 = 0x4F47_4554; // "OGET"
const SITE_TRUNCATE: u64 = 0x5452_554E; // "TRUN"
const SITE_POISON: u64 = 0x504F_4953; // "POIS"
const SITE_PANIC: u64 = 0x504E_4943; // "PNIC"
const SITE_PANIC_KIND: u64 = 0x504B_4454; // "PKDT"
const SITE_STALL: u64 = 0x5354_4C4C; // "STLL"

/// Stall-injection key for the chunker→partial edge.
pub const EDGE_CHUNKS: u64 = 1;
/// Stall-injection key for the partial→merge edge.
pub const EDGE_MERGE: u64 = 2;

/// The payload of an injected partial-worker panic. Public so panic hooks
/// (and the chaos suite's noise filter) can recognize injected crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic;

impl std::fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected partial-worker panic")
    }
}

/// splitmix64 finalizer: avalanche a 64-bit value.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string, for keying faults off bucket paths.
pub fn path_key(path: &std::path::Path) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in path.as_os_str().as_encoded_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How an injected scan error behaves across retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanFault {
    /// Fails on the first attempt, succeeds on any retry.
    Transient,
    /// Fails on every attempt.
    Permanent,
}

/// What an injected chunk-level fault does to the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkFault {
    /// Drop the back half of the chunk's points (at least one survives).
    Truncate,
    /// Overwrite one coordinate with NaN.
    Poison,
}

/// A seeded, deterministic fault schedule. All rates are probabilities in
/// `[0, 1]` evaluated independently per site/key.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base seed; two plans with equal rates and seeds inject identically.
    pub seed: u64,
    /// Probability a scan batch read (or bucket open) errors.
    pub scan_error_rate: f64,
    /// Of injected scan errors, the fraction that persist across retries.
    pub scan_permanent_fraction: f64,
    /// Probability a chunk is truncated on its way out of the chunker.
    pub truncate_rate: f64,
    /// Probability a chunk is NaN-poisoned on its way out of the chunker.
    pub poison_rate: f64,
    /// Probability a partial worker panics on a chunk's first attempt.
    pub panic_rate: f64,
    /// Of injected panics, the fraction that recur on *every* attempt
    /// (forcing quarantine) rather than only the first.
    pub panic_sticky_fraction: f64,
    /// Probability a queue send stalls for [`stall`](Self::stall).
    pub stall_rate: f64,
    /// Duration of an injected queue stall.
    pub stall: Duration,
    /// Probability an individual object-store ranged GET fails (only
    /// meaningful under the `sim-object-store` scan backend). GET faults
    /// are naturally transient: a retried read issues fresh GETs with new
    /// ordinals, so each retry re-rolls.
    pub object_get_error_rate: f64,
}

impl FaultPlan {
    /// A schedule that injects nothing (useful as a chaos-suite control).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            scan_error_rate: 0.0,
            scan_permanent_fraction: 0.0,
            truncate_rate: 0.0,
            poison_rate: 0.0,
            panic_rate: 0.0,
            panic_sticky_fraction: 0.0,
            stall_rate: 0.0,
            stall: Duration::ZERO,
            object_get_error_rate: 0.0,
        }
    }

    /// A mostly-recoverable schedule: occasional transient read errors,
    /// rare poisoned chunks and worker panics, short stalls.
    pub fn light(seed: u64) -> Self {
        Self {
            scan_error_rate: 0.05,
            scan_permanent_fraction: 0.0,
            truncate_rate: 0.02,
            poison_rate: 0.02,
            panic_rate: 0.05,
            panic_sticky_fraction: 0.0,
            stall_rate: 0.05,
            stall: Duration::from_micros(200),
            object_get_error_rate: 0.03,
            ..Self::none(seed)
        }
    }

    /// An aggressive schedule: frequent faults, some of them permanent, so
    /// quarantine and degraded-merge paths are guaranteed exercise.
    pub fn heavy(seed: u64) -> Self {
        Self {
            scan_error_rate: 0.25,
            scan_permanent_fraction: 0.3,
            truncate_rate: 0.15,
            poison_rate: 0.15,
            panic_rate: 0.25,
            panic_sticky_fraction: 0.5,
            stall_rate: 0.2,
            stall: Duration::from_micros(500),
            object_get_error_rate: 0.1,
            ..Self::none(seed)
        }
    }

    /// Uniform `[0, 1)` roll for `(site, key)`, independent across sites.
    fn roll(&self, site: u64, key: u64) -> f64 {
        let h = mix(self.seed ^ mix(site.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Does the read of `batch` from the bucket keyed `path` fail, and how?
    /// `batch` is the 0-based batch index (`u64::MAX` keys the open itself).
    pub fn scan_fault(&self, path: u64, batch: u64) -> Option<ScanFault> {
        let key = path ^ batch.wrapping_mul(0xa076_1d64_78bd_642f);
        if self.roll(SITE_SCAN, key) < self.scan_error_rate {
            if self.roll(SITE_SCAN_KIND, key) < self.scan_permanent_fraction {
                Some(ScanFault::Permanent)
            } else {
                Some(ScanFault::Transient)
            }
        } else {
            None
        }
    }

    /// Is chunk `(cell, chunk_id)` corrupted on emission, and how?
    /// Truncation and poisoning are mutually exclusive (truncation wins).
    pub fn chunk_fault(&self, cell: u32, chunk_id: usize) -> Option<ChunkFault> {
        let key = ((cell as u64) << 32) ^ chunk_id as u64;
        if self.roll(SITE_TRUNCATE, key) < self.truncate_rate {
            Some(ChunkFault::Truncate)
        } else if self.roll(SITE_POISON, key) < self.poison_rate {
            Some(ChunkFault::Poison)
        } else {
            None
        }
    }

    /// Does the worker clustering `(cell, chunk_id)` panic on `attempt`
    /// (0-based)? Non-sticky panics fire only on attempt 0, so one retry
    /// recovers; sticky panics fire on every attempt until the retry
    /// budget quarantines the chunk.
    pub fn panic_fault(&self, cell: u32, chunk_id: usize, attempt: usize) -> bool {
        let key = ((cell as u64) << 32) ^ chunk_id as u64;
        if self.roll(SITE_PANIC, key) >= self.panic_rate {
            return false;
        }
        attempt == 0 || self.roll(SITE_PANIC_KIND, key) < self.panic_sticky_fraction
    }

    /// Does the `get_ordinal`-th ranged GET against the object keyed
    /// `path` fail? Rolled by the simulated object store per GET, so a
    /// retried block read (fresh ordinals) re-rolls — injected GET faults
    /// behave like transient network flakiness.
    pub fn object_get_fault(&self, path: u64, get_ordinal: u64) -> bool {
        let key = path ^ get_ordinal.wrapping_mul(0xd6e8_feb8_6659_fd93);
        self.roll(SITE_OBJGET, key) < self.object_get_error_rate
    }

    /// Should the `seq`-th send on the edge keyed `edge` stall, and for how
    /// long?
    pub fn stall(&self, edge: u64, seq: u64) -> Option<Duration> {
        let key = edge ^ seq.wrapping_mul(0xe703_7ed1_a0b4_28db);
        (self.roll(SITE_STALL, key) < self.stall_rate).then_some(self.stall)
    }
}

/// How the engine reacts to faults (injected or real).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Extra scan-read attempts after the first failure.
    pub scan_retries: usize,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub retry_backoff: Duration,
    /// Quarantine invalid (non-finite) or repeatedly-crashing chunks
    /// instead of aborting the run.
    pub quarantine: bool,
    /// Merge cells whose partials are incomplete at end of stream,
    /// reporting the lost mass, instead of erroring.
    pub degraded_merge: bool,
    /// Total clustering attempts per chunk before a crashing chunk is
    /// given up on (`>= 1`).
    pub max_chunk_attempts: usize,
}

impl FaultPolicy {
    /// Fail-fast: no retries, no quarantine, no degraded merge — the
    /// engine's historical behavior, and the default.
    pub fn strict() -> Self {
        Self {
            scan_retries: 0,
            retry_backoff: Duration::ZERO,
            quarantine: false,
            degraded_merge: false,
            max_chunk_attempts: 1,
        }
    }

    /// Keep the run alive: retry transient scan errors with backoff,
    /// quarantine bad chunks, merge degraded cells.
    pub fn tolerant() -> Self {
        Self {
            scan_retries: 3,
            retry_backoff: Duration::from_micros(100),
            quarantine: true,
            degraded_merge: true,
            max_chunk_attempts: 3,
        }
    }
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self::strict()
    }
}

/// Shared failure counters, incremented by the operators as faults are hit
/// and snapshotted into the run's [`FaultReport`].
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Scan reads retried after a transient error.
    pub scan_retries: AtomicU64,
    /// Buckets (or bucket tails) abandoned after retries were exhausted.
    pub scan_failures: AtomicU64,
    /// Chunks whose payload failed finiteness validation.
    pub chunks_poisoned: AtomicU64,
    /// Chunks abandoned entirely; their mass is reported lost.
    pub chunks_quarantined: AtomicU64,
    /// Partial-worker panics caught and isolated.
    pub worker_panics: AtomicU64,
    /// Chunk clusterings re-run after a caught panic.
    pub chunk_retries: AtomicU64,
    /// Queue-send stalls injected by the fault plan.
    pub queue_stalls: AtomicU64,
    /// Cells merged with missing mass.
    pub cells_degraded: AtomicU64,
}

impl FaultCounters {
    /// Plain-data copy for reports.
    pub fn snapshot(&self) -> FaultReport {
        FaultReport {
            scan_retries: self.scan_retries.load(Ordering::Relaxed),
            scan_failures: self.scan_failures.load(Ordering::Relaxed),
            chunks_poisoned: self.chunks_poisoned.load(Ordering::Relaxed),
            chunks_quarantined: self.chunks_quarantined.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            chunk_retries: self.chunk_retries.load(Ordering::Relaxed),
            queue_stalls: self.queue_stalls.load(Ordering::Relaxed),
            cells_degraded: self.cells_degraded.load(Ordering::Relaxed),
        }
    }
}

/// Everything fault-related an operator needs, bundled so the executor can
/// hand one value to every clone: the (optional) injection schedule, the
/// reaction policy, and the shared counters.
#[derive(Debug, Clone, Default)]
pub struct FaultContext {
    /// The injection schedule; `None` injects nothing.
    pub plan: Option<Arc<FaultPlan>>,
    /// How the operators react to faults.
    pub policy: FaultPolicy,
    /// Shared counters, snapshotted into the engine report.
    pub counters: Arc<FaultCounters>,
}

impl FaultContext {
    /// A context that injects `plan` under `policy`.
    pub fn new(plan: Option<FaultPlan>, policy: FaultPolicy) -> Self {
        Self { plan: plan.map(Arc::new), policy, counters: Arc::new(FaultCounters::default()) }
    }

    /// True when chunk payloads must be validated before clustering:
    /// either faults may be injected or the policy wants quarantine.
    pub fn validate_chunks(&self) -> bool {
        self.plan.is_some() || self.policy.quarantine
    }

    /// True when the merge must treat any mass shortfall as a pipeline bug
    /// (the fail-fast promise of a non-degraded-merge policy).
    pub fn strict_mass_check(&self) -> bool {
        !self.policy.degraded_merge
    }

    /// Sleeps through an injected queue-send stall, if the plan schedules
    /// one for `(edge, key)`; counts it either way it fires.
    pub fn maybe_stall(&self, edge: u64, key: u64, rec: Option<&pmkm_obs::Recorder>) {
        if let Some(stall) = self.plan.as_deref().and_then(|p| p.stall(edge, key)) {
            self.counters.queue_stalls.fetch_add(1, Ordering::Relaxed);
            if let Some(rec) = rec {
                rec.registry().counter("fault_queue_stalls_total").inc();
            }
            record_fault(
                rec,
                "queue_stall",
                &[("edge", edge.into()), ("stall_us", (stall.as_micros() as u64).into())],
            );
            if !stall.is_zero() {
                std::thread::sleep(stall);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn rolls_are_deterministic_and_site_independent() {
        let plan = FaultPlan::heavy(42);
        assert_eq!(plan.scan_fault(7, 3), plan.scan_fault(7, 3));
        assert_eq!(plan.chunk_fault(1, 2), plan.chunk_fault(1, 2));
        assert_eq!(plan.panic_fault(1, 2, 0), plan.panic_fault(1, 2, 0));
        assert_eq!(plan.stall(9, 5), plan.stall(9, 5));
        // Different seeds decorrelate the schedule.
        let other = FaultPlan::heavy(43);
        let same = (0..200)
            .filter(|&i| plan.scan_fault(7, i).is_some() == other.scan_fault(7, i).is_some())
            .count();
        assert!(same < 200, "seeds 42 and 43 agree on every roll");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan { scan_error_rate: 0.5, ..FaultPlan::none(7) };
        let hits = (0..2000).filter(|&i| plan.scan_fault(1, i).is_some()).count();
        assert!((800..1200).contains(&hits), "0.5 rate produced {hits}/2000 hits");
        let none = FaultPlan::none(7);
        assert!((0..2000).all(|i| none.scan_fault(1, i).is_none()));
        assert!((0..2000).all(|i| none.chunk_fault(0, i as usize).is_none()));
        assert!((0..2000).all(|i| !none.panic_fault(0, i as usize, 0)));
        assert!((0..2000).all(|i| none.stall(0, i).is_none()));
    }

    #[test]
    fn transient_panics_clear_on_retry_sticky_ones_do_not() {
        let plan = FaultPlan { panic_rate: 1.0, panic_sticky_fraction: 0.0, ..FaultPlan::none(3) };
        assert!(plan.panic_fault(5, 0, 0));
        assert!(!plan.panic_fault(5, 0, 1));
        let sticky =
            FaultPlan { panic_rate: 1.0, panic_sticky_fraction: 1.0, ..FaultPlan::none(3) };
        assert!(sticky.panic_fault(5, 0, 0));
        assert!(sticky.panic_fault(5, 0, 1));
        assert!(sticky.panic_fault(5, 0, 7));
    }

    #[test]
    fn scan_fault_kind_follows_permanent_fraction() {
        let all_permanent =
            FaultPlan { scan_error_rate: 1.0, scan_permanent_fraction: 1.0, ..FaultPlan::none(1) };
        assert_eq!(all_permanent.scan_fault(2, 0), Some(ScanFault::Permanent));
        let all_transient =
            FaultPlan { scan_error_rate: 1.0, scan_permanent_fraction: 0.0, ..FaultPlan::none(1) };
        assert_eq!(all_transient.scan_fault(2, 0), Some(ScanFault::Transient));
    }

    #[test]
    fn object_get_faults_roll_per_ordinal() {
        let plan = FaultPlan { object_get_error_rate: 0.5, ..FaultPlan::none(9) };
        assert_eq!(plan.object_get_fault(3, 0), plan.object_get_fault(3, 0));
        let hits = (0..2000).filter(|&i| plan.object_get_fault(3, i)).count();
        assert!((800..1200).contains(&hits), "0.5 rate produced {hits}/2000 hits");
        assert!((0..2000).all(|i| !FaultPlan::none(9).object_get_fault(3, i)));
        // Presets with injection enable some GET flakiness.
        assert!(FaultPlan::light(1).object_get_error_rate > 0.0);
        assert!(
            FaultPlan::heavy(1).object_get_error_rate > FaultPlan::light(1).object_get_error_rate
        );
    }

    #[test]
    fn path_key_distinguishes_paths() {
        assert_ne!(path_key(Path::new("a/cell_1.gb")), path_key(Path::new("a/cell_2.gb")));
        assert_eq!(path_key(Path::new("x.gb")), path_key(Path::new("x.gb")));
    }

    #[test]
    fn policy_defaults_are_strict() {
        let p = FaultPolicy::default();
        assert_eq!(p, FaultPolicy::strict());
        assert_eq!(p.scan_retries, 0);
        assert!(!p.quarantine);
        assert!(!p.degraded_merge);
        assert_eq!(p.max_chunk_attempts, 1);
        let t = FaultPolicy::tolerant();
        assert!(t.scan_retries > 0 && t.quarantine && t.degraded_merge);
        assert!(t.max_chunk_attempts > 1);
    }

    #[test]
    fn counters_snapshot_roundtrip() {
        let c = FaultCounters::default();
        c.scan_retries.store(2, Ordering::Relaxed);
        c.worker_panics.store(1, Ordering::Relaxed);
        c.cells_degraded.store(3, Ordering::Relaxed);
        let snap = c.snapshot();
        assert_eq!(snap.scan_retries, 2);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.cells_degraded, 3);
        assert!(snap.any());
        assert!(!FaultCounters::default().snapshot().any());
    }

    #[test]
    fn context_validation_gate() {
        assert!(!FaultContext::default().validate_chunks());
        assert!(FaultContext::new(None, FaultPolicy::tolerant()).validate_chunks());
        assert!(
            FaultContext::new(Some(FaultPlan::none(0)), FaultPolicy::strict()).validate_chunks()
        );
    }
}
