//! Logical and physical query plans.
//!
//! Mirrors the paper's Conquest workflow (§3.4, §4): the user states a
//! *logical* dataflow ("cluster these grid buckets with k = 40"), the
//! optimizer turns it into a *physical* plan by choosing the partition size
//! from the memory budget and the clone degree of the partial operator from
//! the available processors.

use crate::error::{EngineError, Result};
use crate::fault::FaultPolicy;
use crate::ops::ChunkPolicy;
use pmkm_core::{KMeansConfig, MergeMode};
use std::path::PathBuf;

/// The logical dataflow: what to cluster and how.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    /// Grid-bucket files to cluster, one output clustering per cell.
    pub inputs: Vec<PathBuf>,
    /// k-means parameters for the partial runs (k, restarts, ε).
    pub kmeans: KMeansConfig,
    /// Merge strategy.
    pub merge_mode: MergeMode,
    /// Restarts of the merge k-means.
    pub merge_restarts: usize,
}

impl LogicalPlan {
    /// A plan with the paper's algorithm defaults over the given buckets.
    pub fn new(inputs: Vec<PathBuf>, kmeans: KMeansConfig) -> Self {
        Self { inputs, kmeans, merge_mode: MergeMode::Collective, merge_restarts: 1 }
    }

    /// Validates the plan.
    pub fn validate(&self) -> Result<()> {
        if self.inputs.is_empty() {
            return Err(EngineError::InvalidPlan("no input buckets".into()));
        }
        self.kmeans.validate()?;
        if self.merge_restarts == 0 {
            return Err(EngineError::InvalidPlan("merge_restarts must be >= 1".into()));
        }
        Ok(())
    }
}

/// The physical plan: the logical plan plus every execution knob the
/// optimizer fixed.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The logical plan being executed.
    pub logical: LogicalPlan,
    /// Number of partial k-means clones (≥ 1).
    pub partial_clones: usize,
    /// Chunk sizing policy handed to the chunker.
    pub chunk_policy: ChunkPolicy,
    /// Capacity of every inter-operator queue.
    pub queue_capacity: usize,
    /// Points per scan batch.
    pub scan_batch: usize,
    /// Number of scan-operator clones; input buckets are dealt round-robin
    /// across them (cloning is generic in the engine — §3's "the model
    /// allows to automatically clone operators").
    pub scan_clones: usize,
    /// How the engine reacts to faults: [`FaultPolicy::strict`] (the
    /// default) fails fast, [`FaultPolicy::tolerant`] retries, quarantines
    /// and merges degraded cells.
    pub fault_policy: FaultPolicy,
}

impl PhysicalPlan {
    /// Validates the physical knobs (and the nested logical plan).
    pub fn validate(&self) -> Result<()> {
        self.logical.validate()?;
        if self.partial_clones == 0 {
            return Err(EngineError::InvalidPlan("partial_clones must be >= 1".into()));
        }
        if self.fault_policy.max_chunk_attempts == 0 {
            return Err(EngineError::InvalidPlan("max_chunk_attempts must be >= 1".into()));
        }
        if self.queue_capacity == 0 || self.scan_batch == 0 {
            return Err(EngineError::InvalidPlan(
                "queue_capacity and scan_batch must be >= 1".into(),
            ));
        }
        if self.scan_clones == 0 {
            return Err(EngineError::InvalidPlan("scan_clones must be >= 1".into()));
        }
        match self.chunk_policy {
            ChunkPolicy::FixedPoints(0) => {
                Err(EngineError::InvalidPlan("fixed chunk size must be >= 1".into()))
            }
            ChunkPolicy::MemoryBudget { bytes: 0 } => {
                Err(EngineError::InvalidPlan("memory budget must be >= 1 byte".into()))
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logical() -> LogicalPlan {
        LogicalPlan::new(vec![PathBuf::from("a.gb")], KMeansConfig::paper(4, 0))
    }

    #[test]
    fn logical_defaults_match_paper() {
        let p = logical();
        assert_eq!(p.merge_mode, MergeMode::Collective);
        assert_eq!(p.merge_restarts, 1);
        p.validate().unwrap();
    }

    #[test]
    fn logical_rejects_empty_inputs() {
        let p = LogicalPlan::new(vec![], KMeansConfig::paper(4, 0));
        assert!(p.validate().is_err());
    }

    #[test]
    fn physical_validation() {
        let ok = PhysicalPlan {
            logical: logical(),
            partial_clones: 2,
            chunk_policy: ChunkPolicy::FixedPoints(100),
            queue_capacity: 8,
            scan_batch: 64,
            scan_clones: 1,
            fault_policy: FaultPolicy::default(),
        };
        ok.validate().unwrap();
        let bad = PhysicalPlan { scan_clones: 0, ..ok.clone() };
        assert!(bad.validate().is_err());
        let bad = PhysicalPlan { partial_clones: 0, ..ok.clone() };
        assert!(bad.validate().is_err());
        let bad = PhysicalPlan { chunk_policy: ChunkPolicy::FixedPoints(0), ..ok.clone() };
        assert!(bad.validate().is_err());
        let bad = PhysicalPlan { queue_capacity: 0, ..ok.clone() };
        assert!(bad.validate().is_err());
        let bad = PhysicalPlan {
            fault_policy: FaultPolicy { max_chunk_attempts: 0, ..FaultPolicy::tolerant() },
            ..ok
        };
        assert!(bad.validate().is_err());
    }
}
