//! Logical and physical query plans.
//!
//! Mirrors the paper's Conquest workflow (§3.4, §4): the user states a
//! *logical* dataflow ("cluster these grid buckets with k = 40"), the
//! optimizer turns it into a *physical* plan by choosing the partition size
//! from the memory budget and the clone degree of the partial operator from
//! the available processors.

use crate::error::{EngineError, Result};
use crate::fault::FaultPolicy;
use crate::ops::ChunkPolicy;
use pmkm_core::coreset::CoresetConfig;
use pmkm_core::{KMeansConfig, MergeMode};
use pmkm_obs::StatusCell;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// The logical dataflow: what to cluster and how.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    /// Grid-bucket files to cluster, one output clustering per cell.
    pub inputs: Vec<PathBuf>,
    /// k-means parameters for the partial runs (k, restarts, ε).
    pub kmeans: KMeansConfig,
    /// Merge strategy.
    pub merge_mode: MergeMode,
    /// Restarts of the merge k-means.
    pub merge_restarts: usize,
}

impl LogicalPlan {
    /// A plan with the paper's algorithm defaults over the given buckets.
    pub fn new(inputs: Vec<PathBuf>, kmeans: KMeansConfig) -> Self {
        Self { inputs, kmeans, merge_mode: MergeMode::Collective, merge_restarts: 1 }
    }

    /// Validates the plan.
    pub fn validate(&self) -> Result<()> {
        if self.inputs.is_empty() {
            return Err(EngineError::InvalidPlan("no input buckets".into()));
        }
        self.kmeans.validate()?;
        if self.merge_restarts == 0 {
            return Err(EngineError::InvalidPlan("merge_restarts must be >= 1".into()));
        }
        Ok(())
    }
}

/// Coreset-mode execution: replace the gather-everything merge with a
/// bounded merge-reduce coreset tree per cell (see
/// [`pmkm_core::coreset`]), enabling anytime queries on unbounded streams.
#[derive(Clone)]
pub struct CoresetSpec {
    /// Representatives per tree bucket (live memory ≈ `levels × size`).
    pub size: usize,
    /// Sliding window in chunks (bucket-granularity eviction).
    pub window: Option<usize>,
    /// Exponential decay λ ∈ (0, 1] applied per arriving chunk.
    pub decay: Option<f64>,
    /// Live status cell the coreset operator publishes anytime-query
    /// results into (the `/status` dashboard's mid-stream clustering).
    /// Not part of the plan's identity: fingerprints and `Debug` ignore it.
    pub probe: Option<Arc<StatusCell>>,
}

impl CoresetSpec {
    /// A plain coreset spec (no window, no decay, no probe).
    pub fn new(size: usize) -> Self {
        Self { size, window: None, decay: None, probe: None }
    }

    /// The tree configuration this spec describes.
    pub fn config(&self) -> CoresetConfig {
        CoresetConfig { size: self.size, window: self.window, decay: self.decay }
    }
}

// Manual impl so the probe handle (scheduling state, not plan identity)
// never leaks into `{:?}`-based plan fingerprints.
impl fmt::Debug for CoresetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoresetSpec")
            .field("size", &self.size)
            .field("window", &self.window)
            .field("decay", &self.decay)
            .finish()
    }
}

/// The physical plan: the logical plan plus every execution knob the
/// optimizer fixed.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The logical plan being executed.
    pub logical: LogicalPlan,
    /// Number of partial k-means clones (≥ 1).
    pub partial_clones: usize,
    /// Chunk sizing policy handed to the chunker.
    pub chunk_policy: ChunkPolicy,
    /// Capacity of every inter-operator queue.
    pub queue_capacity: usize,
    /// Points per scan batch.
    pub scan_batch: usize,
    /// Number of scan-operator clones; input buckets are dealt round-robin
    /// across them (cloning is generic in the engine — §3's "the model
    /// allows to automatically clone operators").
    pub scan_clones: usize,
    /// How the engine reacts to faults: [`FaultPolicy::strict`] (the
    /// default) fails fast, [`FaultPolicy::tolerant`] retries, quarantines
    /// and merges degraded cells.
    pub fault_policy: FaultPolicy,
    /// `Some` switches the engine into coreset mode: partial clones build
    /// per-chunk coresets and a merge-reduce tree replaces the merge
    /// operator's gather, bounding live memory on unbounded streams.
    pub coreset: Option<CoresetSpec>,
    /// Storage backend the scan reads GB02 block containers through
    /// (GB01 buckets always use the legacy buffered reader). Part of the
    /// plan fingerprint: backends change injection granularity under
    /// chaos, so checkpoints must not cross backends.
    pub scan_backend: pmkm_data::BackendKind,
}

impl PhysicalPlan {
    /// Validates the physical knobs (and the nested logical plan).
    pub fn validate(&self) -> Result<()> {
        self.logical.validate()?;
        if self.partial_clones == 0 {
            return Err(EngineError::InvalidPlan("partial_clones must be >= 1".into()));
        }
        if self.fault_policy.max_chunk_attempts == 0 {
            return Err(EngineError::InvalidPlan("max_chunk_attempts must be >= 1".into()));
        }
        if self.queue_capacity == 0 || self.scan_batch == 0 {
            return Err(EngineError::InvalidPlan(
                "queue_capacity and scan_batch must be >= 1".into(),
            ));
        }
        if self.scan_clones == 0 {
            return Err(EngineError::InvalidPlan("scan_clones must be >= 1".into()));
        }
        match self.chunk_policy {
            ChunkPolicy::FixedPoints(0) => {
                return Err(EngineError::InvalidPlan("fixed chunk size must be >= 1".into()));
            }
            ChunkPolicy::MemoryBudget { bytes: 0 } => {
                return Err(EngineError::InvalidPlan("memory budget must be >= 1 byte".into()));
            }
            _ => {}
        }
        if let Some(spec) = &self.coreset {
            spec.config().validate()?;
            if spec.size < self.logical.kmeans.k {
                return Err(EngineError::InvalidPlan(format!(
                    "coreset size {} must be >= k = {}",
                    spec.size, self.logical.kmeans.k
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logical() -> LogicalPlan {
        LogicalPlan::new(vec![PathBuf::from("a.gb")], KMeansConfig::paper(4, 0))
    }

    #[test]
    fn logical_defaults_match_paper() {
        let p = logical();
        assert_eq!(p.merge_mode, MergeMode::Collective);
        assert_eq!(p.merge_restarts, 1);
        p.validate().unwrap();
    }

    #[test]
    fn logical_rejects_empty_inputs() {
        let p = LogicalPlan::new(vec![], KMeansConfig::paper(4, 0));
        assert!(p.validate().is_err());
    }

    #[test]
    fn physical_validation() {
        let ok = PhysicalPlan {
            logical: logical(),
            partial_clones: 2,
            chunk_policy: ChunkPolicy::FixedPoints(100),
            queue_capacity: 8,
            scan_batch: 64,
            scan_clones: 1,
            fault_policy: FaultPolicy::default(),
            coreset: None,
            scan_backend: pmkm_data::BackendKind::LocalFile,
        };
        ok.validate().unwrap();
        let bad = PhysicalPlan { scan_clones: 0, ..ok.clone() };
        assert!(bad.validate().is_err());
        let bad = PhysicalPlan { partial_clones: 0, ..ok.clone() };
        assert!(bad.validate().is_err());
        let bad = PhysicalPlan { chunk_policy: ChunkPolicy::FixedPoints(0), ..ok.clone() };
        assert!(bad.validate().is_err());
        let bad = PhysicalPlan { queue_capacity: 0, ..ok.clone() };
        assert!(bad.validate().is_err());
        let bad = PhysicalPlan {
            fault_policy: FaultPolicy { max_chunk_attempts: 0, ..FaultPolicy::tolerant() },
            ..ok.clone()
        };
        assert!(bad.validate().is_err());
        let bad = PhysicalPlan { coreset: Some(CoresetSpec::new(0)), ..ok.clone() };
        assert!(bad.validate().is_err());
        // size < k is rejected up front, not at query time.
        let bad = PhysicalPlan { coreset: Some(CoresetSpec::new(2)), ..ok.clone() };
        assert!(bad.validate().is_err());
        let good = PhysicalPlan { coreset: Some(CoresetSpec::new(64)), ..ok };
        good.validate().unwrap();
    }

    #[test]
    fn coreset_spec_debug_ignores_probe() {
        let mut spec = CoresetSpec::new(128);
        let bare = format!("{spec:?}");
        spec.probe = Some(Arc::new(StatusCell::new()));
        assert_eq!(format!("{spec:?}"), bare, "probe must not leak into plan fingerprints");
    }
}
