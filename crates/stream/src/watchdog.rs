//! Stall and straggler detection for orchestrated runs.
//!
//! The watchdog is two cooperating pieces:
//!
//! * a [`WatchdogSink`] registered on the run's [`Recorder`] — it folds
//!   the same event stream the ledger sees (`run.open`, `cell.open`,
//!   `chunk.close`, `cell.checkpoint`, `worker.state`, `run.close`) into
//!   a tiny progress model: when the run last advanced, which cells are
//!   open and for how long, which workers sit in budget-wait;
//! * a polling thread ([`Watchdog::start`]) that checks the model on the
//!   recorder clock every [`WatchdogConfig::poll_interval`] and emits
//!   verdict events back through the recorder:
//!
//!   - `watchdog.stall` with `reason:"no_progress"` when no chunk, cell,
//!     or checkpoint completed within [`WatchdogConfig::stall_after`];
//!   - `watchdog.stall` with `reason:"budget_wait"` when a worker has been
//!     parked waiting on the memory budget beyond
//!     [`WatchdogConfig::budget_wait_after`];
//!   - `watchdog.straggler` when an open cell has run longer than
//!     [`WatchdogConfig::straggler_factor`] × the median completed-cell
//!     time AND at least [`WatchdogConfig::straggler_floor`] in absolute
//!     terms (needs [`MIN_COMPLETED_FOR_MEDIAN`] completions first).
//!
//! Verdicts are deduplicated per episode — one `no_progress` per dry
//! spell, one `budget_wait` per parked stretch, one `straggler` per cell —
//! and each emission bumps the labeled `watchdog_events_total{kind}`
//! counter, so `/metrics` exposes the tally and a ledger rollup counts
//! them ([`pmkm_obs::LedgerRollup`]'s `watchdog_stalls` /
//! `watchdog_stragglers`). Once `run.close` arrives the model disarms and
//! the thread goes quiet; a plan whose cells are all done never stalls.
//!
//! The detector itself is a pure function of `(model, now)` — the polling
//! thread just calls [`WatchdogSink::check`], which the unit tests drive
//! directly with synthetic events and hand-picked clocks.

use parking_lot::Mutex;
use pmkm_obs::{Event, FieldValue, Recorder, TraceSink};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Completed cells required before straggler math turns on — a median of
/// fewer is noise.
pub const MIN_COMPLETED_FOR_MEDIAN: usize = 3;

/// A pending verdict: (event name, kind label, event fields).
type Verdict = (&'static str, String, Vec<(String, FieldValue)>);

/// Watchdog thresholds. All comparisons run on the recorder's microsecond
/// clock.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// No chunk/cell/checkpoint completion for this long → `no_progress`.
    pub stall_after: Duration,
    /// A worker in `budget-wait` for this long → `budget_wait`.
    pub budget_wait_after: Duration,
    /// An open cell older than `factor × median(completed cell time)` →
    /// `straggler`.
    pub straggler_factor: f64,
    /// Absolute minimum open-cell age before the straggler rule may fire.
    /// On planets of tiny cells the median completes in microseconds, and
    /// without a floor every ordinarily-big cell would be flagged.
    pub straggler_floor: Duration,
    /// How often the polling thread re-checks the model.
    pub poll_interval: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self::after(Duration::from_secs(30))
    }
}

impl WatchdogConfig {
    /// Thresholds derived from one deadline: stall and budget-wait fire
    /// after `deadline`, polling runs at `deadline / 4` capped to 250 ms,
    /// stragglers at 4× the median cell time once a cell has been open at
    /// least `deadline`.
    pub fn after(deadline: Duration) -> Self {
        Self {
            stall_after: deadline,
            budget_wait_after: deadline,
            straggler_factor: 4.0,
            straggler_floor: deadline,
            poll_interval: (deadline / 4).min(Duration::from_millis(250)),
        }
    }
}

#[derive(Default)]
struct Model {
    /// Cells announced by `run.open` (0 until it arrives — armed lazily so
    /// attaching the sink before the run costs nothing).
    cells_total: u64,
    /// Cells closed so far (executed or re-announced by a resume).
    cells_done: u64,
    /// Recorder timestamp of the last completion beacon.
    last_progress_us: u64,
    /// Open cells: label → `cell.open` timestamp.
    open_cells: HashMap<String, u64>,
    /// Completed cell durations (µs), for the straggler median.
    completed_us: Vec<u64>,
    /// Cells already flagged as stragglers (one verdict per cell).
    flagged: HashMap<String, ()>,
    /// Budget-parked workers: lane → `worker.state` entry timestamp.
    budget_wait: HashMap<u64, u64>,
    /// Lanes already flagged for the current parked stretch.
    budget_flagged: HashMap<u64, ()>,
    /// One `no_progress` verdict per dry spell.
    stall_reported: bool,
    /// `run.open` seen and `run.close` not yet — the armed window.
    armed: bool,
}

/// The event-folding half of the watchdog. Register it as a sink on the
/// run's recorder; see the [module docs](self).
#[derive(Default)]
pub struct WatchdogSink {
    model: Mutex<Model>,
}

impl WatchdogSink {
    /// A sink with an empty, disarmed model.
    pub fn new() -> Self {
        Self::default()
    }

    fn cell_label(event: &Event) -> Option<String> {
        event.fields.iter().find(|(k, _)| k == "cell").map(|(_, v)| match v {
            FieldValue::Str(s) => s.clone(),
            FieldValue::U64(u) => u.to_string(),
            FieldValue::I64(i) => i.to_string(),
            other => format!("{other:?}"),
        })
    }

    /// Checks the model against `now_us` and emits due verdicts through
    /// `rec`. Called by the polling thread; public so tests (and embedders
    /// with their own scheduling) can drive it with a hand-picked clock.
    pub fn check(&self, rec: &Recorder, config: &WatchdogConfig, now_us: u64) {
        let mut verdicts: Vec<Verdict> = Vec::new();
        {
            let mut m = self.model.lock();
            if !m.armed || (m.cells_total > 0 && m.cells_done >= m.cells_total) {
                return;
            }
            let stall_us = config.stall_after.as_micros() as u64;
            if now_us.saturating_sub(m.last_progress_us) >= stall_us && !m.stall_reported {
                m.stall_reported = true;
                verdicts.push((
                    "watchdog.stall",
                    "stall".into(),
                    vec![
                        ("reason".into(), "no_progress".into()),
                        ("idle_us".into(), now_us.saturating_sub(m.last_progress_us).into()),
                        ("cells_done".into(), m.cells_done.into()),
                        ("cells_total".into(), m.cells_total.into()),
                    ],
                ));
            }
            let wait_us = config.budget_wait_after.as_micros() as u64;
            let parked: Vec<(u64, u64)> = m
                .budget_wait
                .iter()
                .filter(|(lane, since)| {
                    now_us.saturating_sub(**since) >= wait_us
                        && !m.budget_flagged.contains_key(*lane)
                })
                .map(|(lane, since)| (*lane, *since))
                .collect();
            for (lane, since) in parked {
                m.budget_flagged.insert(lane, ());
                verdicts.push((
                    "watchdog.stall",
                    "stall".into(),
                    vec![
                        ("reason".into(), "budget_wait".into()),
                        ("lane".into(), lane.into()),
                        ("waited_us".into(), now_us.saturating_sub(since).into()),
                    ],
                ));
            }
            if m.completed_us.len() >= MIN_COMPLETED_FOR_MEDIAN {
                let mut sorted = m.completed_us.clone();
                sorted.sort_unstable();
                let median = sorted[sorted.len() / 2].max(1);
                let limit = ((median as f64 * config.straggler_factor) as u64)
                    .max(config.straggler_floor.as_micros() as u64);
                let slow: Vec<(String, u64)> = m
                    .open_cells
                    .iter()
                    .filter(|(cell, opened)| {
                        now_us.saturating_sub(**opened) > limit && !m.flagged.contains_key(*cell)
                    })
                    .map(|(cell, opened)| (cell.clone(), *opened))
                    .collect();
                for (cell, opened) in slow {
                    m.flagged.insert(cell.clone(), ());
                    verdicts.push((
                        "watchdog.straggler",
                        "straggler".into(),
                        vec![
                            ("cell".into(), cell.into()),
                            ("running_us".into(), now_us.saturating_sub(opened).into()),
                            ("median_us".into(), median.into()),
                        ],
                    ));
                }
            }
        }
        // Emit outside the model lock: the event fans back into this sink
        // (it's registered on the recorder), which re-locks the model.
        for (name, kind, fields) in verdicts {
            let borrowed: Vec<(&str, FieldValue)> =
                fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
            rec.event(name, &borrowed);
            rec.registry().labeled_counter("watchdog_events_total", "kind", &kind).inc();
        }
    }
}

impl TraceSink for WatchdogSink {
    fn record(&self, event: &Event) {
        let mut m = self.model.lock();
        match event.name.as_str() {
            "run.open" => {
                *m = Model::default();
                m.armed = true;
                m.last_progress_us = event.ts_us;
                m.cells_total = event
                    .fields
                    .iter()
                    .find(|(k, _)| k == "cells")
                    .and_then(|(_, v)| match v {
                        FieldValue::U64(u) => Some(*u),
                        _ => None,
                    })
                    .unwrap_or(0);
            }
            "run.close" => {
                m.armed = false;
            }
            "run.resume" | "chunk.close" | "cell.checkpoint" => {
                m.last_progress_us = event.ts_us;
                m.stall_reported = false;
            }
            "cell.open" => {
                if let Some(cell) = Self::cell_label(event) {
                    m.open_cells.insert(cell, event.ts_us);
                }
            }
            "cell.close" => {
                m.cells_done += 1;
                m.last_progress_us = event.ts_us;
                m.stall_reported = false;
                if let Some(cell) = Self::cell_label(event) {
                    if let Some(opened) = m.open_cells.remove(&cell) {
                        m.completed_us.push(event.ts_us.saturating_sub(opened));
                    }
                    m.flagged.remove(&cell);
                }
            }
            "worker.state" => {
                let lane =
                    event.fields.iter().find(|(k, _)| k == "lane").and_then(|(_, v)| match v {
                        FieldValue::U64(u) => Some(*u),
                        _ => None,
                    });
                let waiting =
                    event.fields.iter().find(|(k, _)| k == "state").is_some_and(
                        |(_, v)| matches!(v, FieldValue::Str(s) if s == "budget-wait"),
                    );
                if let Some(lane) = lane {
                    if waiting {
                        m.budget_wait.entry(lane).or_insert(event.ts_us);
                    } else {
                        m.budget_wait.remove(&lane);
                        m.budget_flagged.remove(&lane);
                    }
                }
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for WatchdogSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.model.lock();
        f.debug_struct("WatchdogSink")
            .field("armed", &m.armed)
            .field("cells_done", &m.cells_done)
            .field("cells_total", &m.cells_total)
            .finish()
    }
}

/// Handle for the polling thread. Dropping it (or calling
/// [`Watchdog::stop`]) ends the thread; the sink can stay registered — a
/// disarmed model never fires.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the polling thread. `sink` must also be registered on `rec`
    /// (via [`Recorder::with_sink`]) or the model never sees any events.
    pub fn start(rec: Arc<Recorder>, sink: Arc<WatchdogSink>, config: WatchdogConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pmkm-watchdog".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(config.poll_interval);
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    sink.check(&rec, &config, rec.elapsed_us());
                }
            })
            .expect("spawn watchdog thread");
        Self { stop, handle: Some(handle) }
    }

    /// Stops and joins the polling thread.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog").field("stopped", &self.stop.load(Ordering::Relaxed)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_obs::RingBufferSink;

    /// Recorder wired so the watchdog sink sees every event and verdicts
    /// land in the ring.
    fn rig() -> (Arc<Recorder>, Arc<WatchdogSink>, Arc<RingBufferSink>) {
        let ring = Arc::new(RingBufferSink::new(256));
        let sink = Arc::new(WatchdogSink::new());
        let rec = Arc::new(
            Recorder::new().with_sink(ring.clone()).with_sink(sink.clone() as Arc<dyn TraceSink>),
        );
        (rec, sink, ring)
    }

    fn verdicts(ring: &RingBufferSink, name: &str) -> usize {
        ring.events().iter().filter(|e| e.name == name).count()
    }

    fn cfg_us(stall: u64) -> WatchdogConfig {
        WatchdogConfig {
            stall_after: Duration::from_micros(stall),
            budget_wait_after: Duration::from_micros(stall),
            straggler_factor: 4.0,
            // No absolute floor: these tests drive the relative rule with
            // hand-picked microsecond clocks.
            straggler_floor: Duration::ZERO,
            poll_interval: Duration::from_millis(1),
        }
    }

    /// Feeds the sink one synthetic event at a hand-picked timestamp.
    fn feed(sink: &WatchdogSink, ts_us: u64, name: &str, fields: Vec<(String, FieldValue)>) {
        sink.record(&Event { ts_us, name: name.into(), fields });
    }

    #[test]
    fn no_progress_stall_fires_once_per_dry_spell() {
        let (rec, sink, ring) = rig();
        feed(&sink, 1_000, "run.open", vec![("cells".into(), 2u64.into())]);
        sink.check(&rec, &cfg_us(1_000_000), 1_000 + 999_999);
        assert_eq!(verdicts(&ring, "watchdog.stall"), 0, "under the deadline");
        sink.check(&rec, &cfg_us(1_000_000), 1_000 + 1_000_000);
        assert_eq!(verdicts(&ring, "watchdog.stall"), 1, "deadline crossed");
        // Same dry spell: deduplicated.
        sink.check(&rec, &cfg_us(1_000_000), 1_000 + 2_000_000);
        assert_eq!(verdicts(&ring, "watchdog.stall"), 1);
        // Progress resets the episode; a fresh stall fires again.
        feed(
            &sink,
            3_000_000,
            "chunk.close",
            vec![("cell".into(), 1u64.into()), ("chunk".into(), 0u64.into())],
        );
        sink.check(&rec, &cfg_us(1_000_000), 3_000_000 + 999_999);
        assert_eq!(verdicts(&ring, "watchdog.stall"), 1, "beacon reset the clock");
        sink.check(&rec, &cfg_us(1_000_000), 3_000_000 + 1_000_000);
        assert_eq!(verdicts(&ring, "watchdog.stall"), 2);
        let prom = rec.registry().render_prometheus();
        assert!(
            prom.contains("watchdog_events_total{kind=\"stall\"} 2"),
            "labeled counter: {prom}"
        );
    }

    #[test]
    fn completed_run_never_stalls() {
        let (rec, sink, ring) = rig();
        rec.event("run.open", &[("cells", 1u64.into())]);
        rec.event("cell.open", &[("cell", 5u64.into())]);
        rec.event("cell.close", &[("cell", 5u64.into())]);
        // All cells done: quiet forever, even far past the deadline.
        sink.check(&rec, &cfg_us(10), rec.elapsed_us() + 60_000_000);
        assert_eq!(verdicts(&ring, "watchdog.stall"), 0);
        // And a disarmed (closed) run is quiet too.
        rec.event("run.close", &[("elapsed_us", 1u64.into())]);
        sink.check(&rec, &cfg_us(10), rec.elapsed_us() + 60_000_000);
        assert_eq!(verdicts(&ring, "watchdog.stall"), 0);
    }

    #[test]
    fn budget_wait_stall_flags_the_parked_lane() {
        let (rec, sink, ring) = rig();
        feed(&sink, 0, "run.open", vec![("cells".into(), 4u64.into())]);
        feed(
            &sink,
            500,
            "worker.state",
            vec![
                ("worker".into(), "w1".into()),
                ("lane".into(), 1u64.into()),
                ("state".into(), "budget-wait".into()),
            ],
        );
        // Keep the progress beacon fresh so only the budget rule can fire.
        feed(
            &sink,
            1_000_000,
            "chunk.close",
            vec![("cell".into(), 0u64.into()), ("chunk".into(), 0u64.into())],
        );
        sink.check(&rec, &cfg_us(1_000_000), 500 + 1_000_000);
        let stalls: Vec<_> =
            ring.events().iter().filter(|e| e.name == "watchdog.stall").cloned().collect();
        assert_eq!(stalls.len(), 1);
        assert!(stalls[0]
            .fields
            .iter()
            .any(|(k, v)| k == "reason" && matches!(v, FieldValue::Str(s) if s == "budget_wait")));
        // Dedup while still parked; no re-fire after the lane moves on.
        feed(
            &sink,
            1_900_000,
            "chunk.close",
            vec![("cell".into(), 0u64.into()), ("chunk".into(), 1u64.into())],
        );
        sink.check(&rec, &cfg_us(1_000_000), 2_000_000);
        assert_eq!(verdicts(&ring, "watchdog.stall"), 1);
        feed(
            &sink,
            2_100_000,
            "worker.state",
            vec![
                ("worker".into(), "w1".into()),
                ("lane".into(), 1u64.into()),
                ("state".into(), "partial".into()),
            ],
        );
        feed(
            &sink,
            2_900_000,
            "chunk.close",
            vec![("cell".into(), 0u64.into()), ("chunk".into(), 2u64.into())],
        );
        sink.check(&rec, &cfg_us(1_000_000), 3_000_000);
        assert_eq!(verdicts(&ring, "watchdog.stall"), 1, "left budget-wait: no re-fire");
    }

    #[test]
    fn straggler_needs_a_median_and_fires_once_per_cell() {
        let (rec, sink, ring) = rig();
        rec.event("run.open", &[("cells", 5u64.into())]);
        let base = rec.elapsed_us();
        // Three completed cells of ~100 µs give a median.
        for i in 0..3u64 {
            sink.record(&Event {
                ts_us: base + i * 200,
                name: "cell.open".into(),
                fields: vec![("cell".into(), i.into())],
            });
            sink.record(&Event {
                ts_us: base + i * 200 + 100,
                name: "cell.close".into(),
                fields: vec![("cell".into(), i.into())],
            });
        }
        // Cell 9 opens and just keeps running.
        sink.record(&Event {
            ts_us: base + 1_000,
            name: "cell.open".into(),
            fields: vec![("cell".into(), 9u64.into())],
        });
        // 2× the median: not yet a straggler at factor 4.
        sink.check(&rec, &cfg_us(60_000_000), base + 1_000 + 200);
        assert_eq!(verdicts(&ring, "watchdog.straggler"), 0);
        // Past 4× the 100 µs median: flagged, once.
        sink.check(&rec, &cfg_us(60_000_000), base + 1_000 + 500);
        assert_eq!(verdicts(&ring, "watchdog.straggler"), 1);
        sink.check(&rec, &cfg_us(60_000_000), base + 1_000 + 900);
        assert_eq!(verdicts(&ring, "watchdog.straggler"), 1, "per-cell dedup");
        let prom = rec.registry().render_prometheus();
        assert!(prom.contains("watchdog_events_total{kind=\"straggler\"} 1"), "{prom}");
    }

    #[test]
    fn straggler_floor_shields_big_cells_from_a_tiny_median() {
        let (rec, sink, ring) = rig();
        rec.event("run.open", &[("cells", 5u64.into())]);
        let base = rec.elapsed_us();
        // A microsecond-scale median: three cells of ~100 µs.
        for i in 0..3u64 {
            sink.record(&Event {
                ts_us: base + i * 200,
                name: "cell.open".into(),
                fields: vec![("cell".into(), i.into())],
            });
            sink.record(&Event {
                ts_us: base + i * 200 + 100,
                name: "cell.close".into(),
                fields: vec![("cell".into(), i.into())],
            });
        }
        sink.record(&Event {
            ts_us: base + 1_000,
            name: "cell.open".into(),
            fields: vec![("cell".into(), 9u64.into())],
        });
        let config =
            WatchdogConfig { straggler_floor: Duration::from_micros(50_000), ..cfg_us(60_000_000) };
        // 100× the median, but under the absolute floor: an ordinary big
        // cell on a planet of tiny ones, not a straggler.
        sink.check(&rec, &config, base + 1_000 + 10_000);
        assert_eq!(verdicts(&ring, "watchdog.straggler"), 0, "floor shields the big cell");
        // Past the floor AND the relative limit: now it is one.
        sink.check(&rec, &config, base + 1_000 + 60_000);
        assert_eq!(verdicts(&ring, "watchdog.straggler"), 1);
    }

    #[test]
    fn polling_thread_fires_and_stops_cleanly() {
        let (rec, sink, ring) = rig();
        rec.event("run.open", &[("cells", 3u64.into())]);
        let config = WatchdogConfig {
            stall_after: Duration::from_millis(5),
            budget_wait_after: Duration::from_secs(60),
            straggler_factor: 4.0,
            straggler_floor: Duration::ZERO,
            poll_interval: Duration::from_millis(2),
        };
        let wd = Watchdog::start(Arc::clone(&rec), Arc::clone(&sink), config);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while verdicts(&ring, "watchdog.stall") == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        wd.stop();
        assert!(verdicts(&ring, "watchdog.stall") >= 1, "polling thread never fired");
    }
}
