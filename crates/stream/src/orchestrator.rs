//! Multi-cell orchestration: work-stealing scheduling, a shared global
//! memory budget, and checkpoint/restart.
//!
//! The paper's pipeline clusters one grid cell at a time; the data
//! substrate defines all 64 800 1°×1° cells. This module is the first
//! layer that composes the pipeline, fault policy, ledger and mass
//! accounting *across* cells:
//!
//! * **Scheduling** — N cells are dealt round-robin onto per-worker
//!   deques; `jobs` workers pop their own queue front-first and steal from
//!   the back of other workers' queues when idle, so no cell starves and
//!   wall-clock tracks the slowest chain rather than the slowest worker.
//! * **Memory budget** — every cell admits its in-flight chunk footprint
//!   against a shared [`MemoryBudget`] before its pipeline starts and
//!   releases it after the merge; when the budget is exhausted workers
//!   block (backpressure) instead of over-committing memory.
//! * **Checkpoint/restart** — after a cell's merge, the merged partial
//!   plus its CellPlan mass accounting and fault counters are persisted to
//!   a versioned, checksummed checkpoint file. A killed run resumes by
//!   loading completed cells and re-scanning only the rest. Because every
//!   per-cell result is a pure function of `(bucket, plan, fault seed)`,
//!   a resumed run is bit-identical to an uninterrupted one — the
//!   equivalence suite in `tests/orchestrator_resume.rs` enforces this.
//!
//! ## Checkpoint file format
//!
//! Two JSON lines, mirroring the ledger's versioned JSONL convention:
//!
//! ```text
//! {"checkpoint":1,"fingerprint":"…16 hex…","checksum":"…16 hex…","input":"cell_090_180.gb"}
//! {"clustering":{…},"faults":{…},"degraded":false,"elapsed":{…}}
//! ```
//!
//! The header carries the format version, an FNV-1a fingerprint of every
//! plan knob that affects results, and an FNV-1a checksum of the payload
//! line. Unknown header or payload fields are ignored on load (forward
//! compatible, like the ledger); any mismatch — version, fingerprint,
//! input name, checksum, truncation, parse failure — invalidates the file
//! and the cell is silently re-scanned, never a panic.

use crate::error::{EngineError, Result};
use crate::executor::{cell_report, execute_cell};
use crate::fault::FaultPlan;
use crate::item::CellClustering;
use crate::ops::ChunkPolicy;
use crate::plan::PhysicalPlan;
use parking_lot::Mutex;
use pmkm_obs::{
    FaultReport, OrchestratorReport, Recorder, RunReport, StatusCell, StatusSnapshot, WorkerState,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Version stamped into every checkpoint file header. Readers reject
/// files from a *newer* version (re-scan, not panic); older readers skip
/// unknown fields, so additive evolution does not need a bump.
pub const CHECKPOINT_VERSION: u32 = 1;

/// How the orchestrator runs a batch of cells.
#[derive(Debug, Clone, Default)]
pub struct OrchestratorOptions {
    /// Worker threads pulling cells off the work-stealing deques (≥ 1;
    /// `0` is treated as 1).
    pub jobs: usize,
    /// Global memory budget in bytes shared by all in-flight cells; `None`
    /// admits everything. Must be at least the largest single cell's
    /// footprint or [`orchestrate`] rejects the plan.
    pub budget_bytes: Option<usize>,
    /// Directory for per-cell checkpoint files; `None` disables
    /// checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Load valid checkpoints from `checkpoint_dir` before scheduling and
    /// re-scan only the cells without one.
    pub resume: bool,
    /// Chaos-drill hook: simulate the process dying immediately after the
    /// k-th checkpoint write. Scheduling stops, in-flight cells are
    /// discarded (their checkpoint was never written) and the returned
    /// report is marked `interrupted`.
    pub kill_after_checkpoints: Option<usize>,
    /// Live-progress slot for the `/status` endpoint: the orchestrator
    /// publishes a fresh [`StatusSnapshot`] at run open, every cell
    /// commit, and run close. `None` skips publishing entirely.
    pub status: Option<Arc<StatusCell>>,
}

impl OrchestratorOptions {
    /// Options with `jobs` workers and everything else off.
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1), ..Self::default() }
    }

    /// Sets the shared memory budget.
    #[must_use]
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.budget_bytes = Some(bytes);
        self
    }

    /// Enables checkpointing into `dir`.
    #[must_use]
    pub fn with_checkpoints(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Enables resume-from-checkpoint.
    #[must_use]
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Arms the kill-after-k-checkpoints chaos drill.
    #[must_use]
    pub fn kill_after(mut self, checkpoints: usize) -> Self {
        self.kill_after_checkpoints = Some(checkpoints);
        self
    }

    /// Publishes live progress snapshots into `status` (the `/status`
    /// endpoint's source).
    #[must_use]
    pub fn with_status(mut self, status: Arc<StatusCell>) -> Self {
        self.status = Some(status);
        self
    }
}

/// A shared byte budget with blocking admission — the backpressure
/// primitive cells admit their chunk footprint against.
#[derive(Debug)]
pub struct MemoryBudget {
    cap: usize,
    state: std::sync::Mutex<BudgetState>,
    cv: std::sync::Condvar,
}

#[derive(Debug, Default)]
struct BudgetState {
    in_use: usize,
    peak: usize,
}

impl MemoryBudget {
    /// A budget of `cap` bytes.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            state: std::sync::Mutex::new(BudgetState::default()),
            cv: std::sync::Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Blocks until `bytes` fit under the cap, then reserves them. A
    /// request larger than the whole budget is clamped so a mis-sized
    /// caller stalls instead of deadlocking (orchestrate validates sizes
    /// up front, so this clamp never fires there).
    pub fn acquire(&self, bytes: usize) {
        let bytes = bytes.min(self.cap);
        let mut st = self.state.lock().expect("budget lock poisoned");
        while st.in_use + bytes > self.cap {
            st = self.cv.wait(st).expect("budget lock poisoned");
        }
        st.in_use += bytes;
        st.peak = st.peak.max(st.in_use);
    }

    /// Returns a reservation.
    pub fn release(&self, bytes: usize) {
        let bytes = bytes.min(self.cap);
        let mut st = self.state.lock().expect("budget lock poisoned");
        st.in_use = st.in_use.saturating_sub(bytes);
        drop(st);
        self.cv.notify_all();
    }

    /// High-water mark of concurrent reservations (the "never exceeded"
    /// witness: `peak() <= capacity()` by construction, asserted in tests).
    pub fn peak(&self) -> usize {
        self.state.lock().expect("budget lock poisoned").peak
    }
}

/// What one cell contributed to the planet run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Position of the cell's bucket in the plan's input list — the
    /// canonical, completion-order-independent report ordering.
    pub input: usize,
    /// The bucket path.
    pub path: PathBuf,
    /// The merged clustering; `None` when the tolerant policy lost the
    /// whole cell.
    pub clustering: Option<CellClustering>,
    /// Fault counters of this cell's pipeline run.
    pub faults: FaultReport,
    /// True when the cell lost mass.
    pub degraded: bool,
    /// Wall time of the cell's pipeline (zero for resumed cells).
    pub elapsed: Duration,
    /// True when the outcome was loaded from a checkpoint instead of
    /// executed.
    pub resumed: bool,
}

/// The serialized slice of a [`CellOutcome`] — everything resume needs to
/// reproduce the cell's contribution bit-for-bit, including its fault
/// counters so the planet-level [`FaultReport`] matches an uninterrupted
/// run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointPayload {
    clustering: Option<CellClustering>,
    faults: FaultReport,
    degraded: bool,
    elapsed: Duration,
}

/// First line of a checkpoint file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointHeader {
    /// Format version ([`CHECKPOINT_VERSION`]).
    checkpoint: u32,
    /// FNV-1a over the result-affecting plan knobs, 16 hex digits.
    fingerprint: String,
    /// FNV-1a over the payload line's bytes, 16 hex digits.
    checksum: String,
    /// Bucket file name, as a paired-to-the-wrong-cell guard.
    input: String,
}

/// Planet-level report of an orchestrated run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanetReport {
    /// Worker threads the run was scheduled with.
    pub jobs: usize,
    /// Per-cell outcomes in input order, resumed and executed alike.
    /// Cells skipped by a kill are absent.
    pub cells: Vec<CellOutcome>,
    /// Fault counters summed across every cell (checkpointed counters for
    /// resumed cells).
    pub faults: FaultReport,
    /// True when any cell lost mass.
    pub degraded: bool,
    /// End-to-end wall time of the orchestrated run.
    pub elapsed: Duration,
    /// Cells in the plan.
    pub cells_total: usize,
    /// Cells restored from checkpoints.
    pub cells_resumed: usize,
    /// Cells executed through the pipeline this run.
    pub cells_executed: usize,
    /// Checkpoint files detected as corrupt/stale and re-scanned.
    pub checkpoints_invalid: usize,
    /// Checkpoint files written this run.
    pub checkpoints_written: usize,
    /// Stale checkpoint files (foreign bucket or outdated fingerprint)
    /// garbage-collected after the run completed cleanly.
    pub checkpoints_pruned: usize,
    /// True when the kill-after-k drill stopped the run early.
    pub interrupted: bool,
    /// High-water mark of the shared memory budget (0 without a budget).
    pub budget_peak: usize,
    /// Cells a worker stole from another worker's deque.
    pub steals: u64,
}

impl PlanetReport {
    /// Sum of bucket-promised points over all reported cells.
    pub fn expected_points(&self) -> f64 {
        self.clusterings().map(|c| c.expected_points).sum()
    }

    /// Sum of mass lost to faults over all reported cells.
    pub fn lost_points(&self) -> f64 {
        self.clusterings().map(|c| c.lost_points).sum()
    }

    /// Sum of mass that reached the merges (`Σ cluster_weights`).
    pub fn received_points(&self) -> f64 {
        self.clusterings().map(|c| c.output.cluster_weights.iter().sum::<f64>()).sum()
    }

    /// Every cell clustering, in input order.
    pub fn clusterings(&self) -> impl Iterator<Item = &CellClustering> {
        self.cells.iter().filter_map(|o| o.clustering.as_ref())
    }

    /// Rolls the per-cell outcomes into the observability layer's
    /// [`RunReport`] (schema v5's `orchestrator` block). Cell rows are
    /// sorted by cell index, matching the single-run executor.
    pub fn run_report(&self, rec: Option<&Recorder>) -> RunReport {
        let mut clusterings: Vec<&CellClustering> = self.clusterings().collect();
        clusterings.sort_by_key(|c| c.cell.index());
        RunReport {
            elapsed: self.elapsed,
            cells: clusterings.into_iter().map(cell_report).collect(),
            metrics: rec.map(|r| r.registry().snapshot()).unwrap_or_default(),
            phases: rec.map(|r| r.phase_rows()).unwrap_or_default(),
            degraded: self.degraded,
            faults: self.faults,
            orchestrator: Some(OrchestratorReport {
                jobs: self.jobs,
                cells_total: self.cells_total,
                cells_resumed: self.cells_resumed,
                cells_executed: self.cells_executed,
                checkpoints_written: self.checkpoints_written,
                checkpoints_invalid: self.checkpoints_invalid,
                interrupted: self.interrupted,
                budget_peak_bytes: self.budget_peak as u64,
                steals: self.steals,
            }),
            timeline: rec
                .and_then(|r| r.timeline().map(|tl| tl.snapshot(r.elapsed_us())))
                .filter(|tl| !tl.is_empty()),
            coreset: crate::executor::coreset_report(self.clusterings()),
            ..RunReport::new()
        }
    }

    /// Recomputes the executed-cell count from the recorded outcomes (the
    /// kill drill may have discarded in-flight cells).
    fn finalize(mut self) -> Self {
        self.cells_executed = self.cells.iter().filter(|o| !o.resumed).count();
        self
    }
}

/// Runs every input cell of `plan` through the pipeline under `opts`,
/// concurrently, and rolls the results into a [`PlanetReport`].
///
/// Each cell runs as its own single-bucket pipeline via
/// [`execute_cell`], so per-cell results are bit-identical to a serial
/// `execute` loop regardless of `jobs`, completion order, or whether the
/// cell was restored from a checkpoint.
pub fn orchestrate(
    plan: &PhysicalPlan,
    opts: &OrchestratorOptions,
    rec: Option<Arc<Recorder>>,
    fault_plan: Option<FaultPlan>,
) -> Result<PlanetReport> {
    plan.validate()?;
    let started = Instant::now();
    let inputs = &plan.logical.inputs;
    let n = inputs.len();
    let jobs = opts.jobs.max(1);
    let fingerprint = plan_fingerprint(plan, fault_plan.as_ref());

    // Per-cell admission cost against the shared budget: the cell's
    // in-flight chunk footprint (one chunk per partial clone, plus the
    // chunker's build buffer and the merge's gathered centroids). The
    // same header read yields each cell's grid index, which the timeline
    // uses to route per-cell pipeline states onto the owning worker lane.
    let mut costs: Vec<usize> = Vec::with_capacity(n);
    let mut cell_ids: Vec<Option<u32>> = Vec::with_capacity(n);
    for p in inputs {
        // `probe` reads the shared 32-byte header prefix, so GB01 buckets
        // and GB02 block containers are admitted alike.
        match pmkm_data::probe(p) {
            Ok(info) => {
                cell_ids.push(Some(info.cell.index()));
                costs.push(cell_cost(plan, info.dim));
            }
            // Unreadable header: admit for free and let the pipeline
            // surface the proper scan error / tolerant abandonment.
            Err(_) => {
                cell_ids.push(None);
                costs.push(0);
            }
        }
    }
    let budget = match opts.budget_bytes {
        Some(cap) => {
            if let Some((i, &worst)) = costs.iter().enumerate().max_by_key(|(_, &c)| c) {
                if worst > cap {
                    return Err(EngineError::InvalidPlan(format!(
                        "memory budget of {cap} B cannot admit cell {} ({} B in-flight)",
                        inputs[i].display(),
                        worst
                    )));
                }
            }
            Some(MemoryBudget::new(cap))
        }
        None => None,
    };

    // Resume: restore completed cells, queue the rest.
    let mut outcomes: Vec<Option<CellOutcome>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<usize> = Vec::new();
    let mut invalid = 0usize;
    if opts.resume {
        if let Some(dir) = &opts.checkpoint_dir {
            for (i, path) in inputs.iter().enumerate() {
                match load_checkpoint(dir, path, fingerprint) {
                    CheckpointState::Loaded(p) => {
                        outcomes[i] = Some(CellOutcome {
                            input: i,
                            path: path.clone(),
                            clustering: p.clustering,
                            faults: p.faults,
                            degraded: p.degraded,
                            elapsed: p.elapsed,
                            resumed: true,
                        });
                    }
                    CheckpointState::Invalid => {
                        invalid += 1;
                        pending.push(i);
                    }
                    CheckpointState::Missing => pending.push(i),
                }
            }
        } else {
            pending = (0..n).collect();
        }
    } else {
        pending = (0..n).collect();
    }
    let resumed = n - pending.len();

    if let Some(rec) = rec.as_deref() {
        rec.event(
            "run.open",
            &[
                ("cells", n.into()),
                ("jobs", jobs.into()),
                ("partial_clones", plan.partial_clones.into()),
            ],
        );
        if opts.resume {
            rec.event(
                "run.resume",
                &[
                    ("cells_resumed", resumed.into()),
                    ("cells_pending", pending.len().into()),
                    ("checkpoints_invalid", invalid.into()),
                ],
            );
            // Re-announce each restored cell so a resumed run's ledger
            // still rolls up the full per-cell table and mass audit, and
            // roll the restored mass into the same gauges the merge path
            // maintains — `/metrics` then reports `Σw_received /
            // Σw_expected` over the *whole* run, resumed cells included.
            for o in outcomes.iter().flatten() {
                if let Some(c) = &o.clustering {
                    rec.event(
                        "cell.close",
                        &[
                            ("cell", c.cell.index().into()),
                            ("chunks", c.chunks.len().into()),
                            ("expected_points", c.expected_points.into()),
                            ("lost_points", c.lost_points.into()),
                            ("lost_chunks", c.lost_chunks.into()),
                            ("degraded", c.degraded.into()),
                            ("mse", c.output.mse.into()),
                            ("epm", c.output.epm.into()),
                            ("resumed", true.into()),
                        ],
                    );
                    let expected = rec.registry().gauge("mass_weight_expected");
                    let received = rec.registry().gauge("mass_weight_received");
                    expected.add(c.expected_points);
                    received.add(c.expected_points - c.lost_points);
                    let total = expected.get();
                    if total > 0.0 {
                        rec.registry().gauge("mass_conservation_ratio").set(received.get() / total);
                    }
                }
            }
        }
    }

    // Deal pending cells round-robin onto the per-worker deques.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (pos, &i) in pending.iter().enumerate() {
        queues[pos % jobs].lock().push_back(i);
    }

    // One timeline lane per worker (no-ops when no timeline is attached).
    let lanes: Vec<Option<usize>> = (0..jobs)
        .map(|w| rec.as_deref().and_then(|r| r.register_worker(&format!("w{w}"))))
        .collect();

    let shared = Shared {
        plan,
        rec: rec.clone(),
        fault_plan,
        queues,
        costs,
        cell_ids,
        budget,
        outcomes: Mutex::new(outcomes),
        first_err: Mutex::new(None),
        kill: AtomicBool::new(false),
        interrupted: AtomicBool::new(false),
        ckpt_written: Mutex::new(0),
        steals: AtomicU64::new(0),
        running: AtomicUsize::new(0),
        checkpoint_dir: opts.checkpoint_dir.clone(),
        kill_after: opts.kill_after_checkpoints,
        fingerprint,
        lanes,
        status: opts.status.clone(),
        started,
        cells_total: n,
    };
    shared.publish_status("running");

    crossbeam::thread::scope(|s| {
        for w in 0..jobs {
            let shared = &shared;
            s.spawn(move |_| worker(w, jobs, shared));
        }
    })
    .map_err(|_| EngineError::OperatorPanic("orchestrator worker".into()))?;

    if let Some(e) = shared.first_err.lock().take() {
        shared.publish_status("failed");
        return Err(e);
    }
    let interrupted = shared.interrupted.load(Ordering::Relaxed);
    shared.publish_status(if interrupted { "interrupted" } else { "done" });

    // After a clean, uninterrupted run, prune checkpoint files the plan
    // can no longer use (foreign buckets, outdated fingerprints); the
    // current run's own checkpoints are kept so a re-run still resumes.
    let mut checkpoints_pruned = 0usize;
    if !interrupted {
        if let Some(dir) = &opts.checkpoint_dir {
            checkpoints_pruned = gc_checkpoints(dir, inputs, fingerprint);
            if checkpoints_pruned > 0 {
                if let Some(rec) = rec.as_deref() {
                    rec.event("checkpoint.gc", &[("removed", checkpoints_pruned.into())]);
                }
            }
        }
    }

    let cells: Vec<CellOutcome> = shared.outcomes.into_inner().into_iter().flatten().collect();
    let mut faults = FaultReport::default();
    for o in &cells {
        add_faults(&mut faults, &o.faults);
    }
    let degraded = cells.iter().any(|o| o.degraded);
    let checkpoints_written =
        if opts.checkpoint_dir.is_some() { *shared.ckpt_written.lock() } else { 0 };
    let elapsed = started.elapsed();
    if let Some(rec) = rec.as_deref() {
        pmkm_obs::emit_phase_events(rec);
        rec.event(
            "run.close",
            &[
                ("elapsed_us", (elapsed.as_micros() as u64).into()),
                ("cells", cells.len().into()),
                ("degraded", degraded.into()),
            ],
        );
        rec.flush();
    }
    Ok(PlanetReport {
        jobs,
        cells_executed: 0, // filled in by finalize() from the outcomes
        cells,
        faults,
        degraded,
        elapsed,
        cells_total: n,
        cells_resumed: resumed,
        checkpoints_invalid: invalid,
        checkpoints_written,
        checkpoints_pruned,
        interrupted,
        budget_peak: shared.budget.as_ref().map(MemoryBudget::peak).unwrap_or(0),
        steals: shared.steals.load(Ordering::Relaxed),
    }
    .finalize())
}

struct Shared<'a> {
    plan: &'a PhysicalPlan,
    rec: Option<Arc<Recorder>>,
    fault_plan: Option<FaultPlan>,
    queues: Vec<Mutex<VecDeque<usize>>>,
    costs: Vec<usize>,
    cell_ids: Vec<Option<u32>>,
    budget: Option<MemoryBudget>,
    outcomes: Mutex<Vec<Option<CellOutcome>>>,
    first_err: Mutex<Option<EngineError>>,
    kill: AtomicBool,
    interrupted: AtomicBool,
    ckpt_written: Mutex<usize>,
    steals: AtomicU64,
    running: AtomicUsize,
    checkpoint_dir: Option<PathBuf>,
    kill_after: Option<usize>,
    fingerprint: u64,
    lanes: Vec<Option<usize>>,
    status: Option<Arc<StatusCell>>,
    started: Instant,
    cells_total: usize,
}

impl Shared<'_> {
    /// Records worker `w`'s state on its timeline lane (no-op without one).
    fn set_state(&self, w: usize, state: WorkerState) {
        if let (Some(rec), Some(&Some(lane))) = (self.rec.as_deref(), self.lanes.get(w)) {
            rec.worker_state(lane, state);
        }
    }

    /// Routes cell `i`'s pipeline states (scan/partial/merge) onto worker
    /// `w`'s lane for the duration of the cell's run.
    fn bind_cell(&self, w: usize, i: usize) {
        if let (Some(rec), Some(&Some(lane)), Some(&Some(cell))) =
            (self.rec.as_deref(), self.lanes.get(w), self.cell_ids.get(i))
        {
            if let Some(tl) = rec.timeline() {
                tl.bind_cell(cell, lane);
            }
        }
    }

    fn unbind_cell(&self, i: usize) {
        if let (Some(rec), Some(&Some(cell))) = (self.rec.as_deref(), self.cell_ids.get(i)) {
            if let Some(tl) = rec.timeline() {
                tl.unbind_cell(cell);
            }
        }
    }

    /// Publishes a fresh [`StatusSnapshot`] computed from the committed
    /// outcomes (no-op without a status cell). Mass numbers are the same
    /// sums [`PlanetReport`] reports, so the final snapshot matches the
    /// run's report.
    fn publish_status(&self, state: &str) {
        let Some(status) = &self.status else { return };
        let mut snap = StatusSnapshot::new();
        snap.state = state.to_string();
        snap.cells_total = self.cells_total;
        {
            let outcomes = self.outcomes.lock();
            for o in outcomes.iter().flatten() {
                snap.cells_done += 1;
                if o.resumed {
                    snap.cells_resumed += 1;
                }
                match &o.clustering {
                    Some(c) => {
                        snap.expected_points += c.expected_points;
                        snap.lost_points += c.lost_points;
                        snap.received_points += c.output.cluster_weights.iter().sum::<f64>();
                    }
                    None => snap.cells_lost += 1,
                }
            }
        }
        snap.mass_ratio = if snap.expected_points > 0.0 {
            snap.received_points / snap.expected_points
        } else {
            1.0
        };
        snap.cells_running = self.running.load(Ordering::Relaxed);
        if let Some(b) = &self.budget {
            snap.budget_cap_bytes = b.capacity() as u64;
            snap.budget_peak_bytes = b.peak() as u64;
        }
        snap.steals = self.steals.load(Ordering::Relaxed);
        snap.elapsed_us = match self.rec.as_deref() {
            // The recorder clock keeps /status consistent with the
            // timeline and the ledger; without one, the run clock.
            Some(rec) => rec.elapsed_us(),
            None => self.started.elapsed().as_micros() as u64,
        };
        // ETA from cell-completion throughput: cells executed this run
        // over elapsed time (resumed cells restore instantly and would
        // skew the rate).
        let executed = snap.cells_done - snap.cells_resumed;
        let remaining = self.cells_total.saturating_sub(snap.cells_done);
        if executed > 0 && remaining > 0 {
            snap.eta_us = snap.elapsed_us * remaining as u64 / executed as u64;
        }
        if let Some(tl) = self.rec.as_deref().and_then(Recorder::timeline) {
            snap.workers = tl
                .snapshot(snap.elapsed_us)
                .workers
                .into_iter()
                .map(|lane| pmkm_obs::WorkerStatus {
                    worker: lane.worker,
                    state: lane.current,
                    utilization: lane.utilization,
                })
                .collect();
        }
        status.publish(snap);
    }
}

fn worker(w: usize, jobs: usize, shared: &Shared<'_>) {
    loop {
        if shared.kill.load(Ordering::Relaxed) {
            shared.set_state(w, WorkerState::Idle);
            return;
        }
        // Own queue front-first; steal from the back of the others.
        let task = shared.queues[w].lock().pop_front().or_else(|| {
            shared.set_state(w, WorkerState::Stealing);
            (1..jobs).find_map(|d| {
                let victim = (w + d) % jobs;
                let stolen = shared.queues[victim].lock().pop_back();
                if stolen.is_some() {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                }
                stolen
            })
        });
        let Some(i) = task else {
            shared.set_state(w, WorkerState::Idle);
            return;
        };

        let cost = shared.costs[i];
        if let Some(b) = &shared.budget {
            shared.set_state(w, WorkerState::BudgetWait);
            b.acquire(cost);
            if shared.kill.load(Ordering::Relaxed) {
                b.release(cost);
                shared.set_state(w, WorkerState::Idle);
                return;
            }
        }
        // The cell's own pipeline states (scan → partial → merge) land on
        // this worker's lane via the binding.
        shared.bind_cell(w, i);
        shared.running.fetch_add(1, Ordering::Relaxed);
        let res = run_one_cell(shared, i);
        shared.running.fetch_sub(1, Ordering::Relaxed);
        shared.unbind_cell(i);
        if let Some(b) = &shared.budget {
            b.release(cost);
        }
        match res {
            Err(e) => {
                let mut err = shared.first_err.lock();
                if err.is_none() {
                    *err = Some(e);
                }
                shared.kill.store(true, Ordering::Relaxed);
                shared.set_state(w, WorkerState::Idle);
                return;
            }
            Ok(outcome) => {
                // Checkpoint + commit atomically with the kill check: a
                // cell whose checkpoint was not written before the "kill"
                // is treated as died-in-flight and discarded, exactly what
                // a real process death would leave behind.
                let mut written = shared.ckpt_written.lock();
                if shared.kill.load(Ordering::Relaxed) {
                    shared.set_state(w, WorkerState::Idle);
                    return;
                }
                if let Some(dir) = &shared.checkpoint_dir {
                    shared.set_state(w, WorkerState::Checkpoint);
                    match write_checkpoint(dir, shared.fingerprint, &outcome) {
                        Ok(bytes) => {
                            *written += 1;
                            if let Some(rec) = shared.rec.as_deref() {
                                let cell = outcome
                                    .clustering
                                    .as_ref()
                                    .map(|c| c.cell.index().to_string())
                                    .unwrap_or_else(|| file_name(&outcome.path));
                                rec.event(
                                    "cell.checkpoint",
                                    &[
                                        ("cell", cell.into()),
                                        ("seq", (*written as u64).into()),
                                        ("bytes", (bytes as u64).into()),
                                    ],
                                );
                            }
                        }
                        Err(e) => {
                            drop(written);
                            let mut err = shared.first_err.lock();
                            if err.is_none() {
                                *err = Some(e);
                            }
                            shared.kill.store(true, Ordering::Relaxed);
                            shared.set_state(w, WorkerState::Idle);
                            return;
                        }
                    }
                } else {
                    *written += 1;
                }
                if shared.kill_after == Some(*written) {
                    shared.kill.store(true, Ordering::Relaxed);
                    shared.interrupted.store(true, Ordering::Relaxed);
                }
                drop(written);
                shared.outcomes.lock()[i] = Some(outcome);
                shared.set_state(w, WorkerState::Idle);
                shared.publish_status("running");
            }
        }
    }
}

fn run_one_cell(shared: &Shared<'_>, i: usize) -> Result<CellOutcome> {
    let path = shared.plan.logical.inputs[i].clone();
    let mut cell_plan = shared.plan.clone();
    cell_plan.logical.inputs = vec![path.clone()];
    cell_plan.scan_clones = 1;
    // Coreset runs report their anytime clustering on /status: route the
    // orchestrator's status cell into the operator unless the caller
    // already wired a probe of their own.
    if let Some(spec) = cell_plan.coreset.as_mut() {
        if spec.probe.is_none() {
            spec.probe = shared.status.clone();
        }
    }
    let report = execute_cell(&cell_plan, shared.rec.clone(), shared.fault_plan.clone())?;
    Ok(CellOutcome {
        input: i,
        path,
        clustering: report.cells.into_iter().next(),
        faults: report.faults,
        degraded: report.degraded,
        elapsed: report.elapsed,
        resumed: false,
    })
}

/// In-flight bytes one cell's pipeline holds: one chunk per partial clone
/// plus the chunker's build buffer and the merge's gathered set.
fn cell_cost(plan: &PhysicalPlan, dim: usize) -> usize {
    let chunk_bytes = match plan.chunk_policy {
        ChunkPolicy::MemoryBudget { bytes } => bytes,
        ChunkPolicy::FixedPoints(p) => p * dim * std::mem::size_of::<f64>(),
    };
    chunk_bytes * (plan.partial_clones + 2)
}

/// Every plan knob that changes clustering results or fault injection —
/// parallelism knobs (clones, queue capacities, jobs) are deliberately
/// excluded because results are invariant to them.
fn plan_fingerprint(plan: &PhysicalPlan, fault_plan: Option<&FaultPlan>) -> u64 {
    // `CoresetSpec`'s manual Debug omits the status probe, so attaching a
    // live dashboard never invalidates checkpoints.
    // The scan backend is part of the key: backends change injection
    // granularity under chaos, so checkpoints must not cross backends.
    let key = format!(
        "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}",
        plan.logical.kmeans,
        plan.logical.merge_mode,
        plan.logical.merge_restarts,
        plan.chunk_policy,
        plan.fault_policy,
        plan.coreset,
        fault_plan,
        plan.scan_backend
    );
    fnv1a(key.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn file_name(path: &Path) -> String {
    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}

/// Checkpoint file path for a bucket: `<dir>/<bucket file name>.ckpt`.
pub fn checkpoint_path(dir: &Path, input: &Path) -> PathBuf {
    dir.join(format!("{}.ckpt", file_name(input)))
}

fn write_checkpoint(dir: &Path, fingerprint: u64, outcome: &CellOutcome) -> Result<usize> {
    let payload = CheckpointPayload {
        clustering: outcome.clustering.clone(),
        faults: outcome.faults,
        degraded: outcome.degraded,
        elapsed: outcome.elapsed,
    };
    let payload_line = serde_json::to_string(&payload)
        .map_err(|e| EngineError::InvalidPlan(format!("checkpoint serialization failed: {e}")))?;
    let header = CheckpointHeader {
        checkpoint: CHECKPOINT_VERSION,
        fingerprint: format!("{fingerprint:016x}"),
        checksum: format!("{:016x}", fnv1a(payload_line.as_bytes())),
        input: file_name(&outcome.path),
    };
    let header_line = serde_json::to_string(&header)
        .map_err(|e| EngineError::InvalidPlan(format!("checkpoint serialization failed: {e}")))?;
    let text = format!("{header_line}\n{payload_line}\n");
    std::fs::create_dir_all(dir)
        .map_err(|e| EngineError::InvalidPlan(format!("checkpoint dir {}: {e}", dir.display())))?;
    let path = checkpoint_path(dir, &outcome.path);
    // Write-then-rename so a crash mid-write leaves no half file behind
    // (a truncated file would be caught by the checksum anyway).
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, &text)
        .and_then(|()| std::fs::rename(&tmp, &path))
        .map_err(|e| EngineError::InvalidPlan(format!("checkpoint {}: {e}", path.display())))?;
    Ok(text.len())
}

/// Garbage-collects checkpoint files a completed run can no longer use:
/// `.ckpt` files for buckets outside the plan's input list and files whose
/// header fingerprint does not match the run (both would be rejected as
/// stale on the next resume anyway). Checkpoints of the run's own cells
/// are kept, so re-running the same plan still resumes instantly. Returns
/// the number of files removed; I/O errors skip the file, never fail the
/// run.
fn gc_checkpoints(dir: &Path, inputs: &[std::path::PathBuf], fingerprint: u64) -> usize {
    let keep: std::collections::HashSet<PathBuf> =
        inputs.iter().map(|p| checkpoint_path(dir, p)).collect();
    let want = format!("{fingerprint:016x}");
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let mut removed = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("ckpt") {
            continue;
        }
        let stale = if !keep.contains(&path) {
            true // a bucket this plan does not schedule
        } else {
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    let header_line = text.split('\n').next().unwrap_or("");
                    match serde_json::from_str::<CheckpointHeader>(header_line) {
                        Ok(h) => h.fingerprint != want,
                        Err(_) => true, // unparsable header: dead weight
                    }
                }
                Err(_) => false, // unreadable now; leave it for resume to judge
            }
        };
        if stale && std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

enum CheckpointState {
    Loaded(Box<CheckpointPayload>),
    Missing,
    Invalid,
}

fn load_checkpoint(dir: &Path, input: &Path, fingerprint: u64) -> CheckpointState {
    let path = checkpoint_path(dir, input);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CheckpointState::Missing,
        Err(_) => return CheckpointState::Invalid,
    };
    let Some((header_line, rest)) = text.split_once('\n') else {
        return CheckpointState::Invalid;
    };
    let payload_line = rest.strip_suffix('\n').unwrap_or(rest);
    let Ok(header) = serde_json::from_str::<CheckpointHeader>(header_line) else {
        return CheckpointState::Invalid;
    };
    if header.checkpoint > CHECKPOINT_VERSION
        || header.fingerprint != format!("{fingerprint:016x}")
        || header.input != file_name(input)
        || header.checksum != format!("{:016x}", fnv1a(payload_line.as_bytes()))
    {
        return CheckpointState::Invalid;
    }
    match serde_json::from_str::<CheckpointPayload>(payload_line) {
        Ok(p) => CheckpointState::Loaded(Box::new(p)),
        Err(_) => CheckpointState::Invalid,
    }
}

fn add_faults(into: &mut FaultReport, from: &FaultReport) {
    into.scan_retries += from.scan_retries;
    into.scan_failures += from.scan_failures;
    into.chunks_poisoned += from.chunks_poisoned;
    into.chunks_quarantined += from.chunks_quarantined;
    into.worker_panics += from.worker_panics;
    into.chunk_retries += from.chunk_retries;
    into.queue_stalls += from.queue_stalls;
    into.cells_degraded += from.cells_degraded;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute;
    use crate::optimizer::optimize_fixed_split;
    use crate::plan::LogicalPlan;
    use crate::resources::Resources;
    use pmkm_core::{Dataset, KMeansConfig};
    use pmkm_data::{GridBucket, GridCell};

    fn write_cell(dir: &Path, idx: u16, n: usize, seed: u64) -> PathBuf {
        use rand::Rng;
        let mut rng = pmkm_core::seeding::rng_for(seed, idx as u64);
        let mut points = Dataset::new(2).unwrap();
        for _ in 0..n {
            let blob = if rng.gen_bool(0.5) { 0.0 } else { 40.0 };
            points
                .push(&[blob + rng.gen_range(-1.0..1.0), blob + rng.gen_range(-1.0..1.0)])
                .unwrap();
        }
        let cell = GridCell::new(idx, idx).unwrap();
        let path = dir.join(cell.bucket_file_name());
        GridBucket { cell, points }.write_to(&path).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pmkm_orch_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn mk_plan(paths: &[PathBuf], seed: u64) -> PhysicalPlan {
        optimize_fixed_split(
            LogicalPlan::new(
                paths.to_vec(),
                KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, seed) },
            ),
            &Resources::fixed(1 << 20, 2),
            40,
        )
    }

    fn assert_same_cells(a: &PlanetReport, b: &PlanetReport) {
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.input, y.input);
            assert_eq!(x.path, y.path);
            let (cx, cy) = (x.clustering.as_ref().unwrap(), y.clustering.as_ref().unwrap());
            assert_eq!(cx.output.centroids, cy.output.centroids);
            assert_eq!(cx.output.epm.to_bits(), cy.output.epm.to_bits());
            assert_eq!(cx.expected_points.to_bits(), cy.expected_points.to_bits());
        }
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn orchestrated_cells_match_a_serial_execute_loop() {
        let dir = tmpdir("serial_parity");
        let paths: Vec<PathBuf> =
            (1..=5).map(|i| write_cell(&dir, i, 80 + 30 * i as usize, 9)).collect();
        let plan = mk_plan(&paths, 11);
        let planet = orchestrate(&plan, &OrchestratorOptions::new(4), None, None).unwrap();
        assert_eq!(planet.cells.len(), 5);
        assert_eq!(planet.cells_executed, 5);
        for (i, outcome) in planet.cells.iter().enumerate() {
            let mut one = plan.clone();
            one.logical.inputs = vec![paths[i].clone()];
            one.scan_clones = 1;
            let solo = execute(&one).unwrap();
            let orch = outcome.clustering.as_ref().unwrap();
            assert_eq!(orch.output.centroids, solo.cells[0].output.centroids);
            assert_eq!(orch.output.epm.to_bits(), solo.cells[0].output.epm.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn planet_report_ordering_is_independent_of_worker_count() {
        let dir = tmpdir("ordering");
        // Mixed sizes so completion order differs from input order.
        let sizes = [400usize, 60, 250, 90, 300, 70];
        let paths: Vec<PathBuf> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| write_cell(&dir, (i + 1) as u16, n, 5))
            .collect();
        let plan = mk_plan(&paths, 3);
        let one = orchestrate(&plan, &OrchestratorOptions::new(1), None, None).unwrap();
        let four = orchestrate(&plan, &OrchestratorOptions::new(4), None, None).unwrap();
        assert_same_cells(&one, &four);
        // Deterministic input-order reporting regardless of completion order.
        for (i, o) in four.cells.iter().enumerate() {
            assert_eq!(o.input, i);
            assert_eq!(o.path, paths[i]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idle_workers_steal_and_no_cell_starves() {
        let dir = tmpdir("steal");
        // jobs=2 deals cells [0,2] to worker 0 and [1] to worker 1. Cell 0
        // is much bigger, so worker 1 finishes its own cell and must steal
        // cell 2 from worker 0's deque for the run to stay balanced.
        let paths = vec![
            write_cell(&dir, 1, 4000, 13),
            write_cell(&dir, 2, 40, 13),
            write_cell(&dir, 3, 40, 13),
        ];
        let mut plan = mk_plan(&paths, 29);
        plan.logical.kmeans.restarts = 3;
        let planet = orchestrate(&plan, &OrchestratorOptions::new(2), None, None).unwrap();
        assert_eq!(planet.cells.len(), 3, "a cell starved");
        assert!(planet.steals >= 1, "expected at least one steal, got {}", planet.steals);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tight_budget_backpressures_but_never_exceeds() {
        let dir = tmpdir("budget");
        let paths: Vec<PathBuf> = (1..=6).map(|i| write_cell(&dir, i, 120, 21)).collect();
        let plan = mk_plan(&paths, 7);
        // Budget for exactly one cell: 4 workers must serialize admission.
        let one_cell = cell_cost(&plan, 2);
        let opts = OrchestratorOptions::new(4).with_budget(one_cell);
        let planet = orchestrate(&plan, &opts, None, None).unwrap();
        assert_eq!(planet.cells.len(), 6);
        assert!(planet.budget_peak > 0);
        assert!(
            planet.budget_peak <= one_cell,
            "budget exceeded: {} > {}",
            planet.budget_peak,
            one_cell
        );
        // Results are unchanged by the backpressure.
        let free = orchestrate(&plan, &OrchestratorOptions::new(4), None, None).unwrap();
        assert_same_cells(&planet, &free);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_smaller_than_one_cell_is_rejected() {
        let dir = tmpdir("budget_reject");
        let paths = vec![write_cell(&dir, 9, 100, 2)];
        let plan = mk_plan(&paths, 7);
        let opts = OrchestratorOptions::new(2).with_budget(16);
        match orchestrate(&plan, &opts, None, None) {
            Err(EngineError::InvalidPlan(msg)) => assert!(msg.contains("budget")),
            other => panic!("expected InvalidPlan, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_budget_tracks_peak() {
        let b = MemoryBudget::new(100);
        b.acquire(60);
        b.acquire(30);
        assert_eq!(b.peak(), 90);
        b.release(60);
        b.acquire(40);
        assert_eq!(b.peak(), 90);
        b.release(30);
        b.release(40);
        assert_eq!(b.capacity(), 100);
    }

    #[test]
    fn strict_failure_aborts_the_whole_run() {
        let dir = tmpdir("strict_abort");
        let mut paths = vec![write_cell(&dir, 1, 80, 3)];
        paths.push(PathBuf::from("/nonexistent/cell.gb"));
        let plan = mk_plan(&paths, 1);
        assert!(matches!(
            orchestrate(&plan, &OrchestratorOptions::new(2), None, None),
            Err(EngineError::Data(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_gc_keeps_current_run_and_deletes_stale_files() {
        let dir = tmpdir("ckpt_gc");
        let ckpt_dir = dir.join("ckpt");
        let keep_bucket = write_cell(&dir, 21, 50, 3);
        let foreign_bucket = write_cell(&dir, 22, 50, 3);
        let outcome = |path: &PathBuf| CellOutcome {
            input: 0,
            path: path.clone(),
            clustering: None,
            faults: FaultReport::default(),
            degraded: false,
            elapsed: Duration::ZERO,
            resumed: false,
        };
        // Current-run checkpoint: in the plan, matching fingerprint.
        write_checkpoint(&ckpt_dir, 0x1111, &outcome(&keep_bucket)).unwrap();
        // Same bucket, old fingerprint — overwritten case doesn't apply
        // here, so stage the stale fingerprint on the foreign bucket and
        // a plan-external file instead.
        write_checkpoint(&ckpt_dir, 0x9999, &outcome(&foreign_bucket)).unwrap();
        std::fs::write(ckpt_dir.join("orphan.gb.ckpt"), "junk\n").unwrap();
        // A non-checkpoint file is never touched.
        std::fs::write(ckpt_dir.join("notes.txt"), "keep me").unwrap();

        let inputs = vec![keep_bucket.clone(), foreign_bucket.clone()];
        let removed = gc_checkpoints(&ckpt_dir, &inputs, 0x1111);
        assert_eq!(removed, 2, "stale fingerprint + orphan");
        assert!(checkpoint_path(&ckpt_dir, &keep_bucket).exists(), "current kept");
        assert!(!checkpoint_path(&ckpt_dir, &foreign_bucket).exists(), "stale deleted");
        assert!(!ckpt_dir.join("orphan.gb.ckpt").exists(), "orphan deleted");
        assert!(ckpt_dir.join("notes.txt").exists(), "non-ckpt untouched");
        // The kept checkpoint still loads.
        assert!(matches!(
            load_checkpoint(&ckpt_dir, &keep_bucket, 0x1111),
            CheckpointState::Loaded(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orchestrate_prunes_stale_checkpoints_after_a_clean_run() {
        let dir = tmpdir("gc_e2e");
        let paths: Vec<PathBuf> = (1..=2).map(|i| write_cell(&dir, i, 60, 4)).collect();
        let plan = mk_plan(&paths, 5);
        let ckpt_dir = dir.join("ckpt");
        // Seed a stale file from a "previous" differently-configured run.
        std::fs::create_dir_all(&ckpt_dir).unwrap();
        std::fs::write(ckpt_dir.join("old_run.gb.ckpt"), "junk\n").unwrap();
        let opts = OrchestratorOptions::new(2).with_checkpoints(&ckpt_dir);
        let planet = orchestrate(&plan, &opts, None, None).unwrap();
        assert_eq!(planet.checkpoints_written, 2);
        assert_eq!(planet.checkpoints_pruned, 1, "stale file pruned");
        assert!(!ckpt_dir.join("old_run.gb.ckpt").exists());
        for p in &paths {
            assert!(checkpoint_path(&ckpt_dir, p).exists(), "own checkpoints kept");
        }
        // An interrupted run must NOT prune (resume still needs the dir).
        std::fs::write(ckpt_dir.join("old_run.gb.ckpt"), "junk\n").unwrap();
        let killed = orchestrate(&plan, &opts.clone().kill_after(1), None, None).unwrap();
        assert!(killed.interrupted);
        assert_eq!(killed.checkpoints_pruned, 0);
        assert!(ckpt_dir.join("old_run.gb.ckpt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coreset_orchestrate_publishes_anytime_status_and_report_block() {
        let dir = tmpdir("coreset");
        let paths: Vec<PathBuf> = (1..=3).map(|i| write_cell(&dir, i, 120, 8)).collect();
        let mut plan = mk_plan(&paths, 13);
        plan.coreset = Some(crate::plan::CoresetSpec::new(32));
        let status = Arc::new(StatusCell::new());
        let opts = OrchestratorOptions::new(2).with_status(status.clone());
        let planet = orchestrate(&plan, &opts, None, None).unwrap();
        assert_eq!(planet.cells.len(), 3);
        for c in planet.clusterings() {
            let stats = c.coreset.expect("coreset stats per cell");
            assert_eq!(stats.builds, 3); // 120 points / 40-point chunks
            let total: f64 = c.output.cluster_weights.iter().sum();
            assert_eq!(total, 120.0);
        }
        // The orchestrator's status cell doubles as the anytime probe.
        let cs = status.coreset().expect("anytime clustering published to /status");
        assert!(cs.builds > 0);
        assert_eq!(cs.centroids.len(), cs.k);
        // The planet report carries the aggregated v7 block.
        let block = planet.run_report(None).coreset.expect("coreset block");
        assert_eq!(block.trees, 3);
        assert_eq!(block.builds, 9);
        assert_eq!(block.ingested_points, 360.0);
        // Worker count and the probe never change the clustering.
        let one = orchestrate(&plan, &OrchestratorOptions::new(1), None, None).unwrap();
        assert_same_cells(&planet, &one);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_files_round_trip_and_detect_tampering() {
        let dir = tmpdir("ckpt_unit");
        let bucket = write_cell(&dir, 4, 90, 17);
        let outcome = CellOutcome {
            input: 0,
            path: bucket.clone(),
            clustering: None,
            faults: FaultReport { scan_retries: 2, ..FaultReport::default() },
            degraded: true,
            elapsed: Duration::from_micros(123),
            resumed: false,
        };
        let ckpt_dir = dir.join("ckpt");
        write_checkpoint(&ckpt_dir, 0xabcd, &outcome).unwrap();
        match load_checkpoint(&ckpt_dir, &bucket, 0xabcd) {
            CheckpointState::Loaded(p) => {
                assert_eq!(p.faults.scan_retries, 2);
                assert!(p.degraded);
                assert_eq!(p.elapsed, Duration::from_micros(123));
            }
            _ => panic!("expected a valid checkpoint"),
        }
        // Wrong fingerprint → invalid, not panic.
        assert!(matches!(load_checkpoint(&ckpt_dir, &bucket, 0xabce), CheckpointState::Invalid));
        // Flip one payload byte → checksum catches it.
        let path = checkpoint_path(&ckpt_dir, &bucket);
        let mut text = std::fs::read_to_string(&path).unwrap();
        let flip = text.len() - 3;
        text.replace_range(flip..flip + 1, "X");
        std::fs::write(&path, &text).unwrap();
        assert!(matches!(load_checkpoint(&ckpt_dir, &bucket, 0xabcd), CheckpointState::Invalid));
        // Missing file is a distinct state.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(load_checkpoint(&ckpt_dir, &bucket, 0xabcd), CheckpointState::Missing));
        std::fs::remove_dir_all(&dir).ok();
    }
}
