//! Fine-grained operator decomposition of the partial k-means (§3.4,
//! option 3): "break up the partial k-means into several finer grained
//! operators such as ChooseRandomSeeds, and SortDataPoint,
//! ComputeClusterMean, etc. Within the partial k-means, the SortDataPoint
//! … is the most expensive operation, and could be parallelized."
//!
//! One k-means run becomes a small dataflow:
//!
//! ```text
//! ChooseRandomSeeds ─▶ centroids ─▶ SortDataPoint × S ─▶ partial stats ─▶ ComputeClusterMean
//!        ▲                                                              │
//!        └────────────────── next-iteration centroids ◀────────────────┘
//! ```
//!
//! `SortDataPoint` clones each own a fixed segment of the chunk (round-robin
//! deal) and receive the current centroid table each round; the reducer
//! recomputes weighted means, repairs empty clusters with the same
//! farthest-point policy as [`pmkm_core::lloyd::lloyd`], and decides convergence on
//! the MSE delta — so the fine-grained dataflow computes the very same
//! algorithm, just spread over operators.

use crate::error::{EngineError, Result};
use crate::queue::SmartQueue;
use crate::telemetry::{OpMeter, OpStats};
use pmkm_core::config::SeedMode;
use pmkm_core::point::nearest_centroid;
use pmkm_core::seeding::{rng_for, seed_centroids};
use pmkm_core::{Centroids, Dataset, KMeansConfig, PointSource};
use std::sync::Arc;

/// Accumulated round statistics: (sums, weights, sse, donors).
type RoundStats = (Vec<f64>, Vec<f64>, f64, Vec<(f64, usize, Vec<f64>)>);

/// Partial statistics one `SortDataPoint` clone reports per round.
#[derive(Debug, Clone)]
struct SortStats {
    /// Which sorter produced this — the reducer sums partials in segment
    /// order, not arrival order, so floating-point accumulation (and with
    /// it the MSE-delta convergence decision) never depends on thread
    /// scheduling.
    seg: usize,
    sums: Vec<f64>,
    weights: Vec<f64>,
    sse: f64,
    /// Top-k donor candidates (d², global index, coords), farthest first.
    donors: Vec<(f64, usize, Vec<f64>)>,
}

/// Result of a fine-grained k-means run.
#[derive(Debug, Clone)]
pub struct FineRun {
    /// Final centroids.
    pub centroids: Centroids,
    /// Weight captured per cluster.
    pub cluster_weights: Vec<f64>,
    /// Final MSE.
    pub mse: f64,
    /// Iterations to converge.
    pub iterations: usize,
    /// Whether the MSE delta criterion was met before the cap.
    pub converged: bool,
    /// Telemetry: one entry per operator instance
    /// (`choose-random-seeds`, S × `sort-data-point`, `compute-cluster-mean`).
    pub op_stats: Vec<OpStats>,
}

/// The `ChooseRandomSeeds` operator: deterministic seed selection for one
/// `(chunk, restart)` pair.
pub fn choose_random_seeds(
    chunk: &Dataset,
    cfg: &KMeansConfig,
    restart: usize,
) -> Result<(Centroids, OpStats)> {
    let mut meter = OpMeter::new("choose-random-seeds", restart);
    let mut rng = rng_for(cfg.seed, restart as u64);
    let init = meter.work(|| seed_centroids(chunk, cfg.k, SeedMode::RandomPoints, &mut rng))?;
    meter.item_out();
    Ok((init, meter.finish()))
}

/// Runs one k-means as the fine-grained dataflow with `sorters`
/// `SortDataPoint` clones. Single restart (`cfg.restarts` is ignored here;
/// callers loop restarts and keep the best, exactly like the coarse path).
pub fn fine_kmeans(chunk: &Dataset, cfg: &KMeansConfig, sorters: usize) -> Result<FineRun> {
    cfg.validate()?;
    if chunk.is_empty() {
        return Err(pmkm_core::Error::EmptyDataset.into());
    }
    if cfg.k > chunk.len() {
        return Err(pmkm_core::Error::KExceedsPoints { k: cfg.k, points: chunk.len() }.into());
    }
    let sorters = sorters.max(1);
    let dim = chunk.dim();
    let k = cfg.k;
    let n = chunk.len();

    let (init, seed_stats) = choose_random_seeds(chunk, cfg, 0)?;
    // Segment the chunk round-robin: global index of segment s, position p
    // is p·sorters + s.
    let segments: Vec<Dataset> = chunk.split_round_robin(sorters)?;

    // Queues: one broadcast queue per sorter (each round gets every
    // sorter's copy of the centroids), one shared stats queue back.
    let cmd_queues: Vec<SmartQueue<Option<Arc<Centroids>>>> =
        (0..sorters).map(|s| SmartQueue::new(format!("seeds→sort{s}"), 2)).collect();
    let stats_queue: SmartQueue<SortStats> = SmartQueue::new("sort→mean", sorters.max(2));

    let run = crossbeam::thread::scope(|scope| -> Result<FineRun> {
        let mut handles = Vec::new();
        for (s, segment) in segments.iter().enumerate() {
            let cmds = cmd_queues[s].consumer();
            let out = stats_queue.producer();
            handles.push(scope.spawn(move |_| -> Result<OpStats> {
                let mut meter = OpMeter::new("sort-data-point", s);
                while let Some(cmd) = cmds.recv() {
                    let Some(centroids) = cmd else { break };
                    meter.item_in();
                    let stats = meter.work(|| sort_segment(segment, &centroids, s, sorters, k));
                    meter.item_out();
                    out.send(stats).map_err(|_| EngineError::Disconnected("sort→mean"))?;
                }
                Ok(meter.finish())
            }));
        }
        let cmd_producers: Vec<_> = cmd_queues.iter().map(|q| q.producer()).collect();
        for q in &cmd_queues {
            q.seal();
        }
        let stats_in = stats_queue.consumer();
        stats_queue.seal();

        // ComputeClusterMean: the reducer loop, on this thread.
        let mut meter = OpMeter::new("compute-cluster-mean", 0);
        let mut centroids = init;
        let mut iterations = 0usize;
        let mut converged = false;

        let broadcast = |c: &Centroids| -> Result<()> {
            let shared = Arc::new(c.clone());
            for p in &cmd_producers {
                p.send(Some(Arc::clone(&shared)))
                    .map_err(|_| EngineError::Disconnected("seeds→sort"))?;
            }
            Ok(())
        };
        let collect = |meter: &mut OpMeter| -> Result<RoundStats> {
            let mut sums = vec![0.0; k * dim];
            let mut weights = vec![0.0; k];
            let mut sse = 0.0;
            let mut donors = Vec::new();
            // Drain the round's partials first, then reduce in segment order:
            // arrival order depends on thread scheduling, and float addition
            // is not associative, so summing as-received makes borderline
            // MSE-delta convergence decisions flicker between runs.
            let mut round: Vec<SortStats> = Vec::with_capacity(sorters);
            for _ in 0..sorters {
                round.push(stats_in.recv().ok_or(EngineError::Disconnected("sort→mean"))?);
                meter.item_in();
            }
            round.sort_by_key(|s| s.seg);
            for s in round {
                meter.work(|| {
                    for (a, b) in sums.iter_mut().zip(&s.sums) {
                        *a += b;
                    }
                    for (a, b) in weights.iter_mut().zip(&s.weights) {
                        *a += b;
                    }
                    sse += s.sse;
                    donors.extend(s.donors);
                });
            }
            donors.sort_by(|a, b| {
                b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
            });
            Ok((sums, weights, sse, donors))
        };

        broadcast(&centroids)?;
        let (mut sums, mut weights, sse0, mut donors) = collect(&mut meter)?;
        let mut prev_mse = sse0 / n as f64;
        let mut final_mse = prev_mse;

        while iterations < cfg.lloyd.max_iters {
            // Recompute means (empty clusters jump to farthest donors).
            meter.work(|| {
                let mut flat = centroids.as_flat().to_vec();
                let mut donor_iter = donors.iter();
                for j in 0..k {
                    if weights[j] > 0.0 {
                        for d in 0..dim {
                            flat[j * dim + d] = sums[j * dim + d] / weights[j];
                        }
                    } else if let Some((_, _, coords)) = donor_iter.next() {
                        flat[j * dim..(j + 1) * dim].copy_from_slice(coords);
                    }
                }
                centroids = Centroids::from_flat(dim, flat).expect("valid shape");
            });
            broadcast(&centroids)?;
            let (s, w, sse, d) = collect(&mut meter)?;
            sums = s;
            weights = w;
            donors = d;
            let mse = sse / n as f64;
            iterations += 1;
            let delta = prev_mse - mse;
            final_mse = mse;
            prev_mse = mse;
            if delta >= 0.0 && delta <= cfg.lloyd.epsilon {
                converged = true;
                break;
            }
        }
        // Stop the sorters and collect their telemetry.
        for p in &cmd_producers {
            p.send(None).map_err(|_| EngineError::Disconnected("seeds→sort"))?;
        }
        drop(cmd_producers);
        let mut op_stats = vec![seed_stats.clone()];
        for h in handles {
            match h.join() {
                Ok(Ok(stats)) => op_stats.push(stats),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(EngineError::OperatorPanic("sort-data-point".into())),
            }
        }
        op_stats.push(meter.finish());
        Ok(FineRun {
            centroids,
            cluster_weights: weights,
            mse: final_mse,
            iterations,
            converged,
            op_stats,
        })
    })
    .map_err(|_| EngineError::OperatorPanic("fine-kmeans scope".into()))??;
    Ok(run)
}

fn sort_segment(
    segment: &Dataset,
    centroids: &Centroids,
    seg_idx: usize,
    sorters: usize,
    k: usize,
) -> SortStats {
    let dim = centroids.dim();
    let kc = centroids.k();
    let mut sums = vec![0.0; kc * dim];
    let mut weights = vec![0.0; kc];
    let mut sse = 0.0;
    let mut donors: Vec<(f64, usize, Vec<f64>)> = Vec::with_capacity(segment.len());
    for (pos, p) in segment.iter().enumerate() {
        let (j, d2) = nearest_centroid(p, centroids.as_flat(), dim);
        for (s, c) in sums[j * dim..(j + 1) * dim].iter_mut().zip(p) {
            *s += c;
        }
        weights[j] += 1.0;
        sse += d2;
        donors.push((d2, pos * sorters + seg_idx, p.to_vec()));
    }
    donors.sort_by(|a, b| {
        b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
    });
    donors.truncate(k);
    SortStats { seg: seg_idx, sums, weights, sse, donors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_core::lloyd::lloyd;

    fn blob_chunk(seed: u64, n: usize) -> Dataset {
        use rand::Rng;
        let mut rng = rng_for(seed, 0);
        let mut ds = Dataset::new(2).unwrap();
        for _ in 0..n {
            let b = if rng.gen_bool(0.5) { 0.0 } else { 25.0 };
            ds.push(&[b + rng.gen_range(-1.0..1.0), b + rng.gen_range(-1.0..1.0)]).unwrap();
        }
        ds
    }

    #[test]
    fn single_sorter_matches_core_lloyd_exactly() {
        let chunk = blob_chunk(1, 150);
        let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(3, 7) };
        let mut rng = rng_for(7, 0);
        let init = seed_centroids(&chunk, 3, SeedMode::RandomPoints, &mut rng).unwrap();
        let reference = lloyd(&chunk, &init, &cfg.lloyd).unwrap();
        let fine = fine_kmeans(&chunk, &cfg, 1).unwrap();
        assert_eq!(fine.centroids, reference.centroids);
        assert_eq!(fine.iterations, reference.iterations);
        assert!((fine.mse - reference.mse).abs() < 1e-15);
        assert!(fine.converged);
    }

    #[test]
    fn multiple_sorters_agree_within_rounding() {
        let chunk = blob_chunk(2, 200);
        let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(4, 11) };
        let one = fine_kmeans(&chunk, &cfg, 1).unwrap();
        for sorters in [2usize, 3, 4] {
            let multi = fine_kmeans(&chunk, &cfg, sorters).unwrap();
            assert_eq!(multi.iterations, one.iterations, "sorters={sorters}");
            for (a, b) in multi.centroids.as_flat().iter().zip(one.centroids.as_flat()) {
                assert!((a - b).abs() < 1e-9, "sorters={sorters}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn telemetry_covers_every_operator() {
        let chunk = blob_chunk(3, 100);
        let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 5) };
        let run = fine_kmeans(&chunk, &cfg, 3).unwrap();
        let names: Vec<&str> = run.op_stats.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.iter().filter(|n| **n == "sort-data-point").count(), 3);
        assert!(names.contains(&"choose-random-seeds"));
        assert!(names.contains(&"compute-cluster-mean"));
        // Every sorter processed every round.
        let rounds = run.iterations as u64 + 1;
        for s in run.op_stats.iter().filter(|s| s.name == "sort-data-point") {
            assert_eq!(s.items_in, rounds);
            assert_eq!(s.items_out, rounds);
        }
    }

    #[test]
    fn weight_conservation() {
        let chunk = blob_chunk(4, 120);
        let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(3, 9) };
        let run = fine_kmeans(&chunk, &cfg, 2).unwrap();
        let total: f64 = run.cluster_weights.iter().sum();
        assert_eq!(total, 120.0);
    }

    #[test]
    fn input_validation() {
        let empty = Dataset::new(2).unwrap();
        let cfg = KMeansConfig::paper(2, 0);
        assert!(fine_kmeans(&empty, &cfg, 2).is_err());
        let tiny = Dataset::from_rows(&[[0.0, 0.0]]).unwrap();
        assert!(fine_kmeans(&tiny, &KMeansConfig::paper(2, 0), 2).is_err());
    }
}
