//! The partial k-means operator — "by far the most expensive computation"
//! (§3.4) and therefore the operator the optimizer clones.
//!
//! Every clone consumes chunks from the shared chunk queue (MPMC work
//! stealing) and emits the chunk's weighted centroids. Per-chunk RNG seeds
//! derive from `(base seed, cell, chunk_id)`, so the clustering of a chunk
//! is identical no matter which clone processes it — cloning changes
//! wall-clock time, never results.

use crate::error::{EngineError, Result};
use crate::fault::{record_fault, FaultContext, InjectedPanic, EDGE_MERGE};
use crate::item::{ChunkMsg, MergeMsg};
use crate::queue::{QueueConsumer, QueueProducer};
use crate::telemetry::{OpMeter, OpStats};
use pmkm_core::coreset::chunk_coreset;
use pmkm_core::partial::{partial_kmeans_observed, PartialOutput};
use pmkm_core::seeding::{derive_seed, rng_for};
use pmkm_core::{Dataset, KMeansConfig, PointSource};
use pmkm_data::GridCell;
use pmkm_obs::Recorder;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Stream tag for per-(cell, chunk) seeds.
const STREAM_CHUNK: u64 = 0x5354_4348_554E_4B00; // "STCHUNK"

/// Stream tag separating a chunk's coreset-sampling draws from its k-means
/// restart streams (both derive from the same per-chunk seed).
const STREAM_CORESET_BUILD: u64 = 0x4353_4255_494C_4400; // "CSBUILD"

/// Builds one chunk's weighted coreset and wraps it in the partial-output
/// envelope the downstream operators already speak (`best_mse`/iterations
/// zeroed: no Lloyd ran). The RNG derives from the chunk seed, so the
/// summary is identical no matter which clone builds it.
fn build_chunk_coreset(
    points: &Dataset,
    size: usize,
    cfg: &KMeansConfig,
    cell: GridCell,
    chunk_id: usize,
    rec: Option<&Recorder>,
) -> Result<PartialOutput> {
    let started = Instant::now();
    let mut rng = rng_for(cfg.seed, STREAM_CORESET_BUILD);
    let set = chunk_coreset(points, size, &mut rng)?;
    if let Some(rec) = rec {
        rec.registry().counter("coreset_builds_total").inc();
        rec.event(
            "coreset.build",
            &[
                ("cell", cell.index().into()),
                ("chunk", chunk_id.into()),
                ("points", points.len().into()),
                ("size", set.len().into()),
                ("weight", set.total_weight().into()),
            ],
        );
    }
    Ok(PartialOutput {
        points: points.len(),
        best_mse: 0.0,
        restarts: Vec::new(),
        total_iterations: 0,
        elapsed: started.elapsed(),
        best_trajectory: Vec::new(),
        centroids: set,
    })
}

/// The seed used to cluster `(cell, chunk_id)` under `base`. Public so the
/// in-memory pipeline and tests can reproduce engine results exactly.
pub fn chunk_seed(base: u64, cell_index: u32, chunk_id: usize) -> u64 {
    derive_seed(base, STREAM_CHUNK ^ ((cell_index as u64) << 20) ^ chunk_id as u64)
}

/// One clone of the partial k-means operator.
pub struct PartialKMeansOp {
    input: QueueConsumer<ChunkMsg>,
    out: QueueProducer<MergeMsg>,
    kmeans: KMeansConfig,
    clone_id: usize,
    recorder: Option<Arc<Recorder>>,
    faults: FaultContext,
    coreset_size: Option<usize>,
}

impl PartialKMeansOp {
    /// Creates one clone.
    pub fn new(
        input: QueueConsumer<ChunkMsg>,
        out: QueueProducer<MergeMsg>,
        kmeans: KMeansConfig,
        clone_id: usize,
    ) -> Self {
        Self {
            input,
            out,
            kmeans,
            clone_id,
            recorder: None,
            faults: FaultContext::default(),
            coreset_size: None,
        }
    }

    /// Attaches an observability recorder (builder style).
    pub fn with_recorder(mut self, recorder: Option<Arc<Recorder>>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a fault plan/policy/counter bundle (builder style).
    pub fn with_faults(mut self, faults: FaultContext) -> Self {
        self.faults = faults;
        self
    }

    /// Switches the clone into coreset mode (builder style): each chunk is
    /// summarised by a weighted coreset of at most `size` points instead of
    /// best-of-R k-means centroids. All the fault machinery (poison gate,
    /// retries, quarantine) applies unchanged.
    pub fn with_coreset(mut self, size: Option<usize>) -> Self {
        self.coreset_size = size;
        self
    }

    /// Records a quarantined chunk and tells the merge operator the chunk is
    /// gone so the cell's plan still closes.
    fn quarantine_chunk(
        &self,
        meter: &mut OpMeter,
        cell: pmkm_data::GridCell,
        chunk_id: usize,
        points: usize,
    ) -> Result<()> {
        self.faults.counters.chunks_quarantined.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.recorder.as_deref() {
            rec.registry().counter("fault_chunks_quarantined_total").inc();
            rec.event(
                "partial.chunk_quarantined",
                &[
                    ("cell", cell.index().into()),
                    ("chunk", chunk_id.into()),
                    ("points", points.into()),
                ],
            );
        }
        record_fault(
            self.recorder.as_deref(),
            "chunk_quarantined",
            &[("cell", cell.index().into()), ("chunk", chunk_id.into()), ("points", points.into())],
        );
        meter
            .wait(|| self.out.send(MergeMsg::ChunkLost { cell, chunk_id, points }).map_err(drop))
            .map_err(|_| EngineError::Disconnected("partial→merge"))
    }

    /// Runs until the chunk stream ends.
    pub fn run(self) -> Result<OpStats> {
        let mut meter = OpMeter::new("partial-kmeans", self.clone_id);
        'chunks: while let Some(ChunkMsg { cell, chunk_id, points }) =
            meter.wait(|| self.input.recv())
        {
            let rec = self.recorder.as_deref();
            meter.item_in();
            if let Some(rec) = rec {
                // Coalesced by the timeline, so per-chunk cost is one
                // same-state check on the lane the cell is bound to.
                rec.worker_state_cell(cell.index(), pmkm_obs::WorkerState::Partial);
            }
            // Poison gate: a chunk with non-finite coordinates would corrupt
            // every centroid it touches, so it never reaches the kernel.
            if self.faults.validate_chunks() && points.as_flat().iter().any(|v| !v.is_finite()) {
                self.faults.counters.chunks_poisoned.fetch_add(1, Ordering::Relaxed);
                if let Some(rec) = rec {
                    rec.registry().counter("fault_chunks_poisoned_total").inc();
                }
                record_fault(
                    rec,
                    "chunk_poisoned",
                    &[("cell", cell.index().into()), ("chunk", chunk_id.into())],
                );
                if self.faults.policy.quarantine {
                    self.quarantine_chunk(&mut meter, cell, chunk_id, points.len())?;
                    continue;
                }
                return Err(EngineError::PoisonedChunk { cell: cell.index(), chunk_id });
            }
            let cfg = KMeansConfig {
                seed: chunk_seed(self.kmeans.seed, cell.index(), chunk_id),
                ..self.kmeans
            };
            // Panic isolation: a crash while clustering one chunk (injected
            // or real) must not take the whole pipeline down. The chunk is
            // retried — deterministically reseeded, so a retry that succeeds
            // yields the exact fault-free result — and quarantined only once
            // the attempt budget is spent.
            let mut attempt = 0usize;
            let started = rec.map(|_| std::time::Instant::now());
            let output = loop {
                let inject = self
                    .faults
                    .plan
                    .as_deref()
                    .is_some_and(|p| p.panic_fault(cell.index(), chunk_id, attempt));
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if inject {
                        std::panic::panic_any(InjectedPanic);
                    }
                    if let Some(size) = self.coreset_size {
                        let _phase = rec.and_then(|r| r.phase("coreset"));
                        meter.work(|| build_chunk_coreset(&points, size, &cfg, cell, chunk_id, rec))
                    } else {
                        let _phase = rec.and_then(|r| r.phase("partial"));
                        meter
                            .work(|| partial_kmeans_observed(&points, &cfg, rec))
                            .map_err(EngineError::from)
                    }
                }));
                match outcome {
                    Ok(result) => break result?,
                    Err(payload) => {
                        self.faults.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                        if let Some(rec) = rec {
                            rec.registry().counter("fault_worker_panics_total").inc();
                            rec.event(
                                "partial.panic",
                                &[
                                    ("cell", cell.index().into()),
                                    ("chunk", chunk_id.into()),
                                    ("attempt", attempt.into()),
                                ],
                            );
                        }
                        record_fault(
                            rec,
                            "worker_panic",
                            &[
                                ("cell", cell.index().into()),
                                ("chunk", chunk_id.into()),
                                ("attempt", attempt.into()),
                            ],
                        );
                        attempt += 1;
                        if attempt < self.faults.policy.max_chunk_attempts {
                            self.faults.counters.chunk_retries.fetch_add(1, Ordering::Relaxed);
                            if let Some(rec) = rec {
                                rec.registry().counter("fault_chunk_retries_total").inc();
                            }
                            record_fault(
                                rec,
                                "chunk_retry",
                                &[("cell", cell.index().into()), ("chunk", chunk_id.into())],
                            );
                            continue;
                        }
                        if self.faults.policy.quarantine {
                            self.quarantine_chunk(&mut meter, cell, chunk_id, points.len())?;
                            continue 'chunks;
                        }
                        resume_unwind(payload);
                    }
                }
            };
            if let Some(rec) = rec {
                let duration_us = started.map_or(0, |t| t.elapsed().as_micros() as u64);
                rec.event(
                    "chunk.close",
                    &[
                        ("cell", cell.index().into()),
                        ("chunk", chunk_id.into()),
                        ("points", points.len().into()),
                        ("duration_us", duration_us.into()),
                        ("attempts", (attempt + 1).into()),
                    ],
                );
            }
            meter.item_out();
            let stall_key = ((cell.index() as u64) << 20) ^ chunk_id as u64;
            meter
                .wait(|| {
                    self.faults.maybe_stall(EDGE_MERGE, stall_key, rec);
                    self.out.send(MergeMsg::Partial { cell, chunk_id, output }).map_err(drop)
                })
                .map_err(|_| EngineError::Disconnected("partial→merge"))?;
        }
        let stats = meter.finish();
        if let Some(rec) = self.recorder.as_deref() {
            rec.event(
                "op.finish",
                &[
                    ("op", "partial-kmeans".into()),
                    ("clone", stats.clone_id.into()),
                    ("items_in", stats.items_in.into()),
                ],
            );
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SmartQueue;
    use pmkm_core::Dataset;
    use pmkm_data::GridCell;

    fn chunk(cell_i: u16, chunk_id: usize, n: usize) -> ChunkMsg {
        let mut points = Dataset::new(2).unwrap();
        for i in 0..n {
            let o = (i % 4) as f64 * 0.1;
            points.push(&[o + if i % 2 == 0 { 0.0 } else { 20.0 }, o]).unwrap();
        }
        ChunkMsg { cell: GridCell::new(cell_i, 0).unwrap(), chunk_id, points }
    }

    #[test]
    fn clusters_each_chunk_and_forwards() {
        let q_in: SmartQueue<ChunkMsg> = SmartQueue::new("chunks", 16);
        let q_out: SmartQueue<MergeMsg> = SmartQueue::new("merge", 16);
        let p = q_in.producer();
        let op = PartialKMeansOp::new(
            q_in.consumer(),
            q_out.producer(),
            KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 5) },
            0,
        );
        let c = q_out.consumer();
        q_in.seal();
        q_out.seal();
        p.send(chunk(1, 0, 30)).unwrap();
        p.send(chunk(1, 1, 30)).unwrap();
        drop(p);
        let stats = op.run().unwrap();
        assert_eq!(stats.items_in, 2);
        assert_eq!(stats.items_out, 2);
        let results: Vec<MergeMsg> = std::iter::from_fn(|| c.recv()).collect();
        assert_eq!(results.len(), 2);
        for r in &results {
            match r {
                MergeMsg::Partial { output, .. } => {
                    assert_eq!(output.points, 30);
                    let total: f64 = output.centroids.weights().iter().sum();
                    assert_eq!(total, 30.0);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn chunk_seed_is_unique_per_cell_and_chunk() {
        let mut seen = std::collections::HashSet::new();
        for cell in 0..50u32 {
            for chunk in 0..50usize {
                assert!(seen.insert(chunk_seed(7, cell, chunk)));
            }
        }
    }

    #[test]
    fn result_independent_of_which_clone_processes() {
        // Two separate single-clone runs over permuted chunk orders produce
        // identical per-chunk outputs.
        let run = |order: Vec<ChunkMsg>| {
            let q_in: SmartQueue<ChunkMsg> = SmartQueue::new("chunks", 16);
            let q_out: SmartQueue<MergeMsg> = SmartQueue::new("merge", 16);
            let p = q_in.producer();
            let op = PartialKMeansOp::new(
                q_in.consumer(),
                q_out.producer(),
                KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 9) },
                0,
            );
            let c = q_out.consumer();
            q_in.seal();
            q_out.seal();
            for m in order {
                p.send(m).unwrap();
            }
            drop(p);
            op.run().unwrap();
            let mut out: Vec<(usize, pmkm_core::WeightedSet)> = std::iter::from_fn(|| c.recv())
                .map(|m| match m {
                    MergeMsg::Partial { chunk_id, output, .. } => (chunk_id, output.centroids),
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            out.sort_by_key(|(id, _)| *id);
            out
        };
        let a = run(vec![chunk(1, 0, 24), chunk(1, 1, 24)]);
        let b = run(vec![chunk(1, 1, 24), chunk(1, 0, 24)]);
        assert_eq!(a, b);
    }

    use crate::fault::{FaultContext, FaultPlan, FaultPolicy};

    /// Runs one clone over `msgs` with the given fault context.
    fn run_faulted(msgs: Vec<ChunkMsg>, faults: FaultContext) -> (Result<OpStats>, Vec<MergeMsg>) {
        let q_in: SmartQueue<ChunkMsg> = SmartQueue::new("chunks", 16);
        let q_out: SmartQueue<MergeMsg> = SmartQueue::new("merge", 16);
        let p = q_in.producer();
        let op = PartialKMeansOp::new(
            q_in.consumer(),
            q_out.producer(),
            KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 5) },
            0,
        )
        .with_faults(faults);
        let c = q_out.consumer();
        q_in.seal();
        q_out.seal();
        for m in msgs {
            p.send(m).unwrap();
        }
        drop(p);
        let stats = op.run();
        let out: Vec<MergeMsg> = std::iter::from_fn(|| c.recv()).collect();
        (stats, out)
    }

    fn poisoned_chunk() -> ChunkMsg {
        let points =
            Dataset::from_flat_unchecked(2, vec![0.0, 0.0, f64::NAN, 1.0, 2.0, 2.0]).unwrap();
        ChunkMsg { cell: GridCell::new(3, 0).unwrap(), chunk_id: 1, points }
    }

    #[test]
    fn poisoned_chunk_errors_under_strict_policy() {
        let ctx = FaultContext::new(Some(FaultPlan::none(1)), FaultPolicy::strict());
        let (stats, _) = run_faulted(vec![poisoned_chunk()], ctx);
        assert!(matches!(stats, Err(EngineError::PoisonedChunk { chunk_id: 1, .. })));
    }

    #[test]
    fn poisoned_chunk_is_quarantined_under_tolerant_policy() {
        let ctx = FaultContext::new(Some(FaultPlan::none(1)), FaultPolicy::tolerant());
        let (stats, out) = run_faulted(vec![chunk(1, 0, 30), poisoned_chunk()], ctx.clone());
        stats.unwrap();
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], MergeMsg::Partial { chunk_id: 0, .. }));
        assert!(
            matches!(out[1], MergeMsg::ChunkLost { chunk_id: 1, points: 3, .. }),
            "got {:?}",
            out[1]
        );
        let snap = ctx.counters.snapshot();
        assert_eq!(snap.chunks_poisoned, 1);
        assert_eq!(snap.chunks_quarantined, 1);
    }

    #[test]
    fn transient_panic_retries_to_the_fault_free_result() {
        let clean = run_faulted(vec![chunk(1, 0, 30)], FaultContext::default());
        // panic_rate 1 + sticky 0: every chunk panics on attempt 0 only.
        let plan = FaultPlan { panic_rate: 1.0, panic_sticky_fraction: 0.0, ..FaultPlan::none(9) };
        let ctx = FaultContext::new(Some(plan), FaultPolicy::tolerant());
        let (stats, out) = run_faulted(vec![chunk(1, 0, 30)], ctx.clone());
        stats.unwrap();
        // The retry re-derives the chunk seed, so the surviving result is
        // bit-identical to the fault-free run (`elapsed` is wall clock and
        // excluded from the comparison).
        let centroids = |msgs: &[MergeMsg]| {
            msgs.iter()
                .map(|m| match m {
                    MergeMsg::Partial { output, .. } => output.centroids.clone(),
                    other => panic!("unexpected {other:?}"),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(centroids(&out), centroids(&clean.1));
        let snap = ctx.counters.snapshot();
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.chunk_retries, 1);
        assert_eq!(snap.chunks_quarantined, 0);
    }

    #[test]
    fn sticky_panic_exhausts_attempts_and_quarantines() {
        let plan = FaultPlan { panic_rate: 1.0, panic_sticky_fraction: 1.0, ..FaultPlan::none(9) };
        let ctx = FaultContext::new(Some(plan), FaultPolicy::tolerant());
        let (stats, out) = run_faulted(vec![chunk(2, 4, 30)], ctx.clone());
        stats.unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], MergeMsg::ChunkLost { chunk_id: 4, points: 30, .. }));
        let snap = ctx.counters.snapshot();
        assert_eq!(snap.worker_panics, FaultPolicy::tolerant().max_chunk_attempts as u64);
        assert_eq!(snap.chunks_quarantined, 1);
    }

    #[test]
    fn sticky_panic_under_strict_policy_propagates() {
        let plan = FaultPlan { panic_rate: 1.0, panic_sticky_fraction: 1.0, ..FaultPlan::none(9) };
        let ctx = FaultContext::new(Some(plan), FaultPolicy::strict());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_faulted(vec![chunk(2, 4, 30)], ctx)
        }));
        let payload = caught.expect_err("strict policy must re-raise the panic");
        assert!(payload.downcast_ref::<crate::fault::InjectedPanic>().is_some());
    }
}
