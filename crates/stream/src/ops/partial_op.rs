//! The partial k-means operator — "by far the most expensive computation"
//! (§3.4) and therefore the operator the optimizer clones.
//!
//! Every clone consumes chunks from the shared chunk queue (MPMC work
//! stealing) and emits the chunk's weighted centroids. Per-chunk RNG seeds
//! derive from `(base seed, cell, chunk_id)`, so the clustering of a chunk
//! is identical no matter which clone processes it — cloning changes
//! wall-clock time, never results.

use crate::error::{EngineError, Result};
use crate::item::{ChunkMsg, MergeMsg};
use crate::queue::{QueueConsumer, QueueProducer};
use crate::telemetry::{OpMeter, OpStats};
use pmkm_core::partial::partial_kmeans_observed;
use pmkm_core::seeding::derive_seed;
use pmkm_core::KMeansConfig;
use pmkm_obs::Recorder;
use std::sync::Arc;

/// Stream tag for per-(cell, chunk) seeds.
const STREAM_CHUNK: u64 = 0x5354_4348_554E_4B00; // "STCHUNK"

/// The seed used to cluster `(cell, chunk_id)` under `base`. Public so the
/// in-memory pipeline and tests can reproduce engine results exactly.
pub fn chunk_seed(base: u64, cell_index: u32, chunk_id: usize) -> u64 {
    derive_seed(base, STREAM_CHUNK ^ ((cell_index as u64) << 20) ^ chunk_id as u64)
}

/// One clone of the partial k-means operator.
pub struct PartialKMeansOp {
    input: QueueConsumer<ChunkMsg>,
    out: QueueProducer<MergeMsg>,
    kmeans: KMeansConfig,
    clone_id: usize,
    recorder: Option<Arc<Recorder>>,
}

impl PartialKMeansOp {
    /// Creates one clone.
    pub fn new(
        input: QueueConsumer<ChunkMsg>,
        out: QueueProducer<MergeMsg>,
        kmeans: KMeansConfig,
        clone_id: usize,
    ) -> Self {
        Self { input, out, kmeans, clone_id, recorder: None }
    }

    /// Attaches an observability recorder (builder style).
    pub fn with_recorder(mut self, recorder: Option<Arc<Recorder>>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs until the chunk stream ends.
    pub fn run(self) -> Result<OpStats> {
        let mut meter = OpMeter::new("partial-kmeans", self.clone_id);
        let rec = self.recorder.as_deref();
        while let Some(ChunkMsg { cell, chunk_id, points }) = meter.wait(|| self.input.recv()) {
            meter.item_in();
            let cfg = KMeansConfig {
                seed: chunk_seed(self.kmeans.seed, cell.index(), chunk_id),
                ..self.kmeans
            };
            let output = {
                let _phase = rec.and_then(|r| r.phase("partial"));
                meter.work(|| partial_kmeans_observed(&points, &cfg, rec))?
            };
            meter.item_out();
            meter
                .wait(|| self.out.send(MergeMsg::Partial { cell, chunk_id, output }).map_err(drop))
                .map_err(|_| EngineError::Disconnected("partial→merge"))?;
        }
        let stats = meter.finish();
        if let Some(rec) = rec {
            rec.event(
                "op.finish",
                &[
                    ("op", "partial-kmeans".into()),
                    ("clone", stats.clone_id.into()),
                    ("items_in", stats.items_in.into()),
                ],
            );
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SmartQueue;
    use pmkm_core::Dataset;
    use pmkm_data::GridCell;

    fn chunk(cell_i: u16, chunk_id: usize, n: usize) -> ChunkMsg {
        let mut points = Dataset::new(2).unwrap();
        for i in 0..n {
            let o = (i % 4) as f64 * 0.1;
            points.push(&[o + if i % 2 == 0 { 0.0 } else { 20.0 }, o]).unwrap();
        }
        ChunkMsg { cell: GridCell::new(cell_i, 0).unwrap(), chunk_id, points }
    }

    #[test]
    fn clusters_each_chunk_and_forwards() {
        let q_in: SmartQueue<ChunkMsg> = SmartQueue::new("chunks", 16);
        let q_out: SmartQueue<MergeMsg> = SmartQueue::new("merge", 16);
        let p = q_in.producer();
        let op = PartialKMeansOp::new(
            q_in.consumer(),
            q_out.producer(),
            KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 5) },
            0,
        );
        let c = q_out.consumer();
        q_in.seal();
        q_out.seal();
        p.send(chunk(1, 0, 30)).unwrap();
        p.send(chunk(1, 1, 30)).unwrap();
        drop(p);
        let stats = op.run().unwrap();
        assert_eq!(stats.items_in, 2);
        assert_eq!(stats.items_out, 2);
        let results: Vec<MergeMsg> = std::iter::from_fn(|| c.recv()).collect();
        assert_eq!(results.len(), 2);
        for r in &results {
            match r {
                MergeMsg::Partial { output, .. } => {
                    assert_eq!(output.points, 30);
                    let total: f64 = output.centroids.weights().iter().sum();
                    assert_eq!(total, 30.0);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn chunk_seed_is_unique_per_cell_and_chunk() {
        let mut seen = std::collections::HashSet::new();
        for cell in 0..50u32 {
            for chunk in 0..50usize {
                assert!(seen.insert(chunk_seed(7, cell, chunk)));
            }
        }
    }

    #[test]
    fn result_independent_of_which_clone_processes() {
        // Two separate single-clone runs over permuted chunk orders produce
        // identical per-chunk outputs.
        let run = |order: Vec<ChunkMsg>| {
            let q_in: SmartQueue<ChunkMsg> = SmartQueue::new("chunks", 16);
            let q_out: SmartQueue<MergeMsg> = SmartQueue::new("merge", 16);
            let p = q_in.producer();
            let op = PartialKMeansOp::new(
                q_in.consumer(),
                q_out.producer(),
                KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 9) },
                0,
            );
            let c = q_out.consumer();
            q_in.seal();
            q_out.seal();
            for m in order {
                p.send(m).unwrap();
            }
            drop(p);
            op.run().unwrap();
            let mut out: Vec<(usize, pmkm_core::WeightedSet)> = std::iter::from_fn(|| c.recv())
                .map(|m| match m {
                    MergeMsg::Partial { chunk_id, output, .. } => (chunk_id, output.centroids),
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            out.sort_by_key(|(id, _)| *id);
            out
        };
        let a = run(vec![chunk(1, 0, 24), chunk(1, 1, 24)]);
        let b = run(vec![chunk(1, 1, 24), chunk(1, 0, 24)]);
        assert_eq!(a, b);
    }
}
