//! The coreset operator: a drop-in replacement for the merge operator
//! that folds each cell's per-chunk coresets into a binary-counter
//! merge-reduce tree ([`CoresetTree`]) instead of buffering them all.
//!
//! Live memory per cell is bounded by `levels × coreset_size`
//! representatives, so the operator can absorb unbounded streams. Chunks
//! are inserted in chunk-id order regardless of worker arrival order
//! (out-of-order partials are buffered in a contiguous-prefix drain), so
//! a replay with a different worker count is bit-identical. An anytime
//! query — weighted Lloyd over the union of live buckets — is published
//! to the plan's status probe on every tree level-up, and the *final*
//! clustering of a cell is exactly that same query over the finished
//! tree, which is what makes anytime and terminal results coincide.

use crate::error::{EngineError, Result};
use crate::fault::{record_fault, FaultContext};
use crate::item::{CellClustering, MergeMsg};
use crate::plan::CoresetSpec;
use crate::queue::{QueueConsumer, QueueProducer};
use crate::telemetry::{OpMeter, OpStats};
use pmkm_core::coreset::CoresetTree;
use pmkm_core::merge::MergeOutput;
use pmkm_core::partial::PartialOutput;
use pmkm_core::pipeline::ChunkStats;
use pmkm_core::KMeansConfig;
use pmkm_data::GridCell;
use pmkm_obs::{CoresetStatus, Recorder, WorkerState};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Per-cell tree plus the buffering needed to feed it in chunk order.
struct CellTreeState {
    tree: CoresetTree,
    /// Arrived but not yet inserted (waiting for earlier chunk ids).
    pending: BTreeMap<usize, PartialOutput>,
    /// Quarantined but not yet drained: `chunk_id → points lost`.
    pending_lost: BTreeMap<usize, usize>,
    /// Next chunk id the contiguous drain expects.
    next_chunk: usize,
    /// Chunks consumed so far (inserted + noted lost).
    drained: usize,
    expected: Option<usize>,
    expected_points: usize,
    lost_chunks: usize,
    chunk_stats: Vec<ChunkStats>,
    trajectories: Vec<Vec<f64>>,
}

impl CellTreeState {
    fn complete(&self) -> bool {
        self.expected == Some(self.drained)
            && self.pending.is_empty()
            && self.pending_lost.is_empty()
    }
}

/// The coreset operator.
pub struct CoresetOp {
    input: QueueConsumer<MergeMsg>,
    out: QueueProducer<CellClustering>,
    kmeans: KMeansConfig,
    merge_restarts: usize,
    spec: CoresetSpec,
    recorder: Option<Arc<Recorder>>,
    faults: FaultContext,
}

impl CoresetOp {
    /// Creates the operator.
    pub fn new(
        input: QueueConsumer<MergeMsg>,
        out: QueueProducer<CellClustering>,
        kmeans: KMeansConfig,
        merge_restarts: usize,
        spec: CoresetSpec,
    ) -> Self {
        Self {
            input,
            out,
            kmeans,
            merge_restarts,
            spec,
            recorder: None,
            faults: FaultContext::default(),
        }
    }

    /// Attaches an observability recorder (builder style).
    pub fn with_recorder(mut self, recorder: Option<Arc<Recorder>>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a fault plan/policy/counter bundle (builder style).
    pub fn with_faults(mut self, faults: FaultContext) -> Self {
        self.faults = faults;
        self
    }

    /// Runs until the partial stream ends, exactly like
    /// [`MergeKMeansOp::run`](crate::ops::MergeKMeansOp::run): strict
    /// policies error on any missing mass; degraded policies answer from
    /// whatever survived and report the loss.
    pub fn run(self) -> Result<OpStats> {
        let mut meter = OpMeter::new("coreset", 0);
        let mut cells: HashMap<GridCell, CellTreeState> = HashMap::new();
        while let Some(msg) = meter.wait(|| self.input.recv()) {
            meter.item_in();
            let cell = match msg {
                MergeMsg::Partial { cell, chunk_id, output } => {
                    let state = self.cell_state(&mut cells, cell)?;
                    if chunk_id < state.next_chunk
                        || state.pending_lost.contains_key(&chunk_id)
                        || state.pending.insert(chunk_id, output).is_some()
                    {
                        return Err(EngineError::InvalidPlan(format!(
                            "duplicate chunk {chunk_id} for cell {}",
                            cell.index()
                        )));
                    }
                    self.drain(&mut meter, cell, cells.get_mut(&cell).expect("inserted"))?;
                    cell
                }
                MergeMsg::CellPlan { cell, chunks, expected_points } => {
                    let state = self.cell_state(&mut cells, cell)?;
                    state.expected_points = expected_points;
                    if state.expected.replace(chunks).is_some() {
                        return Err(EngineError::InvalidPlan(format!(
                            "duplicate cell plan for cell {}",
                            cell.index()
                        )));
                    }
                    cell
                }
                MergeMsg::ChunkLost { cell, chunk_id, points } => {
                    let state = self.cell_state(&mut cells, cell)?;
                    if chunk_id < state.next_chunk
                        || state.pending.contains_key(&chunk_id)
                        || state.pending_lost.insert(chunk_id, points).is_some()
                    {
                        return Err(EngineError::InvalidPlan(format!(
                            "duplicate chunk {chunk_id} for cell {}",
                            cell.index()
                        )));
                    }
                    self.drain(&mut meter, cell, cells.get_mut(&cell).expect("inserted"))?;
                    cell
                }
            };
            if cells.get(&cell).is_some_and(CellTreeState::complete) {
                let state = cells.remove(&cell).expect("checked above");
                self.finish_cell(&mut meter, cell, state, false)?;
            }
        }
        if !cells.is_empty() {
            if !self.faults.policy.degraded_merge {
                let cell = cells.keys().next().expect("non-empty");
                return Err(EngineError::InvalidPlan(format!(
                    "stream ended with {} incomplete cell(s), e.g. cell {}",
                    cells.len(),
                    cell.index()
                )));
            }
            // Degraded path: the stream died mid-cell; answer from the
            // tree built so far plus whatever is still buffered.
            let mut rest: Vec<(GridCell, CellTreeState)> = cells.drain().collect();
            rest.sort_by_key(|(cell, _)| cell.index());
            for (cell, state) in rest {
                self.finish_cell(&mut meter, cell, state, true)?;
            }
        }
        Ok(meter.finish())
    }

    /// Looks up (or creates) the per-cell tree state.
    fn cell_state<'a>(
        &self,
        cells: &'a mut HashMap<GridCell, CellTreeState>,
        cell: GridCell,
    ) -> Result<&'a mut CellTreeState> {
        if let std::collections::hash_map::Entry::Vacant(slot) = cells.entry(cell) {
            let tree = CoresetTree::new(self.spec.config(), self.kmeans.seed, cell.index())?;
            slot.insert(CellTreeState {
                tree,
                pending: BTreeMap::new(),
                pending_lost: BTreeMap::new(),
                next_chunk: 0,
                drained: 0,
                expected: None,
                expected_points: 0,
                lost_chunks: 0,
                chunk_stats: Vec::new(),
                trajectories: Vec::new(),
            });
        }
        Ok(cells.get_mut(&cell).expect("inserted above"))
    }

    /// Feeds the contiguous prefix of buffered chunks into the tree, so
    /// insertion order — and therefore every compaction — is a pure
    /// function of the plan, not of worker scheduling.
    fn drain(&self, meter: &mut OpMeter, cell: GridCell, state: &mut CellTreeState) -> Result<()> {
        loop {
            if let Some(output) = state.pending.remove(&state.next_chunk) {
                let chunk_id = state.next_chunk;
                self.insert_one(meter, cell, state, chunk_id, output)?;
            } else if let Some(points) = state.pending_lost.remove(&state.next_chunk) {
                state.tree.note_lost(points as f64);
                state.lost_chunks += 1;
                state.drained += 1;
                state.next_chunk += 1;
            } else {
                return Ok(());
            }
        }
    }

    /// Inserts one chunk coreset, emits the compaction/eviction ledger
    /// events, and refreshes the anytime probe on tree level-ups.
    fn insert_one(
        &self,
        meter: &mut OpMeter,
        cell: GridCell,
        state: &mut CellTreeState,
        chunk_id: usize,
        output: PartialOutput,
    ) -> Result<()> {
        if let Some(rec) = self.recorder.as_deref() {
            rec.worker_state_cell(cell.index(), WorkerState::Compact);
        }
        let PartialOutput {
            centroids,
            points,
            best_mse,
            total_iterations,
            elapsed,
            best_trajectory,
            ..
        } = output;
        state.chunk_stats.push(ChunkStats {
            chunk: chunk_id,
            points,
            best_mse,
            total_iterations,
            elapsed,
        });
        state.trajectories.push(best_trajectory);
        let first_build = state.tree.stats().builds == 0;
        let before_level = state.tree.max_level();
        let outcome = meter.work(|| {
            state.tree.insert_chunk(chunk_id, centroids, points as f64).map_err(EngineError::from)
        })?;
        state.drained += 1;
        state.next_chunk = chunk_id + 1;
        if let Some(rec) = self.recorder.as_deref() {
            for ev in &outcome.evictions {
                rec.registry().counter("coreset_evictions_total").inc();
                rec.event(
                    "coreset.evict",
                    &[
                        ("cell", cell.index().into()),
                        ("level", u64::from(ev.level).into()),
                        ("size", ev.size.into()),
                        ("weight", ev.weight.into()),
                        ("points", ev.points.into()),
                    ],
                );
            }
            for cp in &outcome.compactions {
                rec.registry().counter("coreset_compactions_total").inc();
                rec.event(
                    "coreset.compact",
                    &[
                        ("cell", cell.index().into()),
                        ("level", u64::from(cp.level).into()),
                        ("size", cp.size.into()),
                        ("weight", cp.weight.into()),
                        ("consumed_weight", cp.consumed_weight.into()),
                        ("live_buckets", state.tree.live_buckets().into()),
                        ("live_weight", state.tree.live_weight().into()),
                    ],
                );
            }
        }
        // Refresh the probe's mid-stream clustering when the tree grows a
        // level (plus once on the very first chunk) — O(log chunks)
        // anytime queries per cell, each O(levels × size) input points.
        if self.spec.probe.is_some() && (first_build || state.tree.max_level() > before_level) {
            let out = self.run_query(meter, cell, &mut state.tree)?;
            self.publish_status(cell, &state.tree, &out);
        }
        Ok(())
    }

    /// Runs the anytime query (weighted Lloyd over the live-bucket union)
    /// and emits its `coreset.query` ledger event.
    fn run_query(
        &self,
        meter: &mut OpMeter,
        cell: GridCell,
        tree: &mut CoresetTree,
    ) -> Result<MergeOutput> {
        let out = meter.work(|| {
            // The anytime query is the coreset path's merge clustering;
            // profile it under the same phase as the classic merge so
            // phase breakdowns stay comparable across engine modes.
            let _phase = self.recorder.as_deref().and_then(|r| r.phase("merge"));
            tree.query(&self.kmeans, self.merge_restarts, self.recorder.as_deref())
                .map_err(EngineError::from)
        })?;
        if let Some(rec) = self.recorder.as_deref() {
            rec.registry().counter("coreset_queries_total").inc();
            rec.event(
                "coreset.query",
                &[
                    ("cell", cell.index().into()),
                    ("k", out.centroids.k().into()),
                    ("input_points", out.input_centroids.into()),
                    ("mse", out.mse.into()),
                    ("iterations", out.iterations.into()),
                    ("live_buckets", tree.live_buckets().into()),
                ],
            );
        }
        Ok(out)
    }

    /// Publishes a query result to the plan's live status probe, if any.
    fn publish_status(&self, cell: GridCell, tree: &CoresetTree, out: &MergeOutput) {
        let Some(probe) = self.spec.probe.as_ref() else { return };
        let stats = tree.stats();
        probe.publish_coreset(CoresetStatus {
            cell: cell.index(),
            levels: stats.levels,
            live_buckets: stats.live_buckets,
            live_weight: stats.live_weight,
            ingested_points: stats.ingested_points,
            lost_points: stats.lost_points,
            expired_points: stats.expired_points,
            compactions: stats.compactions,
            builds: stats.builds,
            queries: stats.queries,
            k: out.centroids.k(),
            mse: out.mse,
            iterations: out.iterations,
            query_points: out.input_centroids,
            centroids: out.centroids.iter().map(<[f64]>::to_vec).collect(),
        });
    }

    /// Answers a finished (or, at end of stream, abandoned) cell from its
    /// tree and emits the result. The final clustering *is* the anytime
    /// query over the finished tree — there is no separate terminal merge,
    /// which is what makes `query_now()` after the last chunk bit-identical
    /// to the emitted result.
    fn finish_cell(
        &self,
        meter: &mut OpMeter,
        cell: GridCell,
        mut state: CellTreeState,
        incomplete: bool,
    ) -> Result<()> {
        // An abandoned cell may hold buffered chunks beyond a gap the
        // drain never crossed; fold them in ascending order so the
        // degraded answer still uses every surviving chunk.
        let leftovers: Vec<(usize, PartialOutput)> =
            std::mem::take(&mut state.pending).into_iter().collect();
        for (chunk_id, output) in leftovers {
            self.insert_one(meter, cell, &mut state, chunk_id, output)?;
        }
        for (_, points) in std::mem::take(&mut state.pending_lost) {
            state.tree.note_lost(points as f64);
            state.lost_chunks += 1;
        }
        let stats = state.tree.stats();
        let expected = if state.expected.is_some() {
            state.expected_points as f64
        } else {
            // The plan never arrived: the best lower bound on the cell's
            // mass is what actually reached the tree.
            stats.ingested_points + stats.lost_points
        };
        let lost = (expected - stats.ingested_points).max(0.0);
        // Silent shortfall (e.g. a truncated chunk that was never
        // quarantined) must still debit the tree's audit so its stats
        // balance: ingested + lost == expected.
        let shortfall = lost - stats.lost_points;
        if shortfall > 0.0 {
            state.tree.note_lost(shortfall);
        }
        let degraded = incomplete || state.lost_chunks > 0 || lost > 0.0;
        if degraded && self.faults.strict_mass_check() {
            return Err(EngineError::InvalidPlan(format!(
                "cell {} lost {} of {} expected points under a strict policy",
                cell.index(),
                lost,
                expected
            )));
        }
        if stats.builds == 0 {
            if degraded {
                // Every chunk of the cell was lost: nothing to answer,
                // but the loss must not be silent.
                self.note_degraded(cell, expected);
                self.note_cell_close(
                    cell,
                    0,
                    expected,
                    expected,
                    state.lost_chunks.max(1),
                    true,
                    0.0,
                    0.0,
                );
            }
            return Ok(()); // empty bucket (or total loss): nothing to emit
        }
        if let Some(rec) = self.recorder.as_deref() {
            rec.worker_state_cell(cell.index(), WorkerState::Merge);
        }
        let output = self.run_query(meter, cell, &mut state.tree)?;
        self.publish_status(cell, &state.tree, &output);
        if degraded {
            self.note_degraded(cell, lost);
        }
        if let Some(rec) = self.recorder.as_deref() {
            rec.registry().counter("coreset_cells_total").inc();
        }
        self.note_cell_close(
            cell,
            state.chunk_stats.len(),
            expected,
            lost,
            state.lost_chunks,
            degraded,
            output.mse,
            output.epm,
        );
        let result = CellClustering {
            cell,
            output,
            chunks: state.chunk_stats,
            trajectories: state.trajectories,
            expected_points: expected,
            lost_points: lost,
            lost_chunks: state.lost_chunks,
            degraded,
            coreset: Some(state.tree.stats()),
        };
        meter.item_out();
        meter
            .wait(|| self.out.send(result).map_err(drop))
            .map_err(|_| EngineError::Disconnected("coreset→results"))
    }

    fn note_degraded(&self, cell: GridCell, lost_points: f64) {
        self.faults.counters.cells_degraded.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.recorder.as_deref() {
            rec.registry().counter("fault_cells_degraded_total").inc();
            rec.event(
                "coreset.degraded",
                &[("cell", cell.index().into()), ("lost_points", lost_points.into())],
            );
        }
        record_fault(
            self.recorder.as_deref(),
            "cell_degraded",
            &[("cell", cell.index().into()), ("lost_points", lost_points.into())],
        );
    }

    /// Emits the `cell.close` ledger event and rolls the cell's mass into
    /// the same `mass_weight_expected` / `mass_weight_received` gauges the
    /// merge path maintains, so mass audits are mode-independent: a lost
    /// chunk debits the tree's audit exactly like a lost chunk debits a
    /// merge.
    #[allow(clippy::too_many_arguments)] // mirrors the cell.close event fields
    fn note_cell_close(
        &self,
        cell: GridCell,
        chunks: usize,
        expected_points: f64,
        lost_points: f64,
        lost_chunks: usize,
        degraded: bool,
        mse: f64,
        epm: f64,
    ) {
        let Some(rec) = self.recorder.as_deref() else { return };
        rec.event(
            "cell.close",
            &[
                ("cell", cell.index().into()),
                ("chunks", chunks.into()),
                ("expected_points", expected_points.into()),
                ("lost_points", lost_points.into()),
                ("lost_chunks", lost_chunks.into()),
                ("degraded", degraded.into()),
                ("mse", mse.into()),
                ("epm", epm.into()),
            ],
        );
        let expected = rec.registry().gauge("mass_weight_expected");
        let received = rec.registry().gauge("mass_weight_received");
        expected.add(expected_points);
        received.add(expected_points - lost_points);
        let total = expected.get();
        if total > 0.0 {
            rec.registry().gauge("mass_conservation_ratio").set(received.get() / total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultContext, FaultPolicy};
    use crate::queue::SmartQueue;
    use pmkm_core::partial::partial_kmeans;
    use pmkm_core::Dataset;
    use pmkm_obs::StatusCell;

    fn cell(i: u16) -> GridCell {
        GridCell::new(i, 0).unwrap()
    }

    fn partial(n: usize, offset: f64) -> PartialOutput {
        let mut ds = Dataset::new(1).unwrap();
        for i in 0..n {
            ds.push(&[offset + (i % 3) as f64 * 0.1]).unwrap();
        }
        partial_kmeans(&ds, &KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 3) }).unwrap()
    }

    fn run_with(
        msgs: Vec<MergeMsg>,
        spec: CoresetSpec,
        faults: FaultContext,
    ) -> Result<Vec<CellClustering>> {
        let q_in: SmartQueue<MergeMsg> = SmartQueue::new("coreset", 64);
        let q_out: SmartQueue<CellClustering> = SmartQueue::new("results", 64);
        let p = q_in.producer();
        let op = CoresetOp::new(
            q_in.consumer(),
            q_out.producer(),
            KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 3) },
            1,
            spec,
        )
        .with_faults(faults);
        let c = q_out.consumer();
        q_in.seal();
        q_out.seal();
        for m in msgs {
            p.send(m).unwrap();
        }
        drop(p);
        op.run()?;
        Ok(std::iter::from_fn(|| c.recv()).collect())
    }

    fn run_coreset(msgs: Vec<MergeMsg>) -> Result<Vec<CellClustering>> {
        run_with(msgs, CoresetSpec::new(16), FaultContext::default())
    }

    fn tolerant() -> FaultContext {
        FaultContext::new(None, FaultPolicy::tolerant())
    }

    #[test]
    fn completes_cell_and_conserves_mass() {
        let c0 = cell(1);
        let out = run_coreset(vec![
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(10, 0.0) },
            MergeMsg::Partial { cell: c0, chunk_id: 1, output: partial(10, 50.0) },
            MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 20 },
        ])
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cell, c0);
        assert_eq!(out[0].chunks.len(), 2);
        let total: f64 = out[0].output.cluster_weights.iter().sum();
        assert_eq!(total, 20.0);
        assert!(!out[0].degraded);
        let stats = out[0].coreset.expect("coreset stats");
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.live_buckets, 1); // 2 chunks → one level-1 bucket
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.ingested_points, 20.0);
    }

    #[test]
    fn arrival_order_does_not_change_result() {
        let c0 = cell(2);
        let msgs = |flip: bool| {
            let a = MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(12, 0.0) };
            let b = MergeMsg::Partial { cell: c0, chunk_id: 1, output: partial(12, 9.0) };
            let plan = MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 24 };
            if flip {
                vec![b, plan, a]
            } else {
                vec![a, b, plan]
            }
        };
        let x = run_coreset(msgs(false)).unwrap();
        let y = run_coreset(msgs(true)).unwrap();
        assert_eq!(x[0].output.centroids, y[0].output.centroids);
        assert_eq!(x[0].output.mse, y[0].output.mse);
        assert_eq!(x[0].coreset, y[0].coreset);
    }

    #[test]
    fn lost_chunk_debits_tree_audit_as_degraded() {
        let c0 = cell(3);
        let ctx = tolerant();
        let out = run_with(
            vec![
                MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(10, 0.0) },
                MergeMsg::ChunkLost { cell: c0, chunk_id: 1, points: 10 },
                MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 20 },
            ],
            CoresetSpec::new(16),
            ctx.clone(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].degraded);
        assert_eq!(out[0].expected_points, 20.0);
        assert_eq!(out[0].lost_points, 10.0);
        assert_eq!(out[0].lost_chunks, 1);
        let stats = out[0].coreset.expect("coreset stats");
        assert_eq!(stats.ingested_points, 10.0);
        assert_eq!(stats.lost_points, 10.0);
        assert_eq!(ctx.counters.snapshot().cells_degraded, 1);
    }

    #[test]
    fn lost_chunk_under_strict_policy_is_an_error() {
        let c0 = cell(4);
        let err = run_coreset(vec![
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(10, 0.0) },
            MergeMsg::ChunkLost { cell: c0, chunk_id: 1, points: 10 },
            MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 20 },
        ]);
        assert!(matches!(err, Err(EngineError::InvalidPlan(_))));
    }

    #[test]
    fn incomplete_cell_is_an_error_under_strict_policy() {
        let err = run_coreset(vec![MergeMsg::Partial {
            cell: cell(5),
            chunk_id: 0,
            output: partial(5, 0.0),
        }]);
        assert!(matches!(err, Err(EngineError::InvalidPlan(_))));
    }

    #[test]
    fn incomplete_cell_answers_degraded_under_tolerant_policy() {
        let c0 = cell(6);
        let ctx = tolerant();
        let out = run_with(
            vec![
                MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 20 },
                MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(10, 0.0) },
            ],
            CoresetSpec::new(16),
            ctx.clone(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].degraded);
        assert_eq!(out[0].lost_points, 10.0);
        assert_eq!(ctx.counters.snapshot().cells_degraded, 1);
    }

    #[test]
    fn duplicate_chunk_is_an_error() {
        let c0 = cell(7);
        let err = run_coreset(vec![
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(5, 0.0) },
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(5, 0.0) },
            MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 10 },
        ]);
        assert!(matches!(err, Err(EngineError::InvalidPlan(_))));
    }

    #[test]
    fn fully_lost_cell_emits_nothing_but_counts_degraded() {
        let c0 = cell(8);
        let ctx = tolerant();
        let out = run_with(
            vec![
                MergeMsg::ChunkLost { cell: c0, chunk_id: 0, points: 10 },
                MergeMsg::CellPlan { cell: c0, chunks: 1, expected_points: 10 },
            ],
            CoresetSpec::new(16),
            ctx.clone(),
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(ctx.counters.snapshot().cells_degraded, 1);
    }

    #[test]
    fn many_chunks_keep_live_buckets_logarithmic() {
        let c0 = cell(9);
        let chunks = 32;
        let mut msgs: Vec<MergeMsg> = (0..chunks)
            .map(|i| MergeMsg::Partial { cell: c0, chunk_id: i, output: partial(6, i as f64) })
            .collect();
        msgs.push(MergeMsg::CellPlan { cell: c0, chunks, expected_points: chunks * 6 });
        let out = run_coreset(msgs).unwrap();
        let stats = out[0].coreset.expect("coreset stats");
        assert_eq!(stats.builds, chunks as u64);
        // 32 = 2^5 chunks collapse into a single level-5 bucket.
        assert_eq!(stats.live_buckets, 1);
        assert_eq!(stats.levels, 6);
        assert_eq!(stats.ingested_points, (chunks * 6) as f64);
        let total: f64 = out[0].output.cluster_weights.iter().sum();
        assert!((total - (chunks * 6) as f64).abs() < 1e-6);
    }

    #[test]
    fn probe_receives_anytime_clustering() {
        let c0 = cell(10);
        let probe = Arc::new(StatusCell::new());
        let mut spec = CoresetSpec::new(16);
        spec.probe = Some(probe.clone());
        let mut msgs: Vec<MergeMsg> = (0..4)
            .map(|i| MergeMsg::Partial { cell: c0, chunk_id: i, output: partial(8, i as f64) })
            .collect();
        msgs.push(MergeMsg::CellPlan { cell: c0, chunks: 4, expected_points: 32 });
        let out = run_with(msgs, spec, FaultContext::default()).unwrap();
        assert_eq!(out.len(), 1);
        let status = probe.coreset().expect("published status");
        assert_eq!(status.cell, c0.index());
        assert_eq!(status.builds, 4);
        assert_eq!(status.k, out[0].output.centroids.k());
        assert_eq!(status.centroids.len(), status.k);
        // The last publish is the terminal query over the finished tree —
        // bit-identical to the emitted clustering.
        let flat: Vec<f64> = status.centroids.iter().flatten().copied().collect();
        assert_eq!(flat, out[0].output.centroids.as_flat().to_vec());
        assert_eq!(status.mse, out[0].output.mse);
    }

    #[test]
    fn probe_queries_do_not_change_the_final_clustering() {
        let c0 = cell(11);
        let mut msgs: Vec<MergeMsg> = (0..8)
            .map(|i| MergeMsg::Partial { cell: c0, chunk_id: i, output: partial(5, i as f64) })
            .collect();
        msgs.push(MergeMsg::CellPlan { cell: c0, chunks: 8, expected_points: 40 });
        let plain = run_coreset(msgs.clone()).unwrap();
        let mut spec = CoresetSpec::new(16);
        spec.probe = Some(Arc::new(StatusCell::new()));
        let probed = run_with(msgs, spec, FaultContext::default()).unwrap();
        assert_eq!(plain[0].output.centroids, probed[0].output.centroids);
        assert_eq!(plain[0].output.mse, probed[0].output.mse);
    }
}
