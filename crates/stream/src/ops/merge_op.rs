//! The merge k-means operator: per-cell consumer of the partial results.
//!
//! Tracks, per cell, the partial outputs received so far and the expected
//! chunk count announced by the chunker's [`MergeMsg::CellPlan`]; once a
//! cell is complete its weighted centroid sets are merged (in chunk-id
//! order, so results are independent of arrival order) and the final
//! clustering is emitted downstream.

use crate::error::{EngineError, Result};
use crate::fault::{record_fault, FaultContext};
use crate::item::{CellClustering, MergeMsg};
use crate::queue::{QueueConsumer, QueueProducer};
use crate::telemetry::{OpMeter, OpStats};
use pmkm_core::merge::merge_degraded_observed;
use pmkm_core::partial::PartialOutput;
use pmkm_core::pipeline::ChunkStats;
use pmkm_core::{KMeansConfig, MergeMode, WeightedSet};
use pmkm_data::GridCell;
use pmkm_obs::{Recorder, WorkerState};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;

#[derive(Default)]
struct CellProgress {
    partials: BTreeMap<usize, PartialOutput>,
    /// Quarantined chunks: `chunk_id → points lost`.
    lost: BTreeMap<usize, usize>,
    expected: Option<usize>,
    /// Points the bucket header promised (known once the plan arrives).
    expected_points: usize,
}

impl CellProgress {
    fn complete(&self) -> bool {
        self.expected == Some(self.partials.len() + self.lost.len())
    }
}

/// The merge operator.
pub struct MergeKMeansOp {
    input: QueueConsumer<MergeMsg>,
    out: QueueProducer<CellClustering>,
    kmeans: KMeansConfig,
    mode: MergeMode,
    merge_restarts: usize,
    recorder: Option<Arc<Recorder>>,
    faults: FaultContext,
}

impl MergeKMeansOp {
    /// Creates the operator.
    pub fn new(
        input: QueueConsumer<MergeMsg>,
        out: QueueProducer<CellClustering>,
        kmeans: KMeansConfig,
        mode: MergeMode,
        merge_restarts: usize,
    ) -> Self {
        Self {
            input,
            out,
            kmeans,
            mode,
            merge_restarts,
            recorder: None,
            faults: FaultContext::default(),
        }
    }

    /// Attaches an observability recorder (builder style).
    pub fn with_recorder(mut self, recorder: Option<Arc<Recorder>>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a fault plan/policy/counter bundle (builder style).
    pub fn with_faults(mut self, faults: FaultContext) -> Self {
        self.faults = faults;
        self
    }

    /// Runs until the partial stream ends. Under the strict policy any
    /// incomplete cell or missing mass is an error (lost messages — a
    /// broken pipeline); under a degraded-merge policy, surviving chunks
    /// are merged anyway and the lost mass is reported.
    pub fn run(self) -> Result<OpStats> {
        let mut meter = OpMeter::new("merge", 0);
        let mut cells: HashMap<GridCell, CellProgress> = HashMap::new();
        while let Some(msg) = meter.wait(|| self.input.recv()) {
            meter.item_in();
            let cell = match msg {
                MergeMsg::Partial { cell, chunk_id, output } => {
                    let progress = cells.entry(cell).or_default();
                    if progress.lost.contains_key(&chunk_id)
                        || progress.partials.insert(chunk_id, output).is_some()
                    {
                        return Err(EngineError::InvalidPlan(format!(
                            "duplicate chunk {chunk_id} for cell {}",
                            cell.index()
                        )));
                    }
                    cell
                }
                MergeMsg::CellPlan { cell, chunks, expected_points } => {
                    let progress = cells.entry(cell).or_default();
                    progress.expected_points = expected_points;
                    if progress.expected.replace(chunks).is_some() {
                        return Err(EngineError::InvalidPlan(format!(
                            "duplicate cell plan for cell {}",
                            cell.index()
                        )));
                    }
                    cell
                }
                MergeMsg::ChunkLost { cell, chunk_id, points } => {
                    let progress = cells.entry(cell).or_default();
                    if progress.partials.contains_key(&chunk_id)
                        || progress.lost.insert(chunk_id, points).is_some()
                    {
                        return Err(EngineError::InvalidPlan(format!(
                            "duplicate chunk {chunk_id} for cell {}",
                            cell.index()
                        )));
                    }
                    cell
                }
            };
            if cells.get(&cell).is_some_and(CellProgress::complete) {
                let progress = cells.remove(&cell).expect("checked above");
                self.finish_cell(&mut meter, cell, progress, false)?;
            }
        }
        if !cells.is_empty() {
            if !self.faults.policy.degraded_merge {
                let cell = cells.keys().next().expect("non-empty");
                return Err(EngineError::InvalidPlan(format!(
                    "stream ended with {} incomplete cell(s), e.g. cell {}",
                    cells.len(),
                    cell.index()
                )));
            }
            // Degraded path: the stream died mid-cell; merge what survived.
            let mut rest: Vec<(GridCell, CellProgress)> = cells.drain().collect();
            rest.sort_by_key(|(cell, _)| cell.index());
            for (cell, progress) in rest {
                self.finish_cell(&mut meter, cell, progress, true)?;
            }
        }
        Ok(meter.finish())
    }

    /// Merges a finished (or, at end of stream, abandoned) cell and emits
    /// the result. `incomplete` forces the degraded flag: a cell whose plan
    /// never closed has unknown loss, which is still loss.
    fn finish_cell(
        &self,
        meter: &mut OpMeter,
        cell: GridCell,
        progress: CellProgress,
        incomplete: bool,
    ) -> Result<()> {
        let degraded_cell = incomplete || !progress.lost.is_empty();
        if degraded_cell && self.faults.strict_mass_check() {
            // Strict runs promise exact mass conservation; a lost chunk
            // reaching the merge means the pipeline dropped points.
            return Err(EngineError::InvalidPlan(format!(
                "cell {} lost {} chunk(s) under a strict policy",
                cell.index(),
                progress.lost.len().max(1)
            )));
        }
        if progress.partials.is_empty() {
            if degraded_cell {
                // Every chunk of the cell was lost: nothing to merge, but
                // the loss must not be silent.
                self.note_degraded(cell, progress.expected_points as f64);
                self.note_cell_close(
                    cell,
                    0,
                    progress.expected_points as f64,
                    progress.expected_points as f64,
                    progress.lost.len(),
                    true,
                    0.0,
                    0.0,
                );
            }
            return Ok(()); // empty bucket (or total loss): nothing to emit
        }
        if let Some(rec) = self.recorder.as_deref() {
            rec.worker_state_cell(cell.index(), WorkerState::Merge);
        }
        let mut result = meter.work(|| self.merge_cell(cell, progress))?;
        if incomplete {
            result.degraded = true;
        }
        if result.degraded {
            if self.faults.strict_mass_check() {
                return Err(EngineError::InvalidPlan(format!(
                    "cell {} lost {} of {} expected points under a strict policy",
                    cell.index(),
                    result.lost_points,
                    result.expected_points
                )));
            }
            self.note_degraded(cell, result.lost_points);
        }
        if let Some(rec) = self.recorder.as_deref() {
            rec.registry().counter("merge_cells_total").inc();
            rec.event(
                "merge.done",
                &[
                    ("cell", cell.index().into()),
                    ("input_centroids", result.output.input_centroids.into()),
                    ("epm", result.output.epm.into()),
                    ("mse", result.output.mse.into()),
                    ("iterations", result.output.iterations.into()),
                    ("converged", result.output.converged.into()),
                ],
            );
        }
        self.note_cell_close(
            cell,
            result.chunks.len(),
            result.expected_points,
            result.lost_points,
            result.lost_chunks,
            result.degraded,
            result.output.mse,
            result.output.epm,
        );
        meter.item_out();
        meter
            .wait(|| self.out.send(result).map_err(drop))
            .map_err(|_| EngineError::Disconnected("merge→results"))
    }

    fn note_degraded(&self, cell: GridCell, lost_points: f64) {
        self.faults.counters.cells_degraded.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.recorder.as_deref() {
            rec.registry().counter("fault_cells_degraded_total").inc();
            rec.event(
                "merge.degraded",
                &[("cell", cell.index().into()), ("lost_points", lost_points.into())],
            );
        }
        record_fault(
            self.recorder.as_deref(),
            "cell_degraded",
            &[("cell", cell.index().into()), ("lost_points", lost_points.into())],
        );
    }

    /// Emits the `cell.close` ledger event and rolls the cell's mass into
    /// the `mass_weight_expected` / `mass_weight_received` gauges (and the
    /// derived `mass_conservation_ratio`), so `/metrics` exposes
    /// `Σw_received / Σw_expected` live and a ledger rollup reproduces the
    /// run's mass accounting.
    #[allow(clippy::too_many_arguments)] // mirrors the cell.close event fields
    fn note_cell_close(
        &self,
        cell: GridCell,
        chunks: usize,
        expected_points: f64,
        lost_points: f64,
        lost_chunks: usize,
        degraded: bool,
        mse: f64,
        epm: f64,
    ) {
        let Some(rec) = self.recorder.as_deref() else { return };
        rec.event(
            "cell.close",
            &[
                ("cell", cell.index().into()),
                ("chunks", chunks.into()),
                ("expected_points", expected_points.into()),
                ("lost_points", lost_points.into()),
                ("lost_chunks", lost_chunks.into()),
                ("degraded", degraded.into()),
                ("mse", mse.into()),
                ("epm", epm.into()),
            ],
        );
        let expected = rec.registry().gauge("mass_weight_expected");
        let received = rec.registry().gauge("mass_weight_received");
        expected.add(expected_points);
        received.add(expected_points - lost_points);
        let total = expected.get();
        if total > 0.0 {
            rec.registry().gauge("mass_conservation_ratio").set(received.get() / total);
        }
    }

    fn merge_cell(&self, cell: GridCell, progress: CellProgress) -> Result<CellClustering> {
        let sets: Vec<WeightedSet> =
            progress.partials.values().map(|p| p.centroids.clone()).collect();
        let degraded = merge_degraded_observed(
            &sets,
            &self.kmeans,
            self.mode,
            self.merge_restarts,
            progress.expected_points as f64,
            self.recorder.as_deref(),
        )?;
        let mut chunks = Vec::with_capacity(progress.partials.len());
        let mut trajectories = Vec::with_capacity(progress.partials.len());
        for (chunk_id, p) in progress.partials {
            chunks.push(ChunkStats {
                chunk: chunk_id,
                points: p.points,
                best_mse: p.best_mse,
                total_iterations: p.total_iterations,
                elapsed: p.elapsed,
            });
            trajectories.push(p.best_trajectory);
        }
        Ok(CellClustering {
            cell,
            output: degraded.output,
            chunks,
            trajectories,
            expected_points: degraded.expected_weight,
            lost_points: degraded.lost_weight,
            lost_chunks: progress.lost.len(),
            degraded: degraded.degraded,
            coreset: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SmartQueue;
    use pmkm_core::partial::partial_kmeans;
    use pmkm_core::Dataset;

    fn cell(i: u16) -> GridCell {
        GridCell::new(i, 0).unwrap()
    }

    fn partial(n: usize, offset: f64) -> PartialOutput {
        let mut ds = Dataset::new(1).unwrap();
        for i in 0..n {
            ds.push(&[offset + (i % 3) as f64 * 0.1]).unwrap();
        }
        partial_kmeans(&ds, &KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 3) }).unwrap()
    }

    fn run_merge_with(msgs: Vec<MergeMsg>, faults: FaultContext) -> Result<Vec<CellClustering>> {
        let q_in: SmartQueue<MergeMsg> = SmartQueue::new("merge", 64);
        let q_out: SmartQueue<CellClustering> = SmartQueue::new("results", 64);
        let p = q_in.producer();
        let op = MergeKMeansOp::new(
            q_in.consumer(),
            q_out.producer(),
            KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 3) },
            MergeMode::Collective,
            1,
        )
        .with_faults(faults);
        let c = q_out.consumer();
        q_in.seal();
        q_out.seal();
        for m in msgs {
            p.send(m).unwrap();
        }
        drop(p);
        op.run()?;
        Ok(std::iter::from_fn(|| c.recv()).collect())
    }

    fn run_merge(msgs: Vec<MergeMsg>) -> Result<Vec<CellClustering>> {
        run_merge_with(msgs, FaultContext::default())
    }

    #[test]
    fn merges_when_all_chunks_arrive() {
        let c0 = cell(1);
        let out = run_merge(vec![
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(10, 0.0) },
            MergeMsg::Partial { cell: c0, chunk_id: 1, output: partial(10, 50.0) },
            MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 20 },
        ])
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cell, c0);
        assert_eq!(out[0].chunks.len(), 2);
        let total: f64 = out[0].output.cluster_weights.iter().sum();
        assert_eq!(total, 20.0);
        assert!(!out[0].degraded);
        assert_eq!(out[0].expected_points, 20.0);
        assert_eq!(out[0].lost_points, 0.0);
        assert_eq!(out[0].lost_chunks, 0);
    }

    #[test]
    fn plan_before_partials_also_completes() {
        let c0 = cell(2);
        let out = run_merge(vec![
            MergeMsg::CellPlan { cell: c0, chunks: 1, expected_points: 8 },
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(8, 0.0) },
        ])
        .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn arrival_order_does_not_change_result() {
        let c0 = cell(3);
        let msgs = |flip: bool| {
            let a = MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(12, 0.0) };
            let b = MergeMsg::Partial { cell: c0, chunk_id: 1, output: partial(12, 9.0) };
            let plan = MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 24 };
            if flip {
                vec![b, plan, a]
            } else {
                vec![a, b, plan]
            }
        };
        let x = run_merge(msgs(false)).unwrap();
        let y = run_merge(msgs(true)).unwrap();
        assert_eq!(x[0].output.centroids, y[0].output.centroids);
        assert_eq!(x[0].output.epm, y[0].output.epm);
    }

    #[test]
    fn interleaved_cells_emit_separately() {
        let (a, b) = (cell(4), cell(5));
        let out = run_merge(vec![
            MergeMsg::Partial { cell: a, chunk_id: 0, output: partial(6, 0.0) },
            MergeMsg::Partial { cell: b, chunk_id: 0, output: partial(7, 1.0) },
            MergeMsg::CellPlan { cell: b, chunks: 1, expected_points: 7 },
            MergeMsg::CellPlan { cell: a, chunks: 1, expected_points: 6 },
        ])
        .unwrap();
        assert_eq!(out.len(), 2);
        let cells: std::collections::HashSet<GridCell> = out.iter().map(|r| r.cell).collect();
        assert!(cells.contains(&a) && cells.contains(&b));
    }

    #[test]
    fn empty_cell_plan_emits_nothing() {
        let out =
            run_merge(vec![MergeMsg::CellPlan { cell: cell(6), chunks: 0, expected_points: 0 }])
                .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn incomplete_cell_is_an_error() {
        let err = run_merge(vec![MergeMsg::Partial {
            cell: cell(7),
            chunk_id: 0,
            output: partial(5, 0.0),
        }]);
        assert!(matches!(err, Err(EngineError::InvalidPlan(_))));
    }

    #[test]
    fn duplicate_chunk_is_an_error() {
        let c0 = cell(8);
        let err = run_merge(vec![
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(5, 0.0) },
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(5, 0.0) },
            MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 10 },
        ]);
        assert!(matches!(err, Err(EngineError::InvalidPlan(_))));
    }

    use crate::fault::{FaultContext, FaultPolicy};

    fn tolerant() -> FaultContext {
        FaultContext::new(None, FaultPolicy::tolerant())
    }

    #[test]
    fn lost_chunk_completes_cell_as_degraded() {
        let c0 = cell(9);
        let ctx = tolerant();
        let out = run_merge_with(
            vec![
                MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(10, 0.0) },
                MergeMsg::ChunkLost { cell: c0, chunk_id: 1, points: 10 },
                MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 20 },
            ],
            ctx.clone(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].degraded);
        assert_eq!(out[0].expected_points, 20.0);
        assert_eq!(out[0].lost_points, 10.0);
        assert_eq!(out[0].lost_chunks, 1);
        assert_eq!(out[0].chunks.len(), 1);
        assert_eq!(ctx.counters.snapshot().cells_degraded, 1);
    }

    #[test]
    fn lost_chunk_under_strict_policy_is_an_error() {
        let c0 = cell(10);
        let err = run_merge(vec![
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(10, 0.0) },
            MergeMsg::ChunkLost { cell: c0, chunk_id: 1, points: 10 },
            MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 20 },
        ]);
        assert!(matches!(err, Err(EngineError::InvalidPlan(_))));
    }

    #[test]
    fn fully_lost_cell_emits_nothing_but_counts_degraded() {
        let c0 = cell(11);
        let ctx = tolerant();
        let out = run_merge_with(
            vec![
                MergeMsg::ChunkLost { cell: c0, chunk_id: 0, points: 10 },
                MergeMsg::CellPlan { cell: c0, chunks: 1, expected_points: 10 },
            ],
            ctx.clone(),
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(ctx.counters.snapshot().cells_degraded, 1);
    }

    #[test]
    fn incomplete_cell_merges_degraded_under_tolerant_policy() {
        let c0 = cell(12);
        let ctx = tolerant();
        // Plan says 2 chunks but the second never arrives — a dead worker.
        let out = run_merge_with(
            vec![
                MergeMsg::CellPlan { cell: c0, chunks: 2, expected_points: 20 },
                MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(10, 0.0) },
            ],
            ctx.clone(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].degraded);
        assert_eq!(out[0].lost_points, 10.0);
        assert_eq!(ctx.counters.snapshot().cells_degraded, 1);
    }

    #[test]
    fn duplicate_between_lost_and_partial_is_an_error() {
        let c0 = cell(13);
        let err = run_merge_with(
            vec![
                MergeMsg::ChunkLost { cell: c0, chunk_id: 0, points: 5 },
                MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(5, 0.0) },
                MergeMsg::CellPlan { cell: c0, chunks: 1, expected_points: 5 },
            ],
            tolerant(),
        );
        assert!(matches!(err, Err(EngineError::InvalidPlan(_))));
    }
}
