//! The merge k-means operator: per-cell consumer of the partial results.
//!
//! Tracks, per cell, the partial outputs received so far and the expected
//! chunk count announced by the chunker's [`MergeMsg::CellPlan`]; once a
//! cell is complete its weighted centroid sets are merged (in chunk-id
//! order, so results are independent of arrival order) and the final
//! clustering is emitted downstream.

use crate::error::{EngineError, Result};
use crate::item::{CellClustering, MergeMsg};
use crate::queue::{QueueConsumer, QueueProducer};
use crate::telemetry::{OpMeter, OpStats};
use pmkm_core::merge::merge_observed;
use pmkm_core::partial::PartialOutput;
use pmkm_core::pipeline::ChunkStats;
use pmkm_core::{KMeansConfig, MergeMode, WeightedSet};
use pmkm_data::GridCell;
use pmkm_obs::Recorder;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

#[derive(Default)]
struct CellProgress {
    partials: BTreeMap<usize, PartialOutput>,
    expected: Option<usize>,
}

impl CellProgress {
    fn complete(&self) -> bool {
        self.expected == Some(self.partials.len())
    }
}

/// The merge operator.
pub struct MergeKMeansOp {
    input: QueueConsumer<MergeMsg>,
    out: QueueProducer<CellClustering>,
    kmeans: KMeansConfig,
    mode: MergeMode,
    merge_restarts: usize,
    recorder: Option<Arc<Recorder>>,
}

impl MergeKMeansOp {
    /// Creates the operator.
    pub fn new(
        input: QueueConsumer<MergeMsg>,
        out: QueueProducer<CellClustering>,
        kmeans: KMeansConfig,
        mode: MergeMode,
        merge_restarts: usize,
    ) -> Self {
        Self { input, out, kmeans, mode, merge_restarts, recorder: None }
    }

    /// Attaches an observability recorder (builder style).
    pub fn with_recorder(mut self, recorder: Option<Arc<Recorder>>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs until the partial stream ends; errors if any cell is left
    /// incomplete (lost messages — a broken pipeline).
    pub fn run(self) -> Result<OpStats> {
        let mut meter = OpMeter::new("merge", 0);
        let mut cells: HashMap<GridCell, CellProgress> = HashMap::new();
        while let Some(msg) = meter.wait(|| self.input.recv()) {
            meter.item_in();
            let cell = match msg {
                MergeMsg::Partial { cell, chunk_id, output } => {
                    let progress = cells.entry(cell).or_default();
                    if progress.partials.insert(chunk_id, output).is_some() {
                        return Err(EngineError::InvalidPlan(format!(
                            "duplicate chunk {chunk_id} for cell {}",
                            cell.index()
                        )));
                    }
                    cell
                }
                MergeMsg::CellPlan { cell, chunks } => {
                    let progress = cells.entry(cell).or_default();
                    if progress.expected.replace(chunks).is_some() {
                        return Err(EngineError::InvalidPlan(format!(
                            "duplicate cell plan for cell {}",
                            cell.index()
                        )));
                    }
                    cell
                }
            };
            if cells.get(&cell).is_some_and(CellProgress::complete) {
                let progress = cells.remove(&cell).expect("checked above");
                if progress.partials.is_empty() {
                    continue; // empty bucket: nothing to emit
                }
                let result = meter.work(|| self.merge_cell(cell, progress))?;
                if let Some(rec) = self.recorder.as_deref() {
                    rec.registry().counter("merge_cells_total").inc();
                    rec.event(
                        "merge.done",
                        &[
                            ("cell", cell.index().into()),
                            ("input_centroids", result.output.input_centroids.into()),
                            ("epm", result.output.epm.into()),
                            ("mse", result.output.mse.into()),
                            ("iterations", result.output.iterations.into()),
                            ("converged", result.output.converged.into()),
                        ],
                    );
                }
                meter.item_out();
                meter
                    .wait(|| self.out.send(result).map_err(drop))
                    .map_err(|_| EngineError::Disconnected("merge→results"))?;
            }
        }
        if !cells.is_empty() {
            let cell = cells.keys().next().expect("non-empty");
            return Err(EngineError::InvalidPlan(format!(
                "stream ended with {} incomplete cell(s), e.g. cell {}",
                cells.len(),
                cell.index()
            )));
        }
        Ok(meter.finish())
    }

    fn merge_cell(&self, cell: GridCell, progress: CellProgress) -> Result<CellClustering> {
        let sets: Vec<WeightedSet> =
            progress.partials.values().map(|p| p.centroids.clone()).collect();
        let output = merge_observed(
            &sets,
            &self.kmeans,
            self.mode,
            self.merge_restarts,
            self.recorder.as_deref(),
        )?;
        let mut chunks = Vec::with_capacity(progress.partials.len());
        let mut trajectories = Vec::with_capacity(progress.partials.len());
        for (chunk_id, p) in progress.partials {
            chunks.push(ChunkStats {
                chunk: chunk_id,
                points: p.points,
                best_mse: p.best_mse,
                total_iterations: p.total_iterations,
                elapsed: p.elapsed,
            });
            trajectories.push(p.best_trajectory);
        }
        Ok(CellClustering { cell, output, chunks, trajectories })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SmartQueue;
    use pmkm_core::partial::partial_kmeans;
    use pmkm_core::Dataset;

    fn cell(i: u16) -> GridCell {
        GridCell::new(i, 0).unwrap()
    }

    fn partial(n: usize, offset: f64) -> PartialOutput {
        let mut ds = Dataset::new(1).unwrap();
        for i in 0..n {
            ds.push(&[offset + (i % 3) as f64 * 0.1]).unwrap();
        }
        partial_kmeans(&ds, &KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 3) }).unwrap()
    }

    fn run_merge(msgs: Vec<MergeMsg>) -> Result<Vec<CellClustering>> {
        let q_in: SmartQueue<MergeMsg> = SmartQueue::new("merge", 64);
        let q_out: SmartQueue<CellClustering> = SmartQueue::new("results", 64);
        let p = q_in.producer();
        let op = MergeKMeansOp::new(
            q_in.consumer(),
            q_out.producer(),
            KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 3) },
            MergeMode::Collective,
            1,
        );
        let c = q_out.consumer();
        q_in.seal();
        q_out.seal();
        for m in msgs {
            p.send(m).unwrap();
        }
        drop(p);
        op.run()?;
        Ok(std::iter::from_fn(|| c.recv()).collect())
    }

    #[test]
    fn merges_when_all_chunks_arrive() {
        let c0 = cell(1);
        let out = run_merge(vec![
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(10, 0.0) },
            MergeMsg::Partial { cell: c0, chunk_id: 1, output: partial(10, 50.0) },
            MergeMsg::CellPlan { cell: c0, chunks: 2 },
        ])
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cell, c0);
        assert_eq!(out[0].chunks.len(), 2);
        let total: f64 = out[0].output.cluster_weights.iter().sum();
        assert_eq!(total, 20.0);
    }

    #[test]
    fn plan_before_partials_also_completes() {
        let c0 = cell(2);
        let out = run_merge(vec![
            MergeMsg::CellPlan { cell: c0, chunks: 1 },
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(8, 0.0) },
        ])
        .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn arrival_order_does_not_change_result() {
        let c0 = cell(3);
        let msgs = |flip: bool| {
            let a = MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(12, 0.0) };
            let b = MergeMsg::Partial { cell: c0, chunk_id: 1, output: partial(12, 9.0) };
            let plan = MergeMsg::CellPlan { cell: c0, chunks: 2 };
            if flip {
                vec![b, plan, a]
            } else {
                vec![a, b, plan]
            }
        };
        let x = run_merge(msgs(false)).unwrap();
        let y = run_merge(msgs(true)).unwrap();
        assert_eq!(x[0].output.centroids, y[0].output.centroids);
        assert_eq!(x[0].output.epm, y[0].output.epm);
    }

    #[test]
    fn interleaved_cells_emit_separately() {
        let (a, b) = (cell(4), cell(5));
        let out = run_merge(vec![
            MergeMsg::Partial { cell: a, chunk_id: 0, output: partial(6, 0.0) },
            MergeMsg::Partial { cell: b, chunk_id: 0, output: partial(7, 1.0) },
            MergeMsg::CellPlan { cell: b, chunks: 1 },
            MergeMsg::CellPlan { cell: a, chunks: 1 },
        ])
        .unwrap();
        assert_eq!(out.len(), 2);
        let cells: std::collections::HashSet<GridCell> = out.iter().map(|r| r.cell).collect();
        assert!(cells.contains(&a) && cells.contains(&b));
    }

    #[test]
    fn empty_cell_plan_emits_nothing() {
        let out = run_merge(vec![MergeMsg::CellPlan { cell: cell(6), chunks: 0 }]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn incomplete_cell_is_an_error() {
        let err = run_merge(vec![MergeMsg::Partial {
            cell: cell(7),
            chunk_id: 0,
            output: partial(5, 0.0),
        }]);
        assert!(matches!(err, Err(EngineError::InvalidPlan(_))));
    }

    #[test]
    fn duplicate_chunk_is_an_error() {
        let c0 = cell(8);
        let err = run_merge(vec![
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(5, 0.0) },
            MergeMsg::Partial { cell: c0, chunk_id: 0, output: partial(5, 0.0) },
            MergeMsg::CellPlan { cell: c0, chunks: 2 },
        ]);
        assert!(matches!(err, Err(EngineError::InvalidPlan(_))));
    }
}
