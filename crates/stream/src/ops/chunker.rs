//! The chunker operator: point batches → memory-sized partitions.
//!
//! This operator realizes the memory adaptation of §3.2: it accumulates at
//! most one partition's worth of points per cell (`budget / (dim × 8)`
//! points) and emits each partition as soon as it fills, so chunks stream
//! into the partial operators while the scan is still running. On a cell's
//! end marker it flushes the remainder and tells the merge operator how
//! many partials to expect.

use crate::error::{EngineError, Result};
use crate::fault::{ChunkFault, FaultContext, EDGE_CHUNKS};
use crate::item::{ChunkMsg, MergeMsg, ScanMsg};
use crate::queue::{QueueConsumer, QueueProducer};
use crate::telemetry::{OpMeter, OpStats};
use pmkm_core::{Dataset, PointSource};
use pmkm_data::GridCell;
use pmkm_obs::Recorder;
use std::collections::HashMap;
use std::sync::Arc;

/// How partition sizes are decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// Points per chunk from a volatile-memory byte budget (resolved per
    /// cell from its dimensionality).
    MemoryBudget {
        /// Budget for one chunk's payload, in bytes.
        bytes: usize,
    },
    /// Fixed points per chunk (used to pin the paper's 5-/10-splits).
    FixedPoints(usize),
}

impl ChunkPolicy {
    fn points_per_chunk(&self, dim: usize) -> Result<usize> {
        let points = match *self {
            ChunkPolicy::MemoryBudget { bytes } => bytes / (dim * std::mem::size_of::<f64>()),
            ChunkPolicy::FixedPoints(p) => p,
        };
        if points == 0 {
            return Err(EngineError::InvalidPlan(format!(
                "chunk policy {self:?} cannot hold one {dim}-dimensional point"
            )));
        }
        Ok(points)
    }
}

struct CellState {
    buffer: Dataset,
    next_chunk: usize,
    points_per_chunk: usize,
}

/// The chunker operator.
pub struct ChunkerOp {
    input: QueueConsumer<ScanMsg>,
    chunks_out: QueueProducer<ChunkMsg>,
    plan_out: QueueProducer<MergeMsg>,
    policy: ChunkPolicy,
    recorder: Option<Arc<Recorder>>,
    faults: FaultContext,
}

impl ChunkerOp {
    /// Creates the operator.
    pub fn new(
        input: QueueConsumer<ScanMsg>,
        chunks_out: QueueProducer<ChunkMsg>,
        plan_out: QueueProducer<MergeMsg>,
        policy: ChunkPolicy,
    ) -> Self {
        Self {
            input,
            chunks_out,
            plan_out,
            policy,
            recorder: None,
            faults: FaultContext::default(),
        }
    }

    /// Attaches an observability recorder (builder style).
    pub fn with_recorder(mut self, recorder: Option<Arc<Recorder>>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a fault plan/policy/counter bundle (builder style).
    pub fn with_faults(mut self, faults: FaultContext) -> Self {
        self.faults = faults;
        self
    }

    fn observe_chunk(&self, points: usize) {
        if let Some(rec) = self.recorder.as_deref() {
            rec.registry()
                .histogram("chunk_points", &pmkm_core::pipeline::CHUNK_SIZE_BOUNDS)
                .observe(points as f64);
        }
    }

    /// Applies any scheduled corruption to an outgoing chunk — the chunker
    /// is where truncated and NaN-poisoned payloads enter the pipeline.
    fn corrupt_chunk(&self, cell: GridCell, chunk_id: usize, points: Dataset) -> Dataset {
        let Some(plan) = self.faults.plan.as_deref() else { return points };
        match plan.chunk_fault(cell.index(), chunk_id) {
            None => points,
            Some(ChunkFault::Truncate) => {
                let dim = points.dim();
                let keep = points.len().div_ceil(2);
                let mut flat = points.into_flat();
                flat.truncate(keep * dim);
                Dataset::from_flat(dim, flat).expect("prefix of a valid chunk")
            }
            Some(ChunkFault::Poison) => {
                let dim = points.dim();
                let mut flat = points.into_flat();
                let idx = (plan.seed ^ ((cell.index() as u64) << 20) ^ chunk_id as u64) as usize
                    % flat.len();
                flat[idx] = f64::NAN;
                Dataset::from_flat_unchecked(dim, flat).expect("shape unchanged")
            }
        }
    }

    /// Runs to completion.
    pub fn run(self) -> Result<OpStats> {
        let mut meter = OpMeter::new("chunker", 0);
        let mut cells: HashMap<GridCell, CellState> = HashMap::new();
        while let Some(msg) = meter.wait(|| self.input.recv()) {
            meter.item_in();
            // Span covers message processing only, never the recv wait above.
            let _phase = self.recorder.as_deref().and_then(|r| r.phase("chunk"));
            match msg {
                ScanMsg::Batch { cell, points } => {
                    if points.is_empty() {
                        continue;
                    }
                    let policy = self.policy;
                    let state = match cells.entry(cell) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            let ppc = policy.points_per_chunk(points.dim())?;
                            e.insert(CellState {
                                buffer: Dataset::new(points.dim())?,
                                next_chunk: 0,
                                points_per_chunk: ppc,
                            })
                        }
                    };
                    state.buffer.extend_from(&points)?;
                    while state.buffer.len() >= state.points_per_chunk {
                        let chunk = split_front(&mut state.buffer, state.points_per_chunk)?;
                        let chunk_id = state.next_chunk;
                        let chunk = self.corrupt_chunk(cell, chunk_id, chunk);
                        self.observe_chunk(chunk.len());
                        let msg = ChunkMsg { cell, chunk_id, points: chunk };
                        state.next_chunk += 1;
                        meter.item_out();
                        let stall_key = ((cell.index() as u64) << 20) ^ chunk_id as u64;
                        meter
                            .wait(|| {
                                self.faults.maybe_stall(
                                    EDGE_CHUNKS,
                                    stall_key,
                                    self.recorder.as_deref(),
                                );
                                self.chunks_out.send(msg)
                            })
                            .map_err(|_| EngineError::Disconnected("chunker→partial"))?;
                    }
                }
                ScanMsg::CellEnd { cell, expected_points } => {
                    let chunks = match cells.remove(&cell) {
                        Some(mut state) => {
                            if !state.buffer.is_empty() {
                                let points = std::mem::replace(
                                    &mut state.buffer,
                                    Dataset::new(1).expect("dim 1 is valid"),
                                );
                                let chunk_id = state.next_chunk;
                                let points = self.corrupt_chunk(cell, chunk_id, points);
                                self.observe_chunk(points.len());
                                let msg = ChunkMsg { cell, chunk_id, points };
                                state.next_chunk += 1;
                                meter.item_out();
                                let stall_key = ((cell.index() as u64) << 20) ^ chunk_id as u64;
                                meter
                                    .wait(|| {
                                        self.faults.maybe_stall(
                                            EDGE_CHUNKS,
                                            stall_key,
                                            self.recorder.as_deref(),
                                        );
                                        self.chunks_out.send(msg)
                                    })
                                    .map_err(|_| EngineError::Disconnected("chunker→partial"))?;
                            }
                            state.next_chunk
                        }
                        None => 0, // empty bucket: zero chunks
                    };
                    meter.item_out();
                    if let Some(rec) = self.recorder.as_deref() {
                        rec.event(
                            "chunker.cell_plan",
                            &[("cell", cell.index().into()), ("chunks", chunks.into())],
                        );
                    }
                    meter
                        .wait(|| {
                            self.plan_out
                                .send(MergeMsg::CellPlan { cell, chunks, expected_points })
                                .map_err(drop)
                        })
                        .map_err(|_| EngineError::Disconnected("chunker→merge"))?;
                }
            }
        }
        Ok(meter.finish())
    }
}

/// Removes and returns the first `n` points of `ds` (requires `n ≤ len`).
fn split_front(ds: &mut Dataset, n: usize) -> Result<Dataset> {
    let dim = ds.dim();
    let mut flat = std::mem::replace(ds, Dataset::new(dim)?).into_flat();
    let rest = flat.split_off(n * dim);
    *ds = Dataset::from_flat(dim, rest)?;
    Ok(Dataset::from_flat(dim, flat)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SmartQueue;

    fn cell(i: u16) -> GridCell {
        GridCell::new(i, i).unwrap()
    }

    fn batch(c: GridCell, n: usize, start: usize) -> ScanMsg {
        let mut points = Dataset::new(2).unwrap();
        for i in 0..n {
            points.push(&[(start + i) as f64, 0.0]).unwrap();
        }
        ScanMsg::Batch { cell: c, points }
    }

    /// Drives the chunker over `msgs` and returns (chunks, merge msgs).
    fn drive(msgs: Vec<ScanMsg>, policy: ChunkPolicy) -> (Vec<ChunkMsg>, Vec<MergeMsg>) {
        let q_in: SmartQueue<ScanMsg> = SmartQueue::new("in", 128);
        let q_chunks: SmartQueue<ChunkMsg> = SmartQueue::new("chunks", 128);
        let q_merge: SmartQueue<MergeMsg> = SmartQueue::new("merge", 128);
        let p_in = q_in.producer();
        let op = ChunkerOp::new(q_in.consumer(), q_chunks.producer(), q_merge.producer(), policy);
        let c_chunks = q_chunks.consumer();
        let c_merge = q_merge.consumer();
        q_in.seal();
        q_chunks.seal();
        q_merge.seal();
        for m in msgs {
            p_in.send(m).unwrap();
        }
        drop(p_in);
        op.run().unwrap();
        let chunks: Vec<ChunkMsg> = std::iter::from_fn(|| c_chunks.recv()).collect();
        let merges: Vec<MergeMsg> = std::iter::from_fn(|| c_merge.recv()).collect();
        (chunks, merges)
    }

    #[test]
    fn fixed_points_chunking_cuts_exact_chunks() {
        let c = cell(3);
        let (chunks, merges) = drive(
            vec![batch(c, 7, 0), batch(c, 6, 7), ScanMsg::CellEnd { cell: c, expected_points: 13 }],
            ChunkPolicy::FixedPoints(5),
        );
        // 13 points at 5/chunk → chunks of 5, 5, 3.
        let sizes: Vec<usize> = chunks.iter().map(|m| m.points.len()).collect();
        assert_eq!(sizes, vec![5, 5, 3]);
        let ids: Vec<usize> = chunks.iter().map(|m| m.chunk_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(merges, vec![MergeMsg::CellPlan { cell: c, chunks: 3, expected_points: 13 }]);
        // Points survive in order.
        let all: Vec<f64> = chunks.iter().flat_map(|m| m.points.as_flat().to_vec()).collect();
        let xs: Vec<f64> = all.chunks(2).map(|p| p[0]).collect();
        assert_eq!(xs, (0..13).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn memory_budget_resolves_per_dim() {
        let c = cell(4);
        // dim 2 → 16 B per point; 64 B budget → 4 points per chunk.
        let (chunks, _) = drive(
            vec![batch(c, 10, 0), ScanMsg::CellEnd { cell: c, expected_points: 10 }],
            ChunkPolicy::MemoryBudget { bytes: 64 },
        );
        let sizes: Vec<usize> = chunks.iter().map(|m| m.points.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn interleaved_cells_are_kept_separate() {
        let (a, b) = (cell(1), cell(2));
        let (chunks, merges) = drive(
            vec![
                batch(a, 3, 0),
                batch(b, 4, 100),
                batch(a, 3, 3),
                ScanMsg::CellEnd { cell: a, expected_points: 6 },
                ScanMsg::CellEnd { cell: b, expected_points: 4 },
            ],
            ChunkPolicy::FixedPoints(4),
        );
        let a_chunks: Vec<&ChunkMsg> = chunks.iter().filter(|m| m.cell == a).collect();
        let b_chunks: Vec<&ChunkMsg> = chunks.iter().filter(|m| m.cell == b).collect();
        assert_eq!(a_chunks.iter().map(|m| m.points.len()).sum::<usize>(), 6);
        assert_eq!(b_chunks.iter().map(|m| m.points.len()).sum::<usize>(), 4);
        assert_eq!(merges.len(), 2);
    }

    #[test]
    fn empty_cell_reports_zero_chunks() {
        let c = cell(9);
        let (chunks, merges) = drive(
            vec![ScanMsg::CellEnd { cell: c, expected_points: 0 }],
            ChunkPolicy::FixedPoints(5),
        );
        assert!(chunks.is_empty());
        assert_eq!(merges, vec![MergeMsg::CellPlan { cell: c, chunks: 0, expected_points: 0 }]);
    }

    /// Drives the chunker with a fault plan attached.
    fn drive_faulted(
        msgs: Vec<ScanMsg>,
        policy: ChunkPolicy,
        faults: FaultContext,
    ) -> (Vec<ChunkMsg>, Vec<MergeMsg>) {
        let q_in: SmartQueue<ScanMsg> = SmartQueue::new("in", 128);
        let q_chunks: SmartQueue<ChunkMsg> = SmartQueue::new("chunks", 128);
        let q_merge: SmartQueue<MergeMsg> = SmartQueue::new("merge", 128);
        let p_in = q_in.producer();
        let op = ChunkerOp::new(q_in.consumer(), q_chunks.producer(), q_merge.producer(), policy)
            .with_faults(faults);
        let c_chunks = q_chunks.consumer();
        let c_merge = q_merge.consumer();
        q_in.seal();
        q_chunks.seal();
        q_merge.seal();
        for m in msgs {
            p_in.send(m).unwrap();
        }
        drop(p_in);
        op.run().unwrap();
        let chunks: Vec<ChunkMsg> = std::iter::from_fn(|| c_chunks.recv()).collect();
        let merges: Vec<MergeMsg> = std::iter::from_fn(|| c_merge.recv()).collect();
        (chunks, merges)
    }

    #[test]
    fn heavy_fault_plan_corrupts_some_chunks_deterministically() {
        use crate::fault::{FaultPlan, FaultPolicy};
        let c = cell(5);
        let msgs = || vec![batch(c, 40, 0), ScanMsg::CellEnd { cell: c, expected_points: 40 }];
        // Deterministically pick a seed whose schedule truncates at least
        // one of the 8 chunks and poisons another (pure plan queries).
        let seed = (0..500)
            .find(|&s| {
                let p = FaultPlan::heavy(s);
                let faults: Vec<_> = (0..8).map(|id| p.chunk_fault(c.index(), id)).collect();
                faults.contains(&Some(ChunkFault::Truncate))
                    && faults.contains(&Some(ChunkFault::Poison))
            })
            .expect("some seed under 500 schedules both fault kinds");
        let ctx = || {
            FaultContext::new(
                Some(FaultPlan { stall_rate: 0.0, ..FaultPlan::heavy(seed) }),
                FaultPolicy::tolerant(),
            )
        };
        let (chunks_a, merges_a) = drive_faulted(msgs(), ChunkPolicy::FixedPoints(5), ctx());
        let (chunks_b, _) = drive_faulted(msgs(), ChunkPolicy::FixedPoints(5), ctx());
        // The plan still promises every scanned point — corruption is
        // discovered downstream, so the chunker's accounting is untouched.
        assert_eq!(merges_a, vec![MergeMsg::CellPlan { cell: c, chunks: 8, expected_points: 40 }]);
        // Same seed → byte-identical corruption, regardless of run.
        for (a, b) in chunks_a.iter().zip(&chunks_b) {
            assert_eq!(a.points.as_flat().to_bits_vec(), b.points.as_flat().to_bits_vec());
        }
        // The seed search above guarantees both corruption kinds appear.
        let truncated = chunks_a.iter().filter(|m| m.points.len() < 5).count();
        let poisoned =
            chunks_a.iter().filter(|m| m.points.as_flat().iter().any(|v| v.is_nan())).count();
        assert!(truncated > 0, "expected at least one truncated chunk");
        assert!(poisoned > 0, "expected at least one poisoned chunk");
    }

    #[test]
    fn no_plan_means_no_corruption() {
        use crate::fault::FaultPolicy;
        let c = cell(6);
        let msgs = vec![batch(c, 10, 0), ScanMsg::CellEnd { cell: c, expected_points: 10 }];
        let (chunks, _) = drive_faulted(
            msgs,
            ChunkPolicy::FixedPoints(4),
            FaultContext::new(None, FaultPolicy::tolerant()),
        );
        let sizes: Vec<usize> = chunks.iter().map(|m| m.points.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert!(chunks.iter().all(|m| m.points.as_flat().iter().all(|v| v.is_finite())));
    }

    trait ToBits {
        fn to_bits_vec(&self) -> Vec<u64>;
    }
    impl ToBits for [f64] {
        fn to_bits_vec(&self) -> Vec<u64> {
            self.iter().map(|v| v.to_bits()).collect()
        }
    }

    #[test]
    fn budget_smaller_than_point_is_error() {
        let q_in: SmartQueue<ScanMsg> = SmartQueue::new("in", 8);
        let q_chunks: SmartQueue<ChunkMsg> = SmartQueue::new("chunks", 8);
        let q_merge: SmartQueue<MergeMsg> = SmartQueue::new("merge", 8);
        let p = q_in.producer();
        let op = ChunkerOp::new(
            q_in.consumer(),
            q_chunks.producer(),
            q_merge.producer(),
            ChunkPolicy::MemoryBudget { bytes: 8 }, // dim 2 needs 16
        );
        let _cc = q_chunks.consumer();
        let _cm = q_merge.consumer();
        q_in.seal();
        q_chunks.seal();
        q_merge.seal();
        p.send(batch(cell(0), 3, 0)).unwrap();
        drop(p);
        assert!(matches!(op.run(), Err(EngineError::InvalidPlan(_))));
    }

    #[test]
    fn split_front_takes_prefix() {
        let mut ds = Dataset::from_rows(&[[0.0], [1.0], [2.0], [3.0]]).unwrap();
        let front = split_front(&mut ds, 3).unwrap();
        assert_eq!(front.as_flat(), &[0.0, 1.0, 2.0]);
        assert_eq!(ds.as_flat(), &[3.0]);
    }
}
