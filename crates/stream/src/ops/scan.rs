//! The scan operator: grid-bucket files → point batches.

use crate::error::{EngineError, Result};
use crate::item::ScanMsg;
use crate::queue::QueueProducer;
use crate::telemetry::{OpMeter, OpStats};
use pmkm_data::BucketReader;
use pmkm_obs::Recorder;
use std::path::PathBuf;
use std::sync::Arc;

/// Streams every bucket file as a sequence of bounded point batches,
/// followed by a [`ScanMsg::CellEnd`] marker per cell. Data is read once,
/// in batches, so the operator's state never exceeds one batch — the
/// "one look at the data" discipline of §3.
pub struct ScanOp {
    paths: Vec<PathBuf>,
    batch_points: usize,
    out: QueueProducer<ScanMsg>,
    recorder: Option<Arc<Recorder>>,
}

impl ScanOp {
    /// Creates the operator.
    pub fn new(paths: Vec<PathBuf>, batch_points: usize, out: QueueProducer<ScanMsg>) -> Self {
        Self { paths, batch_points: batch_points.max(1), out, recorder: None }
    }

    /// Attaches an observability recorder (builder style).
    pub fn with_recorder(mut self, recorder: Option<Arc<Recorder>>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs to completion, returning telemetry.
    pub fn run(self) -> Result<OpStats> {
        let mut meter = OpMeter::new("scan", 0);
        for path in &self.paths {
            let _phase = self.recorder.as_deref().and_then(|r| r.phase("scan"));
            let mut reader = meter.work(|| BucketReader::open(path))?;
            let cell = reader.cell;
            loop {
                let batch = meter.work(|| reader.next_batch(self.batch_points))?;
                match batch {
                    Some(points) => {
                        meter.item_out();
                        meter
                            .wait(|| self.out.send(ScanMsg::Batch { cell, points }))
                            .map_err(|_| EngineError::Disconnected("scan→chunker"))?;
                    }
                    None => break,
                }
            }
            meter.item_out();
            meter
                .wait(|| self.out.send(ScanMsg::CellEnd { cell }))
                .map_err(|_| EngineError::Disconnected("scan→chunker"))?;
            if let Some(rec) = self.recorder.as_deref() {
                rec.registry().counter("scan_cells_total").inc();
                rec.event("scan.cell", &[("cell", cell.index().into())]);
            }
        }
        let stats = meter.finish();
        if let Some(rec) = self.recorder.as_deref() {
            rec.event(
                "op.finish",
                &[
                    ("op", "scan".into()),
                    ("clone", stats.clone_id.into()),
                    ("items_out", stats.items_out.into()),
                ],
            );
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SmartQueue;
    use pmkm_core::{Dataset, PointSource};
    use pmkm_data::{GridBucket, GridCell};

    fn write_bucket(dir: &std::path::Path, cell: GridCell, n: usize) -> PathBuf {
        let mut points = Dataset::new(2).unwrap();
        for i in 0..n {
            points.push(&[i as f64, cell.index() as f64]).unwrap();
        }
        let path = dir.join(cell.bucket_file_name());
        GridBucket { cell, points }.write_to(&path).unwrap();
        path
    }

    #[test]
    fn scans_cells_in_order_with_end_markers() {
        let dir = std::env::temp_dir().join(format!("pmkm_scan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let c1 = GridCell::new(1, 1).unwrap();
        let c2 = GridCell::new(2, 2).unwrap();
        let paths = vec![write_bucket(&dir, c1, 25), write_bucket(&dir, c2, 5)];

        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 64);
        let op = ScanOp::new(paths, 10, q.producer());
        let c = q.consumer();
        q.seal();
        let stats = op.run().unwrap();
        // 25 points at batch 10 → 3 batches + end; 5 points → 1 batch + end.
        assert_eq!(stats.items_out, 3 + 1 + 1 + 1);

        let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        assert_eq!(msgs.len(), 6);
        let mut c1_points = 0;
        match &msgs[3] {
            ScanMsg::CellEnd { cell } => assert_eq!(*cell, c1),
            other => panic!("expected CellEnd, got {other:?}"),
        }
        for m in &msgs[..3] {
            match m {
                ScanMsg::Batch { cell, points } => {
                    assert_eq!(*cell, c1);
                    c1_points += points.len();
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(c1_points, 25);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_reported() {
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 4);
        let op = ScanOp::new(vec![PathBuf::from("/nonexistent/x.gb")], 10, q.producer());
        let _c = q.consumer();
        q.seal();
        assert!(matches!(op.run(), Err(EngineError::Data(_))));
    }
}
