//! The scan operator: grid-bucket files → point batches.

use crate::error::{EngineError, Result};
use crate::fault::{path_key, record_fault, FaultContext, ScanFault};
use crate::item::ScanMsg;
use crate::queue::QueueProducer;
use crate::telemetry::{OpMeter, OpStats};
use pmkm_data::{BucketReader, DataError};
use pmkm_obs::Recorder;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Batch key under which the bucket *open* (header read) is injected.
const OPEN_BATCH_KEY: u64 = u64::MAX;

/// Streams every bucket file as a sequence of bounded point batches,
/// followed by a [`ScanMsg::CellEnd`] marker per cell. Data is read once,
/// in batches, so the operator's state never exceeds one batch — the
/// "one look at the data" discipline of §3.
///
/// Read errors are retried with exponential backoff up to the fault
/// policy's `scan_retries`; past that, a tolerant (`quarantine`) policy
/// abandons the bucket's remaining points (counted as a scan failure, the
/// mass surfacing as degraded merge output) while the strict default
/// aborts the run as before.
pub struct ScanOp {
    paths: Vec<PathBuf>,
    batch_points: usize,
    out: QueueProducer<ScanMsg>,
    recorder: Option<Arc<Recorder>>,
    faults: FaultContext,
}

impl ScanOp {
    /// Creates the operator.
    pub fn new(paths: Vec<PathBuf>, batch_points: usize, out: QueueProducer<ScanMsg>) -> Self {
        Self {
            paths,
            batch_points: batch_points.max(1),
            out,
            recorder: None,
            faults: FaultContext::default(),
        }
    }

    /// Attaches an observability recorder (builder style).
    pub fn with_recorder(mut self, recorder: Option<Arc<Recorder>>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a fault plan/policy/counter bundle (builder style).
    pub fn with_faults(mut self, faults: FaultContext) -> Self {
        self.faults = faults;
        self
    }

    /// One read with injection and retry-with-backoff. `batch` keys the
    /// injection roll (`OPEN_BATCH_KEY` for the header read).
    fn read_with_retry<T>(
        &self,
        meter: &mut OpMeter,
        path: u64,
        batch: u64,
        mut read: impl FnMut() -> pmkm_data::Result<T>,
    ) -> Result<T> {
        let attempts = self.faults.policy.scan_retries + 1;
        let mut backoff = self.faults.policy.retry_backoff;
        let mut last_err = None;
        for attempt in 0..attempts {
            let injected = self
                .faults
                .plan
                .as_deref()
                .and_then(|p| p.scan_fault(path, batch))
                .is_some_and(|f| f == ScanFault::Permanent || attempt == 0);
            let result = if injected {
                Err(DataError::Io(std::io::Error::other("injected scan read error")))
            } else {
                meter.work(&mut read)
            };
            match result {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last_err = Some(e);
                    if attempt + 1 < attempts {
                        self.faults.counters.scan_retries.fetch_add(1, Ordering::Relaxed);
                        if let Some(rec) = self.recorder.as_deref() {
                            rec.registry().counter("fault_scan_retries_total").inc();
                        }
                        record_fault(
                            self.recorder.as_deref(),
                            "scan_retry",
                            &[("batch", batch.into()), ("attempt", (attempt as u64).into())],
                        );
                        if !backoff.is_zero() {
                            meter.wait(|| std::thread::sleep(backoff));
                            backoff = backoff.saturating_mul(2);
                        }
                    }
                }
            }
        }
        Err(EngineError::Data(last_err.expect("at least one attempt")))
    }

    /// Records a bucket (or bucket tail) abandoned under quarantine.
    fn note_scan_failure(&self, path: &std::path::Path, err: &EngineError) {
        self.faults.counters.scan_failures.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.recorder.as_deref() {
            rec.registry().counter("fault_scan_failures_total").inc();
            rec.event(
                "scan.failure",
                &[("path", path.display().to_string().into()), ("error", err.to_string().into())],
            );
        }
        record_fault(
            self.recorder.as_deref(),
            "scan_failure",
            &[("path", path.display().to_string().into())],
        );
    }

    /// Runs to completion, returning telemetry.
    pub fn run(self) -> Result<OpStats> {
        let mut meter = OpMeter::new("scan", 0);
        for path in &self.paths {
            let _phase = self.recorder.as_deref().and_then(|r| r.phase("scan"));
            let pkey = path_key(path);
            let mut reader = match self
                .read_with_retry(&mut meter, pkey, OPEN_BATCH_KEY, || BucketReader::open(path))
            {
                Ok(r) => r,
                Err(e) if self.faults.policy.quarantine => {
                    // Header unreadable: the cell never enters the
                    // stream; only the failure counter records it.
                    self.note_scan_failure(path, &e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let cell = reader.cell;
            let expected_points = reader.count;
            if let Some(rec) = self.recorder.as_deref() {
                rec.event(
                    "cell.open",
                    &[("cell", cell.index().into()), ("expected_points", expected_points.into())],
                );
                rec.worker_state_cell(cell.index(), pmkm_obs::WorkerState::Scan);
            }
            let mut batch_idx = 0u64;
            loop {
                let batch = match self.read_with_retry(&mut meter, pkey, batch_idx, || {
                    reader.next_batch(self.batch_points)
                }) {
                    Ok(b) => b,
                    Err(e) if self.faults.policy.quarantine => {
                        // Abandon the bucket's tail; CellEnd below still
                        // reports the promised count, so the missing mass
                        // is visible downstream.
                        self.note_scan_failure(path, &e);
                        break;
                    }
                    Err(e) => return Err(e),
                };
                batch_idx += 1;
                match batch {
                    Some(points) => {
                        meter.item_out();
                        meter
                            .wait(|| self.out.send(ScanMsg::Batch { cell, points }))
                            .map_err(|_| EngineError::Disconnected("scan→chunker"))?;
                    }
                    None => break,
                }
            }
            meter.item_out();
            meter
                .wait(|| self.out.send(ScanMsg::CellEnd { cell, expected_points }))
                .map_err(|_| EngineError::Disconnected("scan→chunker"))?;
            if let Some(rec) = self.recorder.as_deref() {
                rec.registry().counter("scan_cells_total").inc();
                rec.event("scan.cell", &[("cell", cell.index().into())]);
            }
        }
        let stats = meter.finish();
        if let Some(rec) = self.recorder.as_deref() {
            rec.event(
                "op.finish",
                &[
                    ("op", "scan".into()),
                    ("clone", stats.clone_id.into()),
                    ("items_out", stats.items_out.into()),
                ],
            );
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultPolicy};
    use crate::queue::SmartQueue;
    use pmkm_core::{Dataset, PointSource};
    use pmkm_data::{GridBucket, GridCell};

    fn write_bucket(dir: &std::path::Path, cell: GridCell, n: usize) -> PathBuf {
        let mut points = Dataset::new(2).unwrap();
        for i in 0..n {
            points.push(&[i as f64, cell.index() as f64]).unwrap();
        }
        let path = dir.join(cell.bucket_file_name());
        GridBucket { cell, points }.write_to(&path).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pmkm_scan_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn scans_cells_in_order_with_end_markers() {
        let dir = tmpdir("order");
        let c1 = GridCell::new(1, 1).unwrap();
        let c2 = GridCell::new(2, 2).unwrap();
        let paths = vec![write_bucket(&dir, c1, 25), write_bucket(&dir, c2, 5)];

        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 64);
        let op = ScanOp::new(paths, 10, q.producer());
        let c = q.consumer();
        q.seal();
        let stats = op.run().unwrap();
        // 25 points at batch 10 → 3 batches + end; 5 points → 1 batch + end.
        assert_eq!(stats.items_out, 3 + 1 + 1 + 1);

        let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        assert_eq!(msgs.len(), 6);
        let mut c1_points = 0;
        match &msgs[3] {
            ScanMsg::CellEnd { cell, expected_points } => {
                assert_eq!(*cell, c1);
                assert_eq!(*expected_points, 25);
            }
            other => panic!("expected CellEnd, got {other:?}"),
        }
        for m in &msgs[..3] {
            match m {
                ScanMsg::Batch { cell, points } => {
                    assert_eq!(*cell, c1);
                    c1_points += points.len();
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(c1_points, 25);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_reported() {
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 4);
        let op = ScanOp::new(vec![PathBuf::from("/nonexistent/x.gb")], 10, q.producer());
        let _c = q.consumer();
        q.seal();
        assert!(matches!(op.run(), Err(EngineError::Data(_))));
    }

    #[test]
    fn transient_injected_errors_are_retried_to_success() {
        let dir = tmpdir("transient");
        let cell = GridCell::new(3, 3).unwrap();
        let paths = vec![write_bucket(&dir, cell, 20)];
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 64);
        let faults = FaultContext::new(
            Some(FaultPlan {
                scan_error_rate: 1.0, // every read errors once
                scan_permanent_fraction: 0.0,
                ..FaultPlan::none(11)
            }),
            FaultPolicy { scan_retries: 2, ..FaultPolicy::tolerant() },
        );
        let counters = Arc::clone(&faults.counters);
        let op = ScanOp::new(paths, 10, q.producer()).with_faults(faults);
        let c = q.consumer();
        q.seal();
        op.run().unwrap();
        let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        // Every point still arrives: 2 batches + CellEnd.
        let total: usize = msgs
            .iter()
            .map(|m| match m {
                ScanMsg::Batch { points, .. } => points.len(),
                ScanMsg::CellEnd { .. } => 0,
            })
            .sum();
        assert_eq!(total, 20);
        let snap = counters.snapshot();
        assert!(snap.scan_retries > 0, "retries not counted: {snap:?}");
        assert_eq!(snap.scan_failures, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn permanent_error_aborts_strict_but_quarantines_tolerant() {
        let dir = tmpdir("permanent");
        let cell = GridCell::new(4, 4).unwrap();
        let paths = vec![write_bucket(&dir, cell, 20)];
        let plan =
            FaultPlan { scan_error_rate: 1.0, scan_permanent_fraction: 1.0, ..FaultPlan::none(5) };

        // Strict: the injected permanent error surfaces as a data error.
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 64);
        let op = ScanOp::new(paths.clone(), 10, q.producer())
            .with_faults(FaultContext::new(Some(plan.clone()), FaultPolicy::strict()));
        let _c = q.consumer();
        q.seal();
        assert!(matches!(op.run(), Err(EngineError::Data(_))));

        // Tolerant: the bucket is abandoned but the scan completes, and the
        // CellEnd still promises the header count.
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 64);
        let faults = FaultContext::new(Some(plan), FaultPolicy::tolerant());
        let counters = Arc::clone(&faults.counters);
        let op = ScanOp::new(paths, 10, q.producer()).with_faults(faults);
        let c = q.consumer();
        q.seal();
        op.run().unwrap();
        let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        assert!(counters.snapshot().scan_failures >= 1);
        // The open itself failed here (header injected), so nothing —
        // not even a CellEnd — was sent for the cell.
        assert!(msgs.is_empty(), "unexpected messages: {msgs:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_bucket_permanent_error_still_sends_cell_end() {
        let dir = tmpdir("tail");
        let cell = GridCell::new(5, 5).unwrap();
        let paths = vec![write_bucket(&dir, cell, 30)];
        // Injection keyed so the open and batch 0 succeed but batch 1 is
        // permanently failed: find a seed deterministically.
        let seed = (0..10_000u64)
            .find(|&s| {
                let p = FaultPlan {
                    scan_error_rate: 0.3,
                    scan_permanent_fraction: 1.0,
                    ..FaultPlan::none(s)
                };
                let key = path_key(&paths[0]);
                p.scan_fault(key, OPEN_BATCH_KEY).is_none()
                    && p.scan_fault(key, 0).is_none()
                    && p.scan_fault(key, 1) == Some(ScanFault::Permanent)
            })
            .expect("some seed fails exactly batch 1");
        let plan = FaultPlan {
            scan_error_rate: 0.3,
            scan_permanent_fraction: 1.0,
            ..FaultPlan::none(seed)
        };
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 64);
        let faults = FaultContext::new(Some(plan), FaultPolicy::tolerant());
        let counters = Arc::clone(&faults.counters);
        let op = ScanOp::new(paths, 10, q.producer()).with_faults(faults);
        let c = q.consumer();
        q.seal();
        op.run().unwrap();
        let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        // Batch 0 (10 points) arrived, then the tail was abandoned, and the
        // CellEnd still promises all 30.
        let delivered: usize = msgs
            .iter()
            .map(|m| match m {
                ScanMsg::Batch { points, .. } => points.len(),
                ScanMsg::CellEnd { .. } => 0,
            })
            .sum();
        assert_eq!(delivered, 10);
        match msgs.last().unwrap() {
            ScanMsg::CellEnd { expected_points, .. } => assert_eq!(*expected_points, 30),
            other => panic!("expected CellEnd, got {other:?}"),
        }
        assert_eq!(counters.snapshot().scan_failures, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
