//! The scan operator: grid-bucket files → point batches.

use crate::error::{EngineError, Result};
use crate::fault::{path_key, record_fault, FaultContext, ScanFault};
use crate::item::ScanMsg;
use crate::queue::QueueProducer;
use crate::telemetry::{OpMeter, OpStats};
use pmkm_data::{
    BackendKind, BlockReadStats, BucketFormat, BucketReader, DataError, FileBackend, Gb02Reader,
    MmapBackend, ScanBackend, SimObjectStore,
};
use pmkm_obs::Recorder;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Batch key under which the bucket *open* (header read) is injected.
const OPEN_BATCH_KEY: u64 = u64::MAX;

/// Prefetched-but-unconsumed blocks the fetch thread may hold: one block
/// in flight plus one parked in the channel — classic double buffering, so
/// decompression of block *i+1* overlaps clustering of block *i* without
/// unbounded memory.
const PREFETCH_DEPTH: usize = 1;

/// Simulated per-GET latency when the sim-object-store backend is chosen
/// without explicit configuration: enough to be visible in scan telemetry,
/// small enough for tests.
const SIM_STORE_LATENCY_US: u64 = 50;

/// A bucket opened for scanning, either format.
enum AnyReader {
    Gb01(Box<BucketReader>),
    Gb02(Arc<Gb02Reader>),
}

/// Streams every bucket file as a sequence of bounded point batches,
/// followed by a [`ScanMsg::CellEnd`] marker per cell. Data is read once,
/// in batches, so the operator's state never exceeds one batch (plus, for
/// block containers, the bounded prefetch window) — the "one look at the
/// data" discipline of §3.
///
/// Legacy `PMKMGB01` buckets stream through the buffered reader exactly as
/// before, regardless of the configured backend. `PMKMGB02` block
/// containers are ranged-read through the configured [`BackendKind`] one
/// block per batch, with a dedicated prefetch thread decoding the next
/// block while the pipeline clusters the current one.
///
/// Read errors are retried with exponential backoff up to the fault
/// policy's `scan_retries`; past that, a tolerant (`quarantine`) policy
/// abandons the bucket's remaining points (counted as a scan failure, the
/// mass surfacing as degraded merge output) while the strict default
/// aborts the run as before.
pub struct ScanOp {
    paths: Vec<PathBuf>,
    batch_points: usize,
    out: QueueProducer<ScanMsg>,
    recorder: Option<Arc<Recorder>>,
    faults: FaultContext,
    backend: BackendKind,
}

impl ScanOp {
    /// Creates the operator.
    pub fn new(paths: Vec<PathBuf>, batch_points: usize, out: QueueProducer<ScanMsg>) -> Self {
        Self {
            paths,
            batch_points: batch_points.max(1),
            out,
            recorder: None,
            faults: FaultContext::default(),
            backend: BackendKind::default(),
        }
    }

    /// Attaches an observability recorder (builder style).
    pub fn with_recorder(mut self, recorder: Option<Arc<Recorder>>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a fault plan/policy/counter bundle (builder style).
    pub fn with_faults(mut self, faults: FaultContext) -> Self {
        self.faults = faults;
        self
    }

    /// Selects the storage backend for GB02 containers (builder style).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Builds the configured backend for one bucket. The sim object store
    /// gets its GET-level flakiness wired to the fault plan here, keyed on
    /// the bucket path so schedules replay per cell.
    fn make_backend(
        &self,
        path: &std::path::Path,
        pkey: u64,
    ) -> pmkm_data::Result<Arc<dyn ScanBackend>> {
        Ok(match self.backend {
            BackendKind::LocalFile => Arc::new(FileBackend::open(path)?),
            BackendKind::Mmap => Arc::new(MmapBackend::open(path)?),
            BackendKind::SimObjectStore => {
                let mut store = SimObjectStore::open(path, SIM_STORE_LATENCY_US)?;
                if let Some(plan) = self.faults.plan.clone() {
                    store = store
                        .with_fault_hook(Arc::new(move |get| plan.object_get_fault(pkey, get)));
                }
                Arc::new(store)
            }
        })
    }

    /// One read with injection and retry-with-backoff. `batch` keys the
    /// injection roll (`OPEN_BATCH_KEY` for the header read).
    fn read_with_retry<T>(
        &self,
        meter: &mut OpMeter,
        path: u64,
        batch: u64,
        mut read: impl FnMut() -> pmkm_data::Result<T>,
    ) -> Result<T> {
        let attempts = self.faults.policy.scan_retries + 1;
        let mut backoff = self.faults.policy.retry_backoff;
        let mut last_err = None;
        for attempt in 0..attempts {
            let injected = self
                .faults
                .plan
                .as_deref()
                .and_then(|p| p.scan_fault(path, batch))
                .is_some_and(|f| f == ScanFault::Permanent || attempt == 0);
            let result = if injected {
                Err(DataError::Io(std::io::Error::other("injected scan read error")))
            } else {
                meter.work(&mut read)
            };
            match result {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last_err = Some(e);
                    if attempt + 1 < attempts {
                        self.faults.counters.scan_retries.fetch_add(1, Ordering::Relaxed);
                        if let Some(rec) = self.recorder.as_deref() {
                            rec.registry().counter("fault_scan_retries_total").inc();
                        }
                        record_fault(
                            self.recorder.as_deref(),
                            "scan_retry",
                            &[("batch", batch.into()), ("attempt", (attempt as u64).into())],
                        );
                        if !backoff.is_zero() {
                            meter.wait(|| std::thread::sleep(backoff));
                            backoff = backoff.saturating_mul(2);
                        }
                    }
                }
            }
        }
        Err(EngineError::Data(last_err.expect("at least one attempt")))
    }

    /// Records a bucket (or bucket tail) abandoned under quarantine.
    fn note_scan_failure(&self, path: &std::path::Path, err: &EngineError) {
        self.faults.counters.scan_failures.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.recorder.as_deref() {
            rec.registry().counter("fault_scan_failures_total").inc();
            rec.event(
                "scan.failure",
                &[("path", path.display().to_string().into()), ("error", err.to_string().into())],
            );
        }
        record_fault(
            self.recorder.as_deref(),
            "scan_failure",
            &[("path", path.display().to_string().into())],
        );
    }

    /// Opens one bucket in whichever format its magic declares. GB02 goes
    /// through the configured backend; GB01 keeps the buffered reader.
    ///
    /// The backend is created once per path and memoized in `cached` so
    /// open *retries* keep the same GET-ordinal sequence: a sim-object-store
    /// GET fault re-rolls on fresh ordinals instead of deterministically
    /// repeating, which is what makes injected GET flakiness transient.
    fn open_any(
        &self,
        path: &std::path::Path,
        pkey: u64,
        cached: &mut Option<Arc<dyn ScanBackend>>,
    ) -> pmkm_data::Result<AnyReader> {
        match pmkm_data::probe(path)?.format {
            BucketFormat::Gb01 => Ok(AnyReader::Gb01(Box::new(BucketReader::open(path)?))),
            BucketFormat::Gb02 => {
                if cached.is_none() {
                    *cached = Some(self.make_backend(path, pkey)?);
                }
                let backend = Arc::clone(cached.as_ref().expect("just filled"));
                Ok(AnyReader::Gb02(Arc::new(Gb02Reader::open(Box::new(backend))?)))
            }
        }
    }

    /// Streams a legacy GB01 bucket in `batch_points`-sized batches.
    /// Returns false when the bucket's tail was abandoned under quarantine.
    fn scan_gb01(
        &self,
        meter: &mut OpMeter,
        path: &std::path::Path,
        pkey: u64,
        mut reader: BucketReader,
    ) -> Result<()> {
        let cell = reader.cell;
        let mut batch_idx = 0u64;
        loop {
            let batch = match self
                .read_with_retry(meter, pkey, batch_idx, || reader.next_batch(self.batch_points))
            {
                Ok(b) => b,
                Err(e) if self.faults.policy.quarantine => {
                    // Abandon the bucket's tail; CellEnd afterwards still
                    // reports the promised count, so the missing mass is
                    // visible downstream.
                    self.note_scan_failure(path, &e);
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            batch_idx += 1;
            match batch {
                Some(points) => {
                    meter.item_out();
                    meter
                        .wait(|| self.out.send(ScanMsg::Batch { cell, points }))
                        .map_err(|_| EngineError::Disconnected("scan→chunker"))?;
                }
                None => return Ok(()),
            }
        }
    }

    /// Streams a GB02 container one block per batch with double-buffered
    /// prefetch: a fetch thread reads, integrity-checks, and decodes block
    /// *i+1* (injection and retry included) while the pipeline consumes
    /// block *i*.
    fn scan_gb02(
        &self,
        meter: &mut OpMeter,
        path: &std::path::Path,
        pkey: u64,
        reader: Arc<Gb02Reader>,
    ) -> Result<()> {
        let cell = reader.cell;
        let n_blocks = reader.n_blocks();
        let (tx, rx) = crossbeam::channel::bounded::<(
            usize,
            std::result::Result<(pmkm_core::Dataset, BlockReadStats), DataError>,
        )>(PREFETCH_DEPTH);
        let fetch_reader = Arc::clone(&reader);
        let fetch_faults = self.faults.clone();
        let fetch_rec = self.recorder.clone();
        let fetcher = std::thread::spawn(move || {
            for i in 0..n_blocks {
                let res = fetch_block_with_retry(
                    &fetch_faults,
                    fetch_rec.as_deref(),
                    pkey,
                    i,
                    &fetch_reader,
                );
                let failed = res.is_err();
                if tx.send((i, res)).is_err() || failed {
                    return;
                }
            }
        });

        let mut failed = None;
        for _ in 0..n_blocks {
            // A ready block means decode fully overlapped clustering.
            let (prefetched, msg) = match rx.try_recv() {
                Ok(msg) => (true, Some(msg)),
                Err(crossbeam::channel::TryRecvError::Empty) => {
                    let mut got = None;
                    meter.wait(|| got = rx.recv().ok());
                    (false, got)
                }
                Err(crossbeam::channel::TryRecvError::Disconnected) => (false, None),
            };
            let Some((block, result)) = msg else { break };
            match result {
                Ok((points, stats)) => {
                    if let Some(rec) = self.recorder.as_deref() {
                        let reg = rec.registry();
                        reg.counter("scan_blocks_total").inc();
                        reg.counter("scan_stored_bytes_total").add(stats.stored_bytes);
                        reg.counter("scan_payload_bytes_total").add(stats.payload_bytes);
                        let hits = if prefetched {
                            reg.counter("scan_prefetch_hits_total")
                        } else {
                            reg.counter("scan_prefetch_misses_total")
                        };
                        hits.inc();
                        rec.event(
                            "scan.block",
                            &[
                                ("cell", cell.index().into()),
                                ("block", (block as u64).into()),
                                ("stored_bytes", stats.stored_bytes.into()),
                                ("payload_bytes", stats.payload_bytes.into()),
                                ("zero_copy", stats.zero_copy.into()),
                                ("prefetch_hit", prefetched.into()),
                            ],
                        );
                    }
                    meter.item_out();
                    meter
                        .wait(|| self.out.send(ScanMsg::Batch { cell, points }))
                        .map_err(|_| EngineError::Disconnected("scan→chunker"))?;
                }
                Err(e) => {
                    failed = Some(EngineError::Data(e));
                    break;
                }
            }
        }
        drop(rx);
        let _ = fetcher.join();
        match failed {
            None => Ok(()),
            Some(e) if self.faults.policy.quarantine => {
                self.note_scan_failure(path, &e);
                Ok(())
            }
            Some(e) => Err(e),
        }
    }

    /// Runs to completion, returning telemetry.
    pub fn run(self) -> Result<OpStats> {
        let mut meter = OpMeter::new("scan", 0);
        for path in &self.paths {
            let _phase = self.recorder.as_deref().and_then(|r| r.phase("scan"));
            let pkey = path_key(path);
            let mut backend_cache: Option<Arc<dyn ScanBackend>> = None;
            let reader = match self.read_with_retry(&mut meter, pkey, OPEN_BATCH_KEY, || {
                self.open_any(path, pkey, &mut backend_cache)
            }) {
                Ok(r) => r,
                Err(e) if self.faults.policy.quarantine => {
                    // Header unreadable: the cell never enters the
                    // stream; only the failure counter records it.
                    self.note_scan_failure(path, &e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let (cell, expected_points) = match &reader {
                AnyReader::Gb01(r) => (r.cell, r.count),
                AnyReader::Gb02(r) => (r.cell, r.count),
            };
            if let Some(rec) = self.recorder.as_deref() {
                rec.event(
                    "cell.open",
                    &[("cell", cell.index().into()), ("expected_points", expected_points.into())],
                );
                rec.worker_state_cell(cell.index(), pmkm_obs::WorkerState::Scan);
            }
            match reader {
                AnyReader::Gb01(r) => self.scan_gb01(&mut meter, path, pkey, *r)?,
                AnyReader::Gb02(r) => self.scan_gb02(&mut meter, path, pkey, r)?,
            }
            meter.item_out();
            meter
                .wait(|| self.out.send(ScanMsg::CellEnd { cell, expected_points }))
                .map_err(|_| EngineError::Disconnected("scan→chunker"))?;
            if let Some(rec) = self.recorder.as_deref() {
                rec.registry().counter("scan_cells_total").inc();
                rec.event("scan.cell", &[("cell", cell.index().into())]);
                let reg = rec.registry();
                let stored = reg.counter("scan_stored_bytes_total").get();
                let payload = reg.counter("scan_payload_bytes_total").get();
                if stored > 0 {
                    reg.gauge("scan_compression_ratio").set(payload as f64 / stored as f64);
                }
            }
        }
        let stats = meter.finish();
        if let Some(rec) = self.recorder.as_deref() {
            rec.event(
                "op.finish",
                &[
                    ("op", "scan".into()),
                    ("clone", stats.clone_id.into()),
                    ("items_out", stats.items_out.into()),
                ],
            );
        }
        Ok(stats)
    }
}

/// One prefetch-thread block read with injection and retry-with-backoff —
/// the thread-side mirror of [`ScanOp::read_with_retry`] (no meter: the
/// scan's own wait/work accounting happens on the consuming side).
fn fetch_block_with_retry(
    faults: &FaultContext,
    recorder: Option<&Recorder>,
    path: u64,
    block: usize,
    reader: &Gb02Reader,
) -> std::result::Result<(pmkm_core::Dataset, BlockReadStats), DataError> {
    let attempts = faults.policy.scan_retries + 1;
    let mut backoff = faults.policy.retry_backoff;
    let mut last_err = None;
    for attempt in 0..attempts {
        let injected = faults
            .plan
            .as_deref()
            .and_then(|p| p.scan_fault(path, block as u64))
            .is_some_and(|f| f == ScanFault::Permanent || attempt == 0);
        let result = if injected {
            Err(DataError::Io(std::io::Error::other("injected scan read error")))
        } else {
            reader.read_block_with_stats(block)
        };
        match result {
            Ok(v) => return Ok(v),
            Err(e) => {
                last_err = Some(e);
                if attempt + 1 < attempts {
                    faults.counters.scan_retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(rec) = recorder {
                        rec.registry().counter("fault_scan_retries_total").inc();
                    }
                    record_fault(
                        recorder,
                        "scan_retry",
                        &[("batch", (block as u64).into()), ("attempt", (attempt as u64).into())],
                    );
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff = backoff.saturating_mul(2);
                    }
                }
            }
        }
    }
    Err(last_err.expect("at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultPolicy};
    use crate::queue::SmartQueue;
    use pmkm_core::{Dataset, PointSource};
    use pmkm_data::{Codec, GridBucket, GridCell};

    fn make_points(cell: GridCell, n: usize) -> Dataset {
        let mut points = Dataset::new(2).unwrap();
        for i in 0..n {
            points.push(&[i as f64, cell.index() as f64]).unwrap();
        }
        points
    }

    fn write_bucket(dir: &std::path::Path, cell: GridCell, n: usize) -> PathBuf {
        let path = dir.join(cell.bucket_file_name());
        GridBucket { cell, points: make_points(cell, n) }.write_to(&path).unwrap();
        path
    }

    fn write_bucket_gb02(
        dir: &std::path::Path,
        cell: GridCell,
        n: usize,
        codec: Codec,
        block_points: usize,
    ) -> PathBuf {
        let path = dir.join(format!("gb02_{}.gb", cell.index()));
        let bucket = GridBucket { cell, points: make_points(cell, n) };
        pmkm_data::write_gb02(&bucket, &path, codec, block_points).unwrap();
        path
    }

    fn drain_points(msgs: &[ScanMsg]) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for m in msgs {
            if let ScanMsg::Batch { points, .. } = m {
                for i in 0..points.len() {
                    out.push(points.coords(i).to_vec());
                }
            }
        }
        out
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pmkm_scan_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn scans_cells_in_order_with_end_markers() {
        let dir = tmpdir("order");
        let c1 = GridCell::new(1, 1).unwrap();
        let c2 = GridCell::new(2, 2).unwrap();
        let paths = vec![write_bucket(&dir, c1, 25), write_bucket(&dir, c2, 5)];

        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 64);
        let op = ScanOp::new(paths, 10, q.producer());
        let c = q.consumer();
        q.seal();
        let stats = op.run().unwrap();
        // 25 points at batch 10 → 3 batches + end; 5 points → 1 batch + end.
        assert_eq!(stats.items_out, 3 + 1 + 1 + 1);

        let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        assert_eq!(msgs.len(), 6);
        let mut c1_points = 0;
        match &msgs[3] {
            ScanMsg::CellEnd { cell, expected_points } => {
                assert_eq!(*cell, c1);
                assert_eq!(*expected_points, 25);
            }
            other => panic!("expected CellEnd, got {other:?}"),
        }
        for m in &msgs[..3] {
            match m {
                ScanMsg::Batch { cell, points } => {
                    assert_eq!(*cell, c1);
                    c1_points += points.len();
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(c1_points, 25);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_reported() {
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 4);
        let op = ScanOp::new(vec![PathBuf::from("/nonexistent/x.gb")], 10, q.producer());
        let _c = q.consumer();
        q.seal();
        assert!(matches!(op.run(), Err(EngineError::Data(_))));
    }

    #[test]
    fn transient_injected_errors_are_retried_to_success() {
        let dir = tmpdir("transient");
        let cell = GridCell::new(3, 3).unwrap();
        let paths = vec![write_bucket(&dir, cell, 20)];
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 64);
        let faults = FaultContext::new(
            Some(FaultPlan {
                scan_error_rate: 1.0, // every read errors once
                scan_permanent_fraction: 0.0,
                ..FaultPlan::none(11)
            }),
            FaultPolicy { scan_retries: 2, ..FaultPolicy::tolerant() },
        );
        let counters = Arc::clone(&faults.counters);
        let op = ScanOp::new(paths, 10, q.producer()).with_faults(faults);
        let c = q.consumer();
        q.seal();
        op.run().unwrap();
        let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        // Every point still arrives: 2 batches + CellEnd.
        let total: usize = msgs
            .iter()
            .map(|m| match m {
                ScanMsg::Batch { points, .. } => points.len(),
                ScanMsg::CellEnd { .. } => 0,
            })
            .sum();
        assert_eq!(total, 20);
        let snap = counters.snapshot();
        assert!(snap.scan_retries > 0, "retries not counted: {snap:?}");
        assert_eq!(snap.scan_failures, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn permanent_error_aborts_strict_but_quarantines_tolerant() {
        let dir = tmpdir("permanent");
        let cell = GridCell::new(4, 4).unwrap();
        let paths = vec![write_bucket(&dir, cell, 20)];
        let plan =
            FaultPlan { scan_error_rate: 1.0, scan_permanent_fraction: 1.0, ..FaultPlan::none(5) };

        // Strict: the injected permanent error surfaces as a data error.
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 64);
        let op = ScanOp::new(paths.clone(), 10, q.producer())
            .with_faults(FaultContext::new(Some(plan.clone()), FaultPolicy::strict()));
        let _c = q.consumer();
        q.seal();
        assert!(matches!(op.run(), Err(EngineError::Data(_))));

        // Tolerant: the bucket is abandoned but the scan completes, and the
        // CellEnd still promises the header count.
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 64);
        let faults = FaultContext::new(Some(plan), FaultPolicy::tolerant());
        let counters = Arc::clone(&faults.counters);
        let op = ScanOp::new(paths, 10, q.producer()).with_faults(faults);
        let c = q.consumer();
        q.seal();
        op.run().unwrap();
        let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        assert!(counters.snapshot().scan_failures >= 1);
        // The open itself failed here (header injected), so nothing —
        // not even a CellEnd — was sent for the cell.
        assert!(msgs.is_empty(), "unexpected messages: {msgs:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_bucket_permanent_error_still_sends_cell_end() {
        let dir = tmpdir("tail");
        let cell = GridCell::new(5, 5).unwrap();
        let paths = vec![write_bucket(&dir, cell, 30)];
        // Injection keyed so the open and batch 0 succeed but batch 1 is
        // permanently failed: find a seed deterministically.
        let seed = (0..10_000u64)
            .find(|&s| {
                let p = FaultPlan {
                    scan_error_rate: 0.3,
                    scan_permanent_fraction: 1.0,
                    ..FaultPlan::none(s)
                };
                let key = path_key(&paths[0]);
                p.scan_fault(key, OPEN_BATCH_KEY).is_none()
                    && p.scan_fault(key, 0).is_none()
                    && p.scan_fault(key, 1) == Some(ScanFault::Permanent)
            })
            .expect("some seed fails exactly batch 1");
        let plan = FaultPlan {
            scan_error_rate: 0.3,
            scan_permanent_fraction: 1.0,
            ..FaultPlan::none(seed)
        };
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 64);
        let faults = FaultContext::new(Some(plan), FaultPolicy::tolerant());
        let counters = Arc::clone(&faults.counters);
        let op = ScanOp::new(paths, 10, q.producer()).with_faults(faults);
        let c = q.consumer();
        q.seal();
        op.run().unwrap();
        let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        // Batch 0 (10 points) arrived, then the tail was abandoned, and the
        // CellEnd still promises all 30.
        let delivered: usize = msgs
            .iter()
            .map(|m| match m {
                ScanMsg::Batch { points, .. } => points.len(),
                ScanMsg::CellEnd { .. } => 0,
            })
            .sum();
        assert_eq!(delivered, 10);
        match msgs.last().unwrap() {
            ScanMsg::CellEnd { expected_points, .. } => assert_eq!(*expected_points, 30),
            other => panic!("expected CellEnd, got {other:?}"),
        }
        assert_eq!(counters.snapshot().scan_failures, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Every backend × codec combination delivers the exact same points in
    /// the exact same order as the legacy GB01 stream of the same bucket.
    #[test]
    fn gb02_scan_is_bit_identical_across_backends_and_codecs() {
        let dir = tmpdir("gb02_ident");
        let cell = GridCell::new(6, 6).unwrap();
        let n = 103; // not a multiple of the block size: exercises the tail
        let gb01 = write_bucket(&dir, cell, n);

        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 256);
        let op = ScanOp::new(vec![gb01], 10, q.producer());
        let c = q.consumer();
        q.seal();
        op.run().unwrap();
        let reference = drain_points(&std::iter::from_fn(|| c.recv()).collect::<Vec<_>>());
        assert_eq!(reference.len(), n);

        for backend in BackendKind::ALL {
            for codec in Codec::ALL {
                let path = write_bucket_gb02(&dir, cell, n, codec, 16);
                let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 256);
                let op = ScanOp::new(vec![path.clone()], 10, q.producer()).with_backend(backend);
                let c = q.consumer();
                q.seal();
                let stats = op.run().unwrap();
                let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
                let got = drain_points(&msgs);
                assert_eq!(got, reference, "{backend:?}/{codec:?} diverged");
                // One batch per block (103 points at 16/block → 7 blocks),
                // plus the CellEnd marker.
                assert_eq!(stats.items_out, 7 + 1, "{backend:?}/{codec:?}");
                match msgs.last().unwrap() {
                    ScanMsg::CellEnd { cell: end_cell, expected_points } => {
                        assert_eq!(*end_cell, cell);
                        assert_eq!(*expected_points, n);
                    }
                    other => panic!("expected CellEnd, got {other:?}"),
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// GB02 containers honour the scan fault machinery: injected block
    /// faults retry to success, and permanent ones abandon the tail under
    /// a tolerant policy while the CellEnd still promises the header count.
    #[test]
    fn gb02_injected_faults_retry_and_quarantine() {
        let dir = tmpdir("gb02_faults");
        let cell = GridCell::new(7, 7).unwrap();
        let path = write_bucket_gb02(&dir, cell, 48, Codec::ShuffleRle, 8);

        // Transient: every block read fails once, then succeeds on retry.
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 256);
        let faults = FaultContext::new(
            Some(FaultPlan {
                scan_error_rate: 1.0,
                scan_permanent_fraction: 0.0,
                ..FaultPlan::none(17)
            }),
            FaultPolicy { scan_retries: 2, ..FaultPolicy::tolerant() },
        );
        let counters = Arc::clone(&faults.counters);
        let op = ScanOp::new(vec![path.clone()], 10, q.producer()).with_faults(faults);
        let c = q.consumer();
        q.seal();
        op.run().unwrap();
        let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        assert_eq!(drain_points(&msgs).len(), 48);
        assert!(counters.snapshot().scan_retries > 0);
        assert_eq!(counters.snapshot().scan_failures, 0);

        // Permanent under strict: the run aborts with a data error.
        let plan =
            FaultPlan { scan_error_rate: 1.0, scan_permanent_fraction: 1.0, ..FaultPlan::none(3) };
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 256);
        let op = ScanOp::new(vec![path.clone()], 10, q.producer())
            .with_faults(FaultContext::new(Some(plan.clone()), FaultPolicy::strict()));
        let _c = q.consumer();
        q.seal();
        assert!(matches!(op.run(), Err(EngineError::Data(_))));

        // Permanent mid-bucket under tolerant: the tail is abandoned but
        // CellEnd still reports the promised count.
        let seed = (0..10_000u64)
            .find(|&s| {
                let p = FaultPlan {
                    scan_error_rate: 0.3,
                    scan_permanent_fraction: 1.0,
                    ..FaultPlan::none(s)
                };
                let key = path_key(&path);
                p.scan_fault(key, OPEN_BATCH_KEY).is_none()
                    && p.scan_fault(key, 0).is_none()
                    && p.scan_fault(key, 1) == Some(ScanFault::Permanent)
            })
            .expect("some seed fails exactly block 1");
        let plan = FaultPlan {
            scan_error_rate: 0.3,
            scan_permanent_fraction: 1.0,
            ..FaultPlan::none(seed)
        };
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 256);
        let faults = FaultContext::new(Some(plan), FaultPolicy::tolerant());
        let counters = Arc::clone(&faults.counters);
        let op = ScanOp::new(vec![path], 10, q.producer()).with_faults(faults);
        let c = q.consumer();
        q.seal();
        op.run().unwrap();
        let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        // Block 0 (8 points) arrived before block 1 permanently failed.
        assert_eq!(drain_points(&msgs).len(), 8);
        match msgs.last().unwrap() {
            ScanMsg::CellEnd { expected_points, .. } => assert_eq!(*expected_points, 48),
            other => panic!("expected CellEnd, got {other:?}"),
        }
        assert_eq!(counters.snapshot().scan_failures, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Sim-object-store GET flakiness (a separate injection channel from
    /// block faults) is absorbed by the block retry loop: each retry issues
    /// fresh GETs with fresh ordinals, so injected GET faults behave as
    /// transient flakiness. GET rolls are keyed by a hash of the bucket
    /// PATH (which embeds the test pid), so whether one seed's ~10 GETs
    /// draw a fault varies per run — sweep seeds until one does; every
    /// swept run must still deliver all points with zero hard failures.
    #[test]
    fn gb02_sim_store_get_flakiness_is_retried() {
        let dir = tmpdir("gb02_getfaults");
        let cell = GridCell::new(8, 8).unwrap();
        let path = write_bucket_gb02(&dir, cell, 64, Codec::Raw, 8);
        let mut retried = false;
        for seed in 29..29 + 16 {
            let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 256);
            let faults = FaultContext::new(
                Some(FaultPlan { object_get_error_rate: 0.3, ..FaultPlan::none(seed) }),
                FaultPolicy { scan_retries: 10, ..FaultPolicy::tolerant() },
            );
            let counters = Arc::clone(&faults.counters);
            let op = ScanOp::new(vec![path.clone()], 10, q.producer())
                .with_faults(faults)
                .with_backend(BackendKind::SimObjectStore);
            let c = q.consumer();
            q.seal();
            op.run().unwrap();
            let msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
            assert_eq!(drain_points(&msgs).len(), 64, "all points despite GET flakiness");
            let snap = counters.snapshot();
            assert_eq!(snap.scan_failures, 0);
            if snap.scan_retries > 0 {
                retried = true;
                break;
            }
        }
        assert!(retried, "a 30% GET fault rate must trigger retries within 16 seeds");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The prefetch pipeline reports per-block telemetry: block counts,
    /// byte counters, the compression-ratio gauge, and `scan.block` events.
    #[test]
    fn gb02_scan_reports_block_metrics() {
        let dir = tmpdir("gb02_metrics");
        let cell = GridCell::new(9, 9).unwrap();
        let path = write_bucket_gb02(&dir, cell, 90, Codec::ShuffleRle, 16);
        let q: SmartQueue<ScanMsg> = SmartQueue::new("scan", 256);
        let rec = Arc::new(Recorder::new());
        let op = ScanOp::new(vec![path], 10, q.producer()).with_recorder(Some(Arc::clone(&rec)));
        let c = q.consumer();
        q.seal();
        op.run().unwrap();
        let _msgs: Vec<ScanMsg> = std::iter::from_fn(|| c.recv()).collect();
        let reg = rec.registry();
        assert_eq!(reg.counter("scan_blocks_total").get(), 6); // ceil(90/16)
        let stored = reg.counter("scan_stored_bytes_total").get();
        let payload = reg.counter("scan_payload_bytes_total").get();
        assert_eq!(payload, 90 * 2 * 8);
        assert!(stored > 0 && stored < payload, "shuffle+RLE must compress: {stored}");
        assert!(
            reg.counter("scan_prefetch_hits_total").get()
                + reg.counter("scan_prefetch_misses_total").get()
                == 6
        );
        let ratio = reg.gauge("scan_compression_ratio").get();
        assert!((ratio - payload as f64 / stored as f64).abs() < 1e-9);
    }
}
