//! The concrete stream operators of the partial/merge dataflow
//! (Figure 5 of the paper): scan → chunker → cloned partial k-means → merge.

pub mod chunker;
pub mod coreset_op;
pub mod fine;
pub mod merge_op;
pub mod partial_op;
pub mod scan;

pub use chunker::{ChunkPolicy, ChunkerOp};
pub use coreset_op::CoresetOp;
pub use fine::{choose_random_seeds, fine_kmeans, FineRun};
pub use merge_op::MergeKMeansOp;
pub use partial_op::{chunk_seed, PartialKMeansOp};
pub use scan::ScanOp;
