//! The resource model the optimizer plans against.

use serde::{Deserialize, Serialize};

/// Available computing resources: the paper's two bottleneck axes (volatile
/// memory for operator state, processors for operator clones) plus the
/// queueing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resources {
    /// Volatile memory available to one partial operator's state — a chunk
    /// must fit here (§3.2: partitions "can be stored into available
    /// volatile memory (physical memory, not virtual memory)").
    pub chunk_memory_bytes: usize,
    /// Worker threads available for operator clones ("machines" in the
    /// paper's network-of-PCs deployment).
    pub workers: usize,
    /// Capacity of each smart queue.
    pub queue_capacity: usize,
    /// Points per scan batch.
    pub scan_batch: usize,
}

impl Resources {
    /// Detects host parallelism and pairs it with a default 32 MiB chunk
    /// budget (≈ 700k 6-dim points — a comfortable laptop-scale default).
    pub fn detect() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { chunk_memory_bytes: 32 << 20, workers, queue_capacity: 64, scan_batch: 4096 }
    }

    /// A fixed, test-friendly resource set.
    pub fn fixed(chunk_memory_bytes: usize, workers: usize) -> Self {
        Self { chunk_memory_bytes, workers: workers.max(1), queue_capacity: 64, scan_batch: 4096 }
    }
}

impl Default for Resources {
    fn default() -> Self {
        Self::detect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_reports_at_least_one_worker() {
        let r = Resources::detect();
        assert!(r.workers >= 1);
        assert!(r.chunk_memory_bytes > 0);
    }

    #[test]
    fn fixed_clamps_workers() {
        assert_eq!(Resources::fixed(1024, 0).workers, 1);
        assert_eq!(Resources::fixed(1024, 7).workers, 7);
    }
}
