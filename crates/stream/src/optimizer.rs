//! The query optimizer: logical plan + resources → physical plan.
//!
//! Implements the paper's planning rules (§3.4):
//!
//! * the partial k-means is "by far the most expensive computation" and "the
//!   most likely operator candidate to be cloned" — so it gets every
//!   available worker (Option 1: "clone the partial k-means to as many
//!   machines as possible"),
//! * the chunk size comes from the volatile-memory budget, so every
//!   partition "can be stored into available volatile memory",
//! * scan, chunker and merge stay single-instance: the scan is I/O-bound
//!   and the merge "is likely to be idle most of the time".

use crate::ops::ChunkPolicy;
use crate::plan::{LogicalPlan, PhysicalPlan};
use crate::resources::Resources;

/// Plans the physical execution of `logical` under `resources`.
pub fn optimize(logical: LogicalPlan, resources: &Resources) -> PhysicalPlan {
    let logical_inputs = logical.inputs.len().max(1);
    PhysicalPlan {
        logical,
        partial_clones: resources.workers.max(1),
        chunk_policy: ChunkPolicy::MemoryBudget { bytes: resources.chunk_memory_bytes.max(1) },
        queue_capacity: resources.queue_capacity.max(1),
        scan_batch: resources.scan_batch.max(1),
        // One scanner per two workers, capped by the input count: the scan
        // is I/O-bound, so it rarely pays to clone it as aggressively as
        // the partial operator.
        scan_clones: (resources.workers / 2).clamp(1, logical_inputs),
        fault_policy: crate::fault::FaultPolicy::default(),
        coreset: None,
        scan_backend: pmkm_data::BackendKind::default(),
    }
}

/// Plans with an explicit chunk size instead of a memory budget — used by
/// the experiment harnesses to pin the paper's 5-split / 10-split cases.
pub fn optimize_fixed_split(
    logical: LogicalPlan,
    resources: &Resources,
    points_per_chunk: usize,
) -> PhysicalPlan {
    PhysicalPlan {
        chunk_policy: ChunkPolicy::FixedPoints(points_per_chunk.max(1)),
        ..optimize(logical, resources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_core::KMeansConfig;
    use std::path::PathBuf;

    fn logical() -> LogicalPlan {
        LogicalPlan::new(vec![PathBuf::from("x.gb")], KMeansConfig::paper(4, 0))
    }

    #[test]
    fn clones_partial_to_all_workers() {
        let plan = optimize(logical(), &Resources::fixed(1 << 20, 6));
        assert_eq!(plan.partial_clones, 6);
        assert_eq!(plan.chunk_policy, ChunkPolicy::MemoryBudget { bytes: 1 << 20 });
        plan.validate().unwrap();
    }

    #[test]
    fn fixed_split_overrides_policy() {
        let plan = optimize_fixed_split(logical(), &Resources::fixed(1 << 20, 2), 2500);
        assert_eq!(plan.chunk_policy, ChunkPolicy::FixedPoints(2500));
        plan.validate().unwrap();
    }

    #[test]
    fn degenerate_resources_are_clamped() {
        let r = Resources { chunk_memory_bytes: 0, workers: 0, queue_capacity: 0, scan_batch: 0 };
        let plan = optimize(logical(), &r);
        assert_eq!(plan.partial_clones, 1);
        assert_eq!(plan.queue_capacity, 1);
        assert_eq!(plan.scan_batch, 1);
    }
}
