//! # pmkm-stream — a Conquest-style data-stream engine
//!
//! The execution substrate of the paper (§3–§4): partial/merge k-means
//! expressed as a pipelined dataflow of stream operators connected by
//! bounded **smart queues**, with the expensive partial operator **cloned**
//! across workers and chunk sizes fixed by a volatile-memory budget.
//!
//! ```text
//!            ┌──────────┐   ┌─────────┐   ┌────────────────┐   ┌───────┐
//!  buckets ─▶│   scan   │──▶│ chunker │──▶│ partial k-means│──▶│ merge │──▶ results
//!            └──────────┘   └─────────┘   │   (× clones)   │   └───────┘
//!                                         └────────────────┘
//! ```
//!
//! * [`queue`] — bounded MPMC edges with backpressure + telemetry,
//! * [`ops`] — the four operators of Figure 5,
//! * [`plan`] / [`optimizer`] / [`resources`] — logical plans compiled to
//!   physical plans under a resource model (clone degree from processors,
//!   chunk size from memory),
//! * [`executor`] — thread-per-operator pipelined execution,
//! * [`telemetry`] — per-operator busy/idle accounting (the paper's
//!   observation that "the merge operator ... is likely to be idle most of
//!   the time" is directly measurable from [`telemetry::OpStats`]).
//!
//! ## Quick start
//!
//! ```no_run
//! use pmkm_stream::prelude::*;
//! use pmkm_core::KMeansConfig;
//!
//! let logical = LogicalPlan::new(
//!     vec!["buckets/cell_090_180.gb".into()],
//!     KMeansConfig::paper(40, 42),
//! );
//! let plan = optimize(logical, &Resources::detect());
//! let report = execute(&plan)?;
//! for cell in &report.cells {
//!     println!("cell {} → {} centroids, E_pm = {:.1}",
//!         cell.cell.index(), cell.output.centroids.k(), cell.output.epm);
//! }
//! # Ok::<(), pmkm_stream::EngineError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod error;
pub mod executor;
pub mod fault;
pub mod item;
pub mod ops;
pub mod optimizer;
pub mod orchestrator;
pub mod plan;
pub mod queue;
pub mod resources;
pub mod telemetry;
pub mod watchdog;

pub use adaptive::{execute_adaptive, execute_adaptive_observed, AdaptiveReport, ScalingEvent};
pub use error::{EngineError, Result};
pub use executor::{
    coreset_report, execute, execute_cell, execute_observed, execute_with_faults, EngineReport,
};
pub use fault::{record_fault, FaultContext, FaultCounters, FaultPlan, FaultPolicy};
pub use item::{CellClustering, ChunkMsg, MergeMsg, ScanMsg};
pub use optimizer::{optimize, optimize_fixed_split};
pub use orchestrator::{
    orchestrate, CellOutcome, MemoryBudget, OrchestratorOptions, PlanetReport, CHECKPOINT_VERSION,
};
pub use plan::{CoresetSpec, LogicalPlan, PhysicalPlan};
pub use queue::{QueueStats, SmartQueue};
pub use resources::Resources;
pub use telemetry::OpStats;
pub use watchdog::{Watchdog, WatchdogConfig, WatchdogSink};

/// Convenience prelude.
pub mod prelude {
    pub use crate::executor::{execute, execute_observed, execute_with_faults, EngineReport};
    pub use crate::fault::{FaultPlan, FaultPolicy};
    pub use crate::optimizer::{optimize, optimize_fixed_split};
    pub use crate::orchestrator::{orchestrate, OrchestratorOptions, PlanetReport};
    pub use crate::plan::{LogicalPlan, PhysicalPlan};
    pub use crate::resources::Resources;
}
