//! Dynamic re-optimization: scale the partial-operator clone count *during*
//! execution based on observed queue backpressure.
//!
//! The paper runs on Conquest, which "includes a query re-optimizer for
//! dynamic adaptation of long running queries, but we did not exploit this
//! component in the tests" (§4). This module supplies that missing piece
//! for the partial/merge dataflow: execution starts with a single partial
//! clone, a monitor samples the chunker→partial queue, and whenever the
//! queue sits full (the producer is being back-pressured) another clone is
//! started — up to the plan's limit. Results are identical to static
//! execution (per-chunk seeds), only the wall-clock changes.

use crate::error::{EngineError, Result};
use crate::executor::EngineReport;
use crate::fault::FaultContext;
use crate::item::{CellClustering, ChunkMsg, MergeMsg, ScanMsg};
use crate::ops::{ChunkerOp, MergeKMeansOp, PartialKMeansOp, ScanOp};
use crate::plan::PhysicalPlan;
use crate::queue::SmartQueue;
use crate::telemetry::OpStats;
use pmkm_obs::Recorder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One scale-up decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingEvent {
    /// Time since execution start.
    pub at: Duration,
    /// Total partial clones running after this event.
    pub clones: usize,
}

/// Report of an adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// The usual engine report.
    pub report: EngineReport,
    /// Partial clones actually started (1 ≤ … ≤ `plan.partial_clones`).
    pub clones_started: usize,
    /// When each extra clone was added.
    pub scaling_events: Vec<ScalingEvent>,
}

/// How often the monitor samples the chunk queue.
const MONITOR_PERIOD: Duration = Duration::from_millis(1);
/// Minimum time between two scale-ups, so a single burst doesn't
/// immediately exhaust the clone budget.
const SCALE_COOLDOWN: Duration = Duration::from_millis(5);

/// Executes the plan with demand-driven partial-operator cloning.
///
/// `plan.partial_clones` is the *maximum*; execution starts with one clone.
pub fn execute_adaptive(plan: &PhysicalPlan) -> Result<AdaptiveReport> {
    execute_adaptive_observed(plan, None)
}

/// [`execute_adaptive`] with an optional trace/metrics recorder attached to
/// every operator instance (including clones started mid-run) and to the
/// scaling monitor, which emits an `adaptive.scale_up` event and bumps the
/// `adaptive_scale_ups_total` counter per decision.
pub fn execute_adaptive_observed(
    plan: &PhysicalPlan,
    rec: Option<Arc<Recorder>>,
) -> Result<AdaptiveReport> {
    plan.validate()?;
    if plan.coreset.is_some() {
        // The adaptive executor scales the partial stage and keeps the
        // classic merge; silently dropping the coreset spec would change
        // results, so refuse instead.
        return Err(EngineError::InvalidPlan(
            "adaptive execution does not support coreset mode; use execute/orchestrate".into(),
        ));
    }
    let faults = FaultContext::new(None, plan.fault_policy);
    let started = Instant::now();
    let cap = plan.queue_capacity;
    let depth_every = rec.as_deref().map(|r| r.config().depth_sample_interval()).unwrap_or(1);
    let q_scan: SmartQueue<ScanMsg> =
        SmartQueue::new("scan→chunker", cap).with_depth_sample_interval(depth_every);
    let q_chunks: Arc<SmartQueue<ChunkMsg>> =
        Arc::new(SmartQueue::new("chunker→partial", cap).with_depth_sample_interval(depth_every));
    let q_merge: SmartQueue<MergeMsg> =
        SmartQueue::new("partial→merge", cap).with_depth_sample_interval(depth_every);
    let q_results: SmartQueue<CellClustering> =
        SmartQueue::new("merge→sink", cap).with_depth_sample_interval(depth_every);

    // Adaptive mode keeps a single scan clone; the adaptation axis here is
    // the partial operator (the paper's dominant cost).
    let scan = ScanOp::new(plan.logical.inputs.clone(), plan.scan_batch, q_scan.producer())
        .with_recorder(rec.clone())
        .with_faults(faults.clone())
        .with_backend(plan.scan_backend);
    let chunker = ChunkerOp::new(
        q_scan.consumer(),
        q_chunks.producer(),
        q_merge.producer(),
        plan.chunk_policy,
    )
    .with_recorder(rec.clone())
    .with_faults(faults.clone());
    let max_clones = plan.partial_clones.max(1);
    let mut clones: Vec<PartialKMeansOp> = (0..max_clones)
        .map(|i| {
            PartialKMeansOp::new(q_chunks.consumer(), q_merge.producer(), plan.logical.kmeans, i)
                .with_recorder(rec.clone())
                .with_faults(faults.clone())
        })
        .collect();
    let merge = MergeKMeansOp::new(
        q_merge.consumer(),
        q_results.producer(),
        plan.logical.kmeans,
        plan.logical.merge_mode,
        plan.logical.merge_restarts,
    )
    .with_recorder(rec.clone())
    .with_faults(faults.clone());
    let results = q_results.consumer();
    q_scan.seal();
    q_chunks.seal();
    q_merge.seal();
    q_results.seal();

    type OpHandle = JoinHandle<Result<OpStats>>;
    let chunking_done = Arc::new(AtomicBool::new(false));

    let mut op_handles: Vec<(&'static str, OpHandle)> = Vec::new();
    op_handles.push(("scan", std::thread::spawn(move || scan.run())));
    {
        let flag = Arc::clone(&chunking_done);
        op_handles.push((
            "chunker",
            std::thread::spawn(move || {
                let r = chunker.run();
                flag.store(true, Ordering::SeqCst);
                r
            }),
        ));
    }
    // First clone starts immediately; the rest wait for demand.
    let spares: Vec<PartialKMeansOp> = clones.split_off(1);
    let first = clones.pop().expect("max_clones >= 1");
    op_handles.push(("partial-kmeans", std::thread::spawn(move || first.run())));
    op_handles.push(("merge", std::thread::spawn(move || merge.run())));

    // Monitor: watches queue backlog, starts spare clones on sustained
    // backpressure, and drops unused spares once chunking is over (their
    // producers must hang up for the merge to see end-of-stream).
    let monitor: JoinHandle<(Vec<OpHandle>, Vec<ScalingEvent>)> = {
        let q = Arc::clone(&q_chunks);
        let done = Arc::clone(&chunking_done);
        let rec = rec.clone();
        std::thread::spawn(move || {
            let mut spares = spares;
            let mut spawned: Vec<OpHandle> = Vec::new();
            let mut events = Vec::new();
            let mut running = 1usize;
            let mut last_scale = Instant::now() - SCALE_COOLDOWN;
            loop {
                std::thread::sleep(MONITOR_PERIOD);
                let s = q.stats();
                let backlog = s.sends.saturating_sub(s.recvs);
                if backlog >= s.capacity as u64
                    && !spares.is_empty()
                    && last_scale.elapsed() >= SCALE_COOLDOWN
                {
                    let op = spares.remove(0);
                    spawned.push(std::thread::spawn(move || op.run()));
                    running += 1;
                    last_scale = Instant::now();
                    if let Some(rec) = rec.as_deref() {
                        rec.registry().counter("adaptive_scale_ups_total").inc();
                        rec.event(
                            "adaptive.scale_up",
                            &[("clones", running.into()), ("backlog", backlog.into())],
                        );
                    }
                    events.push(ScalingEvent { at: started.elapsed(), clones: running });
                }
                if done.load(Ordering::SeqCst) && backlog == 0 {
                    // No more work will arrive; release the unused spares'
                    // queue handles so end-of-stream can propagate.
                    drop(spares);
                    break;
                }
            }
            (spawned, events)
        })
    };

    // Sink: drain final results.
    let mut cells = Vec::new();
    while let Some(r) = results.recv() {
        cells.push(r);
    }

    let (spawned, scaling_events) =
        monitor.join().map_err(|_| EngineError::OperatorPanic("monitor".into()))?;
    let clones_started = 1 + spawned.len();
    for h in spawned {
        op_handles.push(("partial-kmeans", h));
    }

    let mut op_stats = Vec::new();
    let mut first_err: Option<EngineError> = None;
    for (name, h) in op_handles {
        match h.join() {
            Ok(Ok(stats)) => op_stats.push(stats),
            Ok(Err(e)) => match (&first_err, &e) {
                (None, _) => first_err = Some(e),
                (Some(EngineError::Disconnected(_)), e2)
                    if !matches!(e2, EngineError::Disconnected(_)) =>
                {
                    first_err = Some(e)
                }
                _ => {}
            },
            Err(_) => first_err = Some(EngineError::OperatorPanic(name.to_string())),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    cells.sort_by_key(|c| c.cell.index());
    let queue_stats = vec![q_scan.stats(), q_chunks.stats(), q_merge.stats(), q_results.stats()];
    let fault_report = faults.counters.snapshot();
    let degraded = fault_report.scan_failures > 0
        || fault_report.chunks_quarantined > 0
        || fault_report.cells_degraded > 0;
    Ok(AdaptiveReport {
        report: EngineReport {
            cells,
            op_stats,
            queue_stats,
            elapsed: started.elapsed(),
            faults: fault_report,
            degraded,
        },
        clones_started,
        scaling_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize_fixed_split;
    use crate::plan::LogicalPlan;
    use crate::resources::Resources;
    use pmkm_core::{Dataset, KMeansConfig};
    use pmkm_data::{GridBucket, GridCell};
    use std::path::PathBuf;

    fn write_cell(dir: &std::path::Path, idx: u16, n: usize) -> PathBuf {
        use rand::Rng;
        let mut rng = pmkm_core::seeding::rng_for(5, idx as u64);
        let mut points = Dataset::new(2).unwrap();
        for _ in 0..n {
            let b = if rng.gen_bool(0.5) { 0.0 } else { 30.0 };
            points.push(&[b + rng.gen_range(-1.0..1.0), b + rng.gen_range(-1.0..1.0)]).unwrap();
        }
        let cell = GridCell::new(idx, idx).unwrap();
        let path = dir.join(cell.bucket_file_name());
        GridBucket { cell, points }.write_to(&path).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pmkm_adapt_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn adaptive_run_completes_and_conserves_weight() {
        let dir = tmpdir("basic");
        let paths = vec![write_cell(&dir, 1, 2_000), write_cell(&dir, 2, 1_000)];
        let plan = optimize_fixed_split(
            LogicalPlan::new(paths, KMeansConfig { restarts: 2, ..KMeansConfig::paper(3, 9) }),
            &Resources::fixed(1 << 20, 4),
            100, // many small chunks to give the monitor something to see
        );
        let out = execute_adaptive(&plan).unwrap();
        assert_eq!(out.report.cells.len(), 2);
        let totals: Vec<f64> =
            out.report.cells.iter().map(|c| c.output.cluster_weights.iter().sum()).collect();
        assert_eq!(totals, vec![2_000.0, 1_000.0]);
        assert!(out.clones_started >= 1 && out.clones_started <= 4);
        assert_eq!(out.scaling_events.len(), out.clones_started - 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adaptive_matches_static_results() {
        let dir = tmpdir("parity");
        let paths = vec![write_cell(&dir, 5, 1_500)];
        let mk = |paths: Vec<PathBuf>| {
            optimize_fixed_split(
                LogicalPlan::new(paths, KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 3) }),
                &Resources::fixed(1 << 20, 3),
                150,
            )
        };
        let adaptive = execute_adaptive(&mk(paths.clone())).unwrap();
        let statics = crate::executor::execute(&mk(paths)).unwrap();
        assert_eq!(adaptive.report.cells[0].output.centroids, statics.cells[0].output.centroids);
        assert_eq!(adaptive.report.cells[0].output.epm, statics.cells[0].output.epm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_max_clone_never_scales() {
        let dir = tmpdir("one");
        let paths = vec![write_cell(&dir, 8, 500)];
        let plan = optimize_fixed_split(
            LogicalPlan::new(paths, KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 1) }),
            &Resources::fixed(1 << 20, 1),
            50,
        );
        let out = execute_adaptive(&plan).unwrap();
        assert_eq!(out.clones_started, 1);
        assert!(out.scaling_events.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observed_adaptive_run_records_phases_and_matches_plain() {
        use pmkm_obs::{Profiler, RingBufferSink};
        let dir = tmpdir("observed");
        let paths = vec![write_cell(&dir, 3, 1_200), write_cell(&dir, 4, 600)];
        let mk = |paths: Vec<PathBuf>| {
            optimize_fixed_split(
                LogicalPlan::new(paths, KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 7) }),
                &Resources::fixed(1 << 20, 3),
                80,
            )
        };
        let plain = execute_adaptive(&mk(paths.clone())).unwrap();

        let ring = Arc::new(RingBufferSink::new(8192));
        let rec = Arc::new(
            Recorder::new().with_sink(ring.clone()).with_profiler(Arc::new(Profiler::new())),
        );
        let observed = execute_adaptive_observed(&mk(paths), Some(rec.clone())).unwrap();

        // Observation changes nothing about the results.
        assert_eq!(plain.report.cells.len(), observed.report.cells.len());
        for (a, b) in plain.report.cells.iter().zip(&observed.report.cells) {
            assert_eq!(a.output.centroids, b.output.centroids);
            assert_eq!(a.output.epm, b.output.epm);
        }
        assert!(!observed.report.degraded);

        // The full phase tree is recorded, exactly as in static execution:
        // every operator span plus the k-means sub-phases under `partial`.
        let report = observed.report.run_report(Some(&rec));
        let paths_seen: Vec<&str> = report.phases.iter().map(|p| p.path.as_str()).collect();
        for expect in ["scan", "chunk", "partial", "partial/seed", "partial/assign", "merge"] {
            assert!(paths_seen.contains(&expect), "missing phase {expect}: {paths_seen:?}");
        }
        for p in &report.phases {
            assert!(p.self_us <= p.total_us, "phase {}", p.path);
        }
        // Scale-up decisions surface as both counter and events, and agree
        // with the scaling log.
        let scale_ups = report
            .metrics
            .counters
            .iter()
            .find(|c| c.name == "adaptive_scale_ups_total")
            .map(|c| c.value)
            .unwrap_or(0);
        assert_eq!(scale_ups, observed.scaling_events.len() as u64);
        assert_eq!(observed.clones_started - 1, observed.scaling_events.len());
        assert!(!ring.is_empty(), "expected trace events");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adaptive_propagates_errors() {
        let plan = optimize_fixed_split(
            LogicalPlan::new(vec![PathBuf::from("/nonexistent/x.gb")], KMeansConfig::paper(2, 0)),
            &Resources::fixed(1 << 20, 2),
            50,
        );
        assert!(matches!(execute_adaptive(&plan), Err(EngineError::Data(_))));
    }
}
