//! The `pmkm` subcommands. Each command is a function from parsed [`Args`]
//! to an exit outcome, writing human-readable output to the supplied
//! writer so tests can capture it.

use crate::args::{ArgError, Args};
use pmkm_compress::compress_cell;
use pmkm_core::{KMeansConfig, MergeMode, PartialMergeConfig, PartitionSpec, PointSource};
use pmkm_data::binner::bin_stripes;
use pmkm_data::{GridBucket, SwathConfig, SwathSimulator};
use pmkm_stream::prelude::*;
use std::io::Write;
use std::path::PathBuf;

/// Any command failure.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// Underlying library failure.
    Run(String),
    /// No such subcommand.
    UnknownCommand(String),
    /// `pmkm diff` detected a performance regression — a distinct variant
    /// so the binary can exit with a machine-readable code (3) that CI
    /// gates can tell apart from plain failures (1).
    Regression(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Run(msg) => write!(f, "{msg}"),
            CliError::Regression(msg) => write!(f, "{msg}"),
            CliError::UnknownCommand(c) => {
                write!(
                    f,
                    "unknown command '{c}'; try: generate, bin, inspect, cluster, orchestrate, \
                     convert, diff, compress, query, serve-demo"
                )
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

fn run_err<E: std::fmt::Display>(e: E) -> CliError {
    CliError::Run(e.to_string())
}

/// Dispatches a subcommand.
pub fn dispatch<W: Write>(command: &str, args: &Args, out: &mut W) -> Result<(), CliError> {
    match command {
        "generate" => generate(args, out),
        "bin" => bin(args, out),
        "inspect" => inspect(args, out),
        "cluster" => cluster(args, out),
        "orchestrate" => orchestrate_cmd(args, out),
        "convert" => convert(args, out),
        "diff" => diff_runs(args, out),
        "compress" => compress(args, out),
        "query" => query(args, out),
        "serve-demo" => serve_demo(args, out),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// Usage text.
pub const USAGE: &str = "\
pmkm — partial/merge k-means over data streams (ICDE 2004 reproduction)

USAGE: pmkm <command> [options] [paths…]

COMMANDS
  generate  --out=DIR [--orbits=4] [--dim=6] [--seed=0] [--lat=20]
            [--step=0.05] [--samples=16]
            Simulate a satellite swath; writes stripe files into DIR.
  bin       --out=DIR <stripe files…>
            Sort stripe observations into per-cell grid-bucket files.
  inspect   [--timeline=TRACE.json] <bucket files… | ledger.jsonl… | report.json…>
            Print each bucket's header and per-dimension statistics. Given
            a run ledger (JSONL, from cluster --ledger) instead, print its
            rollup: per-phase table, per-cell mass audit, the slowest
            chunks, kernel dispatches, the fault timeline, and an ASCII
            Gantt of per-worker states when the run journaled a timeline.
            Given a RunReport JSON (from --metrics-out), print its headline
            numbers and per-worker utilization. --timeline exports the run
            as a Chrome trace-event JSON (chrome://tracing, Perfetto).
  cluster   [--k=40] [--restarts=10] [--seed=0] [--splits=P | --memory=BYTES]
            [--workers=N] [--kernel=auto] [--backend=local-file]
            [--adaptive] [--incremental]
            [--coreset=SIZE] [--coreset-window=CHUNKS] [--coreset-decay=L]
            [--tolerant] [--chaos=LEVEL:SEED]
            [--metrics-out=REPORT.json] [--trace=TRACE.jsonl]
            [--ledger=LEDGER.jsonl] [--serve=ADDR] [--folded=STACKS.txt]
            <bucket files…>
            Cluster each bucket with partial/merge k-means on the stream
            engine; prints centroids summary and operator telemetry.
            --kernel picks the assignment strategy (auto, scalar,
            fused); --backend picks the storage backend for GB02 block
            containers (local-file, mmap, sim-object-store) — GB01
            buckets always use the legacy buffered reader, and
            sim-object-store adds per-GET latency (plus seeded
            flakiness under --chaos); --tolerant enables the
            fault-tolerant policy (scan retries, poison quarantine,
            degraded merge with lost-mass accounting) instead of the
            strict fail-fast default; --chaos injects a seeded fault
            schedule (light:SEED or heavy:SEED) for chaos drills —
            combine with --tolerant to watch the engine degrade instead
            of erroring; --metrics-out writes a structured RunReport
            (JSON); --trace streams structured events as JSON lines;
            --ledger journals the run as an append-only JSONL event
            ledger (inspect or diff it afterwards); --serve exposes
            /metrics, /report.json, /healthz — plus /events and
            /ledger.jsonl when a ledger is active — over HTTP for the
            duration of the run; --folded writes the span profiler's
            folded stacks (pipe into inferno-flamegraph for an SVG
            flamegraph). --coreset=SIZE replaces the buffer-everything
            merge with a merge-reduce coreset tree: each chunk becomes a
            SIZE-point weighted coreset and live memory stays bounded by
            levels x SIZE regardless of stream length;
            --coreset-window=CHUNKS keeps only the last CHUNKS chunks
            (bucket-granularity eviction) and --coreset-decay=L scales
            live weights by L in (0,1] per chunk for recency-weighted
            clustering.
  orchestrate [--jobs=4] [--cells=N] [--k=40] [--restarts=10] [--seed=0]
            [--splits=P | --memory=BYTES] [--workers=1] [--budget=BYTES]
            [--backend=local-file]
            [--checkpoint-dir=DIR] [--resume] [--kill-after=K]
            [--coreset=SIZE] [--coreset-window=CHUNKS] [--coreset-decay=L]
            [--tolerant] [--chaos=LEVEL:SEED]
            [--metrics-out=REPORT.json] [--ledger=LEDGER.jsonl]
            [--serve=ADDR] [--watchdog=SECS]
            <bucket files…>
            Run many cells through the pipeline concurrently on --jobs
            work-stealing workers, each cell an independent pipeline
            (--workers partial clones inside it). --cells caps how many
            of the given buckets run; --budget bounds the total in-flight
            chunk memory across cells (workers block when exhausted);
            --checkpoint-dir persists each cell's merged result to a
            versioned, checksummed checkpoint file as it completes, and
            --resume loads valid checkpoints instead of re-scanning —
            a resumed run is bit-identical to an uninterrupted one.
            --kill-after=K is the chaos drill: simulate the process dying
            right after the K-th checkpoint write (pair with a later
            --resume to exercise recovery end-to-end). After a clean run,
            stale checkpoint files in --checkpoint-dir (foreign buckets,
            outdated plans) are garbage-collected. --serve exposes the
            live dashboard for the duration of the run: /status (planet
            progress, per-worker state and utilization, ETA) plus
            /metrics, /report.json, /healthz, /events, /ledger.jsonl.
            --watchdog=SECS starts a stall watchdog: no progress for SECS
            emits watchdog.stall to the ledger, a cell open longer than
            SECS and 4x the median cell time emits watchdog.straggler,
            and a worker parked on the memory budget past the deadline
            is flagged. --coreset=SIZE runs every cell on the bounded-
            memory merge-reduce coreset tree (see cluster); with --serve
            the anytime query — the mid-stream clustering over the live
            buckets — is published into /status as the `coreset` block
            on every tree level-up and at completion. --backend picks
            the GB02 storage backend (see cluster); the backend is part
            of the checkpoint plan fingerprint, so --resume only
            accepts checkpoints written under the same backend.
  convert   [--codec=shuffle-rle] [--block-points=4096] [--out=DIR]
            <bucket files…>
            Re-encode buckets as PMKMGB02 block containers: the payload
            is split into fixed-point-count blocks, each independently
            compressed and covered by an FNV-1a entry in a trailing
            index that enables ranged reads. Reads either format (GB01
            blobs or existing GB02 files, e.g. to recompress); writes
            NAME.gb2 next to each input, or into --out=DIR. --codec
            picks the block codec (raw, shuffle-rle); --block-points
            sets the points per block. Prints the block count and the
            payload compression ratio per file.
  diff      [--threshold=0.10] <A> <B>
            Compare two runs (each a run ledger or a RunReport JSON, mixed
            freely): prints the elapsed ratio, per-phase attribution of
            the delta with a confidence score, kernel dispatch changes,
            fault-counter deltas, and mass-conservation drift. Exits 3
            when B is more than --threshold slower than A, so CI gates
            can tell a regression (3) from a plain failure (1).
  serve-demo [--addr=127.0.0.1:0] [--iters=3] [--n=2000] [--k=8]
            [--splits=4] [--restarts=2] [--seed=0]
            Run a synthetic partial/merge workload while serving live
            telemetry over HTTP; self-probes /healthz and /metrics and
            prints the results. Useful for demos and smoke tests.
  compress  [--k=40] [--restarts=10] [--splits=5] [--seed=0] [--out=DIR]
            <bucket files…>
            Compress each bucket into a multivariate histogram (JSON).
  query     --range=DIM:LO:HI [--range=…] [--exact=BUCKET.gb] <histogram.json>
            Estimate range count/mean from a compressed histogram;
            --exact compares against the original bucket file.
";

fn generate<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&["out", "orbits", "dim", "seed", "lat", "step", "samples"])?;
    let dir: PathBuf = PathBuf::from(args.get_str("out", "stripes"));
    let lat: f64 = args.get("lat", 20.0)?;
    let cfg = SwathConfig {
        orbits: args.get("orbits", 4usize)?,
        attrs_dim: args.get("dim", 6usize)?,
        seed: args.get("seed", 0u64)?,
        lat_range: (-lat.abs(), lat.abs()),
        along_track_step_deg: args.get("step", 0.05f64)?,
        cross_track_samples: args.get("samples", 16usize)?,
        ..SwathConfig::default()
    };
    let mut sim = SwathSimulator::new(cfg).map_err(run_err)?;
    let stripes = sim.write_stripes(&dir).map_err(run_err)?;
    writeln!(out, "wrote {} stripe files to {}", stripes.len(), dir.display()).map_err(run_err)?;
    Ok(())
}

fn bin<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&["out"])?;
    let dir = PathBuf::from(args.get_str("out", "buckets"));
    let stripes: Vec<PathBuf> = args.positionals().iter().map(PathBuf::from).collect();
    if stripes.is_empty() {
        return Err(CliError::Run("bin: no stripe files given".into()));
    }
    let summary = bin_stripes(&stripes, &dir).map_err(run_err)?;
    writeln!(
        out,
        "binned {} observations into {} buckets under {}",
        summary.observations,
        summary.buckets.len(),
        dir.display()
    )
    .map_err(run_err)?;
    Ok(())
}

/// True when the file's first byte is `{` — a JSONL run ledger rather than
/// a binary grid bucket (whose magic never starts with `{`).
fn looks_like_ledger(path: &str) -> bool {
    std::fs::read(path)
        .is_ok_and(|bytes| bytes.iter().find(|b| !b.is_ascii_whitespace()).copied() == Some(b'{'))
}

/// Prints the per-cell / per-phase rollup of one run ledger.
fn inspect_ledger<W: Write>(
    path: &str,
    records: &[pmkm_obs::LedgerRecord],
    out: &mut W,
) -> Result<(), CliError> {
    let roll = pmkm_obs::rollup(records);
    writeln!(
        out,
        "{path}: ledger v{}, {} events, elapsed {} µs, mass ratio {:.6}",
        roll.version,
        roll.events,
        roll.elapsed_us,
        roll.mass_ratio()
    )
    .map_err(run_err)?;
    if !roll.phases.is_empty() {
        writeln!(out, "  [phases] path, calls, total µs, self µs, wall µs").map_err(run_err)?;
        for p in &roll.phases {
            writeln!(
                out,
                "    {:<24} {:>6} {:>10} {:>10} {:>10}",
                p.path, p.calls, p.total_us, p.self_us, p.wall_us
            )
            .map_err(run_err)?;
        }
    }
    for c in &roll.cells {
        let flag = if c.degraded { " DEGRADED" } else { "" };
        writeln!(
            out,
            "  [cell {}] {} chunks, expected {:.0}, lost {:.0} in {} chunk(s), \
             mse {:.3}, E_pm {:.1}{flag}",
            c.cell, c.chunks, c.expected_points, c.lost_points, c.lost_chunks, c.mse, c.epm
        )
        .map_err(run_err)?;
    }
    for ch in roll.slowest_chunks(5) {
        writeln!(
            out,
            "  [slow chunk] cell {} chunk {}: {} points in {} µs ({} attempt(s))",
            ch.cell, ch.chunk, ch.points, ch.duration_us, ch.attempts
        )
        .map_err(run_err)?;
    }
    for k in &roll.kernels {
        writeln!(out, "  [kernel] {}: {} dispatches, {} points", k.kind, k.runs, k.points)
            .map_err(run_err)?;
    }
    for f in &roll.fault_timeline {
        writeln!(out, "  [fault +{} µs] {} {}", f.ts_us, f.kind, f.detail).map_err(run_err)?;
    }
    if roll.resumed_cells > 0 || roll.invalid_checkpoints > 0 {
        writeln!(
            out,
            "  [resume] {} cell(s) restored from checkpoint, {} invalid checkpoint(s) re-scanned",
            roll.resumed_cells, roll.invalid_checkpoints
        )
        .map_err(run_err)?;
    }
    for ck in &roll.checkpoints {
        writeln!(
            out,
            "  [checkpoint +{} µs] cell {} seq {} ({} bytes)",
            ck.ts_us, ck.cell, ck.seq, ck.bytes
        )
        .map_err(run_err)?;
    }
    if roll.worker_transitions > 0 {
        writeln!(
            out,
            "  [workers] {} state transition(s) journaled (--timeline exports a Chrome trace)",
            roll.worker_transitions
        )
        .map_err(run_err)?;
    }
    if roll.watchdog_stalls > 0 || roll.watchdog_stragglers > 0 {
        writeln!(
            out,
            "  [watchdog] {} stall(s), {} straggler(s)",
            roll.watchdog_stalls, roll.watchdog_stragglers
        )
        .map_err(run_err)?;
    }
    if !roll.scan.is_empty() {
        writeln!(
            out,
            "  [scan] {} block(s), {} stored / {} payload bytes ({:.2}x), \
             {} zero-copy, prefetch hit rate {:.0}%",
            roll.scan.blocks,
            roll.scan.stored_bytes,
            roll.scan.payload_bytes,
            roll.scan.compression_ratio(),
            roll.scan.zero_copy_blocks,
            roll.scan.prefetch_hit_rate() * 100.0
        )
        .map_err(run_err)?;
    }
    if !roll.coreset.is_empty() {
        writeln!(
            out,
            "  [coreset] {} build(s), {} compaction(s), {} eviction(s), {} query(s); \
             net live {} bucket(s) / {:.0} point(s) across {} level(s), expired {:.0}",
            roll.coreset.builds,
            roll.coreset.compactions,
            roll.coreset.evictions,
            roll.coreset.queries,
            roll.coreset.live_buckets(),
            roll.coreset.live_weight(),
            roll.coreset.levels.len(),
            roll.coreset.expired_points
        )
        .map_err(run_err)?;
    }
    Ok(())
}

/// Prints the headline numbers of a structured `RunReport` JSON, including
/// the v6 per-worker timeline rollup when present.
fn inspect_report<W: Write>(
    path: &str,
    report: &pmkm_obs::RunReport,
    out: &mut W,
) -> Result<(), CliError> {
    writeln!(
        out,
        "{path}: run report v{}, {} cells, elapsed {:.0} ms",
        report.schema_version,
        report.cells.len(),
        report.elapsed.as_secs_f64() * 1e3
    )
    .map_err(run_err)?;
    if let Some(tl) = &report.timeline {
        writeln!(
            out,
            "  [timeline] {} worker(s), busy wall {} µs (per-thread max), span {} µs",
            tl.workers.len(),
            tl.wall_us,
            tl.span_us
        )
        .map_err(run_err)?;
        for w in &tl.workers {
            writeln!(
                out,
                "    {:<4} {:>3.0}% busy ({} transitions; scan {} µs, partial {} µs, \
                 merge {} µs, checkpoint {} µs, budget-wait {} µs)",
                w.worker,
                w.utilization * 100.0,
                w.transitions,
                w.scan_us,
                w.partial_us,
                w.merge_us,
                w.checkpoint_us,
                w.budget_wait_us
            )
            .map_err(run_err)?;
        }
    }
    Ok(())
}

fn inspect<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&["timeline"])?;
    let timeline_out = args.get_str("timeline", "");
    if args.positionals().is_empty() {
        return Err(CliError::Run("inspect: no bucket or ledger files given".into()));
    }
    let mut trace_json: Option<String> = None;
    for path in args.positionals() {
        if looks_like_ledger(path) {
            let text = std::fs::read_to_string(path).map_err(run_err)?;
            // A RunReport is one JSON document; a ledger is JSON lines.
            // Try the report first — a ledger always fails that parse.
            if let Ok(report) = serde_json::from_str::<pmkm_obs::RunReport>(&text) {
                inspect_report(path, &report, out)?;
                trace_json = Some(pmkm_obs::chrome_trace_from_report(&report));
            } else {
                let records = pmkm_obs::parse_ledger(&text).map_err(run_err)?;
                inspect_ledger(path, &records, out)?;
                if let Some(gantt) = pmkm_obs::ascii_gantt(&records, 72) {
                    for line in gantt.lines() {
                        writeln!(out, "  {line}").map_err(run_err)?;
                    }
                }
                trace_json = Some(pmkm_obs::chrome_trace(&records));
            }
            continue;
        }
        let p = PathBuf::from(path);
        let info = pmkm_data::probe(&p).map_err(run_err)?;
        let bucket = match info.format {
            pmkm_data::BucketFormat::Gb01 => GridBucket::read_from(&p).map_err(run_err)?,
            pmkm_data::BucketFormat::Gb02 => {
                let reader =
                    pmkm_data::Gb02Reader::open_path(&p, pmkm_data::BackendKind::LocalFile)
                        .map_err(run_err)?;
                writeln!(
                    out,
                    "{path}: gb02 container, {} block(s) of ≤{} points, codec {}",
                    reader.n_blocks(),
                    reader.block_points,
                    reader.default_codec
                )
                .map_err(run_err)?;
                reader.read_all().map_err(run_err)?
            }
        };
        let (lat, lon) = bucket.cell.center();
        writeln!(
            out,
            "{path}: cell {} (center {lat:.1}°, {lon:.1}°), {} points × {} dims [{}]",
            bucket.cell.index(),
            bucket.points.len(),
            bucket.points.dim(),
            info.format.label()
        )
        .map_err(run_err)?;
        if let Some(stats) = pmkm_data::stats::summarize(&bucket.points) {
            for (d, s) in stats.iter().enumerate() {
                writeln!(
                    out,
                    "  dim {d}: mean {:.2}, sd {:.2}, range [{:.2}, {:.2}]",
                    s.mean,
                    s.variance.sqrt(),
                    s.min,
                    s.max
                )
                .map_err(run_err)?;
            }
        }
    }
    if !timeline_out.is_empty() {
        let json = trace_json.ok_or_else(|| {
            CliError::Run(
                "inspect: --timeline needs a run ledger or RunReport JSON among the inputs".into(),
            )
        })?;
        std::fs::write(&timeline_out, json).map_err(run_err)?;
        writeln!(
            out,
            "wrote Chrome trace to {timeline_out} (open in chrome://tracing or ui.perfetto.dev)"
        )
        .map_err(run_err)?;
    }
    Ok(())
}

/// Loads one side of a `pmkm diff` as a comparable [`pmkm_obs::RunProfile`].
///
/// Accepts either a structured `RunReport` JSON (from `--metrics-out`) or a
/// JSONL run ledger (from `--ledger`); the two sides of a diff may mix the
/// formats freely. A whole-file `RunReport` parse is tried first — a JSONL
/// ledger always fails it (trailing lines) and falls through to the ledger
/// parser.
fn load_profile(path: &str) -> Result<pmkm_obs::RunProfile, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Run(format!("diff: cannot read {path}: {e}")))?;
    if let Ok(report) = serde_json::from_str::<pmkm_obs::RunReport>(&text) {
        return Ok(pmkm_obs::RunProfile::from_run_report(path, &report));
    }
    let records = pmkm_obs::parse_ledger(&text).map_err(|e| {
        CliError::Run(format!("diff: {path} is neither a RunReport nor a ledger: {e}"))
    })?;
    Ok(pmkm_obs::RunProfile::from_rollup(path, &pmkm_obs::rollup(&records)))
}

fn diff_runs<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&["threshold"])?;
    let threshold: f64 = args.get("threshold", 0.10)?;
    let paths = args.positionals();
    if paths.len() != 2 {
        return Err(CliError::Run(
            "diff: give exactly two runs to compare (each a ledger or a RunReport JSON)".into(),
        ));
    }
    let a = load_profile(&paths[0])?;
    let b = load_profile(&paths[1])?;
    let diff = pmkm_obs::diff_profiles(&a, &b, threshold);
    write!(out, "{}", diff.render()).map_err(run_err)?;
    if diff.regression {
        let culprit = diff
            .attributed_phase()
            .map(|p| format!(" (attributed to phase '{}')", p.path))
            .unwrap_or_default();
        return Err(CliError::Regression(format!(
            "regression: {} is {:.2}x slower than {}{culprit}",
            diff.label_b, diff.slowdown, diff.label_a
        )));
    }
    Ok(())
}

fn cluster<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&[
        "k",
        "restarts",
        "seed",
        "splits",
        "memory",
        "workers",
        "kernel",
        "backend",
        "adaptive",
        "incremental",
        "metrics-out",
        "trace",
        "ledger",
        "serve",
        "folded",
        "tolerant",
        "chaos",
        "coreset",
        "coreset-window",
        "coreset-decay",
    ])?;
    let paths: Vec<PathBuf> = args.positionals().iter().map(PathBuf::from).collect();
    if paths.is_empty() {
        return Err(CliError::Run("cluster: no bucket files given".into()));
    }
    let kernel_name = args.get_str("kernel", "auto");
    let kernel = pmkm_core::KernelKind::parse(&kernel_name).ok_or_else(|| {
        CliError::Run(format!("cluster: unknown kernel '{kernel_name}' (auto, scalar, fused)"))
    })?;
    let mut kcfg = KMeansConfig {
        restarts: args.get("restarts", 10usize)?,
        ..KMeansConfig::paper(args.get("k", 40usize)?, args.get("seed", 0u64)?)
    };
    kcfg.lloyd.kernel = kernel;
    let mut logical = LogicalPlan::new(paths, kcfg);
    if args.flag("incremental") {
        logical.merge_mode = MergeMode::Incremental;
    }
    let workers = args.get("workers", 0usize)?;
    let resources = if workers > 0 {
        Resources { workers, ..Resources::detect() }
    } else {
        Resources::detect()
    };
    let fault_plan = parse_chaos("cluster", &args.get_str("chaos", ""))?;
    let mut plan = match args.get::<usize>("splits", 0)? {
        0 => {
            let memory = args.get("memory", resources.chunk_memory_bytes)?;
            optimize(logical, &Resources { chunk_memory_bytes: memory, ..resources })
        }
        splits => {
            // Resolve splits per the largest bucket so every bucket gets at
            // most `splits` chunks. probe() reads only the header, and
            // understands both bucket formats.
            let max_points = logical
                .inputs
                .iter()
                .map(|p| pmkm_data::probe(p).map(|info| info.count))
                .collect::<Result<Vec<_>, _>>()
                .map_err(run_err)?
                .into_iter()
                .max()
                .unwrap_or(1);
            optimize_fixed_split(logical, &resources, max_points.div_ceil(splits).max(1))
        }
    };
    plan.scan_backend = parse_backend("cluster", args)?;
    if args.flag("tolerant") {
        plan.fault_policy = pmkm_stream::FaultPolicy::tolerant();
    }
    plan.coreset = parse_coreset("cluster", args)?;
    if plan.coreset.is_some() && args.flag("adaptive") {
        return Err(CliError::Run(
            "cluster: --coreset runs on the static executor; drop --adaptive".into(),
        ));
    }
    let metrics_out = args.get_str("metrics-out", "");
    let trace_out = args.get_str("trace", "");
    let ledger_out = args.get_str("ledger", "");
    let serve_addr = args.get_str("serve", "");
    let folded_out = args.get_str("folded", "");
    // A ledger backs the /events long-poll, so --serve without --ledger
    // still gets an in-memory journal; a bare run gets none at all.
    let ledger = if !ledger_out.is_empty() {
        Some(std::sync::Arc::new(pmkm_obs::LedgerSink::create(&ledger_out).map_err(run_err)?))
    } else if !serve_addr.is_empty() {
        Some(std::sync::Arc::new(pmkm_obs::LedgerSink::in_memory()))
    } else {
        None
    };
    let recorder = if metrics_out.is_empty()
        && trace_out.is_empty()
        && serve_addr.is_empty()
        && folded_out.is_empty()
        && ledger.is_none()
    {
        None
    } else {
        let mut rec =
            pmkm_obs::Recorder::new().with_profiler(std::sync::Arc::new(pmkm_obs::Profiler::new()));
        if !trace_out.is_empty() {
            let sink = pmkm_obs::JsonlSink::create(&trace_out).map_err(run_err)?;
            rec = rec.with_sink(std::sync::Arc::new(sink));
        }
        if let Some(ledger) = &ledger {
            rec = rec.with_sink(ledger.clone());
        }
        Some(std::sync::Arc::new(rec))
    };
    let server = if serve_addr.is_empty() {
        None
    } else {
        let rec = recorder.clone().expect("recorder is built whenever --serve is given");
        let ledger = ledger.clone().expect("ledger is built whenever --serve is given");
        let server = pmkm_obs::MetricsServer::serve_with_ledger(serve_addr.as_str(), rec, ledger)
            .map_err(run_err)?;
        writeln!(
            out,
            "serving telemetry at http://{} (/metrics, /report.json, /healthz, /events, \
             /ledger.jsonl)",
            server.local_addr()
        )
        .map_err(run_err)?;
        Some(server)
    };
    let report = if args.flag("adaptive") {
        if fault_plan.is_some() {
            return Err(CliError::Run(
                "cluster: --chaos targets the static executor; drop --adaptive".into(),
            ));
        }
        let adaptive =
            pmkm_stream::execute_adaptive_observed(&plan, recorder.clone()).map_err(run_err)?;
        writeln!(
            out,
            "adaptive execution: {} partial clones started ({} scale-ups)",
            adaptive.clones_started,
            adaptive.scaling_events.len()
        )
        .map_err(run_err)?;
        adaptive.report
    } else {
        pmkm_stream::execute_with_faults(&plan, recorder.clone(), fault_plan).map_err(run_err)?
    };
    writeln!(
        out,
        "clustered {} cells in {:.0} ms",
        report.cells.len(),
        report.elapsed.as_secs_f64() * 1e3
    )
    .map_err(run_err)?;
    for cell in &report.cells {
        let weight: f64 = cell.output.cluster_weights.iter().sum();
        let degraded = if cell.degraded {
            format!(
                " [degraded: lost {} points in {} chunk(s)]",
                cell.lost_points, cell.lost_chunks
            )
        } else {
            String::new()
        };
        let tree = coreset_tag(cell.coreset.as_ref());
        writeln!(
            out,
            "  cell {}: {} chunks, {} centroids, E_pm {:.1}, {} points{tree}{degraded}",
            cell.cell.index(),
            cell.chunks.len(),
            cell.output.centroids.k(),
            cell.output.epm,
            weight as u64
        )
        .map_err(run_err)?;
    }
    if report.faults.any() {
        let f = &report.faults;
        writeln!(
            out,
            "  [faults] scan retries {}, scan failures {}, poisoned {}, quarantined {}, \
             worker panics {}, chunk retries {}, stalls {}, degraded cells {}",
            f.scan_retries,
            f.scan_failures,
            f.chunks_poisoned,
            f.chunks_quarantined,
            f.worker_panics,
            f.chunk_retries,
            f.queue_stalls,
            f.cells_degraded
        )
        .map_err(run_err)?;
    }
    for op in &report.op_stats {
        writeln!(
            out,
            "  [op] {} #{}: busy {:.1} ms, blocked {:.1} ms, util {:.0}%, {} in / {} out",
            op.name,
            op.clone_id,
            op.busy.as_secs_f64() * 1e3,
            op.blocked.as_secs_f64() * 1e3,
            op.utilization() * 100.0,
            op.items_in,
            op.items_out
        )
        .map_err(run_err)?;
    }
    if let Some(rec) = &recorder {
        rec.flush();
    }
    if !metrics_out.is_empty() {
        let run_report = report.run_report(recorder.as_deref());
        let json = serde_json::to_string_pretty(&run_report).map_err(run_err)?;
        std::fs::write(&metrics_out, json).map_err(run_err)?;
        writeln!(out, "wrote run report to {metrics_out}").map_err(run_err)?;
    }
    if !trace_out.is_empty() {
        writeln!(out, "wrote trace to {trace_out}").map_err(run_err)?;
    }
    if !ledger_out.is_empty() {
        writeln!(out, "wrote ledger to {ledger_out}").map_err(run_err)?;
    }
    if !folded_out.is_empty() {
        let folded =
            recorder.as_ref().and_then(|r| r.profiler()).map(|p| p.folded()).unwrap_or_default();
        std::fs::write(&folded_out, folded).map_err(run_err)?;
        writeln!(out, "wrote folded stacks to {folded_out}").map_err(run_err)?;
    }
    if let Some(server) = server {
        // Publish the final report so a last scrape sees the complete run,
        // then release the socket.
        server.set_report(report.run_report(recorder.as_deref()));
        server.shutdown();
    }
    Ok(())
}

/// Parses the coreset-engine knobs: `--coreset=SIZE` switches the plan's
/// tail from the buffer-everything merge to the bounded-memory
/// merge-reduce tree; `--coreset-window=CHUNKS` adds a sliding window and
/// `--coreset-decay=LAMBDA` an exponential weight decay. Returns `None`
/// when `--coreset` is absent (the classic merge path).
fn parse_coreset(cmd: &str, args: &Args) -> Result<Option<pmkm_stream::CoresetSpec>, CliError> {
    let size = args.get("coreset", 0usize)?;
    let window = args.get("coreset-window", 0usize)?;
    let decay = args.get("coreset-decay", 0.0f64)?;
    if size == 0 {
        if window > 0 || decay != 0.0 {
            return Err(CliError::Run(format!(
                "{cmd}: --coreset-window/--coreset-decay need --coreset=SIZE"
            )));
        }
        return Ok(None);
    }
    let mut spec = pmkm_stream::CoresetSpec::new(size);
    if window > 0 {
        spec.window = Some(window);
    }
    if decay != 0.0 {
        spec.decay = Some(decay);
    }
    Ok(Some(spec))
}

/// One-line tree summary for the per-cell rows of `cluster`/`orchestrate`.
fn coreset_tag(stats: Option<&pmkm_core::CoresetStats>) -> String {
    match stats {
        Some(s) => format!(
            " [coreset: {} bucket(s), {} level(s), {} compaction(s)]",
            s.live_buckets, s.levels, s.compactions
        ),
        None => String::new(),
    }
}

/// Parses `--backend=KIND` into the plan's scan-backend knob.
fn parse_backend(cmd: &str, args: &Args) -> Result<pmkm_data::BackendKind, CliError> {
    let name = args.get_str("backend", "local-file");
    pmkm_data::BackendKind::parse(&name).ok_or_else(|| {
        CliError::Run(format!(
            "{cmd}: unknown backend '{name}' (local-file, mmap, sim-object-store)"
        ))
    })
}

/// Reads either bucket format fully into memory: a GB01 blob via the
/// legacy reader, a GB02 block container via the local-file backend.
fn read_bucket_any(path: &std::path::Path) -> Result<GridBucket, CliError> {
    match pmkm_data::probe(path).map_err(run_err)?.format {
        pmkm_data::BucketFormat::Gb01 => GridBucket::read_from(path).map_err(run_err),
        pmkm_data::BucketFormat::Gb02 => {
            pmkm_data::Gb02Reader::open_path(path, pmkm_data::BackendKind::LocalFile)
                .and_then(|r| r.read_all())
                .map_err(run_err)
        }
    }
}

fn convert<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&["out", "codec", "block-points"])?;
    let paths: Vec<PathBuf> = args.positionals().iter().map(PathBuf::from).collect();
    if paths.is_empty() {
        return Err(CliError::Run("convert: no bucket files given".into()));
    }
    let codec_name = args.get_str("codec", "shuffle-rle");
    let codec = pmkm_data::Codec::parse(&codec_name).ok_or_else(|| {
        CliError::Run(format!("convert: unknown codec '{codec_name}' (raw, shuffle-rle)"))
    })?;
    let block_points = args.get("block-points", pmkm_data::DEFAULT_BLOCK_POINTS)?;
    let out_dir = args.get_str("out", "");
    if !out_dir.is_empty() {
        std::fs::create_dir_all(&out_dir).map_err(run_err)?;
    }
    for path in &paths {
        let bucket = read_bucket_any(path)?;
        let dst = if out_dir.is_empty() {
            path.with_extension("gb2")
        } else {
            let name = path.file_stem().unwrap_or_default().to_string_lossy().into_owned();
            PathBuf::from(&out_dir).join(format!("{name}.gb2"))
        };
        let stats = pmkm_data::write_gb02(&bucket, &dst, codec, block_points).map_err(run_err)?;
        writeln!(
            out,
            "{}: {} points -> {} ({} block(s), {codec}, {:.2}x payload ratio, {} bytes)",
            path.display(),
            bucket.points.len(),
            dst.display(),
            stats.blocks,
            stats.ratio(),
            stats.file_bytes
        )
        .map_err(run_err)?;
    }
    Ok(())
}

/// Parses `--chaos=LEVEL:SEED` into a fault plan (`""` → `None`).
fn parse_chaos(cmd: &str, chaos: &str) -> Result<Option<pmkm_stream::FaultPlan>, CliError> {
    if chaos.is_empty() {
        return Ok(None);
    }
    let (level, seed) = chaos.split_once(':').ok_or_else(|| {
        CliError::Run(format!("{cmd}: --chaos takes LEVEL:SEED (e.g. light:11), got '{chaos}'"))
    })?;
    let seed: u64 =
        seed.parse().map_err(|_| CliError::Run(format!("{cmd}: bad chaos seed '{seed}'")))?;
    Ok(Some(match level {
        "light" => pmkm_stream::FaultPlan::light(seed),
        "heavy" => pmkm_stream::FaultPlan::heavy(seed),
        other => {
            return Err(CliError::Run(format!(
                "{cmd}: unknown chaos level '{other}' (light, heavy)"
            )))
        }
    }))
}

fn orchestrate_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&[
        "jobs",
        "cells",
        "k",
        "restarts",
        "seed",
        "splits",
        "memory",
        "workers",
        "backend",
        "budget",
        "checkpoint-dir",
        "resume",
        "kill-after",
        "tolerant",
        "chaos",
        "metrics-out",
        "ledger",
        "serve",
        "watchdog",
        "coreset",
        "coreset-window",
        "coreset-decay",
    ])?;
    let mut paths: Vec<PathBuf> = args.positionals().iter().map(PathBuf::from).collect();
    if paths.is_empty() {
        return Err(CliError::Run("orchestrate: no bucket files given".into()));
    }
    let cells_cap = args.get("cells", 0usize)?;
    if cells_cap > 0 {
        paths.truncate(cells_cap);
    }
    let kcfg = KMeansConfig {
        restarts: args.get("restarts", 10usize)?,
        ..KMeansConfig::paper(args.get("k", 40usize)?, args.get("seed", 0u64)?)
    };
    let logical = LogicalPlan::new(paths, kcfg);
    // Inside each cell the pipeline stays narrow by default — the
    // orchestrator's cross-cell workers are the parallelism axis.
    let workers = args.get("workers", 1usize)?.max(1);
    let resources = Resources { workers, ..Resources::detect() };
    let mut plan = match args.get::<usize>("splits", 0)? {
        0 => {
            let memory = args.get("memory", resources.chunk_memory_bytes)?;
            optimize(logical, &Resources { chunk_memory_bytes: memory, ..resources })
        }
        splits => {
            let max_points = logical
                .inputs
                .iter()
                .map(|p| pmkm_data::probe(p).map(|info| info.count))
                .collect::<Result<Vec<_>, _>>()
                .map_err(run_err)?
                .into_iter()
                .max()
                .unwrap_or(1);
            optimize_fixed_split(logical, &resources, max_points.div_ceil(splits).max(1))
        }
    };
    plan.scan_backend = parse_backend("orchestrate", args)?;
    if args.flag("tolerant") {
        plan.fault_policy = pmkm_stream::FaultPolicy::tolerant();
    }
    plan.coreset = parse_coreset("orchestrate", args)?;
    let fault_plan = parse_chaos("orchestrate", &args.get_str("chaos", ""))?;

    let mut opts = pmkm_stream::OrchestratorOptions::new(args.get("jobs", 4usize)?);
    let budget = args.get("budget", 0usize)?;
    if budget > 0 {
        opts = opts.with_budget(budget);
    }
    let ckpt_dir = args.get_str("checkpoint-dir", "");
    if !ckpt_dir.is_empty() {
        opts = opts.with_checkpoints(&ckpt_dir);
    }
    if args.flag("resume") {
        if ckpt_dir.is_empty() {
            return Err(CliError::Run("orchestrate: --resume needs --checkpoint-dir".into()));
        }
        opts = opts.resuming();
    }
    let kill_after = args.get("kill-after", 0usize)?;
    if kill_after > 0 {
        if ckpt_dir.is_empty() {
            return Err(CliError::Run("orchestrate: --kill-after needs --checkpoint-dir".into()));
        }
        opts = opts.kill_after(kill_after);
    }

    let metrics_out = args.get_str("metrics-out", "");
    let ledger_out = args.get_str("ledger", "");
    let serve_addr = args.get_str("serve", "");
    let watchdog_secs = args.get("watchdog", 0u64)?;
    // A ledger backs the /events long-poll, so --serve without --ledger
    // still gets an in-memory journal; a bare run gets none at all.
    let ledger = if !ledger_out.is_empty() {
        Some(std::sync::Arc::new(pmkm_obs::LedgerSink::create(&ledger_out).map_err(run_err)?))
    } else if !serve_addr.is_empty() {
        Some(std::sync::Arc::new(pmkm_obs::LedgerSink::in_memory()))
    } else {
        None
    };
    let watchdog_sink =
        (watchdog_secs > 0).then(|| std::sync::Arc::new(pmkm_stream::WatchdogSink::new()));
    let status = (!serve_addr.is_empty()).then(|| std::sync::Arc::new(pmkm_obs::StatusCell::new()));
    if let Some(status) = &status {
        opts = opts.with_status(status.clone());
    }
    let recorder = if metrics_out.is_empty() && ledger.is_none() && watchdog_sink.is_none() {
        None
    } else {
        // Any observed run gets a worker timeline: it feeds the /status
        // worker rows, the report's v6 rollup and the Chrome-trace export,
        // and costs nothing when nobody reads it.
        let mut rec = pmkm_obs::Recorder::new()
            .with_profiler(std::sync::Arc::new(pmkm_obs::Profiler::new()))
            .with_timeline(std::sync::Arc::new(pmkm_obs::Timeline::new()));
        if let Some(ledger) = &ledger {
            rec = rec.with_sink(ledger.clone());
        }
        if let Some(sink) = &watchdog_sink {
            rec = rec.with_sink(sink.clone());
        }
        Some(std::sync::Arc::new(rec))
    };
    let server = if serve_addr.is_empty() {
        None
    } else {
        let rec = recorder.clone().expect("recorder is built whenever --serve is given");
        let server = pmkm_obs::MetricsServer::serve_full(
            serve_addr.as_str(),
            rec,
            4,
            ledger.clone(),
            status.clone(),
        )
        .map_err(run_err)?;
        writeln!(
            out,
            "serving telemetry at http://{} (/metrics, /report.json, /healthz, /status, \
             /events, /ledger.jsonl)",
            server.local_addr()
        )
        .map_err(run_err)?;
        Some(server)
    };
    let watchdog = watchdog_sink.as_ref().map(|sink| {
        pmkm_stream::Watchdog::start(
            recorder.clone().expect("recorder is built whenever --watchdog is given"),
            sink.clone(),
            pmkm_stream::WatchdogConfig::after(std::time::Duration::from_secs(watchdog_secs)),
        )
    });

    let planet =
        pmkm_stream::orchestrate(&plan, &opts, recorder.clone(), fault_plan).map_err(run_err)?;
    if let Some(watchdog) = watchdog {
        watchdog.stop();
    }
    let interrupted = if planet.interrupted { " INTERRUPTED" } else { "" };
    writeln!(
        out,
        "orchestrated {} cells on {} workers in {:.0} ms ({} resumed, {} executed, \
         {} checkpoint(s) written, {} invalid, {} steal(s)){interrupted}",
        planet.cells.len(),
        planet.jobs,
        planet.elapsed.as_secs_f64() * 1e3,
        planet.cells_resumed,
        planet.cells_executed,
        planet.checkpoints_written,
        planet.checkpoints_invalid,
        planet.steals
    )
    .map_err(run_err)?;
    if planet.budget_peak > 0 {
        writeln!(out, "  [budget] peak in-flight {} bytes", planet.budget_peak).map_err(run_err)?;
    }
    for o in &planet.cells {
        let tag = if o.resumed { " [resumed]" } else { "" };
        match &o.clustering {
            Some(c) => {
                let weight: f64 = c.output.cluster_weights.iter().sum();
                let degraded = if c.degraded {
                    format!(
                        " [degraded: lost {} points in {} chunk(s)]",
                        c.lost_points, c.lost_chunks
                    )
                } else {
                    String::new()
                };
                let tree = coreset_tag(c.coreset.as_ref());
                writeln!(
                    out,
                    "  cell {}: {} chunks, {} centroids, E_pm {:.1}, {} points{tree}{degraded}{tag}",
                    c.cell.index(),
                    c.chunks.len(),
                    c.output.centroids.k(),
                    c.output.epm,
                    weight as u64
                )
                .map_err(run_err)?;
            }
            None => {
                writeln!(out, "  cell #{}: no surviving chunks [degraded]{tag}", o.input)
                    .map_err(run_err)?;
            }
        }
    }
    if planet.faults.any() {
        let f = &planet.faults;
        writeln!(
            out,
            "  [faults] scan retries {}, scan failures {}, poisoned {}, quarantined {}, \
             worker panics {}, chunk retries {}, stalls {}, degraded cells {}",
            f.scan_retries,
            f.scan_failures,
            f.chunks_poisoned,
            f.chunks_quarantined,
            f.worker_panics,
            f.chunk_retries,
            f.queue_stalls,
            f.cells_degraded
        )
        .map_err(run_err)?;
    }
    if let Some(rec) = &recorder {
        rec.flush();
    }
    if let Some(ledger) = &ledger {
        let roll = pmkm_obs::rollup(&ledger.records_after(0));
        if roll.watchdog_stalls > 0 || roll.watchdog_stragglers > 0 {
            writeln!(
                out,
                "  [watchdog] {} stall(s), {} straggler(s) — see the ledger for details",
                roll.watchdog_stalls, roll.watchdog_stragglers
            )
            .map_err(run_err)?;
        }
    }
    if !metrics_out.is_empty() {
        let run_report = planet.run_report(recorder.as_deref());
        let json = serde_json::to_string_pretty(&run_report).map_err(run_err)?;
        std::fs::write(&metrics_out, json).map_err(run_err)?;
        writeln!(out, "wrote run report to {metrics_out}").map_err(run_err)?;
    }
    if !ledger_out.is_empty() {
        writeln!(out, "wrote ledger to {ledger_out}").map_err(run_err)?;
    }
    if let Some(server) = server {
        // Publish the final report so a last scrape sees the complete run,
        // then release the socket.
        server.set_report(planet.run_report(recorder.as_deref()));
        server.shutdown();
    }
    Ok(())
}

fn compress<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&["k", "restarts", "splits", "seed", "out"])?;
    let paths: Vec<PathBuf> = args.positionals().iter().map(PathBuf::from).collect();
    if paths.is_empty() {
        return Err(CliError::Run("compress: no bucket files given".into()));
    }
    let out_dir = PathBuf::from(args.get_str("out", "histograms"));
    std::fs::create_dir_all(&out_dir).map_err(run_err)?;
    let cfg = PartialMergeConfig {
        kmeans: KMeansConfig {
            restarts: args.get("restarts", 10usize)?,
            ..KMeansConfig::paper(args.get("k", 40usize)?, args.get("seed", 0u64)?)
        },
        partitions: PartitionSpec::Count(args.get("splits", 5usize)?),
        ..PartialMergeConfig::paper(40, 5, 0)
    };
    for path in &paths {
        let bucket = read_bucket_any(path)?;
        if bucket.points.is_empty() {
            writeln!(out, "{}: empty, skipped", path.display()).map_err(run_err)?;
            continue;
        }
        let mut cell_cfg = cfg;
        cell_cfg.kmeans.k = cfg.kmeans.k.min(bucket.points.len());
        let compressed = compress_cell(&bucket.points, &cell_cfg).map_err(run_err)?;
        let json_path = out_dir.join(format!("cell_{}.json", bucket.cell.index()));
        let json = serde_json::to_string_pretty(&compressed.histogram).map_err(run_err)?;
        std::fs::write(&json_path, json).map_err(run_err)?;
        writeln!(
            out,
            "{}: {} points -> {} buckets, ratio {:.1}x, rms {:.2} -> {}",
            path.display(),
            bucket.points.len(),
            compressed.histogram.k(),
            compressed.summary.ratio,
            compressed.summary.mse.sqrt(),
            json_path.display()
        )
        .map_err(run_err)?;
    }
    Ok(())
}

fn parse_ranges(args: &Args, dim: usize) -> Result<pmkm_compress::RangeQuery, CliError> {
    let mut q = pmkm_compress::RangeQuery::all(dim);
    for value in args.get_all("range") {
        let parts: Vec<&str> = value.split(':').collect();
        if parts.len() != 3 {
            return Err(CliError::Run(format!("--range={value}: expected DIM:LO:HI")));
        }
        let d: usize =
            parts[0].parse().map_err(|_| CliError::Run(format!("bad dim '{}'", parts[0])))?;
        let lo: f64 =
            parts[1].parse().map_err(|_| CliError::Run(format!("bad lo '{}'", parts[1])))?;
        let hi: f64 =
            parts[2].parse().map_err(|_| CliError::Run(format!("bad hi '{}'", parts[2])))?;
        if d >= dim {
            return Err(CliError::Run(format!("dim {d} out of range for {dim}-d histogram")));
        }
        q = q.with(d, lo, hi);
    }
    Ok(q)
}

fn query<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&["range", "exact"])?;
    let paths = args.positionals();
    if paths.len() != 1 {
        return Err(CliError::Run("query: give exactly one histogram.json".into()));
    }
    let text = std::fs::read_to_string(&paths[0]).map_err(run_err)?;
    let hist: pmkm_compress::MultivariateHistogram =
        serde_json::from_str(&text).map_err(run_err)?;
    let q = parse_ranges(args, hist.dim)?;
    let est = pmkm_compress::estimate_count(&hist, &q).map_err(run_err)?;
    writeln!(
        out,
        "estimated count: {:.1} of {} ({:.2}% selectivity)",
        est.count,
        hist.total_count as u64,
        est.selectivity * 100.0
    )
    .map_err(run_err)?;
    if let Some(mean) = pmkm_compress::estimate_mean(&hist, &q).map_err(run_err)? {
        let pretty: Vec<String> = mean.iter().map(|m| format!("{m:.2}")).collect();
        writeln!(out, "estimated mean: [{}]", pretty.join(", ")).map_err(run_err)?;
    }
    let exact_path = args.get_str("exact", "");
    if !exact_path.is_empty() {
        let bucket = read_bucket_any(&PathBuf::from(&exact_path))?;
        let exact = pmkm_compress::exact_answer(&bucket.points, &q).map_err(run_err)?;
        writeln!(
            out,
            "exact count:     {} (estimate error {:.2}% of cell)",
            exact.count,
            (est.count - exact.count as f64).abs() / bucket.points.len().max(1) as f64 * 100.0
        )
        .map_err(run_err)?;
    }
    Ok(())
}

/// Issues one `GET path` against the exporter and returns the status line.
fn probe(addr: &std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    use std::io::Read;
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: pmkm\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response.lines().next().unwrap_or_default().to_string())
}

fn serve_demo<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&["addr", "iters", "n", "k", "splits", "restarts", "seed"])?;
    let addr = args.get_str("addr", "127.0.0.1:0");
    let iters = args.get("iters", 3usize)?;
    let n = args.get("n", 2_000usize)?;
    let k = args.get("k", 8usize)?;
    let splits = args.get("splits", 4usize)?;
    let restarts = args.get("restarts", 2usize)?;
    let seed = args.get("seed", 0u64)?;

    let rec = std::sync::Arc::new(
        pmkm_obs::Recorder::new().with_profiler(std::sync::Arc::new(pmkm_obs::Profiler::new())),
    );
    let server = pmkm_obs::MetricsServer::serve(addr.as_str(), rec.clone()).map_err(run_err)?;
    let local = server.local_addr();
    writeln!(out, "serving telemetry at http://{local} (/metrics, /report.json, /healthz)")
        .map_err(run_err)?;

    let points =
        pmkm_data::generator::generate_cell(&pmkm_data::generator::CellConfig::paper(n, seed))
            .map_err(run_err)?;
    for iter in 0..iters {
        let cfg = PartialMergeConfig {
            kmeans: KMeansConfig {
                restarts,
                ..KMeansConfig::paper(k, seed.wrapping_add(iter as u64))
            },
            partitions: PartitionSpec::Count(splits),
            ..PartialMergeConfig::paper(k, splits, seed)
        };
        let (result, run_report) =
            pmkm_core::partial_merge_observed(&points, &cfg, None, Some(&rec)).map_err(run_err)?;
        rec.registry().counter("demo_iterations_total").inc();
        server.set_report(run_report);
        writeln!(
            out,
            "iter {iter}: E_pm {:.1}, {} merge iterations",
            result.merge.epm, result.merge.iterations
        )
        .map_err(run_err)?;
    }

    // Self-probe so scripted runs (and CI smoke tests) verify liveness
    // end-to-end without an external HTTP client.
    for path in ["/healthz", "/metrics", "/report.json"] {
        let status = probe(&local, path).map_err(run_err)?;
        writeln!(out, "self-probe {path}: {status}").map_err(run_err)?;
    }
    server.shutdown();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cmd: &str, argv: &[String]) -> Result<String, CliError> {
        let args = Args::parse(argv.to_vec());
        let mut buf = Vec::new();
        dispatch(cmd, &args, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pmkm_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn full_cli_workflow() {
        let dir = tmp("flow");
        let stripes_dir = dir.join("stripes");
        // generate
        let out = run(
            "generate",
            &[
                format!("--out={}", stripes_dir.display()),
                "--orbits=2".into(),
                "--dim=3".into(),
                "--lat=3".into(),
                "--step=0.2".into(),
                "--samples=6".into(),
            ],
        )
        .unwrap();
        assert!(out.contains("2 stripe files"), "{out}");

        // bin
        let buckets_dir = dir.join("buckets");
        let mut argv: Vec<String> = vec![format!("--out={}", buckets_dir.display())];
        for e in std::fs::read_dir(&stripes_dir).unwrap() {
            argv.push(e.unwrap().path().display().to_string());
        }
        let out = run("bin", &argv).unwrap();
        assert!(out.contains("buckets under"), "{out}");

        // pick the biggest bucket
        let mut buckets: Vec<PathBuf> =
            std::fs::read_dir(&buckets_dir).unwrap().map(|e| e.unwrap().path()).collect();
        buckets.sort_by_key(|p| std::cmp::Reverse(std::fs::metadata(p).unwrap().len()));
        let biggest = buckets[0].display().to_string();

        // inspect
        let out = run("inspect", std::slice::from_ref(&biggest)).unwrap();
        assert!(out.contains("points ×"), "{out}");
        assert!(out.contains("dim 0"), "{out}");

        // cluster
        let out = run(
            "cluster",
            &["--k=4".into(), "--restarts=2".into(), "--splits=3".into(), biggest.clone()],
        )
        .unwrap();
        assert!(out.contains("clustered 1 cells"), "{out}");
        assert!(out.contains("E_pm"), "{out}");

        // cluster with an explicit assignment kernel
        let out = run(
            "cluster",
            &[
                "--k=4".into(),
                "--restarts=2".into(),
                "--splits=3".into(),
                "--kernel=fused".into(),
                biggest.clone(),
            ],
        )
        .unwrap();
        assert!(out.contains("clustered 1 cells"), "{out}");
        let err =
            run("cluster", &["--k=4".into(), "--kernel=warp".into(), biggest.clone()]).unwrap_err();
        assert!(err.to_string().contains("unknown kernel 'warp'"), "{err}");

        // cluster, adaptive path
        let out = run(
            "cluster",
            &[
                "--k=4".into(),
                "--restarts=2".into(),
                "--splits=3".into(),
                "--adaptive".into(),
                biggest.clone(),
            ],
        )
        .unwrap();
        assert!(out.contains("adaptive execution"), "{out}");

        // compress
        let hist_dir = dir.join("hist");
        let out = run(
            "compress",
            &[
                "--k=4".into(),
                "--restarts=2".into(),
                "--splits=3".into(),
                format!("--out={}", hist_dir.display()),
                biggest.clone(),
            ],
        )
        .unwrap();
        assert!(out.contains("ratio"), "{out}");
        assert!(std::fs::read_dir(&hist_dir).unwrap().count() == 1);

        // query the compressed form, with exact comparison
        let hist_json = std::fs::read_dir(&hist_dir).unwrap().next().unwrap().unwrap().path();
        let out = run(
            "query",
            &[
                "--range=0:-10000:10000".into(),
                format!("--exact={biggest}"),
                hist_json.display().to_string(),
            ],
        )
        .unwrap();
        assert!(out.contains("estimated count"), "{out}");
        assert!(out.contains("exact count"), "{out}");
        // Unbounded range: estimate equals the full cell.
        assert!(out.contains("100.00% selectivity"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_metrics_out_round_trips_losslessly() {
        let dir = tmp("metrics");
        // Build a small bucket directly.
        let mut points = pmkm_core::Dataset::new(2).unwrap();
        let mut x = 0.32_f64;
        for i in 0..180 {
            // Deterministic pseudo-random points around two separated blobs.
            x = (x * 997.13 + 0.7).fract();
            let blob = if i % 2 == 0 { 0.0 } else { 30.0 };
            points.push(&[blob + x, blob + (1.0 - x)]).unwrap();
        }
        let cell = pmkm_data::GridCell::new(21, 21).unwrap();
        let bucket_path = dir.join(cell.bucket_file_name());
        pmkm_data::GridBucket { cell, points }.write_to(&bucket_path).unwrap();

        let report_path = dir.join("report.json");
        let trace_path = dir.join("trace.jsonl");
        let out = run(
            "cluster",
            &[
                "--k=2".into(),
                "--restarts=2".into(),
                "--splits=3".into(),
                format!("--metrics-out={}", report_path.display()),
                format!("--trace={}", trace_path.display()),
                bucket_path.display().to_string(),
            ],
        )
        .unwrap();
        assert!(out.contains("wrote run report"), "{out}");
        assert!(out.contains("wrote trace"), "{out}");
        assert!(out.contains("util"), "{out}");

        // The written report parses, matches the dataset, and survives a
        // serialize → deserialize → serialize cycle without loss.
        let text = std::fs::read_to_string(&report_path).unwrap();
        let report: pmkm_obs::RunReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report.schema_version, pmkm_obs::report::SCHEMA_VERSION);
        assert_eq!(report.total_points(), 180);
        assert_eq!(report.cells.len(), 1);
        assert!(!report.metrics.counters.is_empty());
        let again = serde_json::to_string_pretty(&report).unwrap();
        let report2: pmkm_obs::RunReport = serde_json::from_str(&again).unwrap();
        assert_eq!(report, report2);

        // The trace is valid JSONL with at least one event per operator.
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let events: Vec<serde::Value> =
            trace.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        assert!(events.len() >= 4, "only {} events", events.len());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_serve_and_folded_expose_profiler_output() {
        let dir = tmp("serve");
        let mut points = pmkm_core::Dataset::new(2).unwrap();
        let mut x = 0.41_f64;
        for i in 0..160 {
            x = (x * 997.13 + 0.7).fract();
            let blob = if i % 2 == 0 { 0.0 } else { 25.0 };
            points.push(&[blob + x, blob - x]).unwrap();
        }
        let cell = pmkm_data::GridCell::new(22, 22).unwrap();
        let bucket_path = dir.join(cell.bucket_file_name());
        pmkm_data::GridBucket { cell, points }.write_to(&bucket_path).unwrap();

        let folded_path = dir.join("stacks.folded");
        let report_path = dir.join("report.json");
        let out = run(
            "cluster",
            &[
                "--k=2".into(),
                "--restarts=2".into(),
                "--splits=3".into(),
                "--serve=127.0.0.1:0".into(),
                format!("--folded={}", folded_path.display()),
                format!("--metrics-out={}", report_path.display()),
                bucket_path.display().to_string(),
            ],
        )
        .unwrap();
        assert!(out.contains("serving telemetry at http://127.0.0.1:"), "{out}");
        assert!(out.contains("wrote folded stacks"), "{out}");

        // Folded stacks carry the pipeline phases in `name;name value` form.
        let folded = std::fs::read_to_string(&folded_path).unwrap();
        assert!(folded.lines().any(|l| l.starts_with("partial ")), "{folded}");
        assert!(folded.lines().any(|l| l.starts_with("partial;assign ")), "{folded}");
        for line in folded.lines() {
            let (_, value) = line.rsplit_once(' ').expect("folded line has a value");
            value.parse::<u64>().expect("folded value is integral microseconds");
        }

        // The run report now carries the phase breakdown.
        let text = std::fs::read_to_string(&report_path).unwrap();
        let report: pmkm_obs::RunReport = serde_json::from_str(&text).unwrap();
        assert!(report.phases.iter().any(|p| p.path == "partial"), "{:?}", report.phases);
        assert!(report.phases.iter().any(|p| p.path == "merge"), "{:?}", report.phases);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_chaos_flags_inject_and_degrade_deterministically() {
        let dir = tmp("chaos");
        let cell = pmkm_data::GridCell::new(5, 5).unwrap();
        let mut points = pmkm_core::Dataset::new(2).unwrap();
        for i in 0..200 {
            let blob = if i % 2 == 0 { 0.0 } else { 40.0 };
            points.push(&[blob + (i % 7) as f64 * 0.1, blob + (i % 5) as f64 * 0.1]).unwrap();
        }
        let bucket = dir.join(cell.bucket_file_name());
        GridBucket { cell, points }.write_to(&bucket).unwrap();
        let path = bucket.display().to_string();

        // Chunk faults are keyed by (cell, chunk_id), independent of the
        // temp path, so a seed whose schedule corrupts at least one of the
        // four chunks can be found deterministically.
        let seed = (0..500u64)
            .find(|&s| {
                let plan = pmkm_stream::FaultPlan::heavy(s);
                (0..4).any(|c| plan.chunk_fault(cell.index(), c).is_some())
            })
            .expect("some seed corrupts a chunk");
        let base = vec!["--k=2".into(), "--restarts=2".into(), "--splits=4".into()];

        // Strict policy (the default): the injected corruption is an error,
        // never a silently wrong clustering.
        let mut argv = base.clone();
        argv.push(format!("--chaos=heavy:{seed}"));
        argv.push(path.clone());
        assert!(matches!(run("cluster", &argv), Err(CliError::Run(_))));

        // Tolerant policy: the run completes, reports the fault counters,
        // and flags the degradation in the RunReport.
        let report_path = dir.join("chaos_report.json");
        let mut argv = base.clone();
        argv.push(format!("--chaos=heavy:{seed}"));
        argv.push("--tolerant".into());
        argv.push(format!("--metrics-out={}", report_path.display()));
        argv.push(path.clone());
        let out = run("cluster", &argv).unwrap();
        assert!(out.contains("clustered"), "{out}");
        assert!(out.contains("[faults]"), "{out}");
        let report: pmkm_obs::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        assert!(report.degraded, "chaos run must flag degradation");
        assert!(report.faults.any(), "fault counters must reach the report");

        // Malformed chaos specs and the unsupported adaptive combination
        // fail with usage errors.
        let mut argv = base.clone();
        argv.push("--chaos=heavy".into());
        argv.push(path.clone());
        assert!(matches!(run("cluster", &argv), Err(CliError::Run(_))));
        let mut argv = base.clone();
        argv.push("--chaos=cosmic:1".into());
        argv.push(path.clone());
        assert!(matches!(run("cluster", &argv), Err(CliError::Run(_))));
        let mut argv = base;
        argv.push("--chaos=light:1".into());
        argv.push("--adaptive".into());
        argv.push(path);
        assert!(matches!(run("cluster", &argv), Err(CliError::Run(_))));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_demo_self_probe_reports_ok() {
        let out = run(
            "serve-demo",
            &[
                "--addr=127.0.0.1:0".into(),
                "--iters=1".into(),
                "--n=300".into(),
                "--k=3".into(),
                "--splits=2".into(),
                "--restarts=1".into(),
            ],
        )
        .unwrap();
        assert!(out.contains("serving telemetry at http://127.0.0.1:"), "{out}");
        assert!(out.contains("iter 0: E_pm"), "{out}");
        for path in ["/healthz", "/metrics", "/report.json"] {
            assert!(out.contains(&format!("self-probe {path}: HTTP/1.1 200 OK")), "{out}");
        }
    }

    #[test]
    fn query_rejects_malformed_ranges() {
        let dir = tmp("queryerr");
        let path = dir.join("h.json");
        let hist = pmkm_compress::MultivariateHistogram {
            dim: 2,
            total_count: 1.0,
            buckets: vec![pmkm_compress::Bucket {
                centroid: vec![0.0, 0.0],
                count: 1.0,
                spread: vec![1.0, 1.0],
            }],
        };
        std::fs::write(&path, serde_json::to_string(&hist).unwrap()).unwrap();
        let p = path.display().to_string();
        assert!(matches!(run("query", &["--range=0:1".into(), p.clone()]), Err(CliError::Run(_))));
        assert!(matches!(
            run("query", &["--range=9:0:1".into(), p.clone()]),
            Err(CliError::Run(_))
        ));
        assert!(run("query", &["--range=1:-5:5".into(), p]).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_and_bad_args() {
        assert!(matches!(run("frobnicate", &[]), Err(CliError::UnknownCommand(_))));
        assert!(matches!(
            run("cluster", &["--bogus=1".into()]),
            Err(CliError::Args(ArgError::Unknown(_)))
        ));
        assert!(matches!(run("cluster", &[]), Err(CliError::Run(_))));
        assert!(matches!(run("bin", &[]), Err(CliError::Run(_))));
        assert!(matches!(run("inspect", &[]), Err(CliError::Run(_))));
        assert!(matches!(run("compress", &[]), Err(CliError::Run(_))));
    }

    #[test]
    fn inspect_rejects_garbage_file() {
        let dir = tmp("garbage");
        let path = dir.join("junk.gb");
        std::fs::write(&path, b"not a bucket").unwrap();
        assert!(matches!(run("inspect", &[path.display().to_string()]), Err(CliError::Run(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_ledger_inspect_and_diff_round_trip() {
        let dir = tmp("ledger");
        let cell = pmkm_data::GridCell::new(30, 30).unwrap();
        let mut points = pmkm_core::Dataset::new(2).unwrap();
        let mut x = 0.27_f64;
        for i in 0..200 {
            x = (x * 997.13 + 0.7).fract();
            let blob = if i % 2 == 0 { 0.0 } else { 35.0 };
            points.push(&[blob + x, blob - x]).unwrap();
        }
        let bucket_path = dir.join(cell.bucket_file_name());
        pmkm_data::GridBucket { cell, points }.write_to(&bucket_path).unwrap();

        // Two identical chaos runs, each journaling a ledger; one also
        // writes a RunReport so the diff can mix formats.
        let base = vec![
            "--k=2".into(),
            "--restarts=2".into(),
            "--splits=3".into(),
            "--tolerant".into(),
            "--chaos=light:7".into(),
        ];
        let ledger_a = dir.join("a.jsonl").display().to_string();
        let ledger_b = dir.join("b.jsonl").display().to_string();
        let report_a = dir.join("a_report.json").display().to_string();
        let mut argv = base.clone();
        argv.push(format!("--ledger={ledger_a}"));
        argv.push(format!("--metrics-out={report_a}"));
        argv.push(bucket_path.display().to_string());
        let out = run("cluster", &argv).unwrap();
        assert!(out.contains("wrote ledger to"), "{out}");
        let mut argv = base;
        argv.push(format!("--ledger={ledger_b}"));
        argv.push(bucket_path.display().to_string());
        run("cluster", &argv).unwrap();

        // The ledger rollup reproduces the RunReport's fault counters.
        let report: pmkm_obs::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&report_a).unwrap()).unwrap();
        let records = pmkm_obs::read_ledger(&ledger_a).unwrap();
        let roll = pmkm_obs::rollup(&records);
        assert_eq!(roll.faults, report.faults, "ledger rollup must match the report");

        // inspect understands ledgers.
        let out = run("inspect", std::slice::from_ref(&ledger_a)).unwrap();
        assert!(out.contains("ledger v"), "{out}");
        assert!(out.contains("[phases]"), "{out}");
        assert!(out.contains("[cell "), "{out}");

        // Two same-machine same-workload runs diff clean under a generous
        // threshold — including the ledger-vs-RunReport mixed form.
        let out =
            run("diff", &["--threshold=1000".into(), ledger_a.clone(), ledger_b.clone()]).unwrap();
        assert!(out.contains("elapsed"), "{out}");
        let out =
            run("diff", &["--threshold=1000".into(), report_a.clone(), ledger_b.clone()]).unwrap();
        assert!(out.contains(&report_a), "{out}");

        // Usage errors: wrong arity, unreadable input.
        assert!(matches!(run("diff", std::slice::from_ref(&ledger_a)), Err(CliError::Run(_))));
        assert!(matches!(
            run("diff", &[ledger_a, "no_such_file.jsonl".into()]),
            Err(CliError::Run(_))
        ));

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Writes `n` two-blob buckets under `dir` and returns their paths.
    fn write_buckets(dir: &std::path::Path, n: usize) -> Vec<String> {
        (1..=n as u16)
            .map(|idx| {
                let cell = pmkm_data::GridCell::new(idx, idx).unwrap();
                let mut points = pmkm_core::Dataset::new(2).unwrap();
                let mut x = 0.19_f64 + idx as f64;
                for i in 0..(80 + 20 * idx as usize) {
                    x = (x * 997.13 + 0.7).fract();
                    let blob = if i % 2 == 0 { 0.0 } else { 30.0 };
                    points.push(&[blob + x, blob - x]).unwrap();
                }
                let path = dir.join(cell.bucket_file_name());
                pmkm_data::GridBucket { cell, points }.write_to(&path).unwrap();
                path.display().to_string()
            })
            .collect()
    }

    #[test]
    fn coreset_flags_run_both_commands_and_reject_bad_combinations() {
        let dir = tmp("coreset_cli");
        let buckets = write_buckets(&dir, 2);

        // cluster --coreset: the summary carries the tree tag and the
        // v7 report grows the coreset block.
        let report_path = dir.join("coreset_report.json").display().to_string();
        let mut argv = vec![
            "--k=2".into(),
            "--restarts=2".into(),
            "--splits=4".into(),
            "--coreset=16".into(),
            format!("--metrics-out={report_path}"),
        ];
        argv.extend(buckets.iter().cloned());
        let out = run("cluster", &argv).unwrap();
        assert!(out.contains("[coreset:"), "{out}");
        let report: pmkm_obs::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        let block = report.coreset.as_ref().expect("v7 coreset block");
        assert_eq!(block.trees, 2);
        assert!(block.builds >= 2, "{block:?}");
        assert!(block.lost_points == 0.0, "{block:?}");

        // orchestrate --coreset with decay still answers every cell, and
        // the journaled coreset events surface in the inspect rollup.
        let ledger_path = dir.join("coreset_run.jsonl").display().to_string();
        let mut argv = vec![
            "--k=2".into(),
            "--restarts=2".into(),
            "--splits=4".into(),
            "--jobs=2".into(),
            "--coreset=16".into(),
            "--coreset-decay=0.9".into(),
            format!("--ledger={ledger_path}"),
        ];
        argv.extend(buckets.iter().cloned());
        let out = run("orchestrate", &argv).unwrap();
        assert!(out.contains("orchestrated 2 cells"), "{out}");
        assert!(out.contains("[coreset:"), "{out}");
        let out = run("inspect", &[ledger_path]).unwrap();
        assert!(out.contains("[coreset]"), "{out}");
        assert!(out.contains("build(s)"), "{out}");

        // Window/decay without a size, and --adaptive with --coreset, error.
        let err = run("cluster", &["--coreset-window=4".into(), buckets[0].clone()]).unwrap_err();
        assert!(matches!(err, CliError::Run(_)), "{err:?}");
        let err = run("cluster", &["--adaptive".into(), "--coreset=16".into(), buckets[0].clone()])
            .unwrap_err();
        assert!(matches!(err, CliError::Run(_)), "{err:?}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_and_backend_flags_round_trip() {
        let dir = tmp("convert");
        let buckets = write_buckets(&dir, 2);

        // convert writes .gb2 siblings and reports block/ratio stats.
        let mut argv: Vec<String> = vec!["--block-points=37".into()];
        argv.extend(buckets.iter().cloned());
        let out = run("convert", &argv).unwrap();
        assert!(out.contains(".gb2"), "{out}");
        assert!(out.contains("block(s)"), "{out}");
        let gb2: Vec<String> = buckets
            .iter()
            .map(|p| PathBuf::from(p).with_extension("gb2").display().to_string())
            .collect();
        for p in &gb2 {
            assert!(std::path::Path::new(p).exists(), "missing {p}");
        }

        // inspect understands the container: block map plus the usual
        // cell header and per-dimension stats.
        let out = run("inspect", std::slice::from_ref(&gb2[0])).unwrap();
        assert!(out.contains("gb02 container"), "{out}");
        assert!(out.contains("[gb02]"), "{out}");
        assert!(out.contains("dim 0"), "{out}");

        // Clustering is bit-identical across formats and backends: the
        // per-cell summary lines (chunks, centroids, E_pm, points) of
        // every GB02 backend must match the GB01 baseline exactly.
        let base = vec!["--k=2".into(), "--restarts=2".into(), "--splits=3".into()];
        let mut argv = base.clone();
        argv.extend(buckets.iter().cloned());
        let reference = run("cluster", &argv).unwrap();
        let ref_cells: Vec<&str> =
            reference.lines().filter(|l| l.trim_start().starts_with("cell ")).collect();
        assert_eq!(ref_cells.len(), 2, "{reference}");
        for backend in ["local-file", "mmap", "sim-object-store"] {
            let mut argv = base.clone();
            argv.push(format!("--backend={backend}"));
            argv.extend(gb2.iter().cloned());
            let out = run("cluster", &argv).unwrap();
            let cells: Vec<&str> =
                out.lines().filter(|l| l.trim_start().starts_with("cell ")).collect();
            assert_eq!(cells, ref_cells, "backend {backend} diverged");
        }

        // orchestrate accepts the knob too.
        let mut argv = base.clone();
        argv.push("--jobs=2".into());
        argv.push("--backend=mmap".into());
        argv.extend(gb2.iter().cloned());
        let out = run("orchestrate", &argv).unwrap();
        assert!(out.contains("orchestrated 2 cells"), "{out}");

        // A ledgered GB02 run journals scan.block events; inspect
        // surfaces the block I/O rollup.
        let ledger = dir.join("gb2.jsonl").display().to_string();
        let mut argv = base.clone();
        argv.push(format!("--ledger={ledger}"));
        argv.extend(gb2.iter().cloned());
        run("cluster", &argv).unwrap();
        let out = run("inspect", &[ledger]).unwrap();
        assert!(out.contains("[scan]"), "{out}");
        assert!(out.contains("zero-copy, prefetch hit rate"), "{out}");

        // convert --out=DIR with the raw codec (ratio exactly 1.00), and
        // recompression of an already-GB02 input.
        let out_dir = dir.join("converted");
        let out = run(
            "convert",
            &[format!("--out={}", out_dir.display()), "--codec=raw".into(), gb2[0].clone()],
        )
        .unwrap();
        assert!(out.contains("1.00x"), "{out}");

        // Usage errors: bad codec, bad backend, no inputs.
        let err = run("convert", &["--codec=zstd".into(), buckets[0].clone()]).unwrap_err();
        assert!(err.to_string().contains("unknown codec"), "{err}");
        let err = run("cluster", &["--backend=s3".into(), buckets[0].clone()]).unwrap_err();
        assert!(err.to_string().contains("unknown backend"), "{err}");
        assert!(matches!(run("convert", &[]), Err(CliError::Run(_))));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orchestrate_kill_resume_inspect_round_trip() {
        let dir = tmp("orch");
        let buckets = write_buckets(&dir, 4);
        let ckpt = dir.join("ckpt").display().to_string();
        let base = vec!["--k=2".into(), "--restarts=2".into(), "--splits=3".into()];

        // Kill after 2 checkpoints (jobs=1 keeps the drill deterministic).
        let mut argv = base.clone();
        argv.push("--jobs=1".into());
        argv.push(format!("--checkpoint-dir={ckpt}"));
        argv.push("--kill-after=2".into());
        argv.extend(buckets.iter().cloned());
        let out = run("orchestrate", &argv).unwrap();
        assert!(out.contains("INTERRUPTED"), "{out}");
        assert!(out.contains("2 checkpoint(s) written"), "{out}");

        // Resume with a ledger and a report: 2 restored, 2 executed.
        let ledger = dir.join("orch.jsonl").display().to_string();
        let report_path = dir.join("orch_report.json").display().to_string();
        let mut argv = base.clone();
        argv.push("--jobs=2".into());
        argv.push(format!("--checkpoint-dir={ckpt}"));
        argv.push("--resume".into());
        argv.push(format!("--ledger={ledger}"));
        argv.push(format!("--metrics-out={report_path}"));
        argv.extend(buckets.iter().cloned());
        let out = run("orchestrate", &argv).unwrap();
        assert!(out.contains("2 resumed, 2 executed"), "{out}");
        assert!(out.contains("[resumed]"), "{out}");
        assert!(!out.contains("INTERRUPTED"), "{out}");

        // The RunReport carries the v5 orchestrator block.
        let report: pmkm_obs::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        let orch = report.orchestrator.expect("orchestrate writes the orchestrator block");
        assert_eq!(orch.cells_total, 4);
        assert_eq!(orch.cells_resumed, 2);
        assert_eq!(orch.cells_executed, 2);
        assert_eq!(report.cells.len(), 4);

        // inspect rolls the multi-cell ledger up, resume events included.
        let out = run("inspect", std::slice::from_ref(&ledger)).unwrap();
        assert!(out.contains("ledger v"), "{out}");
        assert!(out.contains("[resume] 2 cell(s) restored"), "{out}");
        assert!(out.contains("[checkpoint +"), "{out}");
        assert_eq!(out.matches("[cell ").count(), 4, "{out}");

        // A budget smaller than one cell's footprint is a clean error.
        let mut argv = base.clone();
        argv.push("--budget=1".into());
        argv.extend(buckets.iter().cloned());
        assert!(matches!(run("orchestrate", &argv), Err(CliError::Run(_))));

        // --resume / --kill-after without --checkpoint-dir are usage errors.
        let mut argv = base.clone();
        argv.push("--resume".into());
        argv.extend(buckets.iter().cloned());
        assert!(matches!(run("orchestrate", &argv), Err(CliError::Run(_))));
        let mut argv = base.clone();
        argv.push("--kill-after=1".into());
        argv.extend(buckets.iter().cloned());
        assert!(matches!(run("orchestrate", &argv), Err(CliError::Run(_))));
        assert!(matches!(run("orchestrate", &[]), Err(CliError::Run(_))));

        // --cells caps the planet.
        let mut argv = base;
        argv.push("--cells=2".into());
        argv.extend(buckets.iter().cloned());
        let out = run("orchestrate", &argv).unwrap();
        assert!(out.contains("orchestrated 2 cells"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orchestrate_watchdog_timeline_and_chrome_export_round_trip() {
        let dir = tmp("orch_obs");
        let buckets = write_buckets(&dir, 3);
        let ledger = dir.join("obs.jsonl").display().to_string();
        let report_path = dir.join("obs_report.json").display().to_string();

        // An observed run with the watchdog armed at a sane deadline: it
        // must stay silent, and the ledger must carry worker transitions.
        let mut argv = vec![
            "--k=2".into(),
            "--restarts=2".into(),
            "--splits=3".into(),
            "--jobs=2".into(),
            "--watchdog=30".into(),
            format!("--ledger={ledger}"),
            format!("--metrics-out={report_path}"),
        ];
        argv.extend(buckets.iter().cloned());
        let out = run("orchestrate", &argv).unwrap();
        assert!(out.contains("orchestrated 3 cells"), "{out}");
        assert!(!out.contains("[watchdog]"), "silent watchdog: {out}");

        // The report carries the v6 timeline block with one lane per job.
        let report: pmkm_obs::RunReport =
            serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        let tl = report.timeline.as_ref().expect("v6 timeline block");
        assert_eq!(tl.workers.len(), 2);

        // inspect on the ledger prints the Gantt and exports a Chrome trace.
        let trace_path = dir.join("trace.json").display().to_string();
        let out = run("inspect", &[format!("--timeline={trace_path}"), ledger.clone()]).unwrap();
        assert!(out.contains("[workers]"), "{out}");
        assert!(out.contains("[gantt"), "{out}");
        assert!(out.contains("wrote Chrome trace"), "{out}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"traceEvents\":["), "{trace}");
        assert!(trace.contains("\"displayTimeUnit\":\"ms\""), "{trace}");

        // inspect on the RunReport prints the per-worker rollup and also
        // renders a trace (summary slices from the report's timeline).
        let out = run("inspect", &[format!("--timeline={trace_path}"), report_path]).unwrap();
        assert!(out.contains("run report v7"), "{out}");
        assert!(out.contains("[timeline] 2 worker(s)"), "{out}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"traceEvents\":["), "{trace}");

        // --timeline without a ledger or report among the inputs errors.
        let err =
            run("inspect", &[format!("--timeline={trace_path}"), buckets[0].clone()]).unwrap_err();
        assert!(matches!(err, CliError::Run(_)), "{err:?}");

        // --serve on orchestrate announces the dashboard routes and shuts
        // down cleanly when the run completes.
        let mut argv = vec![
            "--k=2".into(),
            "--restarts=2".into(),
            "--splits=3".into(),
            "--serve=127.0.0.1:0".into(),
        ];
        argv.extend(buckets.iter().cloned());
        let out = run("orchestrate", &argv).unwrap();
        assert!(out.contains("serving telemetry"), "{out}");
        assert!(out.contains("/status"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_detects_regression_and_attributes_phase() {
        use std::sync::Arc;
        let dir = tmp("diffreg");
        // Synthesize two ledgers whose only difference is a 3x slower
        // assignment phase, dominating the elapsed delta.
        let write_ledger = |path: &PathBuf, assign_us: u64| {
            let sink = Arc::new(pmkm_obs::LedgerSink::create(path).unwrap());
            let rec = pmkm_obs::Recorder::new().with_sink(sink);
            for (phase, self_us) in [("partial;assign", assign_us), ("merge", 40u64)] {
                rec.event(
                    "run.phase",
                    &[
                        ("path", phase.into()),
                        ("calls", 1u64.into()),
                        ("total_us", self_us.into()),
                        ("self_us", self_us.into()),
                        ("wall_us", self_us.into()),
                    ],
                );
            }
            rec.event(
                "run.close",
                &[
                    ("elapsed_us", (assign_us + 40).into()),
                    ("cells", 1u64.into()),
                    ("degraded", false.into()),
                ],
            );
            rec.flush();
        };
        let fast = dir.join("fast.jsonl");
        let slow = dir.join("slow.jsonl");
        write_ledger(&fast, 1000);
        write_ledger(&slow, 3000);

        let fast = fast.display().to_string();
        let slow = slow.display().to_string();
        let err = run("diff", &[fast.clone(), slow.clone()]).unwrap_err();
        let CliError::Regression(msg) = &err else {
            panic!("expected Regression, got {err:?}");
        };
        assert!(msg.contains("partial;assign"), "{msg}");

        // Same pair in the non-regressing direction passes and renders the
        // attribution table.
        let out = run("diff", &[slow, fast]).unwrap();
        assert!(out.contains("partial;assign"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
