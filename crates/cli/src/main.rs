//! `pmkm` binary: thin shell over [`pmkm_cli::dispatch`].

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{}", pmkm_cli::USAGE);
        std::process::exit(2);
    };
    if command == "help" || command == "--help" || command == "-h" {
        print!("{}", pmkm_cli::USAGE);
        return;
    }
    let args = pmkm_cli::Args::parse(argv);
    let mut stdout = std::io::stdout();
    if let Err(e) = pmkm_cli::dispatch(&command, &args, &mut stdout) {
        eprintln!("pmkm {command}: {e}");
        // Exit 3 for detected regressions so CI gates can tell "B is
        // slower" (3) apart from "the diff itself failed" (1).
        let code = match e {
            pmkm_cli::CliError::Regression(_) => 3,
            _ => 1,
        };
        std::process::exit(code);
    }
}
