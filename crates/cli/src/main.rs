//! `pmkm` binary: thin shell over [`pmkm_cli::dispatch`].

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{}", pmkm_cli::USAGE);
        std::process::exit(2);
    };
    if command == "help" || command == "--help" || command == "-h" {
        print!("{}", pmkm_cli::USAGE);
        return;
    }
    let args = pmkm_cli::Args::parse(argv);
    let mut stdout = std::io::stdout();
    if let Err(e) = pmkm_cli::dispatch(&command, &args, &mut stdout) {
        eprintln!("pmkm {command}: {e}");
        std::process::exit(1);
    }
}
