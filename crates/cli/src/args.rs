//! A small, dependency-free argument parser: `--key=value` and `--flag`
//! options plus positional arguments, with typed accessors and unknown-key
//! detection.

use std::collections::BTreeMap;
use std::fmt;

/// Parsing / validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// An option was given that the command does not define.
    Unknown(String),
    /// A value failed to parse as the requested type.
    BadValue {
        /// Option name.
        key: String,
        /// The raw text.
        value: String,
        /// Expected type name.
        expected: &'static str,
    },
    /// A required option was missing.
    Missing(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Unknown(k) => write!(f, "unknown option --{k}"),
            ArgError::BadValue { key, value, expected } => {
                write!(f, "--{key}={value}: expected {expected}")
            }
            ArgError::Missing(k) => write!(f, "missing required option --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line: options and positionals.
#[derive(Debug, Clone, Default)]
pub struct Args {
    options: BTreeMap<String, String>,
    /// Every occurrence of every option, in order (for repeatable options).
    occurrences: Vec<(String, String)>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parses raw arguments. `--key=value` becomes an option, bare `--key`
    /// a flag, anything else a positional.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Self {
        let mut out = Args::default();
        for arg in raw {
            if let Some(rest) = arg.strip_prefix("--") {
                match rest.split_once('=') {
                    Some((k, v)) => {
                        out.options.insert(k.to_string(), v.to_string());
                        out.occurrences.push((k.to_string(), v.to_string()));
                    }
                    None => out.flags.push(rest.to_string()),
                }
            } else {
                out.positionals.push(arg);
            }
        }
        out
    }

    /// Rejects any option or flag not in `allowed`.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.options.keys().chain(self.flags.iter()) {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::Unknown(k.clone()));
            }
        }
        Ok(())
    }

    /// A typed option with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// A required typed option.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Err(ArgError::Missing(key.to_string())),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// A string option with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.options.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// True if the bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Every value given for a repeatable option, in order.
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.occurrences.iter().filter(|(k, _)| k == key).map(|(_, v)| v.as_str()).collect()
    }

    /// The positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn splits_options_flags_positionals() {
        let a = parse(&["--k=40", "--adaptive", "a.gb", "b.gb"]);
        assert_eq!(a.get::<usize>("k", 0).unwrap(), 40);
        assert!(a.flag("adaptive"));
        assert!(!a.flag("full"));
        assert_eq!(a.positionals(), &["a.gb".to_string(), "b.gb".to_string()]);
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse(&["--seed=7"]);
        assert_eq!(a.get::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.get::<usize>("k", 40).unwrap(), 40);
        assert_eq!(a.require::<u64>("seed").unwrap(), 7);
        assert_eq!(a.require::<usize>("k"), Err(ArgError::Missing("k".into())));
    }

    #[test]
    fn bad_values_are_reported() {
        let a = parse(&["--k=forty"]);
        assert!(matches!(a.get::<usize>("k", 0), Err(ArgError::BadValue { .. })));
    }

    #[test]
    fn unknown_options_detected() {
        let a = parse(&["--k=1", "--bogus=2", "x"]);
        assert_eq!(a.expect_only(&["k"]), Err(ArgError::Unknown("bogus".into())));
        assert!(a.expect_only(&["k", "bogus"]).is_ok());
    }

    #[test]
    fn string_options() {
        let a = parse(&["--out=dir/sub"]);
        assert_eq!(a.get_str("out", "default"), "dir/sub");
        assert_eq!(a.get_str("missing", "default"), "default");
    }

    #[test]
    fn repeated_options_are_all_kept() {
        let a = parse(&["--range=0:1:2", "--range=1:3:4", "--k=2"]);
        assert_eq!(a.get_all("range"), vec!["0:1:2", "1:3:4"]);
        assert_eq!(a.get_all("k"), vec!["2"]);
        assert!(a.get_all("missing").is_empty());
    }

    #[test]
    fn display_messages() {
        assert_eq!(ArgError::Unknown("x".into()).to_string(), "unknown option --x");
        assert!(ArgError::Missing("k".into()).to_string().contains("--k"));
    }
}
