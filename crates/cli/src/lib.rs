//! # pmkm-cli — command-line front end
//!
//! `pmkm generate | bin | inspect | cluster | compress`: the full
//! acquisition → binning → clustering → compression workflow of the paper
//! as a composable command-line tool. See [`commands::USAGE`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{dispatch, CliError, USAGE};
