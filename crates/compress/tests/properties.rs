//! Property tests for the compression pipeline's invariants.

use pmkm_compress::{compress_cell, faithfulness, reconstruct, MultivariateHistogram};
use pmkm_core::{Centroids, Dataset, PartialMergeConfig, PointSource};
use proptest::prelude::*;

fn arb_cell() -> impl Strategy<Value = Dataset> {
    (1usize..4, 12usize..80).prop_flat_map(|(dim, n)| {
        proptest::collection::vec(-200.0..200.0f64, dim * n)
            .prop_map(move |flat| Dataset::from_flat(dim, flat).unwrap())
    })
}

fn arb_histogram() -> impl Strategy<Value = MultivariateHistogram> {
    (1usize..4, 1usize..8).prop_flat_map(|(dim, k)| {
        (
            proptest::collection::vec(-100.0..100.0f64, dim * k),
            proptest::collection::vec(1.0..50.0f64, k),
            proptest::collection::vec(0.0..10.0f64, dim * k),
        )
            .prop_map(move |(cents, counts, spreads)| {
                let centroids = Centroids::from_flat(dim, cents).unwrap();
                let spreads: Vec<Vec<f64>> =
                    spreads.chunks_exact(dim).map(|c| c.to_vec()).collect();
                MultivariateHistogram::new(&centroids, &counts, &spreads).unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compression_conserves_count_and_bytes(ds in arb_cell(), seed in any::<u64>()) {
        let k = 4.min(ds.len());
        let mut cfg = PartialMergeConfig::paper(k, 3, seed);
        cfg.kmeans.restarts = 2;
        let out = compress_cell(&ds, &cfg).unwrap();
        // Every point lands in exactly one bucket.
        let total: f64 = out.histogram.buckets.iter().map(|b| b.count).sum();
        prop_assert!((total - ds.len() as f64).abs() < 1e-9);
        // Byte accounting is exact.
        prop_assert_eq!(out.summary.original_bytes, ds.len() * ds.dim() * 8);
        prop_assert_eq!(
            out.summary.compressed_bytes,
            out.histogram.k() * (2 * ds.dim() + 1) * 8
        );
        prop_assert!(out.summary.mse.is_finite() && out.summary.mse >= 0.0);
        // Faithfulness is computable and finite.
        let f = faithfulness(&ds, &out.histogram).unwrap();
        prop_assert!(f.mean_rel_error.is_finite());
        prop_assert!(f.cov_rel_error.is_finite());
    }

    #[test]
    fn histogram_mean_lies_in_bucket_hull(h in arb_histogram()) {
        // The weighted mean is a convex combination of bucket centroids.
        let mean = h.mean();
        for (d, m) in mean.iter().enumerate() {
            let lo = h.buckets.iter().map(|b| b.centroid[d]).fold(f64::INFINITY, f64::min);
            let hi = h.buckets.iter().map(|b| b.centroid[d]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(*m >= lo - 1e-9 && *m <= hi + 1e-9);
        }
    }

    #[test]
    fn reconstruction_count_and_determinism(h in arb_histogram(), n in 0usize..64, seed in any::<u64>()) {
        let a = reconstruct(&h, n, seed).unwrap();
        prop_assert_eq!(a.len(), n);
        prop_assert_eq!(a.dim(), h.dim);
        let b = reconstruct(&h, n, seed).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn histogram_is_a_valid_point_source(h in arb_histogram()) {
        prop_assert_eq!(h.len(), h.buckets.len());
        let total: f64 = (0..h.len()).map(|i| h.weight(i)).sum();
        prop_assert!((total - h.total_weight()).abs() < 1e-9);
        // It can be re-clustered directly.
        let k = 2.min(h.len());
        let cfg = pmkm_core::KMeansConfig { restarts: 1, ..pmkm_core::KMeansConfig::paper(k, 1) };
        let out = pmkm_core::kmeans(&h, &cfg).unwrap();
        prop_assert_eq!(out.best.centroids.k(), k);
    }
}
