//! Decompression: synthesizing a point set from a multivariate histogram.
//!
//! Scientists downstream of the compression receive histograms, not points;
//! this module regenerates a surrogate point set by sampling each bucket as
//! an axis-aligned Gaussian (centroid + per-dimension spread), proportional
//! to bucket counts — and quantifies how faithful the surrogate is.

use crate::histogram::MultivariateHistogram;
use pmkm_core::error::{Error, Result};
use pmkm_core::{metrics, Dataset};
use pmkm_data::gaussian::BoxMuller;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Reconstructs `n` points from the histogram (bucket choice proportional
/// to counts, within-bucket sampling from N(centroid, diag(spread²))).
pub fn reconstruct(hist: &MultivariateHistogram, n: usize, seed: u64) -> Result<Dataset> {
    if hist.buckets.is_empty() {
        return Err(Error::EmptyDataset);
    }
    let mut rng = pmkm_core::seeding::rng_for(seed, 0);
    let mut bm = BoxMuller::new();
    let mut ds = Dataset::with_capacity(hist.dim, n)?;
    let total = hist.total_count.max(f64::MIN_POSITIVE);
    let mut buf = vec![0.0; hist.dim];
    for _ in 0..n {
        // Weighted bucket draw.
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = hist.buckets.len() - 1;
        for (j, b) in hist.buckets.iter().enumerate() {
            target -= b.count;
            if target <= 0.0 {
                chosen = j;
                break;
            }
        }
        let b = &hist.buckets[chosen];
        for (d, slot) in buf.iter_mut().enumerate() {
            *slot = b.centroid[d] + b.spread[d] * bm.sample(&mut rng);
        }
        ds.push(&buf)?;
    }
    Ok(ds)
}

/// Distortion report comparing original data with its histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Distortion {
    /// MSE of the original points against the bucket centroids.
    pub quantization_mse: f64,
    /// Root of that (per-point RMS quantization error).
    pub rms: f64,
    /// Worst single-point squared error.
    pub max_sq_error: f64,
}

/// Measures quantization distortion of `original` under `hist`.
pub fn distortion(original: &Dataset, hist: &MultivariateHistogram) -> Result<Distortion> {
    let ev = metrics::evaluate(original, &hist.centroids()?)?;
    Ok(Distortion { quantization_mse: ev.mse, rms: ev.mse.sqrt(), max_sq_error: ev.max_sq_dist })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_core::{Centroids, PointSource};
    use pmkm_data::stats;

    fn hist() -> MultivariateHistogram {
        let c = Centroids::from_flat(2, vec![0.0, 0.0, 100.0, 100.0]).unwrap();
        MultivariateHistogram::new(&c, &[75.0, 25.0], &[vec![1.0, 2.0], vec![3.0, 0.5]]).unwrap()
    }

    #[test]
    fn reconstruction_has_right_shape_and_mixture() {
        let h = hist();
        let ds = reconstruct(&h, 20_000, 1).unwrap();
        assert_eq!(ds.len(), 20_000);
        assert_eq!(ds.dim(), 2);
        let highs = ds.iter().filter(|p| p[0] > 50.0).count();
        let frac = highs as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn reconstruction_moments_match_buckets() {
        let h = hist();
        let ds = reconstruct(&h, 50_000, 3).unwrap();
        let s = stats::summarize(&ds).unwrap();
        // Mean ≈ 0.75·0 + 0.25·100 = 25 per dim.
        assert!((s[0].mean - 25.0).abs() < 1.0, "mean = {}", s[0].mean);
        assert!((s[1].mean - 25.0).abs() < 1.0);
    }

    #[test]
    fn reconstruction_is_deterministic() {
        let h = hist();
        assert_eq!(reconstruct(&h, 50, 9).unwrap(), reconstruct(&h, 50, 9).unwrap());
        assert_ne!(reconstruct(&h, 50, 9).unwrap(), reconstruct(&h, 50, 10).unwrap());
    }

    #[test]
    fn distortion_zero_for_points_on_centroids() {
        let h = hist();
        let ds = Dataset::from_rows(&[[0.0, 0.0], [100.0, 100.0]]).unwrap();
        let d = distortion(&ds, &h).unwrap();
        assert_eq!(d.quantization_mse, 0.0);
        assert_eq!(d.rms, 0.0);
        assert_eq!(d.max_sq_error, 0.0);
    }

    #[test]
    fn distortion_hand_checked() {
        let h = hist();
        let ds = Dataset::from_rows(&[[3.0, 4.0]]).unwrap(); // 25 from (0,0)
        let d = distortion(&ds, &h).unwrap();
        assert_eq!(d.quantization_mse, 25.0);
        assert_eq!(d.rms, 5.0);
        assert_eq!(d.max_sq_error, 25.0);
    }

    #[test]
    fn empty_histogram_is_error() {
        let h = MultivariateHistogram { dim: 2, total_count: 0.0, buckets: vec![] };
        assert!(reconstruct(&h, 10, 0).is_err());
    }
}
