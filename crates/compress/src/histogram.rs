//! Multivariate histograms: the compressed representation of a grid cell.
//!
//! The motivating application (§1): each 1° × 1° cell is replaced by a
//! multivariate histogram whose **non-equi-depth buckets** "adapt to the
//! shape and complexity of the actual data in the high dimensional space".
//! A bucket is a cluster from partial/merge k-means: its centroid, the
//! number of points it absorbed, and the per-dimension spread of those
//! points (so bucket shapes differ bucket to bucket).

use pmkm_core::error::{Error, Result};
use pmkm_core::{Centroids, PointSource};
use serde::{Deserialize, Serialize};

/// One histogram bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Bucket representative (cluster centroid).
    pub centroid: Vec<f64>,
    /// Points absorbed (the bucket count — non-equi-depth by construction).
    pub count: f64,
    /// Per-dimension standard deviation of the absorbed points.
    pub spread: Vec<f64>,
}

/// A multivariate histogram for one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultivariateHistogram {
    /// Dimensionality of the attribute space.
    pub dim: usize,
    /// Total points represented.
    pub total_count: f64,
    /// The buckets, in centroid order as produced by the merge step.
    pub buckets: Vec<Bucket>,
}

impl MultivariateHistogram {
    /// Builds a histogram from centroids + per-cluster counts + spreads.
    pub fn new(centroids: &Centroids, counts: &[f64], spreads: &[Vec<f64>]) -> Result<Self> {
        let k = centroids.k();
        if counts.len() != k || spreads.len() != k {
            return Err(Error::InvalidConfig(format!(
                "counts ({}) and spreads ({}) must match k ({k})",
                counts.len(),
                spreads.len()
            )));
        }
        let dim = centroids.dim();
        let mut buckets = Vec::with_capacity(k);
        for (j, c) in centroids.iter().enumerate() {
            if spreads[j].len() != dim {
                return Err(Error::DimensionMismatch { expected: dim, actual: spreads[j].len() });
            }
            buckets.push(Bucket {
                centroid: c.to_vec(),
                count: counts[j],
                spread: spreads[j].clone(),
            });
        }
        Ok(Self { dim, total_count: counts.iter().sum(), buckets })
    }

    /// Number of buckets.
    pub fn k(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket centroids as a table (for error evaluation).
    pub fn centroids(&self) -> Result<Centroids> {
        let flat: Vec<f64> = self.buckets.iter().flat_map(|b| b.centroid.iter().copied()).collect();
        Centroids::from_flat(self.dim, flat)
    }

    /// Size of the histogram payload in bytes: per bucket, centroid + count
    /// + spread as f64 (`(2·dim + 1) × 8`).
    pub fn payload_bytes(&self) -> usize {
        self.buckets.len() * (2 * self.dim + 1) * std::mem::size_of::<f64>()
    }

    /// Weighted mean vector of the represented data (exact if buckets were
    /// exact cluster means).
    pub fn mean(&self) -> Vec<f64> {
        let mut mean = vec![0.0; self.dim];
        for b in &self.buckets {
            for (m, c) in mean.iter_mut().zip(&b.centroid) {
                *m += b.count * c;
            }
        }
        mean.iter_mut().for_each(|m| *m /= self.total_count.max(f64::MIN_POSITIVE));
        mean
    }
}

/// A [`PointSource`] view of the histogram (buckets as weighted points), so
/// histograms can be re-clustered or evaluated with the core machinery.
impl PointSource for MultivariateHistogram {
    fn dim(&self) -> usize {
        self.dim
    }
    fn len(&self) -> usize {
        self.buckets.len()
    }
    fn coords(&self, i: usize) -> &[f64] {
        &self.buckets[i].centroid
    }
    fn weight(&self, i: usize) -> f64 {
        self.buckets[i].count
    }
    fn total_weight(&self) -> f64 {
        self.total_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> MultivariateHistogram {
        let c = Centroids::from_flat(2, vec![0.0, 0.0, 10.0, 10.0]).unwrap();
        MultivariateHistogram::new(&c, &[30.0, 10.0], &[vec![1.0, 1.0], vec![2.0, 0.5]]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let h = hist();
        assert_eq!(h.k(), 2);
        assert_eq!(h.total_count, 40.0);
        assert_eq!(h.buckets[1].centroid, vec![10.0, 10.0]);
        assert_eq!(h.buckets[1].spread, vec![2.0, 0.5]);
    }

    #[test]
    fn mean_is_weighted() {
        let h = hist();
        // (30·0 + 10·10) / 40 = 2.5 per dimension.
        assert_eq!(h.mean(), vec![2.5, 2.5]);
    }

    #[test]
    fn payload_bytes_formula() {
        let h = hist();
        // 2 buckets × (2·2 + 1) floats × 8 B = 80 B.
        assert_eq!(h.payload_bytes(), 80);
    }

    #[test]
    fn point_source_view() {
        let h = hist();
        assert_eq!(h.len(), 2);
        assert_eq!(h.coords(0), &[0.0, 0.0]);
        assert_eq!(h.weight(0), 30.0);
        assert_eq!(h.total_weight(), 40.0);
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let c = Centroids::from_flat(2, vec![0.0, 0.0]).unwrap();
        assert!(MultivariateHistogram::new(&c, &[1.0, 2.0], &[vec![0.0, 0.0]]).is_err());
        assert!(MultivariateHistogram::new(&c, &[1.0], &[vec![0.0]]).is_err());
    }

    #[test]
    fn centroids_round_trip() {
        let h = hist();
        let c = h.centroids().unwrap();
        assert_eq!(c.k(), 2);
        assert_eq!(c.centroid(1), &[10.0, 10.0]);
    }
}
