//! Grid-cell compression via partial/merge k-means.
//!
//! The end-to-end motivating pipeline of §1: cluster a cell with the
//! partial/merge algorithm, turn the merged weighted centroids into a
//! multivariate histogram (with per-dimension bucket spreads measured from
//! the original points), and report compression ratio + distortion.

use crate::histogram::MultivariateHistogram;
use pmkm_core::error::Result;
use pmkm_core::point::nearest_centroid;
use pmkm_core::{metrics, partial_merge, Dataset, PartialMergeConfig, PointSource};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Everything a compression run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionSummary {
    /// Original payload bytes (`n × dim × 8`).
    pub original_bytes: usize,
    /// Histogram payload bytes.
    pub compressed_bytes: usize,
    /// `original / compressed`.
    pub ratio: f64,
    /// Mean squared quantization error of the original points against the
    /// bucket centroids.
    pub mse: f64,
    /// The paper's merged-representation error `E_pm`.
    pub epm: f64,
    /// Wall time of the clustering.
    pub elapsed: Duration,
}

/// A compressed cell: the histogram plus its summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedCell {
    /// The multivariate histogram replacing the cell.
    pub histogram: MultivariateHistogram,
    /// Compression accounting.
    pub summary: CompressionSummary,
}

/// Compresses one cell with partial/merge k-means.
///
/// # Examples
/// ```
/// use pmkm_compress::compress_cell;
/// use pmkm_core::{Dataset, PartialMergeConfig};
/// let mut cell = Dataset::new(2)?;
/// for i in 0..100 {
///     let x = (i % 10) as f64;
///     cell.push(&[x, -x])?;
/// }
/// let out = compress_cell(&cell, &PartialMergeConfig::paper(5, 4, 1))?;
/// assert_eq!(out.histogram.k(), 5);
/// assert!(out.summary.ratio > 3.0);
/// # Ok::<(), pmkm_core::Error>(())
/// ```
///
/// A second pass over the original points measures each bucket's
/// per-dimension spread (the non-equi-depth bucket "shape") and the true
/// quantization distortion.
pub fn compress_cell(cell: &Dataset, cfg: &PartialMergeConfig) -> Result<CompressedCell> {
    let result = partial_merge(cell, cfg)?;
    let centroids = &result.merge.centroids;
    let dim = cell.dim();
    let k = centroids.k();

    // Per-bucket counts and per-dimension spreads from the original data.
    let mut counts = vec![0.0; k];
    let mut sums = vec![0.0; k * dim];
    let mut sq_sums = vec![0.0; k * dim];
    for p in cell.iter() {
        let (j, _) = nearest_centroid(p, centroids.as_flat(), dim);
        counts[j] += 1.0;
        for d in 0..dim {
            sums[j * dim + d] += p[d];
            sq_sums[j * dim + d] += p[d] * p[d];
        }
    }
    let spreads: Vec<Vec<f64>> = (0..k)
        .map(|j| {
            (0..dim)
                .map(|d| {
                    if counts[j] > 0.0 {
                        let mean = sums[j * dim + d] / counts[j];
                        (sq_sums[j * dim + d] / counts[j] - mean * mean).max(0.0).sqrt()
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();

    let histogram = MultivariateHistogram::new(centroids, &counts, &spreads)?;
    let ev = metrics::evaluate(cell, centroids)?;
    let original_bytes = cell.payload_bytes();
    let compressed_bytes = histogram.payload_bytes();
    Ok(CompressedCell {
        summary: CompressionSummary {
            original_bytes,
            compressed_bytes,
            ratio: original_bytes as f64 / compressed_bytes.max(1) as f64,
            mse: ev.mse,
            epm: result.merge.epm,
            elapsed: result.total_elapsed,
        },
        histogram,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_core::PartialMergeConfig;

    fn cell() -> Dataset {
        let mut ds = Dataset::new(3).unwrap();
        for i in 0..200 {
            let o = (i % 10) as f64 * 0.1;
            ds.push(&[o, o, o]).unwrap();
            ds.push(&[50.0 + o, 50.0 - o, 25.0]).unwrap();
        }
        ds
    }

    #[test]
    fn compresses_and_accounts() {
        let ds = cell(); // 400 × 3 × 8 = 9600 B
        let cfg = PartialMergeConfig::paper(4, 4, 7);
        let out = compress_cell(&ds, &cfg).unwrap();
        assert_eq!(out.summary.original_bytes, 9600);
        // 4 buckets × 7 floats × 8 B = 224 B.
        assert_eq!(out.summary.compressed_bytes, out.histogram.payload_bytes());
        assert!(out.summary.ratio > 40.0, "ratio = {}", out.summary.ratio);
        assert!(out.summary.mse < 1.0, "mse = {}", out.summary.mse);
    }

    #[test]
    fn bucket_counts_cover_all_points() {
        let ds = cell();
        let out = compress_cell(&ds, &PartialMergeConfig::paper(4, 5, 1)).unwrap();
        let total: f64 = out.histogram.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 400.0);
    }

    #[test]
    fn spreads_reflect_within_bucket_variation() {
        let ds = cell();
        let out = compress_cell(&ds, &PartialMergeConfig::paper(2, 4, 3)).unwrap();
        for b in &out.histogram.buckets {
            assert_eq!(b.spread.len(), 3);
            for s in &b.spread {
                assert!(s.is_finite() && *s >= 0.0);
            }
        }
        // The offsets span ~0.9 within each blob, so nonzero spread exists.
        assert!(out.histogram.buckets.iter().any(|b| b.spread[0] > 0.05));
    }

    #[test]
    fn histogram_mean_matches_data_mean() {
        let ds = cell();
        let out = compress_cell(&ds, &PartialMergeConfig::paper(6, 4, 5)).unwrap();
        let stats = pmkm_data::stats::summarize(&ds).unwrap();
        let hmean = out.histogram.mean();
        for (d, s) in stats.iter().enumerate() {
            assert!((hmean[d] - s.mean).abs() < 0.5, "dim {d}: {} vs {}", hmean[d], s.mean);
        }
    }
}
