//! # pmkm-compress — the motivating application
//!
//! The paper's reason for partial/merge k-means (§1): substituting massive
//! geospatial data sets with compressed counterparts — one **multivariate
//! histogram** per 1° × 1° grid cell, whose non-equi-depth buckets are the
//! merged weighted centroids.
//!
//! * [`histogram`] — the bucket representation (+ a [`pmkm_core::PointSource`]
//!   view so histograms compose with the clustering machinery),
//! * [`compressor`] — cell → histogram with ratio/distortion accounting,
//! * [`mod@reconstruct`] — histogram → surrogate point set, distortion metrics,
//! * [`quality`] — moment (mean/covariance) faithfulness reports,
//! * [`query`] — approximate range-count / range-mean analytics straight
//!   off the compressed form, with exact-answer error measurement,
//! * [`update`] — incremental maintenance: fold newly acquired
//!   observations into an existing histogram without the original points.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compressor;
pub mod histogram;
pub mod quality;
pub mod query;
pub mod reconstruct;
pub mod update;

pub use compressor::{compress_cell, CompressedCell, CompressionSummary};
pub use histogram::{Bucket, MultivariateHistogram};
pub use quality::{faithfulness, histogram_covariance, Faithfulness};
pub use query::{estimate_count, estimate_mean, exact_answer, RangeEstimate, RangeQuery};
pub use reconstruct::{distortion, reconstruct, Distortion};
pub use update::{update_histogram, UpdateStats};
