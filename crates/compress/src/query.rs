//! Approximate analytics over compressed cells.
//!
//! The whole point of replacing cells with multivariate histograms (§1) is
//! that scientists can answer questions from the *compressed* form without
//! shipping the raw points. This module provides the two workhorse query
//! shapes — range counts ("how many observations fall in this attribute
//! box?") and range means — estimated from the buckets under a Gaussian
//! within-bucket model, plus the machinery to measure estimation error
//! against the original points.

use crate::histogram::MultivariateHistogram;
use pmkm_core::error::{Error, Result};
use pmkm_core::{Dataset, PointSource};
use serde::{Deserialize, Serialize};

/// An axis-aligned attribute-range predicate: per-dimension optional
/// `[lo, hi]` bounds (unbounded dimensions match everything).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeQuery {
    /// Per-dimension bounds; `None` leaves the dimension unconstrained.
    pub bounds: Vec<Option<(f64, f64)>>,
}

impl RangeQuery {
    /// An unconstrained query over `dim` dimensions.
    pub fn all(dim: usize) -> Self {
        Self { bounds: vec![None; dim] }
    }

    /// Constrains one dimension to `[lo, hi]`.
    pub fn with(mut self, dim: usize, lo: f64, hi: f64) -> Self {
        if dim < self.bounds.len() {
            self.bounds[dim] = Some((lo, hi));
        }
        self
    }

    fn validate(&self, dim: usize) -> Result<()> {
        if self.bounds.len() != dim {
            return Err(Error::DimensionMismatch { expected: dim, actual: self.bounds.len() });
        }
        for (d, b) in self.bounds.iter().enumerate() {
            if let Some((lo, hi)) = b {
                if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                    return Err(Error::InvalidConfig(format!(
                        "dimension {d}: invalid range [{lo}, {hi}]"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Exact predicate evaluation on a raw point.
    pub fn matches(&self, p: &[f64]) -> bool {
        self.bounds.iter().zip(p).all(|(b, x)| match b {
            None => true,
            Some((lo, hi)) => *lo <= *x && *x <= *hi,
        })
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ≈ 1.5e-7 — far below bucket-model error).
fn phi(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x < 0.0 { -erf } else { erf };
    0.5 * (1.0 + erf)
}

/// Fraction of a bucket's mass inside the query box under the
/// independent-Gaussian within-bucket model `N(centroid, diag(spread²))`.
fn bucket_fraction(query: &RangeQuery, centroid: &[f64], spread: &[f64]) -> f64 {
    let mut frac = 1.0;
    for (d, b) in query.bounds.iter().enumerate() {
        let Some((lo, hi)) = b else { continue };
        let (c, s) = (centroid[d], spread[d]);
        let p = if s > 0.0 {
            phi((hi - c) / s) - phi((lo - c) / s)
        } else if *lo <= c && c <= *hi {
            1.0
        } else {
            0.0
        };
        frac *= p.clamp(0.0, 1.0);
        if frac == 0.0 {
            break;
        }
    }
    frac
}

/// Query answer estimated from a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeEstimate {
    /// Estimated number of matching observations.
    pub count: f64,
    /// Estimated mean vector of the matching observations is truncated to
    /// the first dimension unless requested via [`estimate_mean`]; this is
    /// the estimated selectivity `count / total`.
    pub selectivity: f64,
}

/// Estimates how many of the cell's observations satisfy `query`.
pub fn estimate_count(hist: &MultivariateHistogram, query: &RangeQuery) -> Result<RangeEstimate> {
    query.validate(hist.dim)?;
    let mut count = 0.0;
    for b in &hist.buckets {
        count += b.count * bucket_fraction(query, &b.centroid, &b.spread);
    }
    Ok(RangeEstimate { count, selectivity: count / hist.total_count.max(f64::MIN_POSITIVE) })
}

/// Estimates the mean vector of the observations matching `query`
/// (bucket centroids weighted by their in-box mass). `None` when the
/// estimated count is ~zero.
pub fn estimate_mean(hist: &MultivariateHistogram, query: &RangeQuery) -> Result<Option<Vec<f64>>> {
    query.validate(hist.dim)?;
    let mut mass = 0.0;
    let mut mean = vec![0.0; hist.dim];
    for b in &hist.buckets {
        let m = b.count * bucket_fraction(query, &b.centroid, &b.spread);
        mass += m;
        for (acc, c) in mean.iter_mut().zip(&b.centroid) {
            *acc += m * c;
        }
    }
    if mass < 1e-9 {
        return Ok(None);
    }
    mean.iter_mut().for_each(|m| *m /= mass);
    Ok(Some(mean))
}

/// Exact answers computed from the raw points, for error measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactAnswer {
    /// Matching observations.
    pub count: usize,
    /// Mean vector of the matches (`None` when no point matches).
    pub mean: Option<Vec<f64>>,
}

/// Evaluates `query` exactly against the original points.
pub fn exact_answer(ds: &Dataset, query: &RangeQuery) -> Result<ExactAnswer> {
    query.validate(ds.dim())?;
    let mut count = 0usize;
    let mut mean = vec![0.0; ds.dim()];
    for p in ds.iter() {
        if query.matches(p) {
            count += 1;
            for (m, x) in mean.iter_mut().zip(p) {
                *m += x;
            }
        }
    }
    let mean = if count > 0 {
        mean.iter_mut().for_each(|m| *m /= count as f64);
        Some(mean)
    } else {
        None
    };
    Ok(ExactAnswer { count, mean })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::compress_cell;
    use pmkm_core::{Centroids, PartialMergeConfig};

    fn two_bucket_hist() -> MultivariateHistogram {
        let c = Centroids::from_flat(2, vec![0.0, 0.0, 100.0, 100.0]).unwrap();
        MultivariateHistogram::new(&c, &[60.0, 40.0], &[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap()
    }

    #[test]
    fn phi_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
        assert!((phi(-1.96) - 0.025).abs() < 1e-3);
        assert!(phi(8.0) > 0.999999);
        assert!(phi(-8.0) < 1e-6);
    }

    #[test]
    fn unconstrained_query_counts_everything() {
        let h = two_bucket_hist();
        let est = estimate_count(&h, &RangeQuery::all(2)).unwrap();
        assert!((est.count - 100.0).abs() < 1e-9);
        assert!((est.selectivity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn box_around_one_bucket_counts_its_mass() {
        let h = two_bucket_hist();
        // ±6σ box around bucket 0 only.
        let q = RangeQuery::all(2).with(0, -6.0, 6.0).with(1, -6.0, 6.0);
        let est = estimate_count(&h, &q).unwrap();
        assert!((est.count - 60.0).abs() < 0.01, "count = {}", est.count);
        let mean = estimate_mean(&h, &q).unwrap().unwrap();
        assert!(mean[0].abs() < 0.1 && mean[1].abs() < 0.1);
    }

    #[test]
    fn empty_box_estimates_zero() {
        let h = two_bucket_hist();
        let q = RangeQuery::all(2).with(0, 40.0, 60.0).with(1, 40.0, 60.0);
        let est = estimate_count(&h, &q).unwrap();
        assert!(est.count < 0.01, "count = {}", est.count);
        assert!(estimate_mean(&h, &q).unwrap().is_none());
    }

    #[test]
    fn exact_answer_hand_checked() {
        let ds = Dataset::from_rows(&[[0.0, 0.0], [1.0, 1.0], [10.0, 10.0]]).unwrap();
        let q = RangeQuery::all(2).with(0, -0.5, 1.5);
        let ans = exact_answer(&ds, &q).unwrap();
        assert_eq!(ans.count, 2);
        assert_eq!(ans.mean, Some(vec![0.5, 0.5]));
        let none = exact_answer(&ds, &RangeQuery::all(2).with(0, 50.0, 60.0)).unwrap();
        assert_eq!(none.count, 0);
        assert_eq!(none.mean, None);
    }

    #[test]
    fn estimates_track_exact_answers_on_compressed_cell() {
        // End to end: compress a cell, then compare estimated vs exact
        // selectivity for a family of half-space-ish queries.
        let mut cell = Dataset::new(2).unwrap();
        for i in 0..400 {
            let o = (i % 20) as f64 * 0.3;
            cell.push(&[o, o * 0.5]).unwrap();
            cell.push(&[30.0 + o, 15.0 + o * 0.5]).unwrap();
        }
        let out = compress_cell(&cell, &PartialMergeConfig::paper(8, 4, 3)).unwrap();
        for hi in [5.0, 20.0, 40.0] {
            let q = RangeQuery::all(2).with(0, -10.0, hi);
            let est = estimate_count(&out.histogram, &q).unwrap();
            let exact = exact_answer(&cell, &q).unwrap();
            let err = (est.count - exact.count as f64).abs() / cell.len() as f64;
            assert!(err < 0.05, "hi={hi}: est {} vs exact {}", est.count, exact.count);
        }
    }

    #[test]
    fn validation_errors() {
        let h = two_bucket_hist();
        // Wrong dimensionality.
        assert!(estimate_count(&h, &RangeQuery::all(3)).is_err());
        // Inverted range.
        let q = RangeQuery { bounds: vec![Some((5.0, 1.0)), None] };
        assert!(estimate_count(&h, &q).is_err());
        let q = RangeQuery { bounds: vec![Some((f64::NAN, 1.0)), None] };
        assert!(estimate_mean(&h, &q).is_err());
    }

    #[test]
    fn with_ignores_out_of_range_dim() {
        let q = RangeQuery::all(2).with(7, 0.0, 1.0);
        assert_eq!(q.bounds, vec![None, None]);
    }
}
