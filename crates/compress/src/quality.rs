//! Faithfulness metrics: does the compressed representation preserve what a
//! climate researcher would compute from the original points?
//!
//! The paper's requirement (§1.1): "the results of clustering should
//! provide a highly faithful representation of the original data, and
//! capture all correlations between data points". We quantify that by
//! comparing the first two moments — mean vector and covariance matrix —
//! of the original cell against the moments implied by the histogram's
//! weighted buckets (between-bucket covariance plus the diagonal
//! within-bucket spread).

use crate::histogram::MultivariateHistogram;
use pmkm_core::error::{Error, Result};
use pmkm_core::{Dataset, PointSource};
use pmkm_data::stats;
use serde::{Deserialize, Serialize};

/// Moment-preservation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Faithfulness {
    /// ‖mean_hist − mean_data‖ / (‖mean_data‖ + ε): relative mean error.
    pub mean_rel_error: f64,
    /// Frobenius-norm relative error of the covariance matrix.
    pub cov_rel_error: f64,
    /// Per-dimension absolute mean errors.
    pub mean_abs_errors: Vec<f64>,
}

/// Covariance implied by the histogram: weighted between-bucket scatter
/// plus the diagonal within-bucket variance (`spread²`).
pub fn histogram_covariance(hist: &MultivariateHistogram) -> Vec<f64> {
    let dim = hist.dim;
    let mean = hist.mean();
    let total = hist.total_count.max(f64::MIN_POSITIVE);
    let mut cov = vec![0.0; dim * dim];
    for b in &hist.buckets {
        let w = b.count / total;
        for i in 0..dim {
            let di = b.centroid[i] - mean[i];
            for j in 0..dim {
                cov[i * dim + j] += w * di * (b.centroid[j] - mean[j]);
            }
            // Within-bucket variance contributes to the diagonal.
            cov[i * dim + i] += w * b.spread[i] * b.spread[i];
        }
    }
    cov
}

/// Compares the original cell's moments with the histogram's.
pub fn faithfulness(original: &Dataset, hist: &MultivariateHistogram) -> Result<Faithfulness> {
    if original.dim() != hist.dim {
        return Err(Error::DimensionMismatch { expected: hist.dim, actual: original.dim() });
    }
    let data_stats = stats::summarize(original).ok_or(Error::EmptyDataset)?;
    let data_cov = stats::covariance(original).ok_or(Error::EmptyDataset)?;
    let hmean = hist.mean();
    let hcov = histogram_covariance(hist);

    let mean_abs_errors: Vec<f64> =
        data_stats.iter().enumerate().map(|(d, s)| (hmean[d] - s.mean).abs()).collect();
    let data_mean_norm: f64 = data_stats.iter().map(|s| s.mean * s.mean).sum::<f64>().sqrt();
    let mean_err_norm: f64 = mean_abs_errors.iter().map(|e| e * e).sum::<f64>().sqrt();
    let mean_rel_error = mean_err_norm / (data_mean_norm + 1e-12);

    let cov_err: f64 =
        data_cov.iter().zip(&hcov).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    let cov_norm: f64 = data_cov.iter().map(|a| a * a).sum::<f64>().sqrt();
    let cov_rel_error = cov_err / (cov_norm + 1e-12);

    Ok(Faithfulness { mean_rel_error, cov_rel_error, mean_abs_errors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::compress_cell;
    use pmkm_core::PartialMergeConfig;

    fn correlated_cell() -> Dataset {
        // Two blobs along the diagonal: strong cross-dimension correlation.
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..300 {
            let o = (i % 20) as f64 * 0.1;
            ds.push(&[o, o * 0.9]).unwrap();
            ds.push(&[40.0 + o, 36.0 + o * 0.9]).unwrap();
        }
        ds
    }

    #[test]
    fn histogram_mean_is_close_to_data_mean() {
        let ds = correlated_cell();
        // k large enough to capture structure well.
        let out = compress_cell(&ds, &PartialMergeConfig::paper(8, 4, 3)).unwrap();
        let f = faithfulness(&ds, &out.histogram).unwrap();
        // Merged centroids are means of *partial* centroids while counts
        // come from re-assigning the original points, so the global mean is
        // preserved only approximately — but tightly for good clusterings.
        assert!(f.mean_rel_error < 0.01, "mean err = {}", f.mean_rel_error);
    }

    #[test]
    fn covariance_is_largely_preserved() {
        let ds = correlated_cell();
        let out = compress_cell(&ds, &PartialMergeConfig::paper(8, 4, 5)).unwrap();
        let f = faithfulness(&ds, &out.histogram).unwrap();
        assert!(f.cov_rel_error < 0.15, "cov err = {}", f.cov_rel_error);
    }

    #[test]
    fn histogram_covariance_hand_checked() {
        use pmkm_core::Centroids;
        // Two equal buckets at ±1 with zero spread: variance 1, no cross.
        let c = Centroids::from_flat(1, vec![-1.0, 1.0]).unwrap();
        let h = MultivariateHistogram::new(&c, &[5.0, 5.0], &[vec![0.0], vec![0.0]]).unwrap();
        assert_eq!(histogram_covariance(&h), vec![1.0]);
        // Adding within-bucket spread 2 adds 4 to the variance.
        let h = MultivariateHistogram::new(&c, &[5.0, 5.0], &[vec![2.0], vec![2.0]]).unwrap();
        assert_eq!(histogram_covariance(&h), vec![5.0]);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let ds = correlated_cell();
        use pmkm_core::Centroids;
        let c = Centroids::from_flat(1, vec![0.0]).unwrap();
        let h = MultivariateHistogram::new(&c, &[1.0], &[vec![0.0]]).unwrap();
        assert!(faithfulness(&ds, &h).is_err());
    }
}
