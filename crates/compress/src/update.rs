//! Incremental histogram maintenance.
//!
//! Satellite cells are not static — every repeat pass adds observations
//! (the paper: a global coverage "between every 2 to 14 days", and its
//! related work \[17\] is exactly "fast incremental maintenance of
//! approximate histograms"). This module folds a batch of new observations
//! into an existing compressed cell *without* the original points: the
//! histogram's buckets are already weighted centroids, so the new batch is
//! reduced by one partial k-means and merged with them — the same merge
//! k-means machinery as the main pipeline, applied across time instead of
//! across chunks.

use crate::histogram::{Bucket, MultivariateHistogram};
use pmkm_core::error::{Error, Result};
use pmkm_core::merge::merge_collective;
use pmkm_core::partial::partial_kmeans;
use pmkm_core::point::nearest_centroid;
use pmkm_core::{Dataset, KMeansConfig, PointSource, WeightedSet};

/// Statistics of one incremental update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStats {
    /// Observations folded in.
    pub new_points: usize,
    /// Total observations now represented.
    pub total_count: f64,
    /// `E_pm` of the merge that produced the updated histogram.
    pub merge_epm: f64,
}

/// Folds `new_points` into `hist`, returning the updated histogram.
///
/// The bucket spreads of surviving structure are re-derived from the merge
/// inputs (old buckets + new partial centroids) assigned to each new
/// bucket — an approximation, since the original raw points are gone; the
/// spread of an input is carried as-is and combined weight-proportionally.
pub fn update_histogram(
    hist: &MultivariateHistogram,
    new_points: &Dataset,
    cfg: &KMeansConfig,
) -> Result<(MultivariateHistogram, UpdateStats)> {
    cfg.validate()?;
    if new_points.is_empty() {
        return Err(Error::EmptyDataset);
    }
    if new_points.dim() != hist.dim {
        return Err(Error::DimensionMismatch { expected: hist.dim, actual: new_points.dim() });
    }
    let dim = hist.dim;

    // Old representation as a weighted set.
    let mut old = WeightedSet::new(dim)?;
    for b in &hist.buckets {
        old.push(&b.centroid, b.count)?;
    }
    // New batch reduced to weighted centroids (with spreads measured from
    // the raw batch before it is discarded).
    let partial = partial_kmeans(new_points, cfg)?;
    let new_spreads = batch_spreads(new_points, &partial.centroids)?;

    // Merge across time: old buckets ∪ new centroids → k buckets.
    let sets = [old.clone(), partial.centroids.clone()];
    let merged = merge_collective(&sets, cfg, 1)?;

    // Re-derive per-bucket spreads: every merge input (old bucket or new
    // centroid) carries a spread; the output bucket's spread is the
    // weight-proportional RMS combination of its inputs' spreads plus the
    // scatter of the input centroids around the new bucket centre.
    let mut inputs: Vec<(Vec<f64>, f64, Vec<f64>)> = Vec::new(); // coords, w, spread
    for b in &hist.buckets {
        inputs.push((b.centroid.clone(), b.count, b.spread.clone()));
    }
    for (i, (c, w)) in partial.centroids.iter().enumerate() {
        inputs.push((c.to_vec(), w, new_spreads[i].clone()));
    }
    let k = merged.centroids.k();
    let mut var_acc = vec![0.0f64; k * dim];
    let mut w_acc = vec![0.0f64; k];
    for (coords, w, spread) in &inputs {
        let (j, _) = nearest_centroid(coords, merged.centroids.as_flat(), dim);
        let center = merged.centroids.centroid(j);
        for d in 0..dim {
            let offset = coords[d] - center[d];
            var_acc[j * dim + d] += w * (spread[d] * spread[d] + offset * offset);
        }
        w_acc[j] += w;
    }
    let mut buckets = Vec::with_capacity(k);
    for j in 0..k {
        let spread: Vec<f64> = (0..dim)
            .map(|d| {
                if w_acc[j] > 0.0 {
                    (var_acc[j * dim + d] / w_acc[j]).max(0.0).sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        buckets.push(Bucket {
            centroid: merged.centroids.centroid(j).to_vec(),
            count: merged.cluster_weights[j],
            spread,
        });
    }
    let total_count: f64 = buckets.iter().map(|b| b.count).sum();
    let updated = MultivariateHistogram { dim, total_count, buckets };
    Ok((updated, UpdateStats { new_points: new_points.len(), total_count, merge_epm: merged.epm }))
}

/// Per-cluster, per-dimension standard deviations of the raw batch under
/// the partial centroids.
fn batch_spreads(batch: &Dataset, centroids: &WeightedSet) -> Result<Vec<Vec<f64>>> {
    let dim = batch.dim();
    let k = centroids.len();
    let flat: Vec<f64> = centroids.iter().flat_map(|(c, _)| c.iter().copied()).collect();
    let mut counts = vec![0.0f64; k];
    let mut sums = vec![0.0f64; k * dim];
    let mut sqs = vec![0.0f64; k * dim];
    for p in batch.iter() {
        let (j, _) = nearest_centroid(p, &flat, dim);
        counts[j] += 1.0;
        for d in 0..dim {
            sums[j * dim + d] += p[d];
            sqs[j * dim + d] += p[d] * p[d];
        }
    }
    Ok((0..k)
        .map(|j| {
            (0..dim)
                .map(|d| {
                    if counts[j] > 0.0 {
                        let mean = sums[j * dim + d] / counts[j];
                        (sqs[j * dim + d] / counts[j] - mean * mean).max(0.0).sqrt()
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::compress_cell;
    use pmkm_core::PartialMergeConfig;

    fn blob_cell(seed: u64, n_per: usize, centers: &[f64]) -> Dataset {
        use rand::Rng;
        let mut rng = pmkm_core::seeding::rng_for(seed, 0);
        let mut ds = Dataset::new(2).unwrap();
        for &c in centers {
            for _ in 0..n_per {
                ds.push(&[c + rng.gen_range(-1.0..1.0), c + rng.gen_range(-1.0..1.0)]).unwrap();
            }
        }
        ds
    }

    fn kcfg(k: usize) -> KMeansConfig {
        KMeansConfig { restarts: 3, ..KMeansConfig::paper(k, 9) }
    }

    #[test]
    fn update_conserves_total_count() {
        let original = blob_cell(1, 150, &[0.0, 30.0]);
        let base = compress_cell(&original, &PartialMergeConfig::paper(4, 3, 9)).unwrap();
        let batch = blob_cell(2, 50, &[0.0, 30.0]);
        let (updated, stats) = update_histogram(&base.histogram, &batch, &kcfg(4)).unwrap();
        assert_eq!(stats.new_points, 100);
        assert!((stats.total_count - 400.0).abs() < 1e-9);
        assert!((updated.total_count - 400.0).abs() < 1e-9);
        assert!(updated.k() <= 4);
    }

    #[test]
    fn update_tracks_a_new_regime() {
        // Cell compressed with 3 buckets; the new batch introduces mass at
        // a previously unseen location — the updated histogram must place a
        // bucket near it.
        let original = blob_cell(3, 200, &[0.0, 30.0]);
        let base = compress_cell(&original, &PartialMergeConfig::paper(3, 3, 5)).unwrap();
        let novel = blob_cell(4, 300, &[-40.0]);
        let (updated, _) = update_histogram(&base.histogram, &novel, &kcfg(3)).unwrap();
        let closest = updated
            .buckets
            .iter()
            .map(|b| ((b.centroid[0] + 40.0).powi(2) + (b.centroid[1] + 40.0).powi(2)).sqrt())
            .fold(f64::INFINITY, f64::min);
        assert!(closest < 3.0, "no bucket near the new regime (closest {closest})");
    }

    #[test]
    fn update_approximates_recompression() {
        // Updating incrementally should land near what compressing the
        // concatenated data from scratch would give (quality-wise).
        let a = blob_cell(5, 200, &[0.0, 25.0]);
        let b = blob_cell(6, 200, &[0.0, 25.0]);
        let mut both = a.clone();
        both.extend_from(&b).unwrap();

        let base = compress_cell(&a, &PartialMergeConfig::paper(4, 3, 7)).unwrap();
        let (updated, _) = update_histogram(&base.histogram, &b, &kcfg(4)).unwrap();
        let scratch = compress_cell(&both, &PartialMergeConfig::paper(4, 3, 7)).unwrap();

        let inc_mse =
            pmkm_core::metrics::mse_against(&both, &updated.centroids().unwrap()).unwrap();
        let scratch_mse =
            pmkm_core::metrics::mse_against(&both, &scratch.histogram.centroids().unwrap())
                .unwrap();
        assert!(
            inc_mse < scratch_mse * 2.0 + 1.0,
            "incremental {inc_mse} vs scratch {scratch_mse}"
        );
    }

    #[test]
    fn spreads_stay_finite_and_positive() {
        let original = blob_cell(8, 100, &[0.0]);
        let base = compress_cell(&original, &PartialMergeConfig::paper(2, 2, 1)).unwrap();
        let batch = blob_cell(9, 100, &[5.0]);
        let (updated, _) = update_histogram(&base.histogram, &batch, &kcfg(2)).unwrap();
        for b in &updated.buckets {
            for s in &b.spread {
                assert!(s.is_finite() && *s >= 0.0);
            }
            assert!(b.count > 0.0);
        }
    }

    #[test]
    fn input_validation() {
        let original = blob_cell(1, 20, &[0.0]);
        let base = compress_cell(&original, &PartialMergeConfig::paper(2, 2, 1)).unwrap();
        let empty = Dataset::new(2).unwrap();
        assert!(matches!(
            update_histogram(&base.histogram, &empty, &kcfg(2)),
            Err(Error::EmptyDataset)
        ));
        let wrong_dim = Dataset::from_rows(&[[1.0]]).unwrap();
        assert!(matches!(
            update_histogram(&base.histogram, &wrong_dim, &kcfg(2)),
            Err(Error::DimensionMismatch { .. })
        ));
    }
}
