//! Property tests for the baseline algorithms' invariants.

use pmkm_baselines::{
    birch, method_b, method_c, stream_lsearch, BirchConfig, ClusteringFeature, StreamLsConfig,
};
use pmkm_core::{kmeans, Dataset, KMeansConfig, PointSource};
use proptest::prelude::*;

fn arb_dataset(min_n: usize) -> impl Strategy<Value = Dataset> {
    (1usize..4, min_n..60usize).prop_flat_map(move |(dim, n)| {
        proptest::collection::vec(-500.0..500.0f64, dim * n)
            .prop_map(move |flat| Dataset::from_flat(dim, flat).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn birch_conserves_weight(ds in arb_dataset(1), threshold in 0.0..100.0f64) {
        let cfg = BirchConfig { threshold, k: 4, ..BirchConfig::default() };
        let out = birch(&ds, &cfg).unwrap();
        let total: f64 = out.cluster_weights.iter().sum();
        prop_assert!((total - ds.len() as f64).abs() < 1e-9);
        prop_assert!(out.leaf_entries >= 1);
        prop_assert!(out.leaf_entries <= ds.len());
        prop_assert!(out.tree_height >= 1);
    }

    #[test]
    fn cf_merge_is_commutative(
        a in proptest::collection::vec(-100.0..100.0f64, 2),
        b in proptest::collection::vec(-100.0..100.0f64, 2),
        c in proptest::collection::vec(-100.0..100.0f64, 2),
    ) {
        let cf = |p: &[f64]| ClusteringFeature::from_point(p);
        let mut abc = cf(&a);
        abc.merge(&cf(&b));
        abc.merge(&cf(&c));
        let mut cba = cf(&c);
        cba.merge(&cf(&b));
        cba.merge(&cf(&a));
        prop_assert_eq!(abc.n, cba.n);
        for (x, y) in abc.ls.iter().zip(&cba.ls) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        prop_assert!((abc.ss - cba.ss).abs() < 1e-6 * abc.ss.abs().max(1.0));
        prop_assert!(abc.radius() >= 0.0);
    }

    #[test]
    fn stream_ls_conserves_weight(ds in arb_dataset(1), chunks in 1usize..6) {
        let cfg = StreamLsConfig { k: 3, max_retained: 30, swap_attempts: 20, seed: 1 };
        let out = stream_lsearch(&ds, chunks, cfg).unwrap();
        let total: f64 = out.centers.weights().iter().sum();
        prop_assert!((total - ds.len() as f64).abs() < 1e-9);
        prop_assert!(out.centers.len() <= 3 || ds.len() <= 3);
    }

    #[test]
    fn method_b_always_equals_serial(ds in arb_dataset(6), seed in any::<u64>()) {
        let k = 3.min(ds.len());
        let cfg = KMeansConfig { restarts: 3, ..KMeansConfig::paper(k, seed) };
        let serial = kmeans(&ds, &cfg).unwrap();
        let parallel = method_b(&ds, &cfg, 2).unwrap();
        prop_assert_eq!(parallel.best.centroids, serial.best.centroids);
        prop_assert_eq!(parallel.best_restart, serial.best_restart);
    }

    #[test]
    fn method_c_single_slave_is_bit_exact(ds in arb_dataset(6), seed in any::<u64>()) {
        let k = 2.min(ds.len());
        let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(k, seed) };
        let serial = {
            let mut rng = pmkm_core::seeding::rng_for(seed, 0);
            let init = pmkm_core::seeding::seed_centroids(
                &ds,
                k,
                pmkm_core::SeedMode::RandomPoints,
                &mut rng,
            )
            .unwrap();
            pmkm_core::lloyd::lloyd(&ds, &init, &cfg.lloyd).unwrap()
        };
        let dist = method_c(&ds, &cfg, 1).unwrap();
        prop_assert_eq!(dist.centroids, serial.centroids);
        prop_assert_eq!(dist.iterations, serial.iterations);
    }
}
