//! The three classical k-means parallelization strategies of Figure 2.
//!
//! * **Method A** — one grid cell per processor,
//! * **Method B** — one restart (`R_i`) per processor for a single cell,
//! * **Method C** — distributed k-means: the points of one cell are
//!   partitioned across slaves; each iteration every slave assigns its
//!   points against the broadcast centroids, sends partial sums to the
//!   master, and receives the recomputed means back (message-passing
//!   overhead counted explicitly).
//!
//! All three produce results identical to their serial counterparts for the
//! same seeds (parallelism changes wall-clock, never output), which the
//! tests assert.

use pmkm_core::config::SeedMode;
use pmkm_core::error::{Error, Result};
use pmkm_core::lloyd::lloyd;
use pmkm_core::seeding::{rng_for, seed_centroids};
use pmkm_core::{kmeans, Centroids, Dataset, KMeansConfig, KMeansOutcome, LloydRun, PointSource};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Builds a rayon pool of exactly `workers` threads.
fn pool(workers: usize) -> Result<rayon::ThreadPool> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(workers.max(1))
        .build()
        .map_err(|e| Error::InvalidConfig(e.to_string()))
}

/// Method A result: one serial k-means per cell, cells fanned out.
#[derive(Debug, Clone)]
pub struct MethodAResult {
    /// Per-cell best-of-R outcomes, in input order.
    pub cells: Vec<KMeansOutcome>,
    /// Wall time of the whole fan-out.
    pub elapsed: Duration,
}

/// Method A: "assign the clustering of one grid cell each to a processor".
/// Cell `i` uses seed stream `(cfg.seed, i)`.
pub fn method_a(cells: &[Dataset], cfg: &KMeansConfig, workers: usize) -> Result<MethodAResult> {
    cfg.validate()?;
    let started = Instant::now();
    let outcomes = pool(workers)?.install(|| {
        cells
            .par_iter()
            .enumerate()
            .map(|(i, cell)| {
                let cell_cfg = KMeansConfig {
                    seed: pmkm_core::seeding::derive_seed(cfg.seed, i as u64),
                    ..*cfg
                };
                kmeans(cell, &cell_cfg)
            })
            .collect::<Result<Vec<_>>>()
    })?;
    Ok(MethodAResult { cells: outcomes, elapsed: started.elapsed() })
}

/// Method B result: restarts of one cell fanned out.
#[derive(Debug, Clone)]
pub struct MethodBResult {
    /// The minimum-MSE run across all restarts.
    pub best: LloydRun,
    /// Which restart won.
    pub best_restart: usize,
    /// MSE per restart, in restart order.
    pub restart_mses: Vec<f64>,
    /// Wall time.
    pub elapsed: Duration,
}

/// Method B: "assign each run `R_i` of k-means on one grid cell using one
/// set of initial, randomly chosen k seeds to a processor". Restart seeds
/// match [`pmkm_core::kmeans::kmeans`], so the result equals the serial best-of-R.
pub fn method_b(cell: &Dataset, cfg: &KMeansConfig, workers: usize) -> Result<MethodBResult> {
    cfg.validate()?;
    let started = Instant::now();
    let runs = pool(workers)?.install(|| {
        (0..cfg.restarts)
            .into_par_iter()
            .map(|r| {
                let mut rng = rng_for(cfg.seed, r as u64);
                let init = seed_centroids(cell, cfg.k, cfg.seed_mode, &mut rng)?;
                lloyd(cell, &init, &cfg.lloyd)
            })
            .collect::<Result<Vec<_>>>()
    })?;
    let restart_mses: Vec<f64> = runs.iter().map(|r| r.mse).collect();
    // First minimum wins, matching the serial "better = strictly smaller"
    // selection rule.
    let mut best_restart = 0;
    for (i, m) in restart_mses.iter().enumerate() {
        if *m < restart_mses[best_restart] {
            best_restart = i;
        }
    }
    let best = runs
        .into_iter()
        .nth(best_restart)
        .ok_or(Error::InvalidConfig("restarts must be at least 1".into()))?;
    Ok(MethodBResult { best, best_restart, restart_mses, elapsed: started.elapsed() })
}

/// Method C result: distributed Lloyd with explicit message accounting.
#[derive(Debug, Clone)]
pub struct MethodCResult {
    /// Final centroids (bit-identical to a serial Lloyd from the same init).
    pub centroids: Centroids,
    /// Final MSE.
    pub mse: f64,
    /// Iterations to converge (same count as the serial Lloyd).
    pub iterations: usize,
    /// Whether the MSE delta criterion was met.
    pub converged: bool,
    /// Messages passed between master and slaves (the overhead the paper
    /// says Method C "introduces"): per assignment round, one centroid
    /// broadcast to each slave plus one partial-statistics reply per slave.
    pub messages: usize,
    /// Total floats shipped in those messages.
    pub floats_shipped: usize,
    /// Wall time.
    pub elapsed: Duration,
}

/// Accumulated round statistics: (sums, weights, sse, donors).
type RoundStats = (Vec<f64>, Vec<f64>, f64, Vec<(f64, usize, Vec<f64>)>);

/// Per-slave statistics for one assignment round.
struct SlaveReply {
    sums: Vec<f64>,
    weights: Vec<f64>,
    sse: f64,
    /// Up to k donor candidates for empty-cluster repair:
    /// (d², global point index, coordinates), farthest first.
    donors: Vec<(f64, usize, Vec<f64>)>,
}

/// Method C: distributed k-means over `slaves` point partitions.
///
/// Every assignment round:
/// 1. the master broadcasts the current `k × dim` centroid table to each
///    slave (`slaves` messages),
/// 2. each slave assigns its points and replies with per-cluster weighted
///    sums, weights, its partial SSE and its top-k empty-cluster donor
///    candidates (`slaves` messages),
/// 3. the master reduces the replies into new means — re-seeding empty
///    clusters from the globally farthest points, exactly like
///    [`pmkm_core::lloyd::lloyd`] — and checks convergence on the global MSE
///    delta.
///
/// The arithmetic replicates the serial Lloyd step for step, so for the
/// same initial seeds Method C converges to the same centroids in the same
/// number of iterations; only the message overhead differs.
pub fn method_c(cell: &Dataset, cfg: &KMeansConfig, slaves: usize) -> Result<MethodCResult> {
    cfg.validate()?;
    if cell.is_empty() {
        return Err(Error::EmptyDataset);
    }
    if cfg.k > cell.len() {
        return Err(Error::KExceedsPoints { k: cfg.k, points: cell.len() });
    }
    let started = Instant::now();
    let slaves = slaves.max(1);
    let dim = cell.dim();
    let k = cfg.k;
    let n = cell.len();
    // Static point partitioning (paper: "divide the grid cell into disjunct
    // subsets ... assigned to different slaves"). Round-robin deal: original
    // point `j` lands in partition `j % slaves` at position `j / slaves`.
    let parts = cell.split_round_robin(slaves)?;
    let workers = pool(slaves)?;

    let mut rng = rng_for(cfg.seed, 0);
    let mut centroids = seed_centroids(cell, k, SeedMode::RandomPoints, &mut rng)?;

    let mut messages = 0usize;
    let mut floats_shipped = 0usize;
    let mut iterations = 0usize;
    let mut converged = false;

    // One assignment round: broadcast + parallel slave work + reduce.
    let round = |centroids: &Centroids, messages: &mut usize, floats: &mut usize| -> RoundStats {
        *messages += slaves; // broadcast
        *floats += slaves * k * dim;
        let replies: Vec<SlaveReply> = workers.install(|| {
            parts
                .par_iter()
                .enumerate()
                .map(|(p, part)| slave_assign(part, centroids, p, slaves, k))
                .collect()
        });
        *messages += slaves; // replies
        for r in &replies {
            *floats += r.sums.len() + r.weights.len() + 1 + r.donors.len() * (dim + 2);
        }
        let mut sums = vec![0.0; k * dim];
        let mut weights = vec![0.0; k];
        let mut sse = 0.0;
        let mut donors: Vec<(f64, usize, Vec<f64>)> = Vec::new();
        for r in replies {
            for (s, v) in sums.iter_mut().zip(&r.sums) {
                *s += v;
            }
            for (w, v) in weights.iter_mut().zip(&r.weights) {
                *w += v;
            }
            sse += r.sse;
            donors.extend(r.donors);
        }
        // Same donor order as the core implementation: d² descending,
        // original point index ascending among ties.
        donors.sort_by(|a, b| {
            b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
        });
        (sums, weights, sse, donors)
    };

    // MSE(0) from the initial seeds, then iterate recompute → assign.
    let (mut sums, mut weights, sse0, mut donors) =
        round(&centroids, &mut messages, &mut floats_shipped);
    let mut prev_mse = sse0 / n as f64;
    let mut final_mse = prev_mse;

    while iterations < cfg.lloyd.max_iters {
        // Master recomputes means; empty clusters jump to farthest points.
        let mut flat = centroids.as_flat().to_vec();
        let mut donor_iter = donors.iter();
        for j in 0..k {
            if weights[j] > 0.0 {
                for d in 0..dim {
                    flat[j * dim + d] = sums[j * dim + d] / weights[j];
                }
            } else if let Some((_, _, coords)) = donor_iter.next() {
                flat[j * dim..(j + 1) * dim].copy_from_slice(coords);
            }
        }
        centroids = Centroids::from_flat(dim, flat)?;

        let (s, w, sse, d) = round(&centroids, &mut messages, &mut floats_shipped);
        sums = s;
        weights = w;
        donors = d;
        let mse = sse / n as f64;
        iterations += 1;
        let delta = prev_mse - mse;
        final_mse = mse;
        prev_mse = mse;
        if delta >= 0.0 && delta <= cfg.lloyd.epsilon {
            converged = true;
            break;
        }
    }

    Ok(MethodCResult {
        centroids,
        mse: final_mse,
        iterations,
        converged,
        messages,
        floats_shipped,
        elapsed: started.elapsed(),
    })
}

fn slave_assign(
    part: &Dataset,
    centroids: &Centroids,
    part_idx: usize,
    slaves: usize,
    k: usize,
) -> SlaveReply {
    let dim = centroids.dim();
    let kc = centroids.k();
    let mut sums = vec![0.0; kc * dim];
    let mut weights = vec![0.0; kc];
    let mut sse = 0.0;
    // (d², global index, coords) for every local point; truncated to the
    // top k below.
    let mut donors: Vec<(f64, usize, Vec<f64>)> = Vec::with_capacity(part.len());
    for (pos, p) in part.iter().enumerate() {
        let (j, d2) = pmkm_core::point::nearest_centroid(p, centroids.as_flat(), dim);
        for (s, c) in sums[j * dim..(j + 1) * dim].iter_mut().zip(p) {
            *s += c;
        }
        weights[j] += 1.0;
        sse += d2;
        donors.push((d2, pos * slaves + part_idx, p.to_vec()));
    }
    donors.sort_by(|a, b| {
        b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
    });
    donors.truncate(k);
    SlaveReply { sums, weights, sse, donors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_cell(seed: u64, n: usize) -> Dataset {
        use rand::Rng;
        let mut rng = rng_for(seed, 0);
        let mut ds = Dataset::new(2).unwrap();
        for _ in 0..n {
            let b = if rng.gen_bool(0.5) { 0.0 } else { 30.0 };
            ds.push(&[b + rng.gen_range(-1.0..1.0), b + rng.gen_range(-1.0..1.0)]).unwrap();
        }
        ds
    }

    #[test]
    fn method_a_matches_per_cell_serial() {
        let cells = vec![blob_cell(1, 80), blob_cell(2, 60)];
        let cfg = KMeansConfig { restarts: 3, ..KMeansConfig::paper(2, 9) };
        let out = method_a(&cells, &cfg, 2).unwrap();
        assert_eq!(out.cells.len(), 2);
        for (i, cell) in cells.iter().enumerate() {
            let cell_cfg =
                KMeansConfig { seed: pmkm_core::seeding::derive_seed(9, i as u64), ..cfg };
            let serial = kmeans(cell, &cell_cfg).unwrap();
            assert_eq!(out.cells[i].best.centroids, serial.best.centroids);
        }
    }

    #[test]
    fn method_a_worker_count_is_irrelevant_to_results() {
        let cells = vec![blob_cell(3, 50), blob_cell(4, 50), blob_cell(5, 50)];
        let cfg = KMeansConfig { restarts: 2, ..KMeansConfig::paper(2, 0) };
        let w1 = method_a(&cells, &cfg, 1).unwrap();
        let w4 = method_a(&cells, &cfg, 4).unwrap();
        for (a, b) in w1.cells.iter().zip(&w4.cells) {
            assert_eq!(a.best.centroids, b.best.centroids);
        }
    }

    #[test]
    fn method_b_equals_serial_best_of_r() {
        let cell = blob_cell(6, 100);
        let cfg = KMeansConfig { restarts: 5, ..KMeansConfig::paper(2, 77) };
        let serial = kmeans(&cell, &cfg).unwrap();
        let parallel = method_b(&cell, &cfg, 4).unwrap();
        assert_eq!(parallel.best.centroids, serial.best.centroids);
        assert_eq!(parallel.best_restart, serial.best_restart);
        assert_eq!(parallel.restart_mses.len(), 5);
        for (m, r) in parallel.restart_mses.iter().zip(&serial.restarts) {
            assert_eq!(*m, r.mse);
        }
    }

    #[test]
    fn method_c_matches_serial_lloyd_exactly() {
        let cell = blob_cell(7, 120);
        let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(3, 13) };
        // Serial reference from the same deterministic seeding.
        let mut rng = rng_for(13, 0);
        let init = seed_centroids(&cell, 3, SeedMode::RandomPoints, &mut rng).unwrap();
        let serial = lloyd(&cell, &init, &cfg.lloyd).unwrap();
        // One slave reproduces the serial summation order bit for bit.
        let one = method_c(&cell, &cfg, 1).unwrap();
        assert_eq!(one.centroids, serial.centroids);
        assert_eq!(one.iterations, serial.iterations);
        // Multiple slaves reorder float additions; results agree to within
        // accumulated rounding (the algorithm is otherwise identical).
        for slaves in [2, 4] {
            let dist = method_c(&cell, &cfg, slaves).unwrap();
            assert_eq!(dist.iterations, serial.iterations, "slaves={slaves}");
            for (a, b) in dist.centroids.as_flat().iter().zip(serial.centroids.as_flat()) {
                assert!((a - b).abs() < 1e-9, "slaves={slaves}: {a} vs {b}");
            }
            assert!((dist.mse - serial.mse).abs() < 1e-9 * serial.mse.max(1.0));
            assert!(dist.converged);
        }
    }

    #[test]
    fn method_c_with_forced_empty_cluster_still_matches() {
        // A cell with a big duplicate mass makes random seeds likely to
        // collide, exercising the empty-cluster repair path.
        let mut cell = Dataset::new(1).unwrap();
        for _ in 0..40 {
            cell.push(&[0.0]).unwrap();
        }
        for i in 0..10 {
            cell.push(&[100.0 + i as f64]).unwrap();
        }
        for seed in 0..20u64 {
            let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(4, seed) };
            let mut rng = rng_for(seed, 0);
            let init = seed_centroids(&cell, 4, SeedMode::RandomPoints, &mut rng).unwrap();
            let serial = lloyd(&cell, &init, &cfg.lloyd).unwrap();
            let dist = method_c(&cell, &cfg, 3).unwrap();
            assert_eq!(dist.iterations, serial.iterations, "seed={seed}");
            for (a, b) in dist.centroids.as_flat().iter().zip(serial.centroids.as_flat()) {
                assert!((a - b).abs() < 1e-9, "seed={seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn method_c_counts_messages_per_round() {
        let cell = blob_cell(8, 90);
        let cfg = KMeansConfig { restarts: 1, ..KMeansConfig::paper(2, 3) };
        let out = method_c(&cell, &cfg, 3).unwrap();
        // One initial round plus one per iteration; 2 messages per slave
        // per round.
        assert_eq!(out.messages, 2 * 3 * (out.iterations + 1));
        assert!(out.floats_shipped > 0);
        let out6 = method_c(&cell, &cfg, 6).unwrap();
        assert_eq!(out6.iterations, out.iterations);
        assert!(out6.messages > out.messages);
    }

    #[test]
    fn method_c_input_validation() {
        let empty = Dataset::new(2).unwrap();
        let cfg = KMeansConfig::paper(2, 0);
        assert!(matches!(method_c(&empty, &cfg, 2), Err(Error::EmptyDataset)));
        let tiny = Dataset::from_rows(&[[0.0, 0.0]]).unwrap();
        assert!(matches!(
            method_c(&tiny, &KMeansConfig::paper(2, 0), 2),
            Err(Error::KExceedsPoints { .. })
        ));
    }
}
