//! # pmkm-baselines — every comparator the paper measures or cites
//!
//! * [`serial`] — the serial best-of-R k-means of §5 (the main baseline of
//!   Table 2 and Figures 6–7),
//! * [`methods`] — the three parallelization strategies of Figure 2
//!   (cell-per-processor, restart-per-processor, distributed k-means with
//!   message accounting),
//! * [`mod@birch`] — BIRCH CF-trees (§2.2 related work \[30\]),
//! * [`mod@stream_lsearch`] — a STREAM/LOCALSEARCH-style streaming k-median
//!   (§2.2 related work \[7\], the approach the paper calls closest to its
//!   own),
//! * [`mod@clarans`] — CLARANS randomized k-medoid search (§2.2 related
//!   work \[25\]),
//! * [`mod@minibatch`] — mini-batch k-means (Sculley 2010), the modern
//!   comparator that postdates the paper.
//!
//! All baselines consume the same `pmkm_core` data types, so the bench
//! harnesses compare like with like.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod birch;
pub mod clarans;
pub mod methods;
pub mod minibatch;
pub mod serial;
pub mod stream_lsearch;

pub use birch::{birch, BirchConfig, BirchResult, CfTree, ClusteringFeature};
pub use clarans::{clarans, ClaransConfig, ClaransResult};
pub use methods::{method_a, method_b, method_c, MethodAResult, MethodBResult, MethodCResult};
pub use minibatch::{minibatch_kmeans, MiniBatchConfig, MiniBatchResult};
pub use serial::{serial_kmeans, SerialResult};
pub use stream_lsearch::{stream_lsearch, StreamLs, StreamLsConfig, StreamLsResult};
