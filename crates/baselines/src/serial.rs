//! The serial k-means baseline (§5.1): load the whole grid cell into
//! memory, run best-of-R k-means, keep the minimum-MSE representation.

use pmkm_core::error::Result;
use pmkm_core::{kmeans, Dataset, KMeansConfig, KMeansOutcome};
use std::time::{Duration, Instant};

/// Outcome of the serial baseline with the timing the paper tabulates.
#[derive(Debug, Clone)]
pub struct SerialResult {
    /// The best-of-R outcome (centroids, MSE, per-restart stats).
    pub outcome: KMeansOutcome,
    /// Wall time of the whole serial run (all R restarts).
    pub elapsed: Duration,
}

impl SerialResult {
    /// The minimum MSE — Table 2's `Min MSE` column for the serial rows.
    pub fn min_mse(&self) -> f64 {
        self.outcome.best.mse
    }
}

/// Runs the serial baseline. This is literally the same code path as the
/// partial step on the full cell ("the code for the serial and the partial
/// k-means implementation are identical"), wrapped with timing.
pub fn serial_kmeans(cell: &Dataset, cfg: &KMeansConfig) -> Result<SerialResult> {
    let started = Instant::now();
    let outcome = kmeans(cell, cfg)?;
    Ok(SerialResult { outcome, elapsed: started.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_core::PointSource;

    fn cell() -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..60 {
            let o = (i % 6) as f64 * 0.05;
            ds.push(&[o, o]).unwrap();
            ds.push(&[8.0 + o, 8.0 - o]).unwrap();
        }
        ds
    }

    #[test]
    fn matches_core_kmeans_exactly() {
        let ds = cell();
        let cfg = KMeansConfig::paper(2, 31);
        let serial = serial_kmeans(&ds, &cfg).unwrap();
        let core = pmkm_core::kmeans(&ds, &cfg).unwrap();
        assert_eq!(serial.outcome.best.centroids, core.best.centroids);
        assert_eq!(serial.min_mse(), core.best.mse);
    }

    #[test]
    fn reports_positive_elapsed_and_weights() {
        let ds = cell();
        let serial = serial_kmeans(&ds, &KMeansConfig::paper(2, 1)).unwrap();
        assert!(serial.elapsed > Duration::ZERO);
        let total: f64 = serial.outcome.best.cluster_weights.iter().sum();
        assert_eq!(total, ds.len() as f64);
    }
}
