//! Mini-batch k-means (Sculley, WWW 2010) — the modern streaming
//! comparator. Not in the 2004 paper (it postdates it by six years), but
//! it is *the* algorithm practitioners reach for today where partial/merge
//! k-means was proposed, so the showdown includes it: per step, sample a
//! mini-batch, assign it against the current centroids, and move each
//! centroid toward the batch members it won with a per-centroid learning
//! rate `1 / count`.

use pmkm_core::error::{Error, Result};
use pmkm_core::point::nearest_centroid;
use pmkm_core::seeding::rng_for;
use pmkm_core::{Centroids, Dataset, PointSource, SeedMode};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Mini-batch k-means parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiniBatchConfig {
    /// Number of clusters.
    pub k: usize,
    /// Points sampled per step.
    pub batch_size: usize,
    /// Number of mini-batch steps.
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        Self { k: 8, batch_size: 256, steps: 100, seed: 0 }
    }
}

impl MiniBatchConfig {
    fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(Error::ZeroK);
        }
        if self.batch_size == 0 || self.steps == 0 {
            return Err(Error::InvalidConfig("batch_size and steps must be >= 1".into()));
        }
        Ok(())
    }
}

/// Mini-batch k-means result.
#[derive(Debug, Clone)]
pub struct MiniBatchResult {
    /// Final centroids.
    pub centroids: Centroids,
    /// Points captured per centroid in the final full assignment.
    pub cluster_weights: Vec<f64>,
    /// Data-space MSE of the final centroids (full pass at the end).
    pub mse: f64,
    /// Points processed across all steps (`batch_size × steps`).
    pub points_processed: usize,
    /// Wall time.
    pub elapsed: Duration,
}

/// Runs mini-batch k-means on one cell.
pub fn minibatch_kmeans(ds: &Dataset, cfg: &MiniBatchConfig) -> Result<MiniBatchResult> {
    cfg.validate()?;
    if ds.is_empty() {
        return Err(Error::EmptyDataset);
    }
    let n = ds.len();
    if cfg.k > n {
        return Err(Error::KExceedsPoints { k: cfg.k, points: n });
    }
    let started = Instant::now();
    let dim = ds.dim();
    let mut rng = rng_for(cfg.seed, 0);
    // k-means++ seeding, like scikit-learn's MiniBatchKMeans default.
    let init = pmkm_core::seeding::seed_centroids(ds, cfg.k, SeedMode::PlusPlus, &mut rng)?;
    let mut centroids: Vec<f64> = init.as_flat().to_vec();
    let mut counts = vec![0u64; cfg.k];
    let mut batch = vec![0usize; cfg.batch_size];

    for _ in 0..cfg.steps {
        for slot in batch.iter_mut() {
            *slot = rng.gen_range(0..n);
        }
        // Assign the batch against the *frozen* centroids, then update.
        let assigned: Vec<usize> =
            batch.iter().map(|&i| nearest_centroid(ds.coords(i), &centroids, dim).0).collect();
        for (&i, &j) in batch.iter().zip(&assigned) {
            counts[j] += 1;
            let eta = 1.0 / counts[j] as f64;
            let c = &mut centroids[j * dim..(j + 1) * dim];
            for (cv, xv) in c.iter_mut().zip(ds.coords(i)) {
                *cv += eta * (xv - *cv);
            }
        }
    }

    let centroids = Centroids::from_flat(dim, centroids)?;
    let ev = pmkm_core::metrics::evaluate(ds, &centroids)?;
    Ok(MiniBatchResult {
        centroids,
        cluster_weights: ev.cluster_weights,
        mse: ev.mse,
        points_processed: cfg.batch_size * cfg.steps,
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_core::metrics;

    fn blob_cell(n_per: usize) -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..n_per {
            let o = (i % 8) as f64 * 0.1;
            ds.push(&[o, o]).unwrap();
            ds.push(&[40.0 + o, 40.0 - o]).unwrap();
        }
        ds
    }

    #[test]
    fn converges_to_blob_structure() {
        let ds = blob_cell(200);
        let cfg = MiniBatchConfig { k: 2, batch_size: 64, steps: 200, seed: 3 };
        let out = minibatch_kmeans(&ds, &cfg).unwrap();
        let mse = metrics::mse_against(&ds, &out.centroids).unwrap();
        assert!(mse < 2.0, "mse = {mse}");
        let total: f64 = out.cluster_weights.iter().sum();
        assert_eq!(total, 400.0);
        assert_eq!(out.points_processed, 64 * 200);
    }

    #[test]
    fn more_steps_do_not_hurt_much() {
        let ds = blob_cell(150);
        let short =
            minibatch_kmeans(&ds, &MiniBatchConfig { k: 2, batch_size: 32, steps: 20, seed: 7 })
                .unwrap();
        let long =
            minibatch_kmeans(&ds, &MiniBatchConfig { k: 2, batch_size: 32, steps: 400, seed: 7 })
                .unwrap();
        assert!(long.mse <= short.mse * 1.5 + 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = blob_cell(60);
        let cfg = MiniBatchConfig { k: 3, batch_size: 16, steps: 50, seed: 11 };
        let a = minibatch_kmeans(&ds, &cfg).unwrap();
        let b = minibatch_kmeans(&ds, &cfg).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.mse, b.mse);
    }

    #[test]
    fn input_validation() {
        let empty = Dataset::new(2).unwrap();
        assert!(matches!(
            minibatch_kmeans(&empty, &MiniBatchConfig::default()),
            Err(Error::EmptyDataset)
        ));
        let tiny = Dataset::from_rows(&[[0.0, 0.0]]).unwrap();
        assert!(matches!(
            minibatch_kmeans(&tiny, &MiniBatchConfig { k: 2, ..Default::default() }),
            Err(Error::KExceedsPoints { .. })
        ));
        let ds = blob_cell(10);
        assert!(minibatch_kmeans(&ds, &MiniBatchConfig { k: 0, ..Default::default() }).is_err());
        assert!(minibatch_kmeans(&ds, &MiniBatchConfig { batch_size: 0, ..Default::default() })
            .is_err());
    }
}
