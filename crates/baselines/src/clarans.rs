//! CLARANS (Ng & Han, VLDB 1994) — "Efficient and Effective Clustering
//! Methods for Spatial Data Mining", the paper's related-work citation
//! \[25\] for partitional clustering of large spatial data.
//!
//! CLARANS searches the graph whose nodes are k-medoid sets and whose
//! edges connect sets differing in one medoid: from a random node it
//! examines up to `max_neighbors` random swap-neighbors, moves greedily to
//! the first improving one, and declares a *local minimum* when none of
//! the sampled neighbors improves; the whole search restarts `num_local`
//! times and keeps the cheapest local minimum.
//!
//! Swap costs are evaluated with the classic PAM bookkeeping: for every
//! point we track the distance to its nearest and second-nearest medoid,
//! so the cost delta of swapping medoid `out` for candidate `in` is a
//! single O(n·d) pass instead of a full O(n·k·d) re-clustering.

use pmkm_core::error::{Error, Result};
use pmkm_core::point::dist;
use pmkm_core::seeding::rng_for;
use pmkm_core::{Centroids, Dataset, PointSource};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// CLARANS parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClaransConfig {
    /// Number of medoids (clusters).
    pub k: usize,
    /// Local-minimum searches (`numlocal`; Ng & Han recommend 2).
    pub num_local: usize,
    /// Neighbor samples per step (`maxneighbor`; Ng & Han recommend
    /// `max(250, 1.25 % · k(n−k))` — pass 0 to use that rule).
    pub max_neighbors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClaransConfig {
    fn default() -> Self {
        Self { k: 8, num_local: 2, max_neighbors: 0, seed: 0 }
    }
}

impl ClaransConfig {
    fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(Error::ZeroK);
        }
        if self.num_local == 0 {
            return Err(Error::InvalidConfig("num_local must be >= 1".into()));
        }
        Ok(())
    }

    fn resolved_neighbors(&self, n: usize) -> usize {
        if self.max_neighbors > 0 {
            return self.max_neighbors;
        }
        let rule = (0.0125 * (self.k * (n - self.k.min(n))) as f64) as usize;
        rule.max(250)
    }
}

/// CLARANS result.
#[derive(Debug, Clone)]
pub struct ClaransResult {
    /// Indices of the chosen medoids in the input dataset.
    pub medoid_indices: Vec<usize>,
    /// The medoids as a centroid table (for metric comparisons).
    pub medoids: Centroids,
    /// k-medoid cost: Σ dist(point, nearest medoid).
    pub cost: f64,
    /// Points captured per medoid.
    pub cluster_weights: Vec<f64>,
    /// Swap-neighbors examined in total.
    pub neighbors_examined: usize,
    /// Local minima found (= `num_local`).
    pub local_minima: usize,
    /// Wall time.
    pub elapsed: Duration,
}

/// Per-point nearest/second-nearest bookkeeping.
struct Assign {
    nearest: Vec<usize>,
    d1: Vec<f64>,
    d2: Vec<f64>,
}

fn full_assign(ds: &Dataset, medoids: &[usize]) -> (Assign, f64) {
    let n = ds.len();
    let mut a = Assign { nearest: vec![0; n], d1: vec![0.0; n], d2: vec![0.0; n] };
    let mut cost = 0.0;
    for i in 0..n {
        let p = ds.coords(i);
        let mut best = (f64::INFINITY, 0usize);
        let mut second = f64::INFINITY;
        for (mi, &m) in medoids.iter().enumerate() {
            let d = dist(p, ds.coords(m));
            if d < best.0 {
                second = best.0;
                best = (d, mi);
            } else if d < second {
                second = d;
            }
        }
        a.nearest[i] = best.1;
        a.d1[i] = best.0;
        a.d2[i] = second;
        cost += best.0;
    }
    (a, cost)
}

/// PAM swap delta: cost change of replacing medoid slot `out_slot` with
/// point `cand`. O(n·d).
fn swap_delta(ds: &Dataset, a: &Assign, out_slot: usize, cand: usize) -> f64 {
    let cand_coords = ds.coords(cand);
    let mut delta = 0.0;
    for i in 0..ds.len() {
        let d_cand = dist(ds.coords(i), cand_coords);
        if a.nearest[i] == out_slot {
            // Point loses its medoid: goes to the candidate or its second.
            delta += d_cand.min(a.d2[i]) - a.d1[i];
        } else if d_cand < a.d1[i] {
            // Point defects to the candidate.
            delta += d_cand - a.d1[i];
        }
    }
    delta
}

/// Runs CLARANS on one cell.
pub fn clarans(ds: &Dataset, cfg: &ClaransConfig) -> Result<ClaransResult> {
    cfg.validate()?;
    if ds.is_empty() {
        return Err(Error::EmptyDataset);
    }
    let n = ds.len();
    if cfg.k > n {
        return Err(Error::KExceedsPoints { k: cfg.k, points: n });
    }
    let started = Instant::now();
    let max_neighbors = cfg.resolved_neighbors(n);
    let mut rng = rng_for(cfg.seed, 0);
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut neighbors_examined = 0usize;

    for _local in 0..cfg.num_local {
        // Random initial node: k distinct medoid indices.
        let mut medoids: Vec<usize> = {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..cfg.k {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            idx.truncate(cfg.k);
            idx
        };
        let (mut assign, mut cost) = full_assign(ds, &medoids);

        let mut tries = 0usize;
        while tries < max_neighbors {
            let out_slot = rng.gen_range(0..cfg.k);
            let cand = rng.gen_range(0..n);
            if medoids.contains(&cand) {
                tries += 1;
                continue;
            }
            neighbors_examined += 1;
            let delta = swap_delta(ds, &assign, out_slot, cand);
            if delta < -1e-12 {
                medoids[out_slot] = cand;
                let (na, nc) = full_assign(ds, &medoids);
                assign = na;
                cost = nc;
                tries = 0; // restart the neighbor counter at the new node
            } else {
                tries += 1;
            }
        }
        if best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
            best = Some((medoids, cost));
        }
    }

    let (medoid_indices, cost) = best.expect("num_local >= 1");
    let (assign, _) = full_assign(ds, &medoid_indices);
    let mut cluster_weights = vec![0.0; cfg.k];
    for &m in &assign.nearest {
        cluster_weights[m] += 1.0;
    }
    let flat: Vec<f64> =
        medoid_indices.iter().flat_map(|&m| ds.coords(m).iter().copied()).collect();
    Ok(ClaransResult {
        medoids: Centroids::from_flat(ds.dim(), flat)?,
        medoid_indices,
        cost,
        cluster_weights,
        neighbors_examined,
        local_minima: cfg.num_local,
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_core::metrics;

    fn blob_cell(n_per: usize) -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..n_per {
            let o = (i % 9) as f64 * 0.05;
            ds.push(&[o, o]).unwrap();
            ds.push(&[20.0 + o, 20.0 - o]).unwrap();
            ds.push(&[-20.0 - o, 20.0 + o]).unwrap();
        }
        ds
    }

    fn cfg(k: usize) -> ClaransConfig {
        ClaransConfig { k, num_local: 2, max_neighbors: 100, seed: 5 }
    }

    #[test]
    fn finds_the_three_blobs() {
        let ds = blob_cell(40); // 120 points
        let out = clarans(&ds, &cfg(3)).unwrap();
        assert_eq!(out.medoid_indices.len(), 3);
        // One medoid per blob: data-space MSE is small.
        let mse = metrics::mse_against(&ds, &out.medoids).unwrap();
        assert!(mse < 2.0, "mse = {mse}");
        let total: f64 = out.cluster_weights.iter().sum();
        assert_eq!(total, 120.0);
    }

    #[test]
    fn medoids_are_actual_input_points() {
        let ds = blob_cell(20);
        let out = clarans(&ds, &cfg(3)).unwrap();
        for (slot, &idx) in out.medoid_indices.iter().enumerate() {
            assert_eq!(out.medoids.centroid(slot), ds.coords(idx));
        }
        // Medoid indices are distinct.
        let mut sorted = out.medoid_indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn cost_matches_direct_recomputation() {
        let ds = blob_cell(15);
        let out = clarans(&ds, &cfg(2)).unwrap();
        let mut expect = 0.0;
        for p in ds.iter() {
            expect += out.medoids.iter().map(|m| dist(p, m)).fold(f64::INFINITY, f64::min);
        }
        assert!((out.cost - expect).abs() < 1e-9, "{} vs {expect}", out.cost);
    }

    #[test]
    fn swap_delta_agrees_with_full_reassign() {
        let ds = blob_cell(12);
        let medoids = vec![0, 5, 20];
        let (assign, cost) = full_assign(&ds, &medoids);
        for out_slot in 0..3 {
            for cand in [2usize, 7, 19, 30] {
                if medoids.contains(&cand) {
                    continue;
                }
                let delta = swap_delta(&ds, &assign, out_slot, cand);
                let mut swapped = medoids.clone();
                swapped[out_slot] = cand;
                let (_, new_cost) = full_assign(&ds, &swapped);
                assert!(
                    (cost + delta - new_cost).abs() < 1e-9,
                    "slot {out_slot} cand {cand}: {cost} + {delta} != {new_cost}"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = blob_cell(20);
        let a = clarans(&ds, &cfg(3)).unwrap();
        let b = clarans(&ds, &cfg(3)).unwrap();
        assert_eq!(a.medoid_indices, b.medoid_indices);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn neighbor_rule_resolves() {
        let c = ClaransConfig { k: 40, max_neighbors: 0, ..ClaransConfig::default() };
        // 1.25% of 40·(10000−40) = 4980 > 250.
        assert_eq!(c.resolved_neighbors(10_000), 4980);
        // Small n falls back to the 250 floor.
        assert_eq!(c.resolved_neighbors(100), 250);
        let c = ClaransConfig { max_neighbors: 77, ..ClaransConfig::default() };
        assert_eq!(c.resolved_neighbors(10_000), 77);
    }

    #[test]
    fn input_validation() {
        let empty = Dataset::new(2).unwrap();
        assert!(matches!(clarans(&empty, &cfg(2)), Err(Error::EmptyDataset)));
        let tiny = Dataset::from_rows(&[[0.0, 0.0]]).unwrap();
        assert!(matches!(clarans(&tiny, &cfg(2)), Err(Error::KExceedsPoints { .. })));
        let ds = blob_cell(5);
        assert!(clarans(&ds, &ClaransConfig { k: 0, ..cfg(1) }).is_err());
        assert!(clarans(&ds, &ClaransConfig { num_local: 0, ..cfg(2) }).is_err());
    }

    #[test]
    fn more_search_never_worse() {
        let ds = blob_cell(25);
        let quick =
            clarans(&ds, &ClaransConfig { k: 3, num_local: 1, max_neighbors: 5, seed: 9 }).unwrap();
        let thorough =
            clarans(&ds, &ClaransConfig { k: 3, num_local: 4, max_neighbors: 200, seed: 9 })
                .unwrap();
        assert!(thorough.cost <= quick.cost + 1e-9);
        assert!(thorough.neighbors_examined >= quick.neighbors_examined);
    }
}
