//! A STREAM/LOCALSEARCH-style streaming clusterer (O'Callaghan, Mishra,
//! Meyerson, Guha & Motwani, ICDE 2002) — the related work the paper calls
//! "most closely related" (§2.2, \[7\]).
//!
//! The STREAM framework clusters each incoming chunk into `k` weighted
//! centers with a facility-location **local search** (k-median objective:
//! sum of weighted *distances*, not squared distances), retains only the
//! weighted centers, and re-clusters the retained centers whenever they
//! outgrow memory. Unlike partial/merge k-means there is no collective
//! merge over all chunks — later compressions always operate on already
//! compressed state, which is exactly the structural difference the paper
//! highlights.
//!
//! The local search here is the practical swap-based variant: start from
//! weighted k-means++-style seeds, then repeatedly try swapping a random
//! non-center in for the center whose removal costs least, keeping swaps
//! that reduce the k-median cost. Gain thresholds and iteration caps match
//! the published algorithm's spirit; the exact FL subroutine of the paper
//! (with facility cost binary search) is simplified — documented here and
//! in DESIGN.md — because the comparison axes are quality and time, not
//! facility-location internals.

use pmkm_core::config::SeedMode;
use pmkm_core::error::{Error, Result};
use pmkm_core::seeding::{derive_seed, rng_for, seed_centroids};
use pmkm_core::{Centroids, Dataset, PointSource, WeightedSet};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// STREAM-LS parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamLsConfig {
    /// Centers kept per chunk (and finally).
    pub k: usize,
    /// Maximum retained weighted centers before re-compression.
    pub max_retained: usize,
    /// Swap attempts per local-search run.
    pub swap_attempts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamLsConfig {
    fn default() -> Self {
        Self { k: 8, max_retained: 400, swap_attempts: 200, seed: 0 }
    }
}

impl StreamLsConfig {
    fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(Error::ZeroK);
        }
        if self.max_retained < self.k {
            return Err(Error::InvalidConfig("max_retained must be >= k".into()));
        }
        Ok(())
    }
}

/// Final result of a STREAM-LS pass.
#[derive(Debug, Clone)]
pub struct StreamLsResult {
    /// The final `k` weighted centers.
    pub centers: WeightedSet,
    /// k-median cost of the final centers over themselves at the last
    /// compression (internal objective).
    pub cost: f64,
    /// Number of chunk compressions performed.
    pub compressions: usize,
    /// Wall time.
    pub elapsed: Duration,
}

impl StreamLsResult {
    /// The centers as a plain centroid table (for SSE comparisons against
    /// k-means outputs).
    pub fn centroids(&self) -> Result<Centroids> {
        let flat: Vec<f64> = self.centers.iter().flat_map(|(c, _)| c.iter().copied()).collect();
        Centroids::from_flat(self.centers.dim(), flat)
    }
}

/// Streaming state: feed chunks with [`StreamLs::consume_chunk`], then call
/// [`StreamLs::finish`].
pub struct StreamLs {
    cfg: StreamLsConfig,
    retained: WeightedSet,
    compressions: usize,
    chunk_counter: u64,
    started: Instant,
    dim: usize,
}

impl StreamLs {
    /// A fresh streaming clusterer for `dim`-dimensional points.
    pub fn new(dim: usize, cfg: StreamLsConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            retained: WeightedSet::new(dim)?,
            compressions: 0,
            chunk_counter: 0,
            started: Instant::now(),
            dim,
        })
    }

    /// Consumes one chunk: clusters it to `k` weighted centers via local
    /// search and adds them to the retained set, re-compressing the
    /// retained set when it exceeds the memory bound.
    pub fn consume_chunk(&mut self, chunk: &Dataset) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        if chunk.dim() != self.dim {
            return Err(Error::DimensionMismatch { expected: self.dim, actual: chunk.dim() });
        }
        let seed = derive_seed(self.cfg.seed, self.chunk_counter);
        self.chunk_counter += 1;
        let ws = WeightedSet::from_dataset(chunk);
        let (centers, _cost) = local_search(&ws, self.cfg.k, self.cfg.swap_attempts, seed)?;
        self.retained.extend_from(&centers)?;
        self.compressions += 1;
        if self.retained.len() > self.cfg.max_retained {
            let seed = derive_seed(self.cfg.seed, 0xC0DE ^ self.chunk_counter);
            let (compressed, _) =
                local_search(&self.retained, self.cfg.k, self.cfg.swap_attempts, seed)?;
            self.retained = compressed;
            self.compressions += 1;
        }
        Ok(())
    }

    /// Final compression of the retained centers down to `k`.
    pub fn finish(self) -> Result<StreamLsResult> {
        if self.retained.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let (centers, cost) = if self.retained.len() <= self.cfg.k {
            (self.retained, 0.0)
        } else {
            local_search(
                &self.retained,
                self.cfg.k,
                self.cfg.swap_attempts,
                derive_seed(self.cfg.seed, 0xF1A1),
            )?
        };
        Ok(StreamLsResult {
            centers,
            cost,
            compressions: self.compressions,
            elapsed: self.started.elapsed(),
        })
    }
}

/// One-shot convenience: stream a cell through in `p` chunks.
pub fn stream_lsearch(
    cell: &Dataset,
    chunks: usize,
    cfg: StreamLsConfig,
) -> Result<StreamLsResult> {
    cfg.validate()?;
    if cell.is_empty() {
        return Err(Error::EmptyDataset);
    }
    let mut ls = StreamLs::new(cell.dim(), cfg)?;
    for chunk in cell.split_round_robin(chunks.max(1))? {
        ls.consume_chunk(&chunk)?;
    }
    ls.finish()
}

/// Swap-based weighted k-median local search. Returns the chosen centers
/// (weighted by captured input weight) and the final k-median cost.
fn local_search(
    points: &WeightedSet,
    k: usize,
    swap_attempts: usize,
    seed: u64,
) -> Result<(WeightedSet, f64)> {
    let n = points.len();
    if n <= k {
        return Ok((points.clone(), 0.0));
    }
    let dim = points.dim();
    let mut rng = rng_for(seed, 0);
    // Seeds via weighted D² sampling (a good k-median start too).
    let init = seed_centroids(points, k, SeedMode::PlusPlus, &mut rng)?;
    let mut centers: Vec<Vec<f64>> = init.iter().map(|c| c.to_vec()).collect();
    let mut cost = kmedian_cost(points, &centers);

    for _ in 0..swap_attempts {
        let candidate_idx = rng.gen_range(0..n);
        let candidate = points.coords(candidate_idx).to_vec();
        if centers.iter().any(|c| c == &candidate) {
            continue;
        }
        let out_idx = rng.gen_range(0..k);
        let saved = std::mem::replace(&mut centers[out_idx], candidate);
        let new_cost = kmedian_cost(points, &centers);
        if new_cost + 1e-12 < cost {
            cost = new_cost;
        } else {
            centers[out_idx] = saved;
        }
    }

    // Weight each center by the input weight it captures.
    let mut weights = vec![0.0; k];
    for i in 0..n {
        let j = nearest_center(points.coords(i), &centers);
        weights[j] += points.weight(i);
    }
    let mut ws = WeightedSet::new(dim)?;
    for (c, w) in centers.iter().zip(&weights) {
        if *w > 0.0 {
            ws.push(c, *w)?;
        }
    }
    Ok((ws, cost))
}

fn nearest_center(p: &[f64], centers: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (j, c) in centers.iter().enumerate() {
        let d: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best_d {
            best_d = d;
            best = j;
        }
    }
    best
}

/// k-median objective: Σ wᵢ · dist(xᵢ, nearest center).
fn kmedian_cost(points: &WeightedSet, centers: &[Vec<f64>]) -> f64 {
    let mut cost = 0.0;
    for i in 0..points.len() {
        let p = points.coords(i);
        let d: f64 = centers
            .iter()
            .map(|c| p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt())
            .fold(f64::INFINITY, f64::min);
        cost += points.weight(i) * d;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_core::metrics;

    fn blob_cell(n_per: usize) -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..n_per {
            let o = (i % 8) as f64 * 0.05;
            ds.push(&[o, o]).unwrap();
            ds.push(&[25.0 + o, 25.0 - o]).unwrap();
        }
        ds
    }

    #[test]
    fn recovers_two_blobs() {
        let ds = blob_cell(100);
        let cfg = StreamLsConfig { k: 2, seed: 3, ..StreamLsConfig::default() };
        let out = stream_lsearch(&ds, 5, cfg).unwrap();
        assert_eq!(out.centers.len(), 2);
        let total: f64 = out.centers.weights().iter().sum();
        assert_eq!(total, 200.0);
        let mse = metrics::mse_against(&ds, &out.centroids().unwrap()).unwrap();
        assert!(mse < 5.0, "mse = {mse}");
    }

    #[test]
    fn weight_is_conserved_through_recompressions() {
        let ds = blob_cell(200); // 400 points
        let cfg = StreamLsConfig { k: 4, max_retained: 8, seed: 1, ..StreamLsConfig::default() };
        let out = stream_lsearch(&ds, 10, cfg).unwrap();
        let total: f64 = out.centers.weights().iter().sum();
        assert_eq!(total, 400.0);
        // max_retained = 8 with 10 chunks of k=4 each forces intermediate
        // compressions.
        assert!(out.compressions > 10, "compressions = {}", out.compressions);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = blob_cell(60);
        let cfg = StreamLsConfig { k: 3, seed: 9, ..StreamLsConfig::default() };
        let a = stream_lsearch(&ds, 4, cfg).unwrap();
        let b = stream_lsearch(&ds, 4, cfg).unwrap();
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn local_search_improves_or_keeps_cost() {
        let ds = blob_cell(60);
        let ws = WeightedSet::from_dataset(&ds);
        let (_, cost_many) = local_search(&ws, 2, 300, 5).unwrap();
        let (_, cost_none) = local_search(&ws, 2, 0, 5).unwrap();
        assert!(cost_many <= cost_none + 1e-9);
    }

    #[test]
    fn tiny_inputs_pass_through() {
        let mut ds = Dataset::new(1).unwrap();
        ds.push(&[1.0]).unwrap();
        ds.push(&[2.0]).unwrap();
        let cfg = StreamLsConfig { k: 8, ..StreamLsConfig::default() };
        let out = stream_lsearch(&ds, 2, cfg).unwrap();
        assert_eq!(out.centers.len(), 2);
        assert_eq!(out.cost, 0.0);
    }

    #[test]
    fn input_validation() {
        let empty = Dataset::new(2).unwrap();
        assert!(matches!(
            stream_lsearch(&empty, 3, StreamLsConfig::default()),
            Err(Error::EmptyDataset)
        ));
        let ds = blob_cell(5);
        assert!(stream_lsearch(&ds, 2, StreamLsConfig { k: 0, ..Default::default() }).is_err());
        assert!(stream_lsearch(
            &ds,
            2,
            StreamLsConfig { k: 10, max_retained: 5, ..Default::default() }
        )
        .is_err());
        let mut ls = StreamLs::new(2, StreamLsConfig::default()).unwrap();
        let wrong = Dataset::from_rows(&[[1.0]]).unwrap();
        assert!(ls.consume_chunk(&wrong).is_err());
    }

    #[test]
    fn empty_chunks_are_ignored() {
        let mut ls = StreamLs::new(2, StreamLsConfig { k: 2, ..Default::default() }).unwrap();
        ls.consume_chunk(&Dataset::new(2).unwrap()).unwrap();
        let ds = blob_cell(20);
        ls.consume_chunk(&ds).unwrap();
        let out = ls.finish().unwrap();
        let total: f64 = out.centers.weights().iter().sum();
        assert_eq!(total, 40.0);
    }
}
