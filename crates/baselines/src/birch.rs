//! BIRCH (Zhang, Ramakrishnan & Livny, SIGMOD 1996) — the classic
//! memory-bounded clusterer the paper cites as related work (§2.2, \[30\]).
//!
//! Phase 1 builds a CF-tree in one scan: each leaf entry is a *clustering
//! feature* `(N, LS, SS)` summarizing the points absorbed into it; a point
//! is absorbed into the closest leaf entry if the merged entry's radius
//! stays under the threshold `T`, otherwise it starts a new entry, and
//! overfull nodes split B-tree style. Phase 3 ("global clustering") runs
//! weighted k-means over the leaf entries' centroids — which reuses this
//! repo's core weighted Lloyd, exactly the way BIRCH's authors suggest
//! plugging in an existing clusterer.

use pmkm_core::config::SeedMode;
use pmkm_core::error::{Error, Result};
use pmkm_core::{kmeans, Centroids, Dataset, KMeansConfig, PointSource, WeightedSet};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// A clustering feature: count, linear sum and scalar square sum.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringFeature {
    /// Number of points absorbed.
    pub n: f64,
    /// Per-dimension linear sum.
    pub ls: Vec<f64>,
    /// Sum of squared norms `Σ ‖x‖²`.
    pub ss: f64,
}

impl ClusteringFeature {
    /// A CF holding a single point.
    pub fn from_point(p: &[f64]) -> Self {
        Self { n: 1.0, ls: p.to_vec(), ss: p.iter().map(|x| x * x).sum() }
    }

    /// CF additivity: absorbs `other`.
    pub fn merge(&mut self, other: &ClusteringFeature) {
        self.n += other.n;
        for (a, b) in self.ls.iter_mut().zip(&other.ls) {
            *a += b;
        }
        self.ss += other.ss;
    }

    /// Centroid `LS / N`.
    pub fn centroid(&self) -> Vec<f64> {
        self.ls.iter().map(|x| x / self.n).collect()
    }

    /// Radius: RMS distance of the member points from the centroid,
    /// `√(SS/N − ‖LS/N‖²)` (clamped at 0 against rounding).
    pub fn radius(&self) -> f64 {
        let mean_sq = self.ss / self.n;
        let c_norm_sq: f64 = self.centroid().iter().map(|x| x * x).sum();
        (mean_sq - c_norm_sq).max(0.0).sqrt()
    }

    /// Squared distance between two CF centroids.
    fn centroid_sq_dist(&self, other: &ClusteringFeature) -> f64 {
        self.centroid().iter().zip(other.centroid()).map(|(a, b)| (a - b) * (a - b)).sum()
    }
}

/// BIRCH parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BirchConfig {
    /// Branching factor `B` of internal nodes.
    pub branching: usize,
    /// Maximum entries per leaf `L`.
    pub max_leaf_entries: usize,
    /// Absorption threshold `T` on the merged entry's radius.
    pub threshold: f64,
    /// Global-phase cluster count `k`.
    pub k: usize,
    /// Restarts of the global weighted k-means.
    pub restarts: usize,
    /// RNG seed for the global phase.
    pub seed: u64,
}

impl Default for BirchConfig {
    fn default() -> Self {
        Self { branching: 8, max_leaf_entries: 16, threshold: 1.0, k: 8, restarts: 3, seed: 0 }
    }
}

impl BirchConfig {
    fn validate(&self) -> Result<()> {
        if self.branching < 2 || self.max_leaf_entries < 2 {
            return Err(Error::InvalidConfig("branching and leaf size must be >= 2".into()));
        }
        if !(self.threshold.is_finite() && self.threshold >= 0.0) {
            return Err(Error::InvalidConfig("threshold must be finite and >= 0".into()));
        }
        if self.k == 0 {
            return Err(Error::ZeroK);
        }
        if self.restarts == 0 {
            return Err(Error::InvalidConfig("restarts must be >= 1".into()));
        }
        Ok(())
    }
}

enum Node {
    Leaf { entries: Vec<ClusteringFeature> },
    Internal { children: Vec<(ClusteringFeature, Box<Node>)> },
}

impl Node {
    fn cf(&self, dim: usize) -> ClusteringFeature {
        let mut total = ClusteringFeature { n: 0.0, ls: vec![0.0; dim], ss: 0.0 };
        match self {
            Node::Leaf { entries } => {
                for e in entries {
                    total.merge(e);
                }
            }
            Node::Internal { children } => {
                for (cf, _) in children {
                    total.merge(cf);
                }
            }
        }
        total
    }
}

/// The CF-tree (phase 1 of BIRCH).
pub struct CfTree {
    root: Node,
    dim: usize,
    cfg: BirchConfig,
    points: usize,
}

impl CfTree {
    /// An empty tree for `dim`-dimensional points.
    pub fn new(dim: usize, cfg: BirchConfig) -> Result<Self> {
        cfg.validate()?;
        if dim == 0 {
            return Err(Error::InvalidConfig("dimension must be >= 1".into()));
        }
        Ok(Self { root: Node::Leaf { entries: Vec::new() }, dim, cfg, points: 0 })
    }

    /// Inserts one point.
    pub fn insert(&mut self, p: &[f64]) -> Result<()> {
        if p.len() != self.dim {
            return Err(Error::DimensionMismatch { expected: self.dim, actual: p.len() });
        }
        let cf = ClusteringFeature::from_point(p);
        let cfg = self.cfg;
        if let Some(sibling) = insert_rec(&mut self.root, cf, &cfg) {
            // Root split: grow a new root.
            let old = std::mem::replace(&mut self.root, Node::Leaf { entries: Vec::new() });
            let old_cf = old.cf(self.dim);
            let sib_cf = sibling.cf(self.dim);
            self.root = Node::Internal {
                children: vec![(old_cf, Box::new(old)), (sib_cf, Box::new(sibling))],
            };
        }
        self.points += 1;
        Ok(())
    }

    /// Number of points inserted.
    pub fn points(&self) -> usize {
        self.points
    }

    /// All leaf entries as weighted centroids (input to the global phase).
    pub fn leaf_entries(&self) -> Result<WeightedSet> {
        let mut ws = WeightedSet::new(self.dim)?;
        collect_leaves(&self.root, &mut ws)?;
        Ok(ws)
    }

    /// Tree height (1 for a bare leaf root).
    pub fn height(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Internal { children } => {
                    1 + children.iter().map(|(_, c)| depth(c)).max().unwrap_or(0)
                }
            }
        }
        depth(&self.root)
    }
}

fn collect_leaves(node: &Node, out: &mut WeightedSet) -> Result<()> {
    match node {
        Node::Leaf { entries } => {
            for e in entries {
                out.push(&e.centroid(), e.n)?;
            }
        }
        Node::Internal { children } => {
            for (_, c) in children {
                collect_leaves(c, out)?;
            }
        }
    }
    Ok(())
}

/// Recursive insertion; returns a new sibling node if `node` split.
fn insert_rec(node: &mut Node, cf: ClusteringFeature, cfg: &BirchConfig) -> Option<Node> {
    match node {
        Node::Leaf { entries } => {
            // Closest entry by centroid distance.
            if let Some((idx, _)) = entries
                .iter()
                .enumerate()
                .map(|(i, e)| (i, e.centroid_sq_dist(&cf)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            {
                let mut merged = entries[idx].clone();
                merged.merge(&cf);
                if merged.radius() <= cfg.threshold {
                    entries[idx] = merged;
                    return None;
                }
            }
            entries.push(cf);
            if entries.len() <= cfg.max_leaf_entries {
                return None;
            }
            // Split: two farthest entries seed the halves.
            let moved = split_entries(entries);
            Some(Node::Leaf { entries: moved })
        }
        Node::Internal { children } => {
            // Descend into the child whose CF centroid is closest.
            let idx = children
                .iter()
                .enumerate()
                .map(|(i, (ccf, _))| (i, ccf.centroid_sq_dist(&cf)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .expect("internal nodes always have children");
            children[idx].0.merge(&cf);
            let split = insert_rec(&mut children[idx].1, cf, cfg);
            if let Some(sibling) = split {
                // The child split: refresh its CF and adopt the sibling.
                let dim = children[idx].0.ls.len();
                children[idx].0 = children[idx].1.cf(dim);
                let sib_cf = sibling.cf(dim);
                children.push((sib_cf, Box::new(sibling)));
                if children.len() > cfg.branching {
                    let moved = split_children(children);
                    return Some(Node::Internal { children: moved });
                }
            }
            None
        }
    }
}

/// Splits an overfull entry list: the two entries farthest apart seed the
/// two halves; everything else joins its closer seed. Returns the entries
/// moved to the new sibling.
fn split_entries(entries: &mut Vec<ClusteringFeature>) -> Vec<ClusteringFeature> {
    let (a, b) = farthest_pair(entries.iter().map(|e| e.centroid()).collect());
    let all: Vec<ClusteringFeature> = std::mem::take(entries);
    let mut right = Vec::new();
    let (ca, cb) = (all[a].centroid(), all[b].centroid());
    for (i, e) in all.into_iter().enumerate() {
        let c = e.centroid();
        let da: f64 = c.iter().zip(&ca).map(|(x, y)| (x - y) * (x - y)).sum();
        let db: f64 = c.iter().zip(&cb).map(|(x, y)| (x - y) * (x - y)).sum();
        if db < da || (i == b && a != b) {
            right.push(e);
        } else {
            entries.push(e);
        }
    }
    // Guard against degenerate all-identical splits.
    if entries.is_empty() {
        entries.push(right.pop().expect("at least one entry exists"));
    }
    if right.is_empty() {
        right.push(entries.pop().expect("at least two entries exist"));
    }
    right
}

fn split_children(
    children: &mut Vec<(ClusteringFeature, Box<Node>)>,
) -> Vec<(ClusteringFeature, Box<Node>)> {
    let (a, b) = farthest_pair(children.iter().map(|(cf, _)| cf.centroid()).collect());
    let all: Vec<(ClusteringFeature, Box<Node>)> = std::mem::take(children);
    let mut right = Vec::new();
    let (ca, cb) = (all[a].0.centroid(), all[b].0.centroid());
    for (i, e) in all.into_iter().enumerate() {
        let c = e.0.centroid();
        let da: f64 = c.iter().zip(&ca).map(|(x, y)| (x - y) * (x - y)).sum();
        let db: f64 = c.iter().zip(&cb).map(|(x, y)| (x - y) * (x - y)).sum();
        if db < da || (i == b && a != b) {
            right.push(e);
        } else {
            children.push(e);
        }
    }
    if children.is_empty() {
        children.push(right.pop().expect("at least one child exists"));
    }
    if right.is_empty() {
        right.push(children.pop().expect("at least two children exist"));
    }
    right
}

/// Indices of the two centroids farthest apart (O(m²), m is node size).
fn farthest_pair(centroids: Vec<Vec<f64>>) -> (usize, usize) {
    let m = centroids.len();
    let (mut bi, mut bj, mut best) = (0, m.saturating_sub(1), -1.0);
    for i in 0..m {
        for j in (i + 1)..m {
            let d: f64 =
                centroids[i].iter().zip(&centroids[j]).map(|(a, b)| (a - b) * (a - b)).sum();
            if d > best {
                best = d;
                bi = i;
                bj = j;
            }
        }
    }
    (bi, bj)
}

/// BIRCH end-to-end result.
#[derive(Debug, Clone)]
pub struct BirchResult {
    /// Final `k` centroids from the global phase.
    pub centroids: Centroids,
    /// Weight (point count) captured by each centroid.
    pub cluster_weights: Vec<f64>,
    /// Number of leaf entries the tree compressed the data into.
    pub leaf_entries: usize,
    /// CF-tree height.
    pub tree_height: usize,
    /// Wall time (build + global phase).
    pub elapsed: Duration,
}

/// Runs BIRCH phases 1 + 3 on one in-memory cell.
///
/// # Examples
/// ```
/// use pmkm_baselines::{birch, BirchConfig};
/// use pmkm_core::Dataset;
/// let cell = Dataset::from_rows(&[[0.0], [0.1], [50.0], [50.1], [50.2]])?;
/// let cfg = BirchConfig { k: 2, threshold: 1.0, ..BirchConfig::default() };
/// let out = birch(&cell, &cfg)?;
/// assert_eq!(out.centroids.k(), 2);
/// assert_eq!(out.cluster_weights.iter().sum::<f64>(), 5.0);
/// # Ok::<(), pmkm_core::Error>(())
/// ```
pub fn birch(cell: &Dataset, cfg: &BirchConfig) -> Result<BirchResult> {
    cfg.validate()?;
    if cell.is_empty() {
        return Err(Error::EmptyDataset);
    }
    let started = Instant::now();
    let mut tree = CfTree::new(cell.dim(), *cfg)?;
    for p in cell.iter() {
        tree.insert(p)?;
    }
    let leaves = tree.leaf_entries()?;
    let leaf_entries = leaves.len();
    // Global phase: weighted k-means over the leaf centroids.
    let (centroids, cluster_weights) = if leaf_entries <= cfg.k {
        let flat: Vec<f64> = leaves.iter().flat_map(|(c, _)| c.iter().copied()).collect();
        (Centroids::from_flat(cell.dim(), flat)?, leaves.weights().to_vec())
    } else {
        let kcfg = KMeansConfig {
            k: cfg.k,
            restarts: cfg.restarts,
            seed_mode: SeedMode::HeaviestPoints,
            lloyd: Default::default(),
            seed: cfg.seed,
        };
        let out = kmeans(&leaves, &kcfg)?;
        (out.best.centroids, out.best.cluster_weights)
    };
    Ok(BirchResult {
        centroids,
        cluster_weights,
        leaf_entries,
        tree_height: tree.height(),
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_core::metrics;

    fn blob_cell(n_per: usize) -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..n_per {
            let o = (i % 9) as f64 * 0.05;
            ds.push(&[o, o]).unwrap();
            ds.push(&[20.0 + o, 20.0 - o]).unwrap();
            ds.push(&[-20.0 - o, 20.0 + o]).unwrap();
        }
        ds
    }

    #[test]
    fn cf_merge_is_additive() {
        let mut a = ClusteringFeature::from_point(&[1.0, 2.0]);
        let b = ClusteringFeature::from_point(&[3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.n, 2.0);
        assert_eq!(a.ls, vec![4.0, 6.0]);
        assert_eq!(a.ss, 1.0 + 4.0 + 9.0 + 16.0);
        assert_eq!(a.centroid(), vec![2.0, 3.0]);
    }

    #[test]
    fn cf_radius_hand_checked() {
        // Points 0 and 2 on a line: centroid 1, radius 1.
        let mut cf = ClusteringFeature::from_point(&[0.0]);
        cf.merge(&ClusteringFeature::from_point(&[2.0]));
        assert!((cf.radius() - 1.0).abs() < 1e-12);
        // Single point has radius 0.
        assert_eq!(ClusteringFeature::from_point(&[5.0]).radius(), 0.0);
    }

    #[test]
    fn tree_compresses_tight_blobs_into_few_entries() {
        let ds = blob_cell(100); // 300 points, 3 tight blobs
        let cfg = BirchConfig { threshold: 2.0, k: 3, ..BirchConfig::default() };
        let mut tree = CfTree::new(2, cfg).unwrap();
        for p in ds.iter() {
            tree.insert(p).unwrap();
        }
        let leaves = tree.leaf_entries().unwrap();
        assert!(leaves.len() <= 12, "leaves = {}", leaves.len());
        assert_eq!(leaves.total_weight(), 300.0);
    }

    #[test]
    fn tree_splits_grow_height() {
        // Threshold 0 forces one entry per distinct point → many splits.
        let mut ds = Dataset::new(1).unwrap();
        for i in 0..200 {
            ds.push(&[i as f64 * 10.0]).unwrap();
        }
        let cfg = BirchConfig {
            threshold: 0.0,
            branching: 3,
            max_leaf_entries: 3,
            ..BirchConfig::default()
        };
        let mut tree = CfTree::new(1, cfg).unwrap();
        for p in ds.iter() {
            tree.insert(p).unwrap();
        }
        assert!(tree.height() > 2, "height = {}", tree.height());
        let leaves = tree.leaf_entries().unwrap();
        assert_eq!(leaves.len(), 200);
        assert_eq!(leaves.total_weight(), 200.0);
    }

    #[test]
    fn birch_recovers_blob_structure() {
        let ds = blob_cell(80);
        let cfg = BirchConfig { threshold: 2.0, k: 3, seed: 4, ..BirchConfig::default() };
        let out = birch(&ds, &cfg).unwrap();
        assert_eq!(out.centroids.k(), 3);
        let total: f64 = out.cluster_weights.iter().sum();
        assert_eq!(total, 240.0);
        let mse = metrics::mse_against(&ds, &out.centroids).unwrap();
        assert!(mse < 2.0, "mse = {mse}");
    }

    #[test]
    fn birch_with_k_larger_than_leaves_passes_through() {
        let ds = blob_cell(50);
        let cfg = BirchConfig { threshold: 50.0, k: 40, ..BirchConfig::default() };
        let out = birch(&ds, &cfg).unwrap();
        // Enormous threshold ⇒ very few leaf entries ⇒ passthrough.
        assert_eq!(out.centroids.k(), out.leaf_entries);
        assert!(out.leaf_entries < 40);
    }

    #[test]
    fn birch_input_validation() {
        let empty = Dataset::new(2).unwrap();
        assert!(matches!(birch(&empty, &BirchConfig::default()), Err(Error::EmptyDataset)));
        let ds = blob_cell(5);
        assert!(birch(&ds, &BirchConfig { branching: 1, ..BirchConfig::default() }).is_err());
        assert!(birch(&ds, &BirchConfig { k: 0, ..BirchConfig::default() }).is_err());
        assert!(birch(&ds, &BirchConfig { threshold: -1.0, ..BirchConfig::default() }).is_err());
        let mut tree = CfTree::new(2, BirchConfig::default()).unwrap();
        assert!(tree.insert(&[1.0]).is_err());
    }

    #[test]
    fn insertion_order_independence_of_weight_total() {
        let ds = blob_cell(30);
        let cfg = BirchConfig { threshold: 1.0, ..BirchConfig::default() };
        let mut fwd = CfTree::new(2, cfg).unwrap();
        for p in ds.iter() {
            fwd.insert(p).unwrap();
        }
        let mut rev = CfTree::new(2, cfg).unwrap();
        let pts: Vec<&[f64]> = ds.iter().collect();
        for p in pts.iter().rev() {
            rev.insert(p).unwrap();
        }
        assert_eq!(
            fwd.leaf_entries().unwrap().total_weight(),
            rev.leaf_entries().unwrap().total_weight()
        );
    }
}
