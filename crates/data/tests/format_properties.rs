//! Property tests for the on-disk formats and grid math: round trips,
//! fuzz-resistance of the parsers, and total-function guarantees.

use pmkm_core::{Dataset, PointSource};
use pmkm_data::bucket::{fnv1a, GridBucket};
use pmkm_data::grid::TOTAL_CELLS;
use pmkm_data::swath::{read_stripe, write_stripe, Observation};
use pmkm_data::{BackendKind, BucketFormat, Codec, Gb02Reader, GridCell};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..6, 0usize..64).prop_flat_map(|(dim, n)| {
        proptest::collection::vec(-1e6..1e6f64, dim * n)
            .prop_map(move |flat| Dataset::from_flat(dim, flat).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bucket_round_trips_any_dataset(ds in arb_dataset(), cell_idx in 0u32..TOTAL_CELLS) {
        let bucket = GridBucket { cell: GridCell::from_index(cell_idx).unwrap(), points: ds };
        let bytes = bucket.to_bytes();
        let back = GridBucket::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, bucket);
    }

    #[test]
    fn bucket_parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any byte string either parses (vanishingly unlikely) or returns a
        // structured error — never panics, never aborts.
        let _ = GridBucket::from_bytes(&bytes);
    }

    #[test]
    fn bucket_parser_rejects_any_single_bitflip(ds in arb_dataset(), flip_bit in any::<u16>()) {
        prop_assume!(ds.len() > 0);
        let bucket = GridBucket { cell: GridCell::new(0, 0).unwrap(), points: ds };
        let mut bytes = bucket.to_bytes().to_vec();
        // Flip one bit somewhere in the payload region (after the header).
        let header = pmkm_data::bucket::HEADER_LEN;
        let pos = header + (flip_bit as usize / 8) % (bytes.len() - header);
        bytes[pos] ^= 1 << (flip_bit % 8);
        match GridBucket::from_bytes(&bytes) {
            Err(_) => {} // checksum or shape failure — expected
            Ok(parsed) => {
                // An undetected flip would be an FNV collision; with one
                // bit flipped that cannot happen (FNV-1a is bijective per
                // byte step), so parsing back the identical bucket means
                // the flip restored itself — impossible here.
                prop_assert!(parsed != bucket, "corruption silently accepted");
            }
        }
    }

    #[test]
    fn fnv1a_is_order_sensitive(a in any::<Vec<u8>>(), b in any::<Vec<u8>>()) {
        prop_assume!(a != b);
        // Not a collision-resistance claim — just that typical reorderings
        // and small edits change the hash (differential smoke check).
        let mut ab = a.clone();
        ab.extend_from_slice(&b);
        let mut ba = b.clone();
        ba.extend_from_slice(&a);
        if ab != ba {
            prop_assert_ne!(fnv1a(&ab), fnv1a(&ba));
        }
    }

    #[test]
    fn grid_cell_containing_is_total_on_finite_coords(
        lat in -200.0..200.0f64,
        lon in -1000.0..1000.0f64,
    ) {
        let cell = GridCell::containing(lat, lon).unwrap();
        prop_assert!(cell.index() < TOTAL_CELLS);
        // The cell's box actually covers the (clamped, wrapped) point.
        let (slat, slon) = cell.southwest();
        let clamped_lat = lat.clamp(-90.0, 90.0);
        if clamped_lat < 90.0 {
            prop_assert!(slat <= clamped_lat && clamped_lat < slat + 1.0 + 1e-9);
        }
        let _ = slon;
    }

    #[test]
    fn grid_index_round_trip(idx in 0u32..TOTAL_CELLS) {
        let cell = GridCell::from_index(idx).unwrap();
        prop_assert_eq!(cell.index(), idx);
    }

    #[test]
    fn stripe_round_trips(obs in proptest::collection::vec(
        (( -90.0..90.0f64), (-180.0..180.0f64), proptest::collection::vec(-1e5..1e5f64, 3)),
        0..32,
    )) {
        let observations: Vec<Observation> = obs
            .into_iter()
            .map(|(lat, lon, attrs)| Observation { lat, lon, attrs })
            .collect();
        let dir = std::env::temp_dir().join(format!("pmkm_prop_stripe_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prop.sw");
        write_stripe(&path, 3, &observations).unwrap();
        let back = read_stripe(&path).unwrap();
        prop_assert_eq!(back, observations);
    }

    #[test]
    fn gb02_round_trips_any_dataset_any_codec_any_backend(
        ds in arb_dataset(),
        cell_idx in 0u32..TOTAL_CELLS,
        block_points in 1usize..96,
        codec_pick in 0usize..2,
        backend_pick in 0usize..3,
    ) {
        let codec = Codec::ALL[codec_pick];
        let backend = BackendKind::ALL[backend_pick];
        let bucket = GridBucket { cell: GridCell::from_index(cell_idx).unwrap(), points: ds };
        let dir = std::env::temp_dir().join(format!("pmkm_prop_gb02_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prop.gb2");
        pmkm_data::write_gb02(&bucket, &path, codec, block_points).unwrap();
        let reader = Gb02Reader::open_path(&path, backend).unwrap();
        let back = reader.read_all().unwrap();
        prop_assert_eq!(back, bucket);
    }

    #[test]
    fn gb02_parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let dir = std::env::temp_dir().join(format!("pmkm_prop_gb02g_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.gb2");
        std::fs::write(&path, &bytes).unwrap();
        // Garbage either fails to open or fails to read — never panics.
        if let Ok(reader) = Gb02Reader::open_path(&path, BackendKind::LocalFile) {
            let _ = reader.read_all();
        }
        let _ = pmkm_data::probe(&path);
    }

    #[test]
    fn gb02_rejects_any_single_bitflip(
        ds in arb_dataset(),
        flip_bit in any::<u32>(),
        codec_pick in 0usize..2,
    ) {
        prop_assume!(ds.len() > 0);
        let bucket = GridBucket { cell: GridCell::new(0, 0).unwrap(), points: ds };
        let (mut bytes, _) = pmkm_data::gb02_to_bytes(&bucket, Codec::ALL[codec_pick], 16).unwrap();
        let pos = (flip_bit as usize / 8) % bytes.len();
        bytes[pos] ^= 1 << (flip_bit % 8);
        let dir = std::env::temp_dir().join(format!("pmkm_prop_gb02f_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flip.gb2");
        std::fs::write(&path, &bytes).unwrap();
        let parsed = Gb02Reader::open_path(&path, BackendKind::LocalFile)
            .and_then(|r| r.read_all());
        match parsed {
            Err(_) => {} // clean structured failure — expected
            Ok(back) => {
                // Flips in advisory header bytes (block_points, default
                // codec, padding — bytes 24..32) don't affect the payload,
                // which is governed by the per-entry index; anything else
                // must not round-trip silently.
                let advisory = (24..pmkm_data::container::HEADER2_LEN).contains(&pos);
                prop_assert!(advisory || back != bucket, "corruption silently accepted at byte {}", pos);
            }
        }
    }

    #[test]
    fn mixture_sampling_respects_dimensions(
        dim in 1usize..6,
        comps in 1usize..5,
        n in 0usize..64,
        seed in any::<u64>(),
    ) {
        let m = pmkm_data::Mixture::random(dim, comps, -10.0..10.0, 0.5..2.0, seed).unwrap();
        let ds = m.sample_dataset(n, seed).unwrap();
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(ds.dim(), dim);
        for p in ds.iter() {
            prop_assert!(p.iter().all(|x| x.is_finite()));
        }
    }
}

/// GB01 backward compatibility, pinned by a committed golden file: these
/// bytes were written by the v1 writer and must keep reading forever.
#[test]
fn golden_gb01_bucket_still_reads() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/gb01_v1.bucket");
    let bucket = GridBucket::read_from(&path).unwrap();
    assert_eq!(bucket.cell.index(), 4354);
    assert_eq!(bucket.points.dim(), 3);
    assert_eq!(bucket.points.len(), 5);
    let expected: Vec<Vec<f64>> = vec![
        vec![0.0, -1.5, 2.25],
        vec![100.125, -0.0078125, 3.0e5],
        vec![-42.0, 7.75, -0.015625],
        vec![1.0, 2.0, 3.0],
        vec![9.5e-4, -8.25e2, 6.0],
    ];
    for (got, want) in bucket.points.iter().zip(expected.iter()) {
        assert_eq!(got, want.as_slice());
    }

    // The probe and the streaming reader agree on the same file.
    let info = pmkm_data::probe(&path).unwrap();
    assert_eq!(info.format, BucketFormat::Gb01);
    assert_eq!(info.cell, bucket.cell);
    assert_eq!(info.count, 5);
    let mut reader = pmkm_data::BucketReader::open(&path).unwrap();
    let mut streamed = Dataset::new(3).unwrap();
    while let Some(batch) = reader.next_batch(2).unwrap() {
        streamed.extend_from(&batch).unwrap();
    }
    assert_eq!(streamed, bucket.points);

    // And the current writer still produces byte-identical GB01 output.
    assert_eq!(bucket.to_bytes().to_vec(), std::fs::read(&path).unwrap());
}
