//! Experiment dataset builder.
//!
//! Reproduces the paper's test data (§5.1): MISR-like 1° × 1° grid cells
//! with 6 attributes per point, point counts swept over
//! {250, 2,500, 12,500, 25,000, 50,000, 75,000}, five independently
//! generated versions per configuration, all from the same family of
//! distributions ("We used the R statistical package to recreate the files
//! with the same distribution, and created 5 different versions for each
//! configuration").

use crate::error::Result;
use crate::mixture::Mixture;
use pmkm_core::seeding::derive_seed;
use pmkm_core::Dataset;
use serde::{Deserialize, Serialize};

/// The paper's attribute dimensionality.
pub const PAPER_DIM: usize = 6;
/// The paper's cluster count.
pub const PAPER_K: usize = 40;
/// The paper's dataset versions per configuration.
pub const PAPER_VERSIONS: u32 = 5;

/// The grid-cell sizes of Table 2 / Figures 6–8.
///
/// Table 2 lists 75,000 / 50,000 / 25,000 / 12,500 / 2,500 / 250; the
/// narrative also mentions 5,000 / 20,000 — we reproduce the tabulated set,
/// ascending.
pub const PAPER_SWEEP: [usize; 6] = [250, 2_500, 12_500, 25_000, 50_000, 75_000];

/// Parameters of one synthetic grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Points in the cell.
    pub points: usize,
    /// Attributes per point.
    pub dim: usize,
    /// Mixture components (distinct "regimes" in the cell).
    pub components: usize,
    /// Per-axis standard-deviation range of the regimes (σ relative to the
    /// 0–800 radiance range controls how separable the modes are).
    pub sd_range: (f64, f64),
    /// Seed controlling both the mixture shape and the sampled points.
    pub seed: u64,
}

impl CellConfig {
    /// A paper-style cell: 6 attributes, 12 broad overlapping regimes
    /// (k = 40 clustering then has sub-structure to trade off, the regime
    /// in which the paper's break-even behaviour reproduces), MISR-like
    /// radiance ranges.
    pub fn paper(points: usize, seed: u64) -> Self {
        Self { points, dim: PAPER_DIM, components: 12, sd_range: (5.0, 40.0), seed }
    }
}

/// Generates one cell's points (distribution and sample stream both derive
/// from `cfg.seed`).
pub fn generate_cell(cfg: &CellConfig) -> Result<Dataset> {
    let mixture_seed = derive_seed(cfg.seed, 0x4D49_5854); // "MIXT"
    let sample_seed = derive_seed(cfg.seed, 0x504F_494E); // "POIN"
    generate_cell_with(cfg, mixture_seed, sample_seed)
}

/// Generates a cell with an explicit split between the *distribution* seed
/// (which fixes the mixture) and the *sample* seed (which fixes the drawn
/// points). The experiment sweep holds the distribution fixed and varies
/// only the samples, exactly like the paper's five R-regenerated versions
/// of "the same distribution".
pub fn generate_cell_with(
    cfg: &CellConfig,
    distribution_seed: u64,
    sample_seed: u64,
) -> Result<Dataset> {
    let (sd_lo, sd_hi) = cfg.sd_range;
    let mixture = Mixture::random(
        cfg.dim,
        cfg.components.max(1),
        0.0..800.0,
        sd_lo..sd_hi,
        distribution_seed,
    )?;
    mixture.sample_dataset(cfg.points, sample_seed)
}

/// The seed for `(experiment base seed, n, version)` — every point-count /
/// version pair gets an independent stream, mirroring the paper's five
/// regenerated files per configuration.
pub fn version_seed(base: u64, n: usize, version: u32) -> u64 {
    derive_seed(base, (n as u64) << 8 | version as u64)
}

/// Generates one paper-style cell for a sweep point and version: the
/// underlying mixture is the same for every `(n, version)` of a given
/// `base_seed` (the paper's "same distribution"); only the sampled points
/// differ.
pub fn paper_cell(n: usize, version: u32, base_seed: u64) -> Result<Dataset> {
    let cfg = CellConfig::paper(n, base_seed);
    let distribution_seed = derive_seed(base_seed, 0x4449_5354); // "DIST"
    generate_cell_with(&cfg, distribution_seed, version_seed(base_seed, n, version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_core::PointSource;

    #[test]
    fn paper_constants() {
        assert_eq!(PAPER_DIM, 6);
        assert_eq!(PAPER_K, 40);
        assert_eq!(PAPER_SWEEP, [250, 2_500, 12_500, 25_000, 50_000, 75_000]);
    }

    #[test]
    fn generate_cell_has_requested_shape() {
        let ds = generate_cell(&CellConfig::paper(500, 3)).unwrap();
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dim(), 6);
    }

    #[test]
    fn versions_are_independent_but_reproducible() {
        let a = paper_cell(250, 0, 42).unwrap();
        let b = paper_cell(250, 0, 42).unwrap();
        let c = paper_cell(250, 1, 42).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn different_sizes_do_not_share_prefixes() {
        // n = 250 and n = 2,500 use different sample streams: the smaller
        // cell is not a prefix of the larger one.
        let small = paper_cell(250, 0, 7).unwrap();
        let large = paper_cell(2_500, 0, 7).unwrap();
        let prefix = &large.as_flat()[..small.as_flat().len()];
        assert_ne!(small.as_flat(), prefix);
    }

    #[test]
    fn all_sweep_cells_share_one_distribution() {
        // Same base seed ⇒ same mixture for every (n, version): per-dim
        // means agree across sizes within sampling error.
        let a = paper_cell(5_000, 0, 7).unwrap();
        let b = paper_cell(20_000, 3, 7).unwrap();
        let sa = crate::stats::summarize(&a).unwrap();
        let sb = crate::stats::summarize(&b).unwrap();
        for d in 0..PAPER_DIM {
            let scale = sa[d].variance.sqrt().max(1.0);
            assert!(
                (sa[d].mean - sb[d].mean).abs() / scale < 0.2,
                "dim {d}: {} vs {}",
                sa[d].mean,
                sb[d].mean
            );
        }
        // Different base seed ⇒ different distribution.
        let c = paper_cell(5_000, 0, 8).unwrap();
        let sc = crate::stats::summarize(&c).unwrap();
        let diverges = (0..PAPER_DIM).any(|d| (sa[d].mean - sc[d].mean).abs() > 5.0);
        assert!(diverges);
    }

    #[test]
    fn generated_values_are_finite_and_plausible() {
        let ds = generate_cell(&CellConfig::paper(1_000, 9)).unwrap();
        for p in ds.iter() {
            for &x in p {
                assert!(x.is_finite());
                assert!((-500.0..1500.0).contains(&x), "x = {x}");
            }
        }
    }

    #[test]
    fn version_seed_distinguishes_all_axes() {
        let s = version_seed(1, 250, 0);
        assert_ne!(s, version_seed(1, 250, 1));
        assert_ne!(s, version_seed(1, 2_500, 0));
        assert_ne!(s, version_seed(2, 250, 0));
        assert_eq!(s, version_seed(1, 250, 0));
    }
}
