//! Per-dimension summary statistics for datasets — used by the harnesses to
//! sanity-check generated cells and by the compression crate to report
//! faithfulness.

use pmkm_core::{Dataset, PointSource};
use serde::{Deserialize, Serialize};

/// Summary of one attribute dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DimStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

/// Per-dimension statistics of a dataset. Empty datasets yield `None`.
pub fn summarize(ds: &Dataset) -> Option<Vec<DimStats>> {
    if ds.is_empty() {
        return None;
    }
    let dim = ds.dim();
    let n = ds.len() as f64;
    let mut sums = vec![0.0; dim];
    let mut mins = vec![f64::INFINITY; dim];
    let mut maxs = vec![f64::NEG_INFINITY; dim];
    for p in ds.iter() {
        for d in 0..dim {
            sums[d] += p[d];
            if p[d] < mins[d] {
                mins[d] = p[d];
            }
            if p[d] > maxs[d] {
                maxs[d] = p[d];
            }
        }
    }
    let means: Vec<f64> = sums.iter().map(|s| s / n).collect();
    let mut vars = vec![0.0; dim];
    for p in ds.iter() {
        for d in 0..dim {
            let delta = p[d] - means[d];
            vars[d] += delta * delta;
        }
    }
    Some(
        (0..dim)
            .map(|d| DimStats { mean: means[d], variance: vars[d] / n, min: mins[d], max: maxs[d] })
            .collect(),
    )
}

/// Full covariance matrix (row-major `dim × dim`, population normalization).
/// Empty datasets yield `None`.
pub fn covariance(ds: &Dataset) -> Option<Vec<f64>> {
    if ds.is_empty() {
        return None;
    }
    let dim = ds.dim();
    let n = ds.len() as f64;
    let mut means = vec![0.0; dim];
    for p in ds.iter() {
        for d in 0..dim {
            means[d] += p[d];
        }
    }
    means.iter_mut().for_each(|m| *m /= n);
    let mut cov = vec![0.0; dim * dim];
    for p in ds.iter() {
        for i in 0..dim {
            let di = p[i] - means[i];
            for j in 0..dim {
                cov[i * dim + j] += di * (p[j] - means[j]);
            }
        }
    }
    cov.iter_mut().for_each(|c| *c /= n);
    Some(cov)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_hand_checked() {
        let ds = Dataset::from_rows(&[[1.0, 10.0], [3.0, 20.0]]).unwrap();
        let s = summarize(&ds).unwrap();
        assert_eq!(s[0].mean, 2.0);
        assert_eq!(s[0].variance, 1.0);
        assert_eq!(s[0].min, 1.0);
        assert_eq!(s[0].max, 3.0);
        assert_eq!(s[1].mean, 15.0);
        assert_eq!(s[1].variance, 25.0);
    }

    #[test]
    fn summarize_empty_is_none() {
        let ds = Dataset::new(2).unwrap();
        assert!(summarize(&ds).is_none());
        assert!(covariance(&ds).is_none());
    }

    #[test]
    fn covariance_hand_checked() {
        // Perfectly correlated pair.
        let ds = Dataset::from_rows(&[[0.0, 0.0], [2.0, 4.0]]).unwrap();
        let c = covariance(&ds).unwrap();
        assert_eq!(c, vec![1.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn covariance_diagonal_matches_variance() {
        let ds = Dataset::from_rows(&[[1.0, -5.0], [2.0, 0.0], [3.0, 5.0]]).unwrap();
        let s = summarize(&ds).unwrap();
        let c = covariance(&ds).unwrap();
        assert!((c[0] - s[0].variance).abs() < 1e-12);
        assert!((c[3] - s[1].variance).abs() < 1e-12);
        // Symmetry.
        assert_eq!(c[1], c[2]);
    }
}
