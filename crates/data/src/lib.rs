//! # pmkm-data — MISR-like geospatial data substrate
//!
//! Everything the partial/merge k-means reproduction needs as *input*:
//!
//! * [`gaussian`] / [`mixture`] — from-scratch normal and Gaussian-mixture
//!   samplers (the paper regenerated its MISR-like cells "with the same
//!   distribution" in R; this is the Rust equivalent),
//! * [`grid`] — the 64,800-cell 1° × 1° earth grid,
//! * [`swath`] — a satellite swath simulator producing stripe files in
//!   acquisition order (Figure 1 of the paper),
//! * [`binner`] — the one-scan stripe → grid-bucket sort the paper assumes
//!   as preprocessing (§3.1),
//! * [`bucket`] — the binary grid-bucket file format with streaming reads
//!   and checksum verification,
//! * [`generator`] — the exact experiment sweep of §5.1 (N ∈ {250 …
//!   75,000}, D = 6, five versions per configuration),
//! * [`stats`] — per-dimension summaries used for validation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod binner;
pub mod bucket;
pub mod codec;
pub mod container;
pub mod error;
pub mod gaussian;
pub mod generator;
pub mod grid;
pub mod mixture;
pub mod stats;
pub mod swath;

pub use backend::{
    open_backend, BackendKind, FileBackend, GetFaultHook, MmapBackend, ScanBackend, SimObjectStore,
};
pub use bucket::{BucketReader, GridBucket};
pub use codec::Codec;
pub use container::{
    gb02_to_bytes, probe, write_gb02, BlockEntry, BlockReadStats, BucketFormat, BucketInfo,
    Gb02Reader, Gb02Stats, DEFAULT_BLOCK_POINTS,
};
pub use error::{DataError, Result};
pub use generator::{paper_cell, CellConfig, PAPER_DIM, PAPER_K, PAPER_SWEEP, PAPER_VERSIONS};
pub use grid::GridCell;
pub use mixture::Mixture;
pub use swath::{Observation, SwathConfig, SwathSimulator};
