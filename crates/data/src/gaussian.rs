//! Gaussian sampling built from scratch: Box–Muller standard normals and
//! multivariate normals via a hand-rolled Cholesky factorization.
//!
//! The paper recreated its MISR-like test cells "using the R statistical
//! package ... with the same distribution"; this module provides the
//! equivalent generator so every experiment input is synthesized
//! deterministically from a seed.

use crate::error::{DataError, Result};
use rand::Rng;

/// Box–Muller standard-normal sampler. Caches the second variate of each
/// transform so consecutive calls consume uniforms two at a time.
#[derive(Debug, Default, Clone)]
pub struct BoxMuller {
    cached: Option<f64>,
}

impl BoxMuller {
    /// A fresh sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one N(0, 1) variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // u1 ∈ (0, 1] so the log is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// Cholesky factorization of a symmetric positive-definite `n × n` matrix
/// (row-major). Returns the lower-triangular factor `L` with `L Lᵀ = A`.
///
/// # Errors
/// [`DataError::NotPositiveDefinite`] if a pivot is non-positive (within a
/// small tolerance), [`DataError::Invalid`] on a shape mismatch.
pub fn cholesky(a: &[f64], n: usize) -> Result<Vec<f64>> {
    if a.len() != n * n {
        return Err(DataError::Invalid(format!(
            "matrix buffer holds {} values, expected {n}×{n}",
            a.len()
        )));
    }
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 1e-12 {
                    return Err(DataError::NotPositiveDefinite);
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(l)
}

/// A multivariate normal distribution `N(mean, cov)` ready for repeated
/// sampling (the Cholesky factor is computed once).
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    /// Lower-triangular Cholesky factor, row-major `dim × dim`.
    chol: Vec<f64>,
    dim: usize,
}

impl MultivariateNormal {
    /// Builds the distribution from a mean vector and a row-major covariance
    /// matrix.
    pub fn new(mean: Vec<f64>, cov: &[f64]) -> Result<Self> {
        let dim = mean.len();
        if dim == 0 {
            return Err(DataError::Invalid("mean must have at least one entry".into()));
        }
        let chol = cholesky(cov, dim)?;
        Ok(Self { mean, chol, dim })
    }

    /// An axis-aligned (diagonal-covariance) normal.
    pub fn diagonal(mean: Vec<f64>, variances: &[f64]) -> Result<Self> {
        let dim = mean.len();
        if variances.len() != dim {
            return Err(DataError::Invalid("variance length must match mean".into()));
        }
        let mut cov = vec![0.0; dim * dim];
        for (i, &v) in variances.iter().enumerate() {
            cov[i * dim + i] = v;
        }
        Self::new(mean, &cov)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Samples one point into `out` (`out.len() == dim`).
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        normals: &mut BoxMuller,
        out: &mut [f64],
    ) {
        debug_assert_eq!(out.len(), self.dim);
        // z ~ N(0, I), x = mean + L z.
        let z: Vec<f64> = (0..self.dim).map(|_| normals.sample(rng)).collect();
        for (i, slot) in out.iter_mut().enumerate() {
            let mut x = self.mean[i];
            for (j, zj) in z.iter().enumerate().take(i + 1) {
                x += self.chol[i * self.dim + j] * zj;
            }
            *slot = x;
        }
    }

    /// Samples one point as a fresh vector.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, normals: &mut BoxMuller) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        self.sample_into(rng, normals, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bm = BoxMuller::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| bm.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn cholesky_of_identity_is_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let l = cholesky(&a, 2).unwrap();
        assert_eq!(l, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        // A = [[4, 2, 0.5], [2, 3, 1], [0.5, 1, 2]] is SPD.
        let a = [4.0, 2.0, 0.5, 2.0, 3.0, 1.0, 0.5, 1.0, 2.0];
        let l = cholesky(&a, 3).unwrap();
        // Recompute L·Lᵀ.
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for k in 0..3 {
                    v += l[i * 3 + k] * l[j * 3 + k];
                }
                assert!((v - a[i * 3 + j]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = [1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(matches!(cholesky(&a, 2), Err(DataError::NotPositiveDefinite)));
    }

    #[test]
    fn cholesky_rejects_bad_shape() {
        assert!(matches!(cholesky(&[1.0; 5], 2), Err(DataError::Invalid(_))));
    }

    #[test]
    fn mvn_sample_moments_match() {
        // cov = [[2, 0.8], [0.8, 1]]
        let cov = [2.0, 0.8, 0.8, 1.0];
        let mvn = MultivariateNormal::new(vec![5.0, -3.0], &cov).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut bm = BoxMuller::new();
        let n = 100_000;
        let mut sum = [0.0; 2];
        let mut ss = [0.0; 3]; // var0, var1, cov01 accumulators (about true mean)
        for _ in 0..n {
            let x = mvn.sample(&mut rng, &mut bm);
            sum[0] += x[0];
            sum[1] += x[1];
            ss[0] += (x[0] - 5.0) * (x[0] - 5.0);
            ss[1] += (x[1] + 3.0) * (x[1] + 3.0);
            ss[2] += (x[0] - 5.0) * (x[1] + 3.0);
        }
        let nf = n as f64;
        assert!((sum[0] / nf - 5.0).abs() < 0.03);
        assert!((sum[1] / nf + 3.0).abs() < 0.03);
        assert!((ss[0] / nf - 2.0).abs() < 0.05, "var0 = {}", ss[0] / nf);
        assert!((ss[1] / nf - 1.0).abs() < 0.03);
        assert!((ss[2] / nf - 0.8).abs() < 0.04, "cov = {}", ss[2] / nf);
    }

    #[test]
    fn diagonal_constructor_matches_full() {
        let d = MultivariateNormal::diagonal(vec![0.0, 0.0], &[4.0, 9.0]).unwrap();
        let f = MultivariateNormal::new(vec![0.0, 0.0], &[4.0, 0.0, 0.0, 9.0]).unwrap();
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let (mut b1, mut b2) = (BoxMuller::new(), BoxMuller::new());
        assert_eq!(d.sample(&mut r1, &mut b1), f.sample(&mut r2, &mut b2));
    }

    #[test]
    fn mvn_rejects_empty_mean() {
        assert!(MultivariateNormal::new(vec![], &[]).is_err());
        assert!(MultivariateNormal::diagonal(vec![1.0], &[1.0, 2.0]).is_err());
    }
}
