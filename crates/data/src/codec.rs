//! Block codecs for the `PMKMGB02` container.
//!
//! Two codecs, both implemented in-tree (the build has no compression
//! crates) and both bit-exact: decode(encode(payload)) must reproduce the
//! input byte-for-byte, which the container layer additionally pins with a
//! per-block FNV-1a over the *uncompressed* bytes.
//!
//! * [`Codec::Raw`] — identity. The only codec eligible for the zero-copy
//!   mmap scan path: a raw block in a mapped file can be decoded straight
//!   from the page cache without an intermediate payload buffer.
//! * [`Codec::ShuffleRle`] — byte shuffle + run-length coding. The payload
//!   is a row-major `f64` array; transposing it so that byte *k* of every
//!   value sits contiguously (8 "lanes") turns the near-constant exponent
//!   and sign bytes of clustered coordinates into long runs, which a
//!   control-byte RLE then collapses. Grid buckets of Gaussian cells
//!   compress 1.5–2.5× this way at memcpy-like speeds.
//!
//! RLE wire format (after the shuffle): a control byte `c` followed by
//! payload — `c < 128` means a literal run of `c + 1` bytes follows;
//! `c >= 128` means the single following byte repeats `c - 125` times
//! (runs of 3..=130). Runs shorter than 3 are never emitted as repeats,
//! so encoding can only break even or win on them as literals.

use crate::error::{DataError, Result};

/// A block codec identifier. The `u8` ids are part of the on-disk format;
/// never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Codec {
    /// Identity: stored bytes are the payload bytes.
    #[default]
    Raw,
    /// Byte shuffle (8 lanes) followed by control-byte RLE.
    ShuffleRle,
}

impl Codec {
    /// The on-disk codec id.
    pub fn id(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::ShuffleRle => 1,
        }
    }

    /// Resolves an on-disk id; unknown ids are a format error, never a
    /// silent fallback.
    pub fn from_id(id: u8) -> Result<Self> {
        match id {
            0 => Ok(Codec::Raw),
            1 => Ok(Codec::ShuffleRle),
            other => Err(DataError::Format(format!("unknown codec id {other}"))),
        }
    }

    /// Stable CLI/metrics label.
    pub fn label(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::ShuffleRle => "shuffle-rle",
        }
    }

    /// Parses a CLI label (`raw`, `shuffle-rle`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "raw" => Some(Codec::Raw),
            "shuffle-rle" | "shuffle_rle" | "shuffle" => Some(Codec::ShuffleRle),
            _ => None,
        }
    }

    /// Every codec, for exhaustive tests and bench sweeps.
    pub const ALL: [Codec; 2] = [Codec::Raw, Codec::ShuffleRle];
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Encodes one uncompressed block. `bytes.len()` must be a multiple of 8
/// (the payload is always whole `f64`s).
pub fn encode(codec: Codec, bytes: &[u8]) -> Result<Vec<u8>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(DataError::Invalid(format!(
            "block of {} bytes is not a whole number of f64 values",
            bytes.len()
        )));
    }
    match codec {
        Codec::Raw => Ok(bytes.to_vec()),
        Codec::ShuffleRle => Ok(rle_encode(&shuffle(bytes))),
    }
}

/// Decodes one stored block back to exactly `ulen` payload bytes.
pub fn decode(codec: Codec, stored: &[u8], ulen: usize) -> Result<Vec<u8>> {
    if !ulen.is_multiple_of(8) {
        return Err(DataError::Format(format!(
            "block claims {ulen} uncompressed bytes, not a whole number of f64 values"
        )));
    }
    match codec {
        Codec::Raw => {
            if stored.len() != ulen {
                return Err(DataError::Format(format!(
                    "raw block is {} bytes, index promises {ulen}",
                    stored.len()
                )));
            }
            Ok(stored.to_vec())
        }
        Codec::ShuffleRle => {
            let shuffled = rle_decode(stored, ulen)?;
            Ok(unshuffle(&shuffled))
        }
    }
}

/// Transposes `bytes` (a flat `f64` array) so byte `k` of every value is
/// contiguous: lane 0 holds the low byte of each f64, lane 7 the high byte.
fn shuffle(bytes: &[u8]) -> Vec<u8> {
    let n = bytes.len() / 8;
    let mut out = vec![0u8; bytes.len()];
    for lane in 0..8 {
        let dst = &mut out[lane * n..(lane + 1) * n];
        for (i, d) in dst.iter_mut().enumerate() {
            *d = bytes[i * 8 + lane];
        }
    }
    out
}

/// Inverse of [`shuffle`].
fn unshuffle(bytes: &[u8]) -> Vec<u8> {
    let n = bytes.len() / 8;
    let mut out = vec![0u8; bytes.len()];
    for lane in 0..8 {
        let src = &bytes[lane * n..(lane + 1) * n];
        for (i, &s) in src.iter().enumerate() {
            out[i * 8 + lane] = s;
        }
    }
    out
}

/// Longest repeat run a single control byte can express.
const MAX_RUN: usize = 130;
/// Longest literal run a single control byte can express.
const MAX_LITERAL: usize = 128;
/// Shortest repeat worth a token (a 2-byte repeat token never beats
/// 2 literal bytes inside an open literal run).
const MIN_RUN: usize = 3;

fn rle_encode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut literal_start = 0usize;
    let mut i = 0usize;
    while i < input.len() {
        // Measure the run of equal bytes starting at i.
        let b = input[i];
        let mut run = 1usize;
        while i + run < input.len() && input[i + run] == b && run < MAX_RUN {
            run += 1;
        }
        if run >= MIN_RUN {
            flush_literals(&mut out, &input[literal_start..i]);
            // Control 128 encodes a run of MIN_RUN (=3), i.e. run = c - 125.
            out.push((run - MIN_RUN) as u8 + 128);
            out.push(b);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, &input[literal_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, mut lit: &[u8]) {
    while !lit.is_empty() {
        let take = lit.len().min(MAX_LITERAL);
        out.push((take - 1) as u8);
        out.extend_from_slice(&lit[..take]);
        lit = &lit[take..];
    }
}

fn rle_decode(input: &[u8], ulen: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(ulen);
    let mut i = 0usize;
    while i < input.len() {
        let c = input[i] as usize;
        i += 1;
        if c < 128 {
            let take = c + 1;
            let lit = input
                .get(i..i + take)
                .ok_or_else(|| DataError::Format("RLE literal run overruns block".into()))?;
            out.extend_from_slice(lit);
            i += take;
        } else {
            let b = *input
                .get(i)
                .ok_or_else(|| DataError::Format("RLE repeat token missing its byte".into()))?;
            i += 1;
            let run = c - 125;
            out.resize(out.len() + run, b);
        }
        if out.len() > ulen {
            return Err(DataError::Format(format!("RLE block decodes past its {ulen}-byte bound")));
        }
    }
    if out.len() != ulen {
        return Err(DataError::Format(format!(
            "RLE block decoded to {} bytes, index promises {ulen}",
            out.len()
        )));
    }
    Ok(out)
}

/// Bulk little-endian materialization: `bytes` (a multiple of 8) → `f64`s.
/// This is the single conversion pass between storage and the kernel; it
/// compiles to vectorized loads on little-endian targets.
pub fn f64s_from_le(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

/// Bulk little-endian serialization: appends `vals` to `out` as LE bytes.
pub fn f64s_to_le(vals: &[f64], out: &mut Vec<u8>) {
    out.reserve(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            let v = (i as f64) * 0.25 - 3.0;
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    #[test]
    fn raw_round_trips() {
        let p = payload(33);
        let enc = encode(Codec::Raw, &p).unwrap();
        assert_eq!(enc, p);
        assert_eq!(decode(Codec::Raw, &enc, p.len()).unwrap(), p);
    }

    #[test]
    fn shuffle_rle_round_trips() {
        for n in [0, 1, 2, 7, 64, 129, 1000] {
            let p = payload(n);
            let enc = encode(Codec::ShuffleRle, &p).unwrap();
            assert_eq!(decode(Codec::ShuffleRle, &enc, p.len()).unwrap(), p, "n={n}");
        }
    }

    #[test]
    fn shuffle_rle_compresses_clustered_doubles() {
        // Coordinates near a common center share exponent/sign bytes.
        let mut p = Vec::new();
        for i in 0..2000 {
            let v = 100.0 + (i % 17) as f64 * 1e-3;
            p.extend_from_slice(&v.to_le_bytes());
        }
        let enc = encode(Codec::ShuffleRle, &p).unwrap();
        assert!(
            enc.len() * 7 < p.len() * 5,
            "expected >1.4x compression, got {} -> {}",
            p.len(),
            enc.len()
        );
        assert_eq!(decode(Codec::ShuffleRle, &enc, p.len()).unwrap(), p);
    }

    #[test]
    fn rle_handles_long_runs_and_literal_tails() {
        let mut input = vec![0xAAu8; 1000];
        input.extend((0..=255u8).cycle().take(300));
        let enc = rle_encode(&input);
        assert!(enc.len() < input.len());
        assert_eq!(rle_decode(&enc, input.len()).unwrap(), input);
    }

    #[test]
    fn rle_rejects_truncated_streams() {
        let input = vec![1u8, 1, 1, 1, 1, 1, 2, 3, 4];
        let enc = rle_encode(&input);
        for cut in 1..enc.len() {
            assert!(
                rle_decode(&enc[..cut], input.len()).is_err(),
                "cut at {cut} must not decode cleanly"
            );
        }
    }

    #[test]
    fn decode_rejects_wrong_ulen() {
        let p = payload(10);
        let enc = encode(Codec::ShuffleRle, &p).unwrap();
        assert!(decode(Codec::ShuffleRle, &enc, p.len() - 8).is_err());
        assert!(decode(Codec::ShuffleRle, &enc, p.len() + 8).is_err());
        assert!(decode(Codec::Raw, &p, p.len() - 8).is_err());
    }

    #[test]
    fn encode_rejects_ragged_blocks() {
        assert!(encode(Codec::Raw, &[1, 2, 3]).is_err());
        assert!(encode(Codec::ShuffleRle, &[0; 12]).is_err());
    }

    #[test]
    fn codec_ids_are_pinned() {
        assert_eq!(Codec::Raw.id(), 0);
        assert_eq!(Codec::ShuffleRle.id(), 1);
        assert_eq!(Codec::from_id(0).unwrap(), Codec::Raw);
        assert_eq!(Codec::from_id(1).unwrap(), Codec::ShuffleRle);
        assert!(Codec::from_id(2).is_err());
        for c in Codec::ALL {
            assert_eq!(Codec::parse(c.label()), Some(c));
        }
    }

    #[test]
    fn le_bulk_helpers_round_trip() {
        let vals = [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 42.42];
        let mut bytes = Vec::new();
        f64s_to_le(&vals, &mut bytes);
        assert_eq!(bytes.len(), vals.len() * 8);
        let back = f64s_from_le(&bytes);
        assert_eq!(back.as_slice(), &vals[..]);
    }
}
