//! The grid-bucket binary file format.
//!
//! The paper assumes the swath data "had been scanned once, and sorted into
//! one degree latitude and one degree longitude grid buckets that were saved
//! to disk as binary files" and that "grid buckets are directly used as data
//! input" (§3.1). This module is that on-disk format: a small self-
//! describing header plus a flat little-endian `f64` payload, protected by
//! an FNV-1a checksum so corrupt buckets fail loudly instead of producing
//! garbage clusters.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic     8 B   "PMKMGB01"
//! cell      4 B   u32 flat cell index (see pmkm_data::grid)
//! dim       4 B   u32 attributes per point
//! count     8 B   u64 point count
//! checksum  8 B   u64 FNV-1a over the payload bytes
//! payload   count × dim × 8 B   row-major f64
//! ```

use crate::error::{DataError, Result};
use crate::grid::GridCell;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pmkm_core::{Dataset, PointSource};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: format name + version.
pub const MAGIC: [u8; 8] = *b"PMKMGB01";
/// Header size in bytes.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8;

/// FNV-1a 64-bit hash of a byte slice (payload integrity check).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An in-memory grid bucket: a cell id plus its points.
#[derive(Debug, Clone, PartialEq)]
pub struct GridBucket {
    /// The cell this bucket holds.
    pub cell: GridCell,
    /// The points.
    pub points: Dataset,
}

impl GridBucket {
    /// Serializes the bucket to bytes. The payload is written through the
    /// bulk little-endian path, not value-by-value.
    pub fn to_bytes(&self) -> Bytes {
        let flat = self.points.as_flat();
        let mut payload = Vec::with_capacity(flat.len() * 8);
        crate::codec::f64s_to_le(flat, &mut payload);
        let checksum = fnv1a(&payload);
        let mut out = BytesMut::with_capacity(HEADER_LEN + payload.len());
        out.put_slice(&MAGIC);
        out.put_u32_le(self.cell.index());
        out.put_u32_le(self.points.dim() as u32);
        out.put_u64_le(self.points.len() as u64);
        out.put_u64_le(checksum);
        out.put_slice(&payload);
        out.freeze()
    }

    /// Parses a bucket from bytes, verifying magic, shape and checksum.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self> {
        if buf.len() < HEADER_LEN {
            return Err(DataError::Format(format!(
                "bucket of {} bytes is shorter than the {HEADER_LEN}-byte header",
                buf.len()
            )));
        }
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(DataError::Format("bad magic; not a PMKMGB01 bucket".into()));
        }
        let cell = GridCell::from_index(buf.get_u32_le())?;
        let dim = buf.get_u32_le() as usize;
        let count = buf.get_u64_le() as usize;
        let checksum = buf.get_u64_le();
        if dim == 0 {
            return Err(DataError::Format("bucket declares zero dimensions".into()));
        }
        let payload_len = count
            .checked_mul(dim)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| DataError::Format("payload size overflows".into()))?;
        if buf.remaining() != payload_len {
            return Err(DataError::Format(format!(
                "payload is {} bytes, header promises {payload_len}",
                buf.remaining()
            )));
        }
        let actual = fnv1a(buf);
        if actual != checksum {
            return Err(DataError::ChecksumMismatch { expected: checksum, actual });
        }
        let flat = crate::codec::f64s_from_le(buf);
        let points = Dataset::from_flat(dim, flat).map_err(|e| DataError::Format(e.to_string()))?;
        Ok(Self { cell, points })
    }

    /// Writes the bucket to a file (buffered, fsync not forced).
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&self.to_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Reads a bucket file fully into memory.
    pub fn read_from(path: &Path) -> Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        Self::from_bytes(&buf)
    }
}

/// Streaming bucket reader that yields points in fixed-size batches without
/// materializing the whole payload — the scan operator's "one look at the
/// data" access path for buckets larger than memory.
pub struct BucketReader {
    reader: BufReader<File>,
    /// Cell id from the header.
    pub cell: GridCell,
    /// Attributes per point.
    pub dim: usize,
    /// Total points promised by the header.
    pub count: usize,
    remaining: usize,
    checksum_expected: u64,
    checksum_running: u64,
}

impl BucketReader {
    /// Opens a bucket file and parses its header.
    pub fn open(path: &Path) -> Result<Self> {
        let mut reader = BufReader::new(File::open(path)?);
        let mut header = [0u8; HEADER_LEN];
        reader.read_exact(&mut header)?;
        let mut buf = &header[..];
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(DataError::Format("bad magic; not a PMKMGB01 bucket".into()));
        }
        let cell = GridCell::from_index(buf.get_u32_le())?;
        let dim = buf.get_u32_le() as usize;
        let count = buf.get_u64_le() as usize;
        let checksum_expected = buf.get_u64_le();
        if dim == 0 {
            return Err(DataError::Format("bucket declares zero dimensions".into()));
        }
        Ok(Self {
            reader,
            cell,
            dim,
            count,
            remaining: count,
            checksum_expected,
            // FNV-1a offset basis; updated incrementally per batch.
            checksum_running: 0xcbf2_9ce4_8422_2325,
        })
    }

    /// Reads up to `max_points` into a dataset; `Ok(None)` at end of file.
    /// The running checksum is verified when the final batch is consumed.
    pub fn next_batch(&mut self, max_points: usize) -> Result<Option<Dataset>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let n = self.remaining.min(max_points.max(1));
        let mut raw = vec![0u8; n * self.dim * 8];
        self.reader.read_exact(&mut raw)?;
        for &b in &raw {
            self.checksum_running ^= b as u64;
            self.checksum_running = self.checksum_running.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.remaining -= n;
        if self.remaining == 0 && self.checksum_running != self.checksum_expected {
            return Err(DataError::ChecksumMismatch {
                expected: self.checksum_expected,
                actual: self.checksum_running,
            });
        }
        let flat = crate::codec::f64s_from_le(&raw);
        let ds =
            Dataset::from_flat(self.dim, flat).map_err(|e| DataError::Format(e.to_string()))?;
        Ok(Some(ds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(n: usize) -> GridBucket {
        let mut points = Dataset::new(3).unwrap();
        for i in 0..n {
            points.push(&[i as f64, i as f64 * 0.5, -(i as f64)]).unwrap();
        }
        GridBucket { cell: GridCell::new(12, 34).unwrap(), points }
    }

    #[test]
    fn round_trip_in_memory() {
        let b = bucket(17);
        let bytes = b.to_bytes();
        let back = GridBucket::from_bytes(&bytes).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn round_trip_via_file() {
        let dir = std::env::temp_dir().join("pmkm_bucket_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.gb");
        let b = bucket(100);
        b.write_to(&path).unwrap();
        let back = GridBucket::read_from(&path).unwrap();
        assert_eq!(back, b);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_bucket_round_trips() {
        let b = GridBucket { cell: GridCell::new(0, 0).unwrap(), points: Dataset::new(2).unwrap() };
        let back = GridBucket::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(back.points.len(), 0);
        assert_eq!(back.points.dim(), 2);
    }

    #[test]
    fn detects_bad_magic() {
        let b = bucket(3);
        let mut bytes = b.to_bytes().to_vec();
        bytes[0] = b'X';
        assert!(matches!(GridBucket::from_bytes(&bytes), Err(DataError::Format(_))));
    }

    #[test]
    fn detects_truncation() {
        let b = bucket(3);
        let bytes = b.to_bytes();
        assert!(matches!(
            GridBucket::from_bytes(&bytes[..bytes.len() - 8]),
            Err(DataError::Format(_))
        ));
        assert!(matches!(GridBucket::from_bytes(&bytes[..10]), Err(DataError::Format(_))));
    }

    #[test]
    fn detects_payload_corruption() {
        let b = bucket(5);
        let mut bytes = b.to_bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(GridBucket::from_bytes(&bytes), Err(DataError::ChecksumMismatch { .. })));
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_reader_batches_match_full_read() {
        let dir = std::env::temp_dir().join("pmkm_bucket_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.gb");
        let b = bucket(101);
        b.write_to(&path).unwrap();

        let mut reader = BucketReader::open(&path).unwrap();
        assert_eq!(reader.cell, b.cell);
        assert_eq!(reader.count, 101);
        assert_eq!(reader.dim, 3);
        let mut all = Dataset::new(3).unwrap();
        while let Some(batch) = reader.next_batch(10).unwrap() {
            assert!(batch.len() <= 10);
            all.extend_from(&batch).unwrap();
        }
        assert_eq!(all, b.points);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streaming_reader_detects_corruption_at_final_batch() {
        let dir = std::env::temp_dir().join("pmkm_bucket_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.gb");
        let b = bucket(20);
        let mut bytes = b.to_bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let mut reader = BucketReader::open(&path).unwrap();
        let mut err = None;
        loop {
            match reader.next_batch(7) {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(DataError::ChecksumMismatch { .. })));
        std::fs::remove_file(&path).unwrap();
    }
}
