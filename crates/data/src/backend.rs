//! Storage backends for bucket scans.
//!
//! The paper assumes grid buckets are "directly used as data input" from
//! disk; production deployments put them behind whatever storage is at
//! hand. [`ScanBackend`] abstracts ranged reads so the container reader is
//! byte-source agnostic:
//!
//! * [`FileBackend`] — positional reads against a local file (the classic
//!   path, now block-aware).
//! * [`MmapBackend`] — the whole file mapped read-only; `map_range` hands
//!   out borrowed slices so raw-codec blocks decode straight from the page
//!   cache with no intermediate payload buffer.
//! * [`SimObjectStore`] — a local file dressed up as an object store:
//!   every `read_range` is a ranged GET with injected per-GET latency and
//!   an optional deterministic fault hook, so the chaos suite can exercise
//!   flaky remote storage without a network.
//!
//! Backends return `std::io::Result`; the container layer converts to
//! [`crate::DataError`] with context.

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which backend a scan should use. The plan-level knob; stable labels are
/// part of the CLI surface and the plan fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Buffered/positional local-file reads.
    #[default]
    LocalFile,
    /// Read-only memory map (zero-copy for raw-codec blocks).
    Mmap,
    /// Simulated object store: ranged GETs + injected latency/flakiness.
    SimObjectStore,
}

impl BackendKind {
    /// Stable CLI/metrics label.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::LocalFile => "local-file",
            BackendKind::Mmap => "mmap",
            BackendKind::SimObjectStore => "sim-object-store",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "local-file" | "local_file" | "file" => Some(BackendKind::LocalFile),
            "mmap" => Some(BackendKind::Mmap),
            "sim-object-store" | "sim_object_store" | "object-store" | "sim" => {
                Some(BackendKind::SimObjectStore)
            }
            _ => None,
        }
    }

    /// Every backend, for exhaustive tests and bench sweeps.
    pub const ALL: [BackendKind; 3] =
        [BackendKind::LocalFile, BackendKind::Mmap, BackendKind::SimObjectStore];
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Deterministic per-GET fault hook: called with the zero-based GET
/// ordinal before the read executes; returning `true` fails that GET.
/// The stream layer wires this to its seeded `FaultPlan` rolls so
/// object-store flakiness replays exactly under a fixed seed.
pub type GetFaultHook = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// A byte source supporting ranged reads.
pub trait ScanBackend: Send + Sync {
    /// Total length of the object in bytes.
    fn len(&self) -> u64;

    /// True when the object is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads exactly `len` bytes starting at `offset` into a fresh buffer.
    fn read_range(&self, offset: u64, len: usize) -> io::Result<Vec<u8>>;

    /// Borrowed view of a range when the backend can serve one without a
    /// copy (mmap); `None` means callers must use [`read_range`].
    ///
    /// [`read_range`]: ScanBackend::read_range
    fn map_range(&self, _offset: u64, _len: usize) -> Option<&[u8]> {
        None
    }

    /// The backend's [`BackendKind`] label, for metrics and errors.
    fn kind(&self) -> BackendKind;
}

// Shared handles delegate, so one backend (and its GET accounting) can
// serve several readers — e.g. retried opens and prefetch threads.
impl ScanBackend for Arc<dyn ScanBackend> {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_range(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        (**self).read_range(offset, len)
    }

    fn map_range(&self, offset: u64, len: usize) -> Option<&[u8]> {
        (**self).map_range(offset, len)
    }

    fn kind(&self) -> BackendKind {
        (**self).kind()
    }
}

fn range_err(offset: u64, len: usize, total: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        format!("range [{offset}, +{len}) outside object of {total} bytes"),
    )
}

/// Positional reads against a local file.
pub struct FileBackend {
    file: File,
    len: u64,
}

impl FileBackend {
    /// Opens `path` for ranged reads.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Self { file, len })
    }
}

impl ScanBackend for FileBackend {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_range(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        if offset.checked_add(len as u64).is_none_or(|end| end > self.len) {
            return Err(range_err(offset, len, self.len));
        }
        let mut buf = vec![0u8; len];
        read_exact_at(&self.file, &mut buf, offset)?;
        Ok(buf)
    }

    fn kind(&self) -> BackendKind {
        BackendKind::LocalFile
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    // Non-unix fallback: clone the handle so the shared cursor is private.
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// The whole file mapped read-only.
pub struct MmapBackend {
    map: memmap2::Mmap,
}

impl MmapBackend {
    /// Maps `path` in its entirety.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        // Contract (documented by the shim): the bucket file must not be
        // truncated or rewritten while mapped. Bucket files are write-once
        // in this system.
        let map = memmap2::Mmap::map_readonly(&file)?;
        Ok(Self { map })
    }

    /// True when the OS mapping succeeded (vs the owned-buffer fallback).
    pub fn is_zero_copy(&self) -> bool {
        self.map.is_zero_copy()
    }
}

impl ScanBackend for MmapBackend {
    fn len(&self) -> u64 {
        self.map.len() as u64
    }

    fn read_range(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.map_range(offset, len)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| range_err(offset, len, self.len()))
    }

    fn map_range(&self, offset: u64, len: usize) -> Option<&[u8]> {
        let start = usize::try_from(offset).ok()?;
        self.map.get(start..start.checked_add(len)?)
    }

    fn kind(&self) -> BackendKind {
        BackendKind::Mmap
    }
}

/// A local file pretending to be a remote object store: every read is a
/// ranged GET with simulated latency and optional injected failures.
pub struct SimObjectStore {
    inner: FileBackend,
    /// Busy-wait-free sleep added to every GET, in microseconds.
    latency_us: u64,
    /// Zero-based ordinal of the next GET (shared across threads so the
    /// fault hook sees a stable global sequence per bucket).
    gets: AtomicU64,
    fault_hook: Option<GetFaultHook>,
}

impl SimObjectStore {
    /// Opens `path` with `latency_us` of injected latency per GET.
    pub fn open(path: &Path, latency_us: u64) -> io::Result<Self> {
        Ok(Self {
            inner: FileBackend::open(path)?,
            latency_us,
            gets: AtomicU64::new(0),
            fault_hook: None,
        })
    }

    /// Installs a deterministic per-GET fault hook.
    pub fn with_fault_hook(mut self, hook: GetFaultHook) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// GETs issued so far.
    pub fn gets_issued(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }
}

impl ScanBackend for SimObjectStore {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_range(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let ordinal = self.gets.fetch_add(1, Ordering::Relaxed);
        if self.latency_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.latency_us));
        }
        if let Some(hook) = &self.fault_hook {
            if hook(ordinal) {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("injected object-store fault on GET #{ordinal}"),
                ));
            }
        }
        self.inner.read_range(offset, len)
    }

    fn kind(&self) -> BackendKind {
        BackendKind::SimObjectStore
    }
}

/// Opens `path` through the requested backend with default parameters
/// (sim-object-store gets zero injected latency and no fault hook; use
/// [`SimObjectStore::open`] directly to configure those).
pub fn open_backend(path: &Path, kind: BackendKind) -> io::Result<Box<dyn ScanBackend>> {
    Ok(match kind {
        BackendKind::LocalFile => Box::new(FileBackend::open(path)?),
        BackendKind::Mmap => Box::new(MmapBackend::open(path)?),
        BackendKind::SimObjectStore => Box::new(SimObjectStore::open(path, 0)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pmkm_backend_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn all_backends_serve_identical_ranges() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let path = tmp("ranges", &payload);
        for kind in BackendKind::ALL {
            let b = open_backend(&path, kind).unwrap();
            assert_eq!(b.len(), payload.len() as u64, "{kind}");
            assert_eq!(b.read_range(0, 16).unwrap(), &payload[..16], "{kind}");
            assert_eq!(b.read_range(1000, 96).unwrap(), &payload[1000..1096], "{kind}");
            assert_eq!(
                b.read_range(payload.len() as u64 - 1, 1).unwrap(),
                &payload[payload.len() - 1..],
                "{kind}"
            );
            assert!(b.read_range(payload.len() as u64 - 1, 2).is_err(), "{kind}");
            assert!(b.read_range(u64::MAX, 8).is_err(), "{kind}");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mmap_serves_borrowed_slices() {
        let payload = vec![9u8; 1024];
        let path = tmp("mmap", &payload);
        let b = MmapBackend::open(&path).unwrap();
        let slice = b.map_range(100, 32).unwrap();
        assert_eq!(slice, &payload[100..132]);
        assert!(b.map_range(1020, 8).is_none());
        // File backend never serves borrowed ranges.
        let f = FileBackend::open(&path).unwrap();
        assert!(f.map_range(0, 8).is_none());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn sim_object_store_injects_faults_deterministically() {
        let payload = vec![1u8; 256];
        let path = tmp("faulty", &payload);
        let store = SimObjectStore::open(&path, 0)
            .unwrap()
            .with_fault_hook(Arc::new(|ordinal| ordinal % 3 == 1));
        assert!(store.read_range(0, 8).is_ok()); // GET #0
        assert!(store.read_range(0, 8).is_err()); // GET #1 injected
        assert!(store.read_range(0, 8).is_ok()); // GET #2
        assert_eq!(store.gets_issued(), 3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn backend_labels_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(BackendKind::parse("file"), Some(BackendKind::LocalFile));
        assert_eq!(BackendKind::parse("nope"), None);
    }
}
