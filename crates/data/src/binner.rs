//! The stripe → grid-bucket preprocessing pass.
//!
//! The paper assumes "the data had been scanned once, and sorted into one
//! degree latitude and one degree longitude grid buckets that were saved to
//! disk as binary files" (§3.1). This module performs that single scan:
//! stripe files in, one bucket file per touched cell out.

use crate::bucket::GridBucket;
use crate::error::{DataError, Result};
use crate::grid::GridCell;
use crate::swath::{read_stripe, Observation};
use pmkm_core::Dataset;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Summary of one binning run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinSummary {
    /// Bucket files written, keyed by cell, in cell order.
    pub buckets: Vec<(GridCell, PathBuf)>,
    /// Total observations binned.
    pub observations: usize,
}

/// Groups observations by grid cell (attributes only — the position is what
/// routes the point; the clustered vector is the attribute vector, as in the
/// paper's 6-attribute cells).
pub fn bin_observations(obs: &[Observation], dim: usize) -> Result<BTreeMap<GridCell, Dataset>> {
    let mut cells: BTreeMap<GridCell, Dataset> = BTreeMap::new();
    for o in obs {
        if o.attrs.len() != dim {
            return Err(DataError::Invalid(format!(
                "observation has {} attrs, expected {dim}",
                o.attrs.len()
            )));
        }
        let cell = GridCell::containing(o.lat, o.lon)?;
        let ds = match cells.entry(cell) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Dataset::new(dim).map_err(|e| DataError::Invalid(e.to_string()))?)
            }
        };
        ds.push(&o.attrs).map_err(|e| DataError::Invalid(e.to_string()))?;
    }
    Ok(cells)
}

/// Reads every stripe file, bins all observations, and writes one bucket
/// file per cell into `out_dir` (named by [`GridCell::bucket_file_name`]).
pub fn bin_stripes(stripes: &[PathBuf], out_dir: &Path) -> Result<BinSummary> {
    std::fs::create_dir_all(out_dir)?;
    let mut merged: BTreeMap<GridCell, Dataset> = BTreeMap::new();
    let mut observations = 0usize;
    let mut dim: Option<usize> = None;
    for stripe in stripes {
        let obs = read_stripe(stripe)?;
        if obs.is_empty() {
            continue;
        }
        let d = obs[0].attrs.len();
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(DataError::Format(format!(
                    "stripe {} has dim {d}, earlier stripes had {existing}",
                    stripe.display()
                )))
            }
            _ => {}
        }
        observations += obs.len();
        for (cell, ds) in bin_observations(&obs, d)? {
            match merged.entry(cell) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().extend_from(&ds).map_err(|e| DataError::Invalid(e.to_string()))?;
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(ds);
                }
            }
        }
    }
    let mut buckets = Vec::with_capacity(merged.len());
    for (cell, points) in merged {
        let path = out_dir.join(cell.bucket_file_name());
        GridBucket { cell, points }.write_to(&path)?;
        buckets.push((cell, path));
    }
    Ok(BinSummary { buckets, observations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swath::{write_stripe, SwathConfig, SwathSimulator};
    use pmkm_core::PointSource;

    fn obs(lat: f64, lon: f64, a: f64) -> Observation {
        Observation { lat, lon, attrs: vec![a, a * 2.0] }
    }

    #[test]
    fn bins_by_cell() {
        let observations = vec![
            obs(0.5, 0.5, 1.0),
            obs(0.6, 0.4, 2.0),
            obs(1.5, 0.5, 3.0), // different lat cell
        ];
        let cells = bin_observations(&observations, 2).unwrap();
        assert_eq!(cells.len(), 2);
        let c00 = GridCell::containing(0.5, 0.5).unwrap();
        assert_eq!(cells[&c00].len(), 2);
    }

    #[test]
    fn rejects_ragged_observations() {
        let observations = vec![obs(0.0, 0.0, 1.0)];
        assert!(bin_observations(&observations, 3).is_err());
    }

    #[test]
    fn end_to_end_stripes_to_buckets_conserves_points() {
        let dir = std::env::temp_dir().join(format!("pmkm_binner_{}", std::process::id()));
        let stripes_dir = dir.join("stripes");
        let buckets_dir = dir.join("buckets");
        let cfg = SwathConfig {
            orbits: 2,
            swath_width_deg: 2.0,
            along_track_step_deg: 0.5,
            cross_track_samples: 3,
            lat_range: (-3.0, 3.0),
            attrs_dim: 4,
            components_per_cell: 2,
            seed: 5,
            ..SwathConfig::default()
        };
        let mut sim = SwathSimulator::new(cfg).unwrap();
        let stripes = sim.write_stripes(&stripes_dir).unwrap();
        let summary = bin_stripes(&stripes, &buckets_dir).unwrap();
        // Every observation landed in exactly one bucket.
        let bucket_total: usize = summary
            .buckets
            .iter()
            .map(|(_, p)| GridBucket::read_from(p).unwrap().points.len())
            .sum();
        assert_eq!(bucket_total, summary.observations);
        assert!(summary.buckets.len() > 1, "swath should touch several cells");
        // Bucket headers carry the right cell ids.
        for (cell, path) in &summary.buckets {
            let b = GridBucket::read_from(path).unwrap();
            assert_eq!(b.cell, *cell);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_dims_across_stripes_is_error() {
        let dir = std::env::temp_dir().join(format!("pmkm_binner_mix_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s1 = dir.join("a.sw");
        let s2 = dir.join("b.sw");
        write_stripe(&s1, 2, &[obs(0.0, 0.0, 1.0)]).unwrap();
        write_stripe(&s2, 3, &[Observation { lat: 0.0, lon: 0.0, attrs: vec![1.0, 2.0, 3.0] }])
            .unwrap();
        let out = dir.join("out");
        assert!(matches!(bin_stripes(&[s1, s2], &out), Err(DataError::Format(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_stripe_list_produces_empty_summary() {
        let dir = std::env::temp_dir().join(format!("pmkm_binner_empty_{}", std::process::id()));
        let summary = bin_stripes(&[], &dir).unwrap();
        assert_eq!(summary.observations, 0);
        assert!(summary.buckets.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
