//! The 1° × 1° earth grid (§1: "we partition the data set into 1 degree x
//! 1 degree grid cells ... 64,800 individual grid cells").

use crate::error::{DataError, Result};
use serde::{Deserialize, Serialize};

/// Number of latitude rows (90°S..90°N in 1° steps).
pub const LAT_CELLS: u32 = 180;
/// Number of longitude columns (180°W..180°E in 1° steps).
pub const LON_CELLS: u32 = 360;
/// Total cells in a global coverage (64,800).
pub const TOTAL_CELLS: u32 = LAT_CELLS * LON_CELLS;

/// Identifier of one 1° × 1° grid cell.
///
/// `lat_idx 0` is the cell covering `[-90°, -89°)`; `lon_idx 0` covers
/// `[-180°, -179°)`. The flat [`GridCell::index`] enumerates row-major,
/// matching the on-disk bucket naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GridCell {
    /// Latitude row, `0..180`.
    pub lat_idx: u16,
    /// Longitude column, `0..360`.
    pub lon_idx: u16,
}

impl GridCell {
    /// Builds a cell from indices, validating ranges.
    pub fn new(lat_idx: u16, lon_idx: u16) -> Result<Self> {
        if lat_idx as u32 >= LAT_CELLS || lon_idx as u32 >= LON_CELLS {
            return Err(DataError::Invalid(format!(
                "cell indices ({lat_idx}, {lon_idx}) out of range {LAT_CELLS}×{LON_CELLS}"
            )));
        }
        Ok(Self { lat_idx, lon_idx })
    }

    /// The cell containing the given coordinates (degrees). Latitude is
    /// clamped to [-90, 90]; longitude is wrapped into [-180, 180).
    pub fn containing(lat_deg: f64, lon_deg: f64) -> Result<Self> {
        if !lat_deg.is_finite() || !lon_deg.is_finite() {
            return Err(DataError::Invalid("non-finite coordinates".into()));
        }
        let lat = lat_deg.clamp(-90.0, 90.0);
        let mut lon = (lon_deg + 180.0).rem_euclid(360.0) - 180.0;
        if lon >= 180.0 {
            lon -= 360.0;
        }
        let lat_idx = (((lat + 90.0).floor() as i64).clamp(0, LAT_CELLS as i64 - 1)) as u16;
        let lon_idx = (((lon + 180.0).floor() as i64).clamp(0, LON_CELLS as i64 - 1)) as u16;
        Ok(Self { lat_idx, lon_idx })
    }

    /// Row-major flat index in `0..64_800`.
    pub fn index(&self) -> u32 {
        self.lat_idx as u32 * LON_CELLS + self.lon_idx as u32
    }

    /// Inverse of [`GridCell::index`].
    pub fn from_index(index: u32) -> Result<Self> {
        if index >= TOTAL_CELLS {
            return Err(DataError::Invalid(format!("cell index {index} >= {TOTAL_CELLS}")));
        }
        Ok(Self { lat_idx: (index / LON_CELLS) as u16, lon_idx: (index % LON_CELLS) as u16 })
    }

    /// Southwest corner of the cell, in degrees.
    pub fn southwest(&self) -> (f64, f64) {
        (self.lat_idx as f64 - 90.0, self.lon_idx as f64 - 180.0)
    }

    /// Center of the cell, in degrees.
    pub fn center(&self) -> (f64, f64) {
        let (lat, lon) = self.southwest();
        (lat + 0.5, lon + 0.5)
    }

    /// Canonical bucket file name for this cell.
    pub fn bucket_file_name(&self) -> String {
        format!("cell_{:03}_{:03}.gb", self.lat_idx, self.lon_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cells_is_64800() {
        assert_eq!(TOTAL_CELLS, 64_800);
    }

    #[test]
    fn containing_maps_corners_correctly() {
        let c = GridCell::containing(-90.0, -180.0).unwrap();
        assert_eq!((c.lat_idx, c.lon_idx), (0, 0));
        let c = GridCell::containing(89.999, 179.999).unwrap();
        assert_eq!((c.lat_idx, c.lon_idx), (179, 359));
        // Exactly +90 latitude clamps into the top row.
        let c = GridCell::containing(90.0, 0.0).unwrap();
        assert_eq!(c.lat_idx, 179);
    }

    #[test]
    fn longitude_wraps() {
        let a = GridCell::containing(0.5, 181.0).unwrap();
        let b = GridCell::containing(0.5, -179.0).unwrap();
        assert_eq!(a, b);
        let c = GridCell::containing(0.5, 540.5).unwrap(); // 540.5 ≡ 180.5 ≡ -179.5
        let d = GridCell::containing(0.5, -179.5).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn index_round_trips() {
        for &(lat, lon) in &[(0u16, 0u16), (179, 359), (90, 180), (45, 7)] {
            let cell = GridCell::new(lat, lon).unwrap();
            assert_eq!(GridCell::from_index(cell.index()).unwrap(), cell);
        }
        assert!(GridCell::from_index(TOTAL_CELLS).is_err());
    }

    #[test]
    fn new_validates_ranges() {
        assert!(GridCell::new(180, 0).is_err());
        assert!(GridCell::new(0, 360).is_err());
        assert!(GridCell::new(179, 359).is_ok());
    }

    #[test]
    fn center_is_half_degree_in() {
        let c = GridCell::new(90, 180).unwrap(); // SW corner (0, 0)
        assert_eq!(c.southwest(), (0.0, 0.0));
        assert_eq!(c.center(), (0.5, 0.5));
    }

    #[test]
    fn containing_rejects_nan() {
        assert!(GridCell::containing(f64::NAN, 0.0).is_err());
        assert!(GridCell::containing(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn bucket_file_name_is_stable() {
        let c = GridCell::new(7, 42).unwrap();
        assert_eq!(c.bucket_file_name(), "cell_007_042.gb");
    }

    #[test]
    fn containing_agrees_with_southwest() {
        // A point just inside a cell's SW corner maps back to that cell.
        for &(lat, lon) in &[(10u16, 20u16), (0, 0), (179, 359)] {
            let cell = GridCell::new(lat, lon).unwrap();
            let (slat, slon) = cell.southwest();
            let back = GridCell::containing(slat + 1e-6, slon + 1e-6).unwrap();
            assert_eq!(back, cell);
        }
    }
}
