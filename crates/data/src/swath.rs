//! Satellite swath simulator.
//!
//! MISR-like instruments cover "stripes" of the earth while the planet
//! rotates underneath (paper §3.1, Figure 1), so the observations belonging
//! to one grid cell end up scattered across many stripe files, out of
//! spatial order. This module synthesizes that acquisition geometry: each
//! orbit pass lays a swath of observations along a ground track, the track
//! shifting westward per orbit; every observation's attribute vector is
//! drawn from the deterministic per-cell mixture, so the *same* cell
//! distribution is observable whether data is read from stripes or
//! generated directly (which is what lets the binner be validated).
//!
//! Stripe file layout (little-endian):
//!
//! ```text
//! magic   8 B  "PMKMSW01"
//! dim     4 B  u32 attributes per observation
//! count   8 B  u64 observations
//! records count × (2 + dim) × 8 B   lat, lon, attrs…
//! ```

use crate::error::{DataError, Result};
use crate::grid::GridCell;
use crate::mixture::Mixture;
use bytes::{Buf, BufMut, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Stripe file magic.
pub const STRIPE_MAGIC: [u8; 8] = *b"PMKMSW01";

/// One observation: a ground position plus its measured attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Attribute vector (radiances etc.).
    pub attrs: Vec<f64>,
}

/// Swath acquisition geometry and attribute model parameters.
#[derive(Debug, Clone)]
pub struct SwathConfig {
    /// Number of orbit passes to simulate.
    pub orbits: usize,
    /// Cross-track swath width in degrees of longitude (MISR ≈ 3.3°).
    pub swath_width_deg: f64,
    /// Along-track sampling step in degrees of latitude.
    pub along_track_step_deg: f64,
    /// Samples across the swath at each along-track step.
    pub cross_track_samples: usize,
    /// Simulated latitude band (min, max), degrees.
    pub lat_range: (f64, f64),
    /// Westward shift of the ground track per orbit (earth rotation during
    /// one ~99-minute orbit ≈ 24.7°).
    pub lon_shift_per_orbit_deg: f64,
    /// Attributes per observation (the paper uses 6).
    pub attrs_dim: usize,
    /// Mixture components per cell's attribute distribution.
    pub components_per_cell: usize,
    /// Base seed; per-cell attribute models derive from `(seed, cell)`.
    pub seed: u64,
}

impl Default for SwathConfig {
    fn default() -> Self {
        Self {
            orbits: 4,
            swath_width_deg: 3.3,
            along_track_step_deg: 0.25,
            cross_track_samples: 8,
            lat_range: (-70.0, 70.0),
            lon_shift_per_orbit_deg: 24.7,
            attrs_dim: 6,
            components_per_cell: 6,
            seed: 0,
        }
    }
}

impl SwathConfig {
    fn validate(&self) -> Result<()> {
        if self.orbits == 0 || self.cross_track_samples == 0 || self.attrs_dim == 0 {
            return Err(DataError::Invalid(
                "orbits, cross_track_samples and attrs_dim must be >= 1".into(),
            ));
        }
        if !(self.along_track_step_deg > 0.0 && self.swath_width_deg > 0.0) {
            return Err(DataError::Invalid("steps and widths must be positive".into()));
        }
        if self.lat_range.0 >= self.lat_range.1 {
            return Err(DataError::Invalid("empty latitude range".into()));
        }
        Ok(())
    }
}

/// The simulator. Caches per-cell attribute mixtures so repeated coverage of
/// a cell samples one consistent distribution.
pub struct SwathSimulator {
    cfg: SwathConfig,
    cell_models: HashMap<GridCell, Mixture>,
}

impl SwathSimulator {
    /// Creates a simulator after validating the config.
    pub fn new(cfg: SwathConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Self { cfg, cell_models: HashMap::new() })
    }

    /// The deterministic attribute mixture of a cell (derived from
    /// `(seed, cell.index())`, MISR-like radiance ranges).
    pub fn cell_mixture(&mut self, cell: GridCell) -> Result<&Mixture> {
        let cfg = &self.cfg;
        if let std::collections::hash_map::Entry::Vacant(e) = self.cell_models.entry(cell) {
            let seed = pmkm_core::seeding::derive_seed(cfg.seed, cell.index() as u64);
            e.insert(Mixture::random(
                cfg.attrs_dim,
                cfg.components_per_cell,
                0.0..800.0,
                5.0..40.0,
                seed,
            )?);
        }
        Ok(&self.cell_models[&cell])
    }

    /// Simulates one orbit pass, producing observations along the ground
    /// track in acquisition order (south→north, west→east across the swath).
    pub fn simulate_orbit(&mut self, orbit: usize) -> Result<Vec<Observation>> {
        if orbit >= self.cfg.orbits {
            return Err(DataError::Invalid(format!(
                "orbit {orbit} out of range 0..{}",
                self.cfg.orbits
            )));
        }
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(pmkm_core::seeding::derive_seed(
            cfg.seed,
            0x4F52_4249_5400 | orbit as u64, // "ORBIT" | orbit
        ));
        let mut bm = crate::gaussian::BoxMuller::new();
        let track_lon = -180.0 + (orbit as f64 * cfg.lon_shift_per_orbit_deg).rem_euclid(360.0);
        let mut out = Vec::new();
        let mut lat = cfg.lat_range.0;
        let mut attr_buf = vec![0.0; cfg.attrs_dim];
        while lat <= cfg.lat_range.1 {
            for s in 0..cfg.cross_track_samples {
                let frac = if cfg.cross_track_samples == 1 {
                    0.5
                } else {
                    s as f64 / (cfg.cross_track_samples - 1) as f64
                };
                // Cross-track offset plus a little pointing jitter.
                let lon =
                    track_lon + (frac - 0.5) * cfg.swath_width_deg + rng.gen_range(-0.01..0.01);
                let jlat = lat + rng.gen_range(-0.01..0.01);
                let cell = GridCell::containing(jlat, lon)?;
                let mixture = self.cell_mixture(cell)?;
                mixture.sample_into(&mut rng, &mut bm, &mut attr_buf);
                out.push(Observation { lat: jlat, lon, attrs: attr_buf.clone() });
            }
            lat += cfg.along_track_step_deg;
        }
        Ok(out)
    }

    /// Simulates every orbit and writes one stripe file per orbit into
    /// `dir`, returning the file paths in orbit order.
    pub fn write_stripes(&mut self, dir: &Path) -> Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(self.cfg.orbits);
        for orbit in 0..self.cfg.orbits {
            let obs = self.simulate_orbit(orbit)?;
            let path = dir.join(format!("stripe_{orbit:04}.sw"));
            write_stripe(&path, self.cfg.attrs_dim, &obs)?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// The configured attribute dimensionality.
    pub fn attrs_dim(&self) -> usize {
        self.cfg.attrs_dim
    }
}

/// Writes observations to a stripe file.
pub fn write_stripe(path: &Path, dim: usize, obs: &[Observation]) -> Result<()> {
    let mut buf = BytesMut::with_capacity(20 + obs.len() * (2 + dim) * 8);
    buf.put_slice(&STRIPE_MAGIC);
    buf.put_u32_le(dim as u32);
    buf.put_u64_le(obs.len() as u64);
    for o in obs {
        if o.attrs.len() != dim {
            return Err(DataError::Invalid(format!(
                "observation has {} attrs, stripe declares {dim}",
                o.attrs.len()
            )));
        }
        buf.put_f64_le(o.lat);
        buf.put_f64_le(o.lon);
        for a in &o.attrs {
            buf.put_f64_le(*a);
        }
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Reads a stripe file fully.
pub fn read_stripe(path: &Path) -> Result<Vec<Observation>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    if buf.len() < 20 {
        return Err(DataError::Format("stripe shorter than header".into()));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if magic != STRIPE_MAGIC {
        return Err(DataError::Format("bad magic; not a PMKMSW01 stripe".into()));
    }
    let dim = buf.get_u32_le() as usize;
    let count = buf.get_u64_le() as usize;
    let expect = count * (2 + dim) * 8;
    if buf.remaining() != expect {
        return Err(DataError::Format(format!(
            "stripe payload is {} bytes, header promises {expect}",
            buf.remaining()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let lat = buf.get_f64_le();
        let lon = buf.get_f64_le();
        let attrs: Vec<f64> = (0..dim).map(|_| buf.get_f64_le()).collect();
        out.push(Observation { lat, lon, attrs });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SwathConfig {
        SwathConfig {
            orbits: 3,
            swath_width_deg: 2.0,
            along_track_step_deg: 1.0,
            cross_track_samples: 4,
            lat_range: (-5.0, 5.0),
            attrs_dim: 3,
            components_per_cell: 2,
            seed: 77,
            ..SwathConfig::default()
        }
    }

    #[test]
    fn orbit_produces_expected_sample_count() {
        let mut sim = SwathSimulator::new(small_cfg()).unwrap();
        let obs = sim.simulate_orbit(0).unwrap();
        // 11 along-track steps (-5..=5) × 4 cross-track samples.
        assert_eq!(obs.len(), 11 * 4);
        for o in &obs {
            assert_eq!(o.attrs.len(), 3);
            assert!(o.lat >= -5.1 && o.lat <= 5.1);
        }
    }

    #[test]
    fn orbits_shift_in_longitude() {
        let mut sim = SwathSimulator::new(small_cfg()).unwrap();
        let a = sim.simulate_orbit(0).unwrap();
        let b = sim.simulate_orbit(1).unwrap();
        let mean_lon = |v: &[Observation]| v.iter().map(|o| o.lon).sum::<f64>() / v.len() as f64;
        let shift = mean_lon(&b) - mean_lon(&a);
        assert!((shift - 24.7).abs() < 0.5, "shift = {shift}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let mut s1 = SwathSimulator::new(small_cfg()).unwrap();
        let mut s2 = SwathSimulator::new(small_cfg()).unwrap();
        assert_eq!(s1.simulate_orbit(2).unwrap(), s2.simulate_orbit(2).unwrap());
    }

    #[test]
    fn out_of_range_orbit_is_error() {
        let mut sim = SwathSimulator::new(small_cfg()).unwrap();
        assert!(sim.simulate_orbit(3).is_err());
    }

    #[test]
    fn stripe_file_round_trips() {
        let dir = std::env::temp_dir().join("pmkm_swath_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.sw");
        let obs = vec![
            Observation { lat: 1.0, lon: 2.0, attrs: vec![3.0, 4.0] },
            Observation { lat: -1.0, lon: -2.0, attrs: vec![5.0, 6.0] },
        ];
        write_stripe(&path, 2, &obs).unwrap();
        assert_eq!(read_stripe(&path).unwrap(), obs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stripe_write_rejects_ragged_attrs() {
        let dir = std::env::temp_dir().join("pmkm_swath_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.sw");
        let obs = vec![Observation { lat: 0.0, lon: 0.0, attrs: vec![1.0] }];
        assert!(write_stripe(&path, 2, &obs).is_err());
    }

    #[test]
    fn write_stripes_creates_one_file_per_orbit() {
        let dir = std::env::temp_dir().join(format!("pmkm_swath_{}", std::process::id()));
        let mut sim = SwathSimulator::new(small_cfg()).unwrap();
        let paths = sim.write_stripes(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(!read_stripe(p).unwrap().is_empty());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cell_mixture_is_cached_and_consistent() {
        let mut sim = SwathSimulator::new(small_cfg()).unwrap();
        let cell = GridCell::new(90, 180).unwrap();
        let a = sim.cell_mixture(cell).unwrap().sample_dataset(5, 1).unwrap();
        let b = sim.cell_mixture(cell).unwrap().sample_dataset(5, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn config_validation() {
        assert!(SwathSimulator::new(SwathConfig { orbits: 0, ..small_cfg() }).is_err());
        assert!(
            SwathSimulator::new(SwathConfig { along_track_step_deg: 0.0, ..small_cfg() }).is_err()
        );
        assert!(SwathSimulator::new(SwathConfig { lat_range: (5.0, -5.0), ..small_cfg() }).is_err());
    }
}
