//! Gaussian mixture models for synthesizing per-cell point distributions.

use crate::error::{DataError, Result};
use crate::gaussian::{BoxMuller, MultivariateNormal};
use pmkm_core::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One mixture component: a weighted multivariate normal.
#[derive(Debug, Clone)]
pub struct Component {
    /// Relative weight (normalized internally).
    pub weight: f64,
    /// The component distribution.
    pub dist: MultivariateNormal,
}

/// A Gaussian mixture model over `dim` attributes.
#[derive(Debug, Clone)]
pub struct Mixture {
    components: Vec<Component>,
    cumulative: Vec<f64>,
    dim: usize,
}

impl Mixture {
    /// Builds a mixture from components; weights are normalized.
    pub fn new(components: Vec<Component>) -> Result<Self> {
        if components.is_empty() {
            return Err(DataError::Invalid("mixture needs at least one component".into()));
        }
        let dim = components[0].dist.dim();
        if components.iter().any(|c| c.dist.dim() != dim) {
            return Err(DataError::Invalid("components disagree on dimensionality".into()));
        }
        let total: f64 = components.iter().map(|c| c.weight).sum();
        if !(total.is_finite() && total > 0.0)
            || components.iter().any(|c| !(c.weight.is_finite() && c.weight >= 0.0))
        {
            return Err(DataError::Invalid("component weights must be non-negative".into()));
        }
        let mut cumulative = Vec::with_capacity(components.len());
        let mut acc = 0.0;
        for c in &components {
            acc += c.weight / total;
            cumulative.push(acc);
        }
        // Guard against rounding keeping the last bound below 1.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Ok(Self { components, cumulative, dim })
    }

    /// Dimensionality of generated points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.components.len()
    }

    /// Samples one point into `out`.
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        normals: &mut BoxMuller,
        out: &mut [f64],
    ) {
        let u: f64 = rng.gen();
        let idx = match self.cumulative.iter().position(|&c| u <= c) {
            Some(i) => i,
            None => self.components.len() - 1,
        };
        self.components[idx].dist.sample_into(rng, normals, out);
    }

    /// Samples `n` points as a [`Dataset`].
    pub fn sample_dataset(&self, n: usize, seed: u64) -> Result<Dataset> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bm = BoxMuller::new();
        let mut ds =
            Dataset::with_capacity(self.dim, n).map_err(|e| DataError::Invalid(e.to_string()))?;
        let mut buf = vec![0.0; self.dim];
        for _ in 0..n {
            self.sample_into(&mut rng, &mut bm, &mut buf);
            ds.push(&buf).map_err(|e| DataError::Invalid(e.to_string()))?;
        }
        Ok(ds)
    }

    /// A randomly parameterized mixture: `components` normals with means in
    /// `mean_range`, per-axis standard deviations in `sd_range`, mild random
    /// cross-correlations (the paper's motivation stresses "high order
    /// interaction between the attributes"), and Zipf-ish weights so cluster
    /// populations are skewed like real geophysical regimes.
    pub fn random(
        dim: usize,
        components: usize,
        mean_range: std::ops::Range<f64>,
        sd_range: std::ops::Range<f64>,
        seed: u64,
    ) -> Result<Self> {
        if dim == 0 || components == 0 {
            return Err(DataError::Invalid("dim and components must be >= 1".into()));
        }
        if mean_range.is_empty() || sd_range.is_empty() || sd_range.start <= 0.0 {
            return Err(DataError::Invalid("empty or non-positive parameter range".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut comps = Vec::with_capacity(components);
        for c in 0..components {
            let mean: Vec<f64> = (0..dim).map(|_| rng.gen_range(mean_range.clone())).collect();
            let sds: Vec<f64> = (0..dim).map(|_| rng.gen_range(sd_range.clone())).collect();
            // Build cov = D(ρ I + (1−ρ) random-correlation)D with a random
            // correlation produced from a random orthogonal-ish mixing: use
            // C = 0.9·I + 0.1·uuᵀ (guaranteed SPD for |u| = 1).
            let mut u: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let norm = u.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
            u.iter_mut().for_each(|x| *x /= norm);
            let mut cov = vec![0.0; dim * dim];
            for i in 0..dim {
                for j in 0..dim {
                    let corr = if i == j { 1.0 } else { 0.0 };
                    let c_ij = 0.9 * corr + 0.1 * u[i] * u[j];
                    cov[i * dim + j] = sds[i] * sds[j] * c_ij;
                }
            }
            let weight = 1.0 / (c + 1) as f64; // Zipf-ish skew
            comps.push(Component { weight, dist: MultivariateNormal::new(mean, &cov)? });
        }
        Self::new(comps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmkm_core::PointSource;

    fn two_component_1d() -> Mixture {
        let a = MultivariateNormal::diagonal(vec![0.0], &[1.0]).unwrap();
        let b = MultivariateNormal::diagonal(vec![100.0], &[1.0]).unwrap();
        Mixture::new(vec![Component { weight: 1.0, dist: a }, Component { weight: 3.0, dist: b }])
            .unwrap()
    }

    #[test]
    fn weights_control_component_frequencies() {
        let m = two_component_1d();
        let ds = m.sample_dataset(20_000, 11).unwrap();
        let highs = ds.iter().filter(|p| p[0] > 50.0).count();
        let frac = highs as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let m = two_component_1d();
        let a = m.sample_dataset(100, 5).unwrap();
        let b = m.sample_dataset(100, 5).unwrap();
        let c = m.sample_dataset(100, 6).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_mixture_generates_valid_points() {
        let m = Mixture::random(6, 8, 0.0..800.0, 5.0..40.0, 99).unwrap();
        assert_eq!(m.dim(), 6);
        assert_eq!(m.components(), 8);
        let ds = m.sample_dataset(500, 1).unwrap();
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dim(), 6);
        // All coordinates finite and in a plausible envelope.
        for p in ds.iter() {
            assert!(p.iter().all(|x| x.is_finite() && *x > -500.0 && *x < 1300.0));
        }
    }

    #[test]
    fn mixture_rejects_bad_inputs() {
        assert!(Mixture::new(vec![]).is_err());
        let a = MultivariateNormal::diagonal(vec![0.0], &[1.0]).unwrap();
        let b = MultivariateNormal::diagonal(vec![0.0, 0.0], &[1.0, 1.0]).unwrap();
        assert!(Mixture::new(vec![
            Component { weight: 1.0, dist: a.clone() },
            Component { weight: 1.0, dist: b },
        ])
        .is_err());
        assert!(Mixture::new(vec![Component { weight: -1.0, dist: a }]).is_err());
        assert!(Mixture::random(0, 3, 0.0..1.0, 0.1..1.0, 0).is_err());
        assert!(Mixture::random(2, 3, 0.0..1.0, 0.0..0.0, 0).is_err());
    }

    #[test]
    fn zero_points_gives_empty_dataset() {
        let m = two_component_1d();
        let ds = m.sample_dataset(0, 0).unwrap();
        assert!(ds.is_empty());
    }
}
