//! Error type for the data substrate (generation, file formats, I/O).

use std::fmt;
use std::io;

/// Errors from synthetic data generation and the grid-bucket / swath file
/// formats.
#[derive(Debug)]
pub enum DataError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A file did not match the expected binary format.
    Format(String),
    /// Invalid generator or grid parameters.
    Invalid(String),
    /// A covariance matrix was not symmetric positive definite.
    NotPositiveDefinite,
    /// Payload checksum mismatch — the bucket file is corrupt.
    ChecksumMismatch {
        /// Checksum recorded in the file header.
        expected: u64,
        /// Checksum computed over the payload actually read.
        actual: u64,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Format(msg) => write!(f, "file format error: {msg}"),
            DataError::Invalid(msg) => write!(f, "invalid parameter: {msg}"),
            DataError::NotPositiveDefinite => {
                write!(f, "covariance matrix is not symmetric positive definite")
            }
            DataError::ChecksumMismatch { expected, actual } => write!(
                f,
                "payload checksum mismatch: expected {expected:#018x}, got {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DataError::NotPositiveDefinite.to_string().contains("positive definite"));
        assert!(DataError::Format("bad magic".into()).to_string().contains("bad magic"));
        let e = DataError::ChecksumMismatch { expected: 1, actual: 2 };
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: DataError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
